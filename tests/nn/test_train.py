"""Tests for repro.nn.train (SGD training of dense classifiers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, GraphError
from repro.nn.layers import Conv2D, Dense, ReLU, Softmax
from repro.nn.model import Sequential
from repro.nn.quantize import quantize_model_weights
from repro.nn.train import (
    SGDTrainer,
    accuracy,
    cross_entropy_loss,
    make_imu_har_dataset,
    train_imu_har_classifier,
)
from repro.nn.zoo import imu_har_mlp


def make_blobs(n_per_class: int = 60, n_features: int = 8, n_classes: int = 3,
               seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Linearly separable Gaussian blobs."""
    rng = np.random.default_rng(seed)
    centres = rng.normal(scale=4.0, size=(n_classes, n_features))
    features = []
    labels = []
    for index, centre in enumerate(centres):
        features.append(centre + rng.normal(scale=0.5,
                                            size=(n_per_class, n_features)))
        labels.extend([index] * n_per_class)
    return np.concatenate(features), np.asarray(labels)


def small_classifier(n_features: int = 8, n_classes: int = 3,
                     seed: int = 1) -> Sequential:
    rng = np.random.default_rng(seed)
    model = Sequential(input_shape=(n_features,), name="blob classifier")
    model.add(Dense(n_features, 16, rng=rng, name="fc1"))
    model.add(ReLU(name="relu1"))
    model.add(Dense(16, n_classes, rng=rng, name="fc2"))
    model.add(Softmax(name="softmax"))
    return model


class TestLossAndAccuracy:
    def test_cross_entropy_of_perfect_prediction_is_zero(self):
        probabilities = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert cross_entropy_loss(probabilities, np.array([0, 1])) \
            == pytest.approx(0.0, abs=1e-9)

    def test_cross_entropy_of_uniform_prediction(self):
        probabilities = np.full((4, 4), 0.25)
        assert cross_entropy_loss(probabilities, np.array([0, 1, 2, 3])) \
            == pytest.approx(np.log(4.0))

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ConfigurationError):
            cross_entropy_loss(np.full((2, 2), 0.5), np.array([0]))

    def test_accuracy_range(self):
        model = small_classifier()
        features, labels = make_blobs(n_per_class=10)
        value = accuracy(model, features, labels)
        assert 0.0 <= value <= 1.0


class TestSGDTrainer:
    def test_training_reduces_loss(self):
        features, labels = make_blobs()
        model = small_classifier()
        trainer = SGDTrainer(model, learning_rate=0.05)
        history = trainer.fit(features, labels, epochs=15, batch_size=16, rng=0)
        assert history.final_loss < history.losses[0]

    def test_learns_separable_blobs_to_high_accuracy(self):
        features, labels = make_blobs()
        model = small_classifier()
        trainer = SGDTrainer(model, learning_rate=0.05)
        history = trainer.fit(features, labels, epochs=30, batch_size=16, rng=0)
        assert history.final_accuracy >= 0.95

    def test_train_step_returns_finite_loss(self):
        features, labels = make_blobs(n_per_class=8)
        trainer = SGDTrainer(small_classifier())
        loss = trainer.train_step(features[:16], labels[:16])
        assert np.isfinite(loss)

    def test_gradients_match_numerical_estimate(self):
        """Backprop through Dense/ReLU matches a finite-difference check."""
        rng = np.random.default_rng(3)
        features = rng.normal(size=(8, 4))
        labels = rng.integers(0, 2, size=8)
        model = Sequential(input_shape=(4,))
        model.add(Dense(4, 5, rng=rng, name="fc1"))
        model.add(ReLU(name="relu"))
        model.add(Dense(5, 2, rng=rng, name="fc2"))
        model.add(Softmax(name="softmax"))
        trainer = SGDTrainer(model, learning_rate=1e-9, momentum=0.0)

        probabilities, cache = trainer._forward_with_cache(features)
        gradients = trainer._backward(cache, labels)
        layer = model.layers[0]
        analytic = gradients[0]["weight"][1, 2]

        epsilon = 1e-6
        layer.weight[1, 2] += epsilon
        loss_plus = cross_entropy_loss(model(features), labels)
        layer.weight[1, 2] -= 2 * epsilon
        loss_minus = cross_entropy_loss(model(features), labels)
        layer.weight[1, 2] += epsilon
        numerical = (loss_plus - loss_minus) / (2 * epsilon)
        assert analytic == pytest.approx(numerical, rel=1e-4, abs=1e-7)

    def test_rejects_unsupported_architectures(self):
        model = Sequential(input_shape=(8, 8, 1))
        model.add(Conv2D(1, 4, kernel_size=3))
        with pytest.raises(GraphError):
            SGDTrainer(model)

    def test_rejects_model_without_softmax(self):
        model = Sequential(input_shape=(4,))
        model.add(Dense(4, 2))
        with pytest.raises(GraphError):
            SGDTrainer(model)

    def test_invalid_hyperparameters_rejected(self):
        model = small_classifier()
        with pytest.raises(ConfigurationError):
            SGDTrainer(model, learning_rate=0.0)
        with pytest.raises(ConfigurationError):
            SGDTrainer(model, momentum=1.0)
        with pytest.raises(ConfigurationError):
            SGDTrainer(model, weight_decay=-0.1)

    def test_invalid_fit_arguments_rejected(self):
        features, labels = make_blobs(n_per_class=4)
        trainer = SGDTrainer(small_classifier())
        with pytest.raises(ConfigurationError):
            trainer.fit(features, labels, epochs=0)
        with pytest.raises(ConfigurationError):
            trainer.fit(features, labels[:-1])


class TestHARTraining:
    def test_dataset_shapes(self):
        features, labels, class_names = make_imu_har_dataset(windows_per_class=3)
        assert features.shape == (3 * len(class_names), 36)
        assert set(labels.tolist()) == set(range(len(class_names)))

    def test_har_classifier_beats_chance_comfortably(self):
        model, history = train_imu_har_classifier(windows_per_class=12, epochs=25,
                                                  seed=0)
        n_classes = model.output_shape()[-1]
        assert history.final_accuracy > 2.0 / n_classes

    def test_trained_har_model_survives_int8_quantisation(self):
        model, history = train_imu_har_classifier(windows_per_class=12, epochs=25,
                                                  seed=1)
        features, labels, _ = make_imu_har_dataset(windows_per_class=12, rng=1)
        float_accuracy = accuracy(model, features, labels)
        quantize_model_weights(model, bits=8)
        int8_accuracy = accuracy(model, features, labels)
        assert int8_accuracy >= float_accuracy - 0.1

    def test_zoo_model_compatible_with_trainer(self):
        model = imu_har_mlp()
        trainer = SGDTrainer(model)
        features, labels, _ = make_imu_har_dataset(windows_per_class=2)
        loss = trainer.train_step(features, labels)
        assert np.isfinite(loss)
