"""Tests for repro.nn.layers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.nn.layers import (
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Flatten,
    GlobalAveragePool,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(8, 4, rng=rng)
        output = layer.forward(rng.normal(size=(3, 8)))
        assert output.shape == (3, 4)

    def test_known_matmul(self):
        layer = Dense(2, 2)
        layer.weight = np.array([[1.0, 0.0], [0.0, 2.0]])
        layer.bias = np.array([1.0, -1.0])
        output = layer.forward(np.array([[3.0, 4.0]]))
        assert np.allclose(output, [[4.0, 7.0]])

    def test_params_and_macs(self):
        layer = Dense(10, 5)
        assert layer.num_params() == 10 * 5 + 5
        assert layer.macs((10,)) == 50

    def test_wrong_input_shape_raises(self, rng):
        layer = Dense(8, 4)
        with pytest.raises(ShapeError):
            layer.forward(rng.normal(size=(3, 7)))

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ShapeError):
            Dense(0, 4)


class TestConv2D:
    def test_same_padding_preserves_spatial_size(self, rng):
        layer = Conv2D(3, 8, kernel_size=3, padding="same", rng=rng)
        output = layer.forward(rng.normal(size=(2, 16, 16, 3)))
        assert output.shape == (2, 16, 16, 8)

    def test_valid_padding_shrinks(self, rng):
        layer = Conv2D(1, 4, kernel_size=3, padding="valid", rng=rng)
        assert layer.output_shape((10, 10, 1)) == (8, 8, 4)

    def test_stride_two_halves_spatial_size(self, rng):
        layer = Conv2D(1, 4, kernel_size=3, stride=2, padding="same", rng=rng)
        assert layer.output_shape((16, 16, 1)) == (8, 8, 4)

    def test_identity_kernel_reproduces_input(self):
        layer = Conv2D(1, 1, kernel_size=1, padding="same")
        layer.weight = np.ones((1, 1, 1, 1))
        layer.bias = np.zeros(1)
        x = np.arange(16.0).reshape(1, 4, 4, 1)
        assert np.allclose(layer.forward(x), x)

    def test_convolution_matches_manual_computation(self):
        layer = Conv2D(1, 1, kernel_size=3, padding="valid")
        layer.weight = np.ones((3, 3, 1, 1))
        layer.bias = np.zeros(1)
        x = np.ones((1, 5, 5, 1))
        output = layer.forward(x)
        assert np.allclose(output, 9.0)

    def test_macs_formula(self):
        layer = Conv2D(3, 16, kernel_size=3, padding="same")
        assert layer.macs((8, 8, 3)) == 8 * 8 * 16 * 3 * 3 * 3

    def test_channel_mismatch_raises(self, rng):
        layer = Conv2D(3, 8, kernel_size=3)
        with pytest.raises(ShapeError):
            layer.forward(rng.normal(size=(1, 8, 8, 4)))

    def test_invalid_padding_rejected(self):
        with pytest.raises(ShapeError):
            Conv2D(1, 1, kernel_size=3, padding="circular")


class TestDepthwiseConv2D:
    def test_channel_count_preserved(self, rng):
        layer = DepthwiseConv2D(6, kernel_size=3, rng=rng)
        output = layer.forward(rng.normal(size=(2, 10, 10, 6)))
        assert output.shape == (2, 10, 10, 6)

    def test_channels_are_independent(self):
        layer = DepthwiseConv2D(2, kernel_size=1)
        layer.weight = np.zeros((1, 1, 2))
        layer.weight[0, 0, 0] = 2.0
        layer.weight[0, 0, 1] = 3.0
        layer.bias = np.zeros(2)
        x = np.ones((1, 2, 2, 2))
        output = layer.forward(x)
        assert np.allclose(output[..., 0], 2.0)
        assert np.allclose(output[..., 1], 3.0)

    def test_macs_cheaper_than_full_conv(self):
        depthwise = DepthwiseConv2D(16, kernel_size=3)
        full = Conv2D(16, 16, kernel_size=3)
        shape = (8, 8, 16)
        assert depthwise.macs(shape) * 10 < full.macs(shape)


class TestPooling:
    def test_max_pool_values(self):
        layer = MaxPool2D(pool_size=2)
        x = np.array([[1.0, 2.0], [3.0, 4.0]]).reshape(1, 2, 2, 1)
        assert layer.forward(x)[0, 0, 0, 0] == pytest.approx(4.0)

    def test_avg_pool_values(self):
        layer = AvgPool2D(pool_size=2)
        x = np.array([[1.0, 2.0], [3.0, 4.0]]).reshape(1, 2, 2, 1)
        assert layer.forward(x)[0, 0, 0, 0] == pytest.approx(2.5)

    def test_rectangular_pool_for_1d_models(self, rng):
        layer = MaxPool2D(pool_size=(2, 1))
        output = layer.forward(rng.normal(size=(1, 8, 1, 3)))
        assert output.shape == (1, 4, 1, 3)

    def test_output_shape_matches_forward(self, rng):
        layer = MaxPool2D(pool_size=2)
        x = rng.normal(size=(2, 9, 9, 4))
        assert layer.forward(x).shape[1:] == layer.output_shape((9, 9, 4))

    def test_too_small_input_rejected(self):
        with pytest.raises(ShapeError):
            MaxPool2D(pool_size=4).output_shape((2, 2, 1))

    def test_global_average_pool(self, rng):
        layer = GlobalAveragePool()
        x = rng.normal(size=(2, 5, 5, 3))
        output = layer.forward(x)
        assert output.shape == (2, 3)
        assert np.allclose(output, x.mean(axis=(1, 2)))


class TestActivationsAndNorm:
    def test_relu_clamps_negatives(self):
        assert np.allclose(ReLU().forward(np.array([[-1.0, 2.0]])), [[0.0, 2.0]])

    def test_sigmoid_range(self, rng):
        output = Sigmoid().forward(rng.normal(size=(4, 7)) * 10)
        assert np.all(output > 0.0) and np.all(output < 1.0)

    def test_tanh_range(self, rng):
        output = Tanh().forward(rng.normal(size=(4, 7)) * 10)
        assert np.all(np.abs(output) <= 1.0)

    def test_softmax_sums_to_one(self, rng):
        output = Softmax().forward(rng.normal(size=(5, 9)))
        assert np.allclose(output.sum(axis=-1), 1.0)

    def test_softmax_is_stable_for_large_logits(self):
        output = Softmax().forward(np.array([[1e4, 1e4 - 1.0]]))
        assert np.all(np.isfinite(output))

    def test_flatten(self, rng):
        output = Flatten().forward(rng.normal(size=(2, 3, 4, 5)))
        assert output.shape == (2, 60)

    def test_batchnorm_identity_by_default(self, rng):
        layer = BatchNorm(4)
        x = rng.normal(size=(3, 4))
        assert np.allclose(layer.forward(x), x, atol=1e-4)

    def test_batchnorm_normalises_with_statistics(self):
        layer = BatchNorm(1, epsilon=1e-12)
        layer.moving_mean = np.array([2.0])
        layer.moving_var = np.array([4.0])
        output = layer.forward(np.array([[4.0]]))
        assert output[0, 0] == pytest.approx(1.0)

    def test_batchnorm_rejects_non_positive_epsilon(self):
        with pytest.raises(ShapeError):
            BatchNorm(1, epsilon=0.0)

    def test_batchnorm_channel_mismatch_raises(self, rng):
        with pytest.raises(ShapeError):
            BatchNorm(4).forward(rng.normal(size=(2, 5)))

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_elementwise_layers_preserve_shape(self, rows, cols):
        x = np.ones((rows, cols))
        for layer in (ReLU(), Sigmoid(), Tanh(), Softmax()):
            assert layer.forward(x).shape == x.shape
            assert layer.output_shape((cols,)) == (cols,)
