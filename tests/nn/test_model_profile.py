"""Tests for repro.nn.model, repro.nn.profile, repro.nn.quantize and the zoo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError, ShapeError
from repro.nn.layers import Dense, ReLU, Softmax
from repro.nn.model import Sequential
from repro.nn.profile import profile_model
from repro.nn.quantize import (
    dequantize_tensor,
    quantize_model_weights,
    quantize_tensor,
    quantization_error,
)
from repro.nn.zoo import (
    MODEL_ZOO,
    build_model,
    ecg_arrhythmia_cnn,
    imu_har_mlp,
    keyword_spotting_cnn,
    mobilenet_tiny,
)


def tiny_mlp() -> Sequential:
    model = Sequential(input_shape=(8,), name="tiny")
    model.add(Dense(8, 16, name="fc1"))
    model.add(ReLU(name="relu"))
    model.add(Dense(16, 4, name="fc2"))
    model.add(Softmax(name="softmax"))
    return model


class TestSequential:
    def test_forward_output_shape(self, rng):
        model = tiny_mlp()
        output = model(rng.normal(size=(5, 8)))
        assert output.shape == (5, 4)

    def test_layer_shapes_tracked(self):
        model = tiny_mlp()
        shapes = model.layer_shapes()
        assert shapes[0] == (8,)
        assert shapes[-1] == (4,)

    def test_incompatible_layer_rejected_at_add_time(self):
        model = Sequential(input_shape=(8,))
        model.add(Dense(8, 16))
        with pytest.raises(ShapeError):
            model.add(Dense(8, 4))

    def test_non_layer_rejected(self):
        with pytest.raises(GraphError):
            Sequential(input_shape=(4,)).add("not a layer")

    def test_partial_forward_equals_full_forward(self, rng):
        model = tiny_mlp()
        x = rng.normal(size=(3, 8))
        split = 2
        intermediate = model.forward(x, 0, split)
        resumed = model.forward(intermediate, split, None)
        assert np.allclose(resumed, model(x))

    def test_invalid_layer_range_rejected(self, rng):
        model = tiny_mlp()
        with pytest.raises(GraphError):
            model.forward(rng.normal(size=(1, 8)), 3, 1)

    def test_wrong_input_shape_rejected(self, rng):
        with pytest.raises(ShapeError):
            tiny_mlp()(rng.normal(size=(1, 9)))

    def test_predict_classes(self, rng):
        predictions = tiny_mlp().predict_classes(rng.normal(size=(6, 8)))
        assert predictions.shape == (6,)
        assert np.all((predictions >= 0) & (predictions < 4))

    def test_num_params_and_macs(self):
        model = tiny_mlp()
        assert model.num_params() == (8 * 16 + 16) + (16 * 4 + 4)
        assert model.total_macs() == 8 * 16 + 16 * 4

    def test_summary_lines_cover_all_layers(self):
        lines = tiny_mlp().summary_lines()
        assert len(lines) == len(tiny_mlp()) + 2

    def test_invalid_input_shape_rejected(self):
        with pytest.raises(ShapeError):
            Sequential(input_shape=(0,))


class TestModelProfile:
    def test_totals_match_model(self):
        model = tiny_mlp()
        profile = profile_model(model)
        assert profile.total_macs == model.total_macs()
        assert profile.total_params == model.num_params()

    def test_transfer_bits_at_input_and_output(self):
        profile = profile_model(tiny_mlp(), activation_bits_per_element=8)
        assert profile.transfer_bits_at(0) == pytest.approx(8 * 8)
        assert profile.transfer_bits_at(len(profile.layers)) == pytest.approx(4 * 8)

    def test_macs_before_after_partition_sum(self):
        profile = profile_model(tiny_mlp())
        for split in profile.split_points():
            assert profile.macs_before(split) + profile.macs_after(split) \
                == profile.total_macs

    def test_invalid_split_rejected(self):
        profile = profile_model(tiny_mlp())
        with pytest.raises(GraphError):
            profile.transfer_bits_at(99)

    def test_activation_bits_scale(self):
        profile8 = profile_model(tiny_mlp(), activation_bits_per_element=8)
        profile32 = profile_model(tiny_mlp(), activation_bits_per_element=32)
        assert profile32.transfer_bits_at(1) == pytest.approx(
            4.0 * profile8.transfer_bits_at(1)
        )

    def test_invalid_activation_bits_rejected(self):
        with pytest.raises(GraphError):
            profile_model(tiny_mlp(), activation_bits_per_element=0)


class TestQuantization:
    def test_round_trip_bounded_error(self, rng):
        values = rng.normal(size=(32, 32))
        quantized = quantize_tensor(values, bits=8)
        restored = dequantize_tensor(quantized)
        assert np.max(np.abs(values - restored)) <= quantized.scale

    def test_more_bits_lower_error(self, rng):
        values = rng.normal(size=1000)
        assert quantization_error(values, bits=12) < quantization_error(values, bits=4)

    def test_size_bits(self, rng):
        quantized = quantize_tensor(rng.normal(size=100), bits=8)
        assert quantized.size_bits == pytest.approx(800.0)

    def test_quantize_model_weights_keeps_predictions_close(self, rng):
        model = imu_har_mlp(seed=3)
        x = rng.normal(size=(16, 36))
        before = model(x)
        errors = quantize_model_weights(model, bits=8)
        after = model(x)
        assert errors  # at least the Dense layers were quantised
        assert np.mean(np.argmax(before, axis=1) == np.argmax(after, axis=1)) >= 0.8

    def test_invalid_bits_rejected(self, rng):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            quantize_tensor(rng.normal(size=4), bits=0)


class TestModelZoo:
    def test_zoo_registry_complete(self):
        assert set(MODEL_ZOO) == {
            "keyword_spotting", "ecg_arrhythmia", "vision_tiny", "imu_har",
        }

    def test_build_model_by_name(self):
        model = build_model("imu_har")
        assert model.name == "imu_har_mlp"

    def test_unknown_model_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            build_model("transformer_13b")

    def test_keyword_spotting_runs_forward(self, rng):
        model = keyword_spotting_cnn()
        output = model(rng.normal(size=(2, 49, 40, 1)))
        assert output.shape == (2, 12)
        assert np.allclose(output.sum(axis=1), 1.0)

    def test_ecg_model_runs_forward(self, rng):
        model = ecg_arrhythmia_cnn()
        output = model(rng.normal(size=(2, 256, 1, 1)))
        assert output.shape == (2, 5)

    def test_imu_model_runs_forward(self, rng):
        model = imu_har_mlp()
        output = model(rng.normal(size=(4, 36)))
        assert output.shape == (4, 5)

    def test_vision_model_runs_forward(self, rng):
        model = mobilenet_tiny(input_size=32)
        output = model(rng.normal(size=(1, 32, 32, 1)))
        assert output.shape == (1, 10)

    def test_vision_model_is_largest_workload(self):
        vision = profile_model(mobilenet_tiny()).total_macs
        kws = profile_model(keyword_spotting_cnn()).total_macs
        ecg = profile_model(ecg_arrhythmia_cnn()).total_macs
        har = profile_model(imu_har_mlp()).total_macs
        assert vision > kws > ecg > har

    def test_zoo_models_have_reasonable_mac_counts(self):
        """Sanity bands: embedded-class models, not server models."""
        assert 1e5 < profile_model(keyword_spotting_cnn()).total_macs < 1e8
        assert 1e3 < profile_model(imu_har_mlp()).total_macs < 1e6

    def test_width_multiplier_shrinks_vision_model(self):
        small = profile_model(mobilenet_tiny(width_multiplier=0.25)).total_macs
        large = profile_model(mobilenet_tiny(width_multiplier=0.5)).total_macs
        assert small < large

    def test_invalid_zoo_parameters_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            keyword_spotting_cnn(n_classes=0)
        with pytest.raises(ConfigurationError):
            mobilenet_tiny(width_multiplier=2.0)
        with pytest.raises(ConfigurationError):
            ecg_arrhythmia_cnn(window_samples=8)
