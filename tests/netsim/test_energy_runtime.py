"""Closed-loop energy runtime inside the discrete-event simulator.

Brownouts, low-battery duty-cycle adaptation and harvest credit must all
emerge from the event queue — and the default (batteryless) path must
stay exactly the historical kernel, which the golden-hex FIFO regression
pins separately.
"""

from __future__ import annotations

import math

import pytest

from repro import units
from repro.energy.battery import BatterySpec
from repro.energy.harvester import rf_ambient
from repro.errors import SimulationError
from repro.comm.eqs_hbc import wir_commercial
from repro.netsim.simulator import BodyNetworkSimulator
from repro.netsim.traffic import PeriodicSource
from repro.netsim.config import NodeConfig


def small_cell(joules: float) -> BatterySpec:
    """A cell holding exactly *joules* (3 V lithium, no self-discharge)."""
    return BatterySpec(name="test-cell", capacity_mah=joules / (3.6 * 3.0),
                       self_discharge_per_year=0.0)


def build(duration_budget_joules: float | None = None, **node_kwargs):
    simulator = BodyNetworkSimulator(wir_commercial(), rng=0,
                                     energy_update_interval_seconds=1.0)
    battery = (small_cell(duration_budget_joules)
               if duration_budget_joules is not None else None)
    simulator.attach(NodeConfig(
        "leaf",
        PeriodicSource.from_rate(units.kilobit_per_second(8.0)),
        sensing_power_watts=units.microwatt(100.0),
        battery=battery,
        **node_kwargs,
    ))
    return simulator


class TestBrownout:
    def test_node_dies_when_battery_empties(self):
        # ~101 uW total load with a 0.001 J cell dies after ~10 s.
        simulator = build(duration_budget_joules=1e-3)
        result = simulator.run(60.0)
        assert result.dead_node_count == 1
        assert "leaf" in result.per_node_first_death_seconds
        death = result.per_node_first_death_seconds["leaf"]
        assert 5.0 < death < 15.0
        assert result.first_death_seconds == death
        assert result.per_node_state_of_charge["leaf"] == pytest.approx(0.0)
        assert result.alive_fraction == 0.0

    def test_dead_node_stops_generating(self):
        starving = build(duration_budget_joules=1e-3).run(60.0)
        healthy = build(duration_budget_joules=1.0).run(60.0)
        assert starving.offered_packets < healthy.offered_packets
        assert healthy.dead_node_count == 0
        assert math.isinf(healthy.first_death_seconds)

    def test_delivered_before_death_frozen_at_brownout(self):
        result = build(duration_budget_joules=1e-3).run(60.0)
        frozen = result.per_node_delivered_before_death["leaf"]
        assert 0 < frozen <= result.delivered_packets

    def test_brownout_event_emitted_once(self):
        result = build(duration_budget_joules=1e-3).run(60.0)
        brownouts = [event for event in result.energy_events
                     if event.kind == "brownout"]
        assert len(brownouts) == 1
        assert brownouts[0].node == "leaf"
        assert brownouts[0].time_seconds == result.first_death_seconds

    def test_backlog_purged_at_brownout(self):
        """A saturated node's queued packets must not deliver for free
        after its cell empties: at most the in-flight transmission
        completes, and everything else reads as offered-but-undelivered."""
        simulator = BodyNetworkSimulator(wir_commercial(), rng=0,
                                         arbitration="polling",
                                         energy_update_interval_seconds=0.5)
        # Offered past what one polling ring can carry (~2.4 ms service
        # vs a 2.05 ms interarrival): a standing backlog builds.
        simulator.attach(NodeConfig(
            "hog",
            PeriodicSource.from_rate(units.megabit_per_second(4.0),
                                     bits_per_packet=8192.0),
            sensing_power_watts=units.microwatt(100.0),
            battery=small_cell(1e-3)))
        result = simulator.run(30.0)
        assert result.dead_node_count == 1
        frozen = result.per_node_delivered_before_death["hog"]
        # No backlog drains post-death: at most one granted/in-flight
        # packet may still complete.
        assert result.delivered_packets <= frozen + 1
        assert result.delivered_fraction < 1.0

    def test_energy_events_chronological(self):
        simulator = BodyNetworkSimulator(wir_commercial(), rng=0,
                                         energy_update_interval_seconds=5.0)
        # Added first, crosses low battery at a tick; the second node
        # browns out at an interpolated time before that tick.
        simulator.attach(NodeConfig(
            "low", PeriodicSource.from_rate(units.kilobit_per_second(8.0)),
            sensing_power_watts=units.microwatt(100.0),
            battery=small_cell(4e-3), low_battery_fraction=0.4))
        simulator.attach(NodeConfig(
            "dead", PeriodicSource.from_rate(units.kilobit_per_second(8.0)),
            sensing_power_watts=units.microwatt(100.0),
            battery=small_cell(1.3e-3)))
        result = simulator.run(60.0)
        times = [event.time_seconds for event in result.energy_events]
        assert len(times) >= 2
        assert times == sorted(times)

    def test_dead_node_cannot_be_woken(self):
        simulator = build(duration_budget_joules=1e-3)
        simulator.run(60.0)
        simulator.set_node_active("leaf", True)
        assert simulator.nodes["leaf"].active is False

    def test_energy_frozen_after_death(self):
        """A dead node consumes nothing for the rest of the run."""
        short = build(duration_budget_joules=1e-3).run(30.0)
        long = build(duration_budget_joules=1e-3).run(300.0)
        # Same cell, same death: total consumed energy is the budget,
        # not budget + static power for the longer horizon.
        short_energy = (short.per_node_average_power_watts["leaf"] * 30.0)
        long_energy = (long.per_node_average_power_watts["leaf"] * 300.0)
        assert long_energy == pytest.approx(short_energy, rel=1e-6)
        assert long_energy == pytest.approx(1e-3, rel=1e-6)


class TestDutyCycleAdaptation:
    @staticmethod
    def tx_heavy(**node_kwargs):
        """A node whose TX energy dominates, so throttling buys life.

        512 kb/s at 100 pJ/bit is ~51 uW of transmit against 5 uW of
        sensing; a 1.7 mJ cell crosses 50% charge ~15 s in, after which
        a 4x traffic throttle cuts the load roughly fourfold.
        """
        simulator = BodyNetworkSimulator(wir_commercial(), rng=0,
                                         energy_update_interval_seconds=1.0)
        simulator.attach(NodeConfig(
            "leaf",
            PeriodicSource.from_rate(units.kilobit_per_second(512.0)),
            sensing_power_watts=units.microwatt(5.0),
            battery=small_cell(1.7e-3),
            **node_kwargs,
        ))
        return simulator

    def test_low_battery_throttles_traffic(self):
        adapted = self.tx_heavy(low_battery_fraction=0.5,
                                low_battery_stride=4).run(60.0)
        unadapted = self.tx_heavy().run(60.0)
        low_events = [event for event in adapted.energy_events
                      if event.kind == "low_battery"]
        assert len(low_events) == 1
        assert low_events[0].state_of_charge_fraction < 0.5
        # Throttled generation offers fewer packets after the crossing.
        assert adapted.offered_packets < unadapted.offered_packets
        # And the throttled node outlives the unadapted one.
        assert (adapted.per_node_state_of_charge["leaf"]
                > unadapted.per_node_state_of_charge["leaf"])

    def test_invalid_stride_rejected(self):
        simulator = BodyNetworkSimulator(wir_commercial(), rng=0)
        with pytest.raises(SimulationError):
            simulator.attach(NodeConfig(
                "leaf", PeriodicSource.from_rate(1000.0),
                battery=small_cell(1.0), low_battery_stride=0))


class TestHarvesting:
    def test_harvester_extends_life(self):
        harvested = build(duration_budget_joules=1e-3,
                          harvester=rf_ambient(
                              peak_power_watts=units.microwatt(60.0)))
        plain = build(duration_budget_joules=1e-3)
        harvested_result = harvested.run(60.0)
        plain_result = plain.run(60.0)
        assert (harvested_result.first_death_seconds
                > plain_result.first_death_seconds)
        assert harvested_result.harvested_joules > 0.0

    def test_net_positive_harvest_is_perpetual(self):
        result = build(duration_budget_joules=1e-3,
                       harvester=rf_ambient(
                           peak_power_watts=units.microwatt(500.0))
                       ).run(60.0)
        assert result.dead_node_count == 0
        assert result.per_node_state_of_charge["leaf"] == pytest.approx(1.0)


class TestStreamingLedgerMemory:
    def test_node_and_hub_ledgers_stay_flat(self):
        """The default ledgers retain zero entries however long the run."""
        simulator = build(duration_budget_joules=1.0)
        result = simulator.run(120.0)
        assert result.delivered_packets > 50
        node = simulator.nodes["leaf"]
        assert node.ledger.retained_entries == 0
        assert node.ledger.posted_count > result.delivered_packets
        assert simulator.hub_ledger.retained_entries == 0

    def test_batteryless_path_ledger_also_flat(self):
        simulator = BodyNetworkSimulator(wir_commercial(), rng=0)
        simulator.attach(NodeConfig(
            "leaf", PeriodicSource.from_rate(units.kilobit_per_second(64.0))))
        simulator.run(10.0)
        assert simulator.nodes["leaf"].ledger.retained_entries == 0
        assert simulator.hub_ledger.retained_entries == 0


class TestEnergyAccountingConsistency:
    def test_battery_node_power_matches_batteryless_accounting(self):
        """Tick-based accounting sums to the same energy as the post-hoc
        whole-run accounting when the battery never limits the node."""
        with_battery = build(duration_budget_joules=10.0).run(60.0)
        without = BodyNetworkSimulator(wir_commercial(), rng=0)
        without.attach(NodeConfig(
            "leaf", PeriodicSource.from_rate(units.kilobit_per_second(8.0)),
            sensing_power_watts=units.microwatt(100.0)))
        without_result = without.run(60.0)
        assert with_battery.per_node_average_power_watts["leaf"] == \
            pytest.approx(without_result.per_node_average_power_watts["leaf"],
                          rel=1e-9)

    def test_interval_validation(self):
        with pytest.raises(SimulationError):
            BodyNetworkSimulator(wir_commercial(),
                                 energy_update_interval_seconds=0.0)
