"""FIFO regression: the refactored kernel reproduces the legacy bus exactly.

The golden numbers below were captured from the pre-refactor simulator
(single ``SharedBus``, list-based latency statistics) at the seed
configurations the experiments actually use.  The Medium/ArbitrationPolicy
split, the per-node technology plumbing and the streaming latency
accumulator must all be invisible on the default FIFO path: every value
is compared bit-for-bit via ``float.hex``.
"""

from __future__ import annotations

from repro import units
from repro.comm.eqs_hbc import wir_commercial
from repro.experiments import network_scaling
from repro.netsim.simulator import BodyNetworkSimulator
from repro.netsim.traffic import PeriodicSource, PoissonSource
from repro.netsim.config import NodeConfig

#: Pre-refactor values for a mixed periodic/Poisson 6-node network,
#: seed 7, 2 simulated seconds (float.hex for exact comparison).
DIRECT_GOLDEN = {
    "mean_latency_seconds": "0x1.b90bca7c1802ap-9",
    "p99_latency_seconds": "0x1.5feda66128400p-7",
    "delivered_bits": "0x1.8a5205383b6bdp+19",
    "hub_rx_energy_joules": "0x1.52b7f8a39f153p-14",
    "leaf0_power": "0x1.3006194b2b1bep-15",
    "events_power": "0x1.475b58b49ea94p-17",
}

#: Pre-refactor ``network_scaling.run`` row values (seed 0, 1.0 s and the
#: default sweep point 0.5 s) keyed by node count.
SCALING_GOLDEN = {
    1.0: {
        1: 2.148000000000019,
        8: 9.666000000000086,
        32: 35.44200000000031,
    },
    0.5: {
        1: 2.1479999999999926,
        8: 9.665999999999967,
        32: 35.44199999999987,
    },
}


def test_direct_simulator_bit_identical():
    simulator = BodyNetworkSimulator(wir_commercial(), rng=7)
    for index in range(5):
        simulator.attach(NodeConfig(
            f"leaf{index}",
            PeriodicSource.from_rate(units.kilobit_per_second(64.0)),
            sensing_power_watts=units.microwatt(30.0),
        ))
    simulator.attach(NodeConfig("events", PoissonSource(
        mean_interarrival_seconds=0.02, mean_bits_per_packet=2048.0)))
    result = simulator.run(2.0)

    assert result.delivered_packets == 172
    assert result.dropped_packets == 0
    assert result.mean_latency_seconds.hex() == \
        DIRECT_GOLDEN["mean_latency_seconds"]
    assert result.p99_latency_seconds.hex() == \
        DIRECT_GOLDEN["p99_latency_seconds"]
    assert float(result.delivered_bits).hex() == \
        DIRECT_GOLDEN["delivered_bits"]
    assert float(result.hub_rx_energy_joules).hex() == \
        DIRECT_GOLDEN["hub_rx_energy_joules"]
    assert float(result.per_node_average_power_watts["leaf0"]).hex() == \
        DIRECT_GOLDEN["leaf0_power"]
    assert float(result.per_node_average_power_watts["events"]).hex() == \
        DIRECT_GOLDEN["events_power"]


def test_network_scaling_fifo_rows_bit_identical():
    """The E8 driver's FIFO rows match the pre-refactor values exactly.

    Seeds 0/1/2 produced identical rows pre-refactor (periodic sources
    draw nothing from the RNG), so seed 0 at both durations pins every
    existing seed config of the default grid.
    """
    for simulated_seconds, golden in SCALING_GOLDEN.items():
        result = network_scaling.run(simulated_seconds=simulated_seconds,
                                     seed=0, mac_policy="fifo")
        by_count = {row["nodes"]: row for row in result.rows()}
        for count, mean_latency_ms in golden.items():
            row = by_count[count]
            # Bitwise equality, not approx: the refactor must be invisible.
            assert float(row["mean_latency_ms"]).hex() == \
                float(mean_latency_ms).hex()
            assert row["delivered_fraction"] == 1.0
        assert result.mac_policy == "fifo"


def test_scaling_seed_invariant_rows_match_across_seeds():
    """Seeds are interchangeable for periodic-only populations (as before)."""
    first = network_scaling.run(simulated_seconds=0.5, seed=1)
    second = network_scaling.run(simulated_seconds=0.5, seed=2)
    assert first.rows() == second.rows()
