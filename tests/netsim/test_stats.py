"""Tests for repro.netsim.stats (bounded/streaming latency statistics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.netsim.stats import LatencyAccumulator


class TestExactWindow:
    def test_matches_numpy_exactly_under_capacity(self):
        accumulator = LatencyAccumulator(exact_capacity=1000)
        rng = np.random.default_rng(0)
        samples = rng.exponential(0.01, size=500).tolist()
        for sample in samples:
            accumulator.add(sample)
        assert accumulator.is_exact
        assert accumulator.count == 500
        assert accumulator.mean == float(np.mean(samples))
        for percentile in (50.0, 90.0, 99.0):
            assert accumulator.percentile(percentile) == \
                float(np.percentile(samples, percentile))

    def test_min_max_tracked(self):
        accumulator = LatencyAccumulator()
        for value in (0.3, 0.1, 0.2):
            accumulator.add(value)
        assert accumulator.min_seconds == 0.1
        assert accumulator.max_seconds == 0.3

    def test_empty_accumulator_raises(self):
        accumulator = LatencyAccumulator()
        with pytest.raises(SimulationError):
            _ = accumulator.mean
        with pytest.raises(SimulationError):
            accumulator.percentile(99.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(SimulationError):
            LatencyAccumulator(exact_capacity=0)
        with pytest.raises(SimulationError):
            LatencyAccumulator(bins=1)
        accumulator = LatencyAccumulator()
        with pytest.raises(SimulationError):
            accumulator.add(-1.0)
        accumulator.add(0.5)
        with pytest.raises(SimulationError):
            accumulator.percentile(101.0)


class TestStreamingSpill:
    def make_spilled(self, n: int = 5000,
                     capacity: int = 256) -> tuple[LatencyAccumulator, list]:
        accumulator = LatencyAccumulator(exact_capacity=capacity)
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=-6.0, sigma=0.8, size=n).tolist()
        for sample in samples:
            accumulator.add(sample)
        return accumulator, samples

    def test_memory_bounded_after_spill(self):
        accumulator, samples = self.make_spilled()
        assert not accumulator.is_exact
        assert accumulator.retained_samples == 0
        assert accumulator.count == len(samples)

    def test_streaming_mean_close_to_exact(self):
        accumulator, samples = self.make_spilled()
        assert accumulator.mean == pytest.approx(float(np.mean(samples)),
                                                 rel=1e-9)

    def test_streaming_percentiles_close_to_exact(self):
        accumulator, samples = self.make_spilled()
        # Interior bins interpolate by rank: near-exact.
        for percentile in (50.0, 90.0):
            exact = float(np.percentile(samples, percentile))
            assert accumulator.percentile(percentile) == \
                pytest.approx(exact, rel=0.05)
        # p99 falls in the open-ended top bin (the warm-up window saw
        # only ~98.7% of the distribution): coarser, but bounded by the
        # frozen top edge and the exactly tracked max.
        exact_p99 = float(np.percentile(samples, 99.0))
        estimate_p99 = accumulator.percentile(99.0)
        assert estimate_p99 == pytest.approx(exact_p99, rel=0.35)
        assert exact_p99 * 0.9 <= estimate_p99 <= max(samples)
        assert accumulator.percentile(100.0) == max(samples)

    def test_percentiles_clamped_to_observed_range(self):
        accumulator, samples = self.make_spilled()
        assert accumulator.percentile(0.0) >= min(samples)
        assert accumulator.percentile(100.0) <= max(samples)

    def test_out_of_range_samples_after_spill_land_in_edge_bins(self):
        accumulator, samples = self.make_spilled(capacity=128)
        accumulator.add(min(samples) / 100.0)
        accumulator.add(max(samples) * 100.0)
        assert accumulator.count == len(samples) + 2
        assert accumulator.max_seconds == max(samples) * 100.0

    def test_tail_growth_after_spill_not_capped_at_warmup_range(self):
        """Congestion onset after warm-up must move the top percentiles."""
        accumulator = LatencyAccumulator(exact_capacity=64)
        for _ in range(100):
            accumulator.add(0.001)  # calm warm-up, then latency explodes
        for _ in range(100):
            accumulator.add(1.0)
        assert accumulator.percentile(100.0) == 1.0
        # The 1000x tail is visible (the frozen warm-up edges top out at
        # 0.001; the open bin reaches towards the tracked max).
        assert accumulator.percentile(99.0) > 0.5
        assert accumulator.percentile(0.0) == 0.001

    def test_identical_samples_spill_safely(self):
        accumulator = LatencyAccumulator(exact_capacity=4)
        for _ in range(10):
            accumulator.add(0.002)
        assert not accumulator.is_exact
        assert accumulator.mean == pytest.approx(0.002)
        assert accumulator.percentile(99.0) == pytest.approx(0.002)
