"""Tests for repro.netsim.stats (bounded/streaming latency statistics)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.netsim.stats import LatencyAccumulator


class TestExactWindow:
    def test_matches_numpy_exactly_under_capacity(self):
        accumulator = LatencyAccumulator(exact_capacity=1000)
        rng = np.random.default_rng(0)
        samples = rng.exponential(0.01, size=500).tolist()
        for sample in samples:
            accumulator.add(sample)
        assert accumulator.is_exact
        assert accumulator.count == 500
        assert accumulator.mean == float(np.mean(samples))
        for percentile in (50.0, 90.0, 99.0):
            assert accumulator.percentile(percentile) == \
                float(np.percentile(samples, percentile))

    def test_min_max_tracked(self):
        accumulator = LatencyAccumulator()
        for value in (0.3, 0.1, 0.2):
            accumulator.add(value)
        assert accumulator.min_seconds == 0.1
        assert accumulator.max_seconds == 0.3

    def test_empty_accumulator_raises(self):
        accumulator = LatencyAccumulator()
        with pytest.raises(SimulationError):
            _ = accumulator.mean
        with pytest.raises(SimulationError):
            accumulator.percentile(99.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(SimulationError):
            LatencyAccumulator(exact_capacity=0)
        with pytest.raises(SimulationError):
            LatencyAccumulator(bins=1)
        accumulator = LatencyAccumulator()
        with pytest.raises(SimulationError):
            accumulator.add(-1.0)
        accumulator.add(0.5)
        with pytest.raises(SimulationError):
            accumulator.percentile(101.0)


class TestStreamingSpill:
    def make_spilled(self, n: int = 5000,
                     capacity: int = 256) -> tuple[LatencyAccumulator, list]:
        accumulator = LatencyAccumulator(exact_capacity=capacity)
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=-6.0, sigma=0.8, size=n).tolist()
        for sample in samples:
            accumulator.add(sample)
        return accumulator, samples

    def test_memory_bounded_after_spill(self):
        accumulator, samples = self.make_spilled()
        assert not accumulator.is_exact
        assert accumulator.retained_samples == 0
        assert accumulator.count == len(samples)

    def test_streaming_mean_close_to_exact(self):
        accumulator, samples = self.make_spilled()
        assert accumulator.mean == pytest.approx(float(np.mean(samples)),
                                                 rel=1e-9)

    def test_streaming_percentiles_close_to_exact(self):
        accumulator, samples = self.make_spilled()
        # Interior bins interpolate by rank: near-exact.
        for percentile in (50.0, 90.0):
            exact = float(np.percentile(samples, percentile))
            assert accumulator.percentile(percentile) == \
                pytest.approx(exact, rel=0.05)
        # p99 falls in the open-ended top bin (the warm-up window saw
        # only ~98.7% of the distribution): coarser, but bounded by the
        # frozen top edge and the exactly tracked max.
        exact_p99 = float(np.percentile(samples, 99.0))
        estimate_p99 = accumulator.percentile(99.0)
        assert estimate_p99 == pytest.approx(exact_p99, rel=0.35)
        assert exact_p99 * 0.9 <= estimate_p99 <= max(samples)
        assert accumulator.percentile(100.0) == max(samples)

    def test_percentiles_clamped_to_observed_range(self):
        accumulator, samples = self.make_spilled()
        assert accumulator.percentile(0.0) >= min(samples)
        assert accumulator.percentile(100.0) <= max(samples)

    def test_out_of_range_samples_after_spill_land_in_edge_bins(self):
        accumulator, samples = self.make_spilled(capacity=128)
        accumulator.add(min(samples) / 100.0)
        accumulator.add(max(samples) * 100.0)
        assert accumulator.count == len(samples) + 2
        assert accumulator.max_seconds == max(samples) * 100.0

    def test_tail_growth_after_spill_not_capped_at_warmup_range(self):
        """Congestion onset after warm-up must move the top percentiles."""
        accumulator = LatencyAccumulator(exact_capacity=64)
        for _ in range(100):
            accumulator.add(0.001)  # calm warm-up, then latency explodes
        for _ in range(100):
            accumulator.add(1.0)
        assert accumulator.percentile(100.0) == 1.0
        # The 1000x tail is visible (the frozen warm-up edges top out at
        # 0.001; the open bin reaches towards the tracked max).
        assert accumulator.percentile(99.0) > 0.5
        assert accumulator.percentile(0.0) == 0.001

    def test_identical_samples_spill_safely(self):
        accumulator = LatencyAccumulator(exact_capacity=4)
        for _ in range(10):
            accumulator.add(0.002)
        assert not accumulator.is_exact
        assert accumulator.mean == pytest.approx(0.002)
        assert accumulator.percentile(99.0) == pytest.approx(0.002)


class TestMerge:
    """Shard-merge semantics: exact concatenation, then histogram folds."""

    def fill(self, samples, capacity=1000) -> LatencyAccumulator:
        accumulator = LatencyAccumulator(exact_capacity=capacity)
        for sample in samples:
            accumulator.add(sample)
        return accumulator

    def test_exact_merge_is_bit_identical_to_sequential(self):
        rng = np.random.default_rng(3)
        samples = rng.exponential(0.01, size=600).tolist()
        serial = self.fill(samples)
        left = self.fill(samples[:350])
        left.merge(self.fill(samples[350:]))
        assert left.is_exact
        assert left.count == serial.count
        assert left.mean == serial.mean
        assert left.min_seconds == serial.min_seconds
        assert left.max_seconds == serial.max_seconds
        for percentile in (0.0, 50.0, 90.0, 99.0, 100.0):
            assert left.percentile(percentile) == \
                serial.percentile(percentile)

    def test_merge_into_empty_adopts_other(self):
        rng = np.random.default_rng(4)
        samples = rng.exponential(0.01, size=100).tolist()
        target = LatencyAccumulator(exact_capacity=1000)
        target.merge(self.fill(samples))
        assert target.count == 100
        assert target.percentile(50.0) == \
            float(np.percentile(samples, 50.0))

    def test_merge_of_empty_is_noop(self):
        accumulator = self.fill([0.1, 0.2])
        accumulator.merge(LatencyAccumulator())
        assert accumulator.count == 2
        assert accumulator.mean == pytest.approx(0.15)

    def test_merge_spills_when_union_exceeds_capacity(self):
        rng = np.random.default_rng(5)
        samples = rng.lognormal(mean=-6.0, sigma=0.5, size=400).tolist()
        left = self.fill(samples[:200], capacity=256)
        left.merge(self.fill(samples[200:], capacity=256))
        assert not left.is_exact
        assert left.retained_samples == 0
        assert left.count == 400
        assert left.mean == pytest.approx(float(np.mean(samples)), rel=1e-9)
        assert left.percentile(50.0) == pytest.approx(
            float(np.percentile(samples, 50.0)), rel=0.05)

    def test_merging_two_spilled_histograms_rebins(self):
        rng = np.random.default_rng(6)
        low = rng.lognormal(mean=-7.0, sigma=0.4, size=2000).tolist()
        high = rng.lognormal(mean=-5.0, sigma=0.4, size=2000).tolist()
        left = self.fill(low, capacity=128)
        right = self.fill(high, capacity=128)
        assert not left.is_exact and not right.is_exact
        left.merge(right)
        combined = low + high
        assert left.count == 4000
        assert left.mean == pytest.approx(float(np.mean(combined)),
                                          rel=1e-9)
        assert left.max_seconds == max(combined)
        assert left.min_seconds == min(combined)
        assert left.percentile(50.0) == pytest.approx(
            float(np.percentile(combined, 50.0)), rel=0.25)

    def test_merge_exact_into_spilled_adopts_histogram(self):
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=-6.0, sigma=0.5, size=3000).tolist()
        extra = rng.lognormal(mean=-6.0, sigma=0.5, size=50).tolist()
        spilled = self.fill(samples, capacity=128)
        spilled.merge(self.fill(extra))
        combined = samples + extra
        assert spilled.count == len(combined)
        assert spilled.mean == pytest.approx(float(np.mean(combined)),
                                             rel=1e-9)

    def test_merge_spilled_outliers_stay_in_the_tail(self):
        """Regression: samples in the open-ended outer bins of a spilled
        accumulator merge at the observed min/max, not at a 'geometric
        midpoint' of the artificial clamped span.

        Before the fix, an outlier landing in the open top bin after the
        spill (e.g. 500 s over ~2 ms edges) was re-binned at
        sqrt(edge * max) — hundreds of times below its true value — and
        the merged tail percentiles collapsed toward the warm-up range.
        """
        left = self.fill([0.001] * 40, capacity=32)
        left.add(100.0)     # open top bin of left
        right = self.fill([0.002] * 40, capacity=32)
        right.add(500.0)    # open top bin of right
        right.add(1e-12)    # open bottom bin of right
        assert not left.is_exact and not right.is_exact
        left.merge(right)
        assert left.count == 83
        assert left.max_seconds == 500.0
        assert left.min_seconds == 1e-12
        # ~2.4% of the mass sits at 100/500 s: p99 must stay far above
        # the ~millisecond bulk instead of collapsing below it.
        assert left.percentile(99.0) > 1.0
        # The exact running total is untouched by the re-binning.
        expected_mean = ([0.001] * 40 + [100.0] + [0.002] * 40
                         + [500.0] + [1e-12])
        assert left.mean == pytest.approx(
            float(np.mean(expected_mean)), rel=1e-9)

    def test_merge_bottom_open_bin_uses_observed_min(self):
        left = self.fill(np.linspace(0.01, 0.02, 40).tolist(), capacity=32)
        right = self.fill(np.linspace(0.01, 0.02, 40).tolist(), capacity=32)
        right.add(1e-7)     # far below right's frozen bottom edge
        left.merge(right)
        assert left.min_seconds == 1e-7
        assert left.percentile(0.0) == pytest.approx(1e-7, rel=1e-6)

    def test_empty_adopts_spilled_other(self):
        rng = np.random.default_rng(8)
        samples = rng.lognormal(mean=-6.0, sigma=0.5, size=2000).tolist()
        spilled = self.fill(samples, capacity=128)
        target = LatencyAccumulator()
        target.merge(spilled)
        assert not target.is_exact
        assert target.count == 2000
        assert target.mean == pytest.approx(float(np.mean(samples)),
                                            rel=1e-9)
        # The adopted histogram is a copy, not a shared buffer.
        target.add(1.0)
        assert spilled.count == 2000


class TestZeroLatencySamples:
    """Exact zeros survive the spill: a log-spaced histogram cannot hold
    zero, so zeros land in the bottom open bin whose bounds clamp to the
    tracked minimum — queries must keep reporting them as (effectively)
    zero rather than promoting them to the 1 ns edge floor."""

    def spill_with_zeros(self, zeros, others, capacity=32):
        accumulator = LatencyAccumulator(exact_capacity=capacity)
        for value in [0.0] * zeros + list(others):
            accumulator.add(value)
        assert not accumulator.is_exact
        return accumulator

    def test_all_zero_samples(self):
        accumulator = self.spill_with_zeros(40, [])
        assert accumulator.mean == 0.0
        assert accumulator.min_seconds == 0.0
        for percentile in (0.0, 50.0, 100.0):
            assert accumulator.percentile(percentile) == 0.0

    def test_mixed_zeros_keep_low_percentiles_at_zero(self):
        accumulator = self.spill_with_zeros(30, [0.01] * 10)
        assert accumulator.percentile(0.0) == 0.0
        # Half the mass is exactly zero; the median estimate may sit
        # anywhere inside the bottom open bin but never above its edge.
        assert accumulator.percentile(50.0) <= 1e-9
        assert accumulator.percentile(99.0) == pytest.approx(0.01, rel=0.05)
        assert accumulator.mean == pytest.approx(0.0025, rel=1e-9)

    def test_zeros_added_after_spill(self):
        accumulator = self.spill_with_zeros(1, np.linspace(0.01, 0.02, 40))
        accumulator.add(0.0)
        assert accumulator.min_seconds == 0.0
        assert accumulator.percentile(0.0) == 0.0

    def test_merging_spilled_zero_accumulators(self):
        left = self.spill_with_zeros(20, [0.01] * 20)
        right = self.spill_with_zeros(20, [0.02] * 20)
        left.merge(right)
        assert left.count == 80
        assert left.min_seconds == 0.0
        assert left.percentile(0.0) == 0.0
        assert left.mean == pytest.approx((0.01 + 0.02) * 20 / 80, rel=1e-9)


class TestSketchBackend:
    def spilled(self, values, capacity: int = 16) -> LatencyAccumulator:
        accumulator = LatencyAccumulator(exact_capacity=capacity,
                                         backend="sketch")
        for value in values:
            accumulator.add(float(value))
        return accumulator

    def test_exact_window_behaviour_unchanged(self):
        rng = np.random.default_rng(1)
        samples = rng.uniform(0.0, 1.0, 50)
        histogram = LatencyAccumulator(backend="histogram")
        sketch = LatencyAccumulator(backend="sketch")
        for value in samples:
            histogram.add(float(value))
            sketch.add(float(value))
        # Below the exact window the backend is irrelevant: both answer
        # from the same sample list, bit for bit.
        for percentile in (1.0, 50.0, 99.0):
            assert (sketch.percentile(percentile)
                    == histogram.percentile(percentile))
        assert sketch.mean == histogram.mean

    def test_spilled_percentiles_within_rank_error(self):
        rng = np.random.default_rng(8)
        samples = rng.lognormal(0.0, 1.5, 20_000)
        accumulator = self.spilled(samples)
        ordered = np.sort(samples)
        for percentile in (10.0, 50.0, 90.0, 99.0):
            estimate = accumulator.percentile(percentile)
            left = np.searchsorted(ordered, estimate, "left") / len(ordered)
            right = np.searchsorted(ordered, estimate, "right") / len(ordered)
            fraction = percentile / 100.0
            error = max(0.0, left - fraction, fraction - right)
            assert error <= 0.02 + 1e-12  # 4/k at the default k = 200

    def test_memory_stays_bounded(self):
        accumulator = self.spilled(np.linspace(0.0, 1.0, 100_000))
        assert accumulator._sketch.retained <= 4 * accumulator._sketch.k

    def test_sketch_merges_with_sketch(self):
        rng = np.random.default_rng(3)
        samples = rng.uniform(0.0, 1.0, 4000)
        merged = self.spilled(samples[:2000])
        merged.merge(self.spilled(samples[2000:]))
        assert merged.count == 4000
        assert merged.mean == pytest.approx(float(np.mean(samples)),
                                            rel=1e-9)
        assert merged.percentile(50.0) == pytest.approx(0.5, abs=0.03)

    def test_sketch_merges_with_histogram(self):
        rng = np.random.default_rng(4)
        samples = rng.uniform(0.0, 1.0, 2000)
        sketch_side = self.spilled(samples[:1000])
        histogram_side = LatencyAccumulator(exact_capacity=16,
                                            backend="histogram")
        for value in samples[1000:]:
            histogram_side.add(float(value))
        sketch_side.merge(histogram_side)
        assert sketch_side.count == 2000
        assert sketch_side.percentile(50.0) == pytest.approx(0.5, abs=0.05)

    def test_histogram_absorbs_sketch(self):
        rng = np.random.default_rng(5)
        samples = rng.uniform(0.0, 1.0, 2000)
        histogram_side = LatencyAccumulator(exact_capacity=16,
                                            backend="histogram")
        for value in samples[:1000]:
            histogram_side.add(float(value))
        sketch_side = self.spilled(samples[1000:])
        histogram_side.merge(sketch_side)
        assert histogram_side.count == 2000
        assert histogram_side.percentile(50.0) == pytest.approx(0.5,
                                                                abs=0.05)

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError):
            LatencyAccumulator(backend="theodolite")


class TestStateRoundTrip:
    def round_trip(self, accumulator: LatencyAccumulator):
        return LatencyAccumulator.from_state(accumulator.to_state())

    def test_exact_state_round_trips_bit_exactly(self):
        accumulator = LatencyAccumulator()
        for value in (0.0, 1e-9, 0.5, 0.5, 2.0):
            accumulator.add(value)
        restored = self.round_trip(accumulator)
        assert restored.to_state() == accumulator.to_state()
        assert restored.percentile(50.0) == accumulator.percentile(50.0)

    def test_histogram_state_round_trips(self):
        accumulator = LatencyAccumulator(exact_capacity=8,
                                         backend="histogram")
        for value in np.linspace(0.001, 1.0, 100):
            accumulator.add(float(value))
        restored = self.round_trip(accumulator)
        assert restored.to_state() == accumulator.to_state()
        for percentile in (10.0, 50.0, 99.0):
            assert (restored.percentile(percentile)
                    == accumulator.percentile(percentile))

    def test_sketch_state_round_trips(self):
        accumulator = LatencyAccumulator(exact_capacity=8, backend="sketch")
        for value in np.linspace(0.001, 1.0, 100):
            accumulator.add(float(value))
        restored = self.round_trip(accumulator)
        assert restored.to_state() == accumulator.to_state()
        for percentile in (10.0, 50.0, 99.0):
            assert (restored.percentile(percentile)
                    == accumulator.percentile(percentile))

    def test_empty_state_round_trips(self):
        restored = self.round_trip(LatencyAccumulator())
        assert restored.count == 0

    def test_count_mismatch_rejected(self):
        accumulator = LatencyAccumulator()
        accumulator.add(0.5)
        state = accumulator.to_state()
        state["count"] = 7
        with pytest.raises(SimulationError):
            LatencyAccumulator.from_state(state)

    def test_restored_accumulator_keeps_accumulating(self):
        accumulator = LatencyAccumulator(exact_capacity=8, backend="sketch")
        for value in np.linspace(0.01, 1.0, 50):
            accumulator.add(float(value))
        restored = self.round_trip(accumulator)
        restored.add(2.0)
        assert restored.count == 51
        assert restored.max_seconds == 2.0


class TestAddBatch:
    """add_batch(values, counts) must equal the equivalent add() loop."""

    @staticmethod
    def loop_reference(pairs, capacity, backend):
        reference = LatencyAccumulator(exact_capacity=capacity,
                                       backend=backend)
        for value, count in pairs:
            for _ in range(count):
                reference.add(value)
        return reference

    @settings(max_examples=60, deadline=None)
    @given(st.lists(
        st.tuples(st.floats(min_value=1e-6, max_value=10.0,
                            allow_nan=False, allow_infinity=False),
                  st.integers(min_value=1, max_value=40)),
        min_size=1, max_size=30),
        st.sampled_from(["sketch", "histogram"]))
    def test_batch_matches_loop(self, pairs, backend):
        # Capacity 16 exercises all three regimes in one strategy:
        # staying exact, spilling mid-batch, and all-streaming.
        batched = LatencyAccumulator(exact_capacity=16, backend=backend)
        batched.add_batch([value for value, _ in pairs],
                          [count for _, count in pairs])
        reference = self.loop_reference(pairs, 16, backend)
        assert batched.count == reference.count
        assert batched.min_seconds == reference.min_seconds
        assert batched.max_seconds == reference.max_seconds
        assert batched.mean == pytest.approx(reference.mean)
        assert batched.is_exact == reference.is_exact
        if backend == "histogram" or batched.is_exact:
            # Deterministic binning (and the exact window) admit strict
            # equality with the per-sample loop.
            for percentile in (10.0, 50.0, 90.0, 99.0):
                assert batched.percentile(percentile) == \
                    reference.percentile(percentile)
            return
        # The KLL sketch compacts on different schedules for weighted
        # and per-sample inserts, so the invariant is its documented
        # rank bound against the true distribution, not bit equality.
        samples = np.sort(np.repeat([value for value, _ in pairs],
                                    [count for _, count in pairs]))
        epsilon = batched._sketch.rank_error_bound + 1.0 / len(samples)
        for percentile in (10.0, 50.0, 90.0, 99.0):
            value = batched.percentile(percentile)
            below = np.searchsorted(samples, value, side="left")
            above = np.searchsorted(samples, value, side="right")
            target = percentile / 100.0
            assert below / len(samples) - epsilon <= target
            assert above / len(samples) + epsilon >= target

    def test_empty_batch_is_a_no_op(self):
        accumulator = LatencyAccumulator()
        accumulator.add_batch([], [])
        assert accumulator.count == 0

    def test_mismatched_lengths_rejected(self):
        accumulator = LatencyAccumulator()
        with pytest.raises(SimulationError):
            accumulator.add_batch([0.1, 0.2], [1])

    def test_negative_values_rejected(self):
        accumulator = LatencyAccumulator()
        with pytest.raises(SimulationError):
            accumulator.add_batch([-0.1], [1])
