"""Tests for repro.netsim.arbitration and the Medium/policy split."""

from __future__ import annotations

import pytest

from repro.comm.ble import ble_1m_phy
from repro.comm.eqs_hbc import wir_commercial
from repro.errors import SimulationError
from repro.netsim.arbitration import (
    FIFOArbitration,
    HubPollingArbitration,
    TDMAArbitration,
    make_policy,
)
from repro.netsim.bus import Medium
from repro.netsim.events import EventQueue
from repro.netsim.packet import Packet
from repro.netsim.simulator import BodyNetworkSimulator
from repro.netsim.traffic import PeriodicSource
from repro.netsim.config import NodeConfig


def make_packet(source: str, bits: float = 1e4,
                created_at: float = 0.0) -> Packet:
    return Packet(source=source, destination="hub", bits=bits,
                  created_at=created_at)


class TestPolicyFactory:
    def test_known_policies(self):
        assert isinstance(make_policy("fifo"), FIFOArbitration)
        assert isinstance(make_policy("TDMA"), TDMAArbitration)
        assert isinstance(make_policy("polling"), HubPollingArbitration)

    def test_unknown_policy_rejected(self):
        with pytest.raises(SimulationError):
            make_policy("csma")

    def test_medium_attaches_link_rate(self):
        queue = EventQueue()
        medium = Medium(queue, link_rate_bps=1e6, policy="tdma")
        assert medium.policy.link_rate_bps == 1e6

    def test_explicit_policy_rate_preserved(self):
        queue = EventQueue()
        policy = TDMAArbitration(link_rate_bps=2e6)
        Medium(queue, link_rate_bps=1e6, policy=policy)
        assert policy.link_rate_bps == 2e6


class TestFIFOArbitration:
    def test_grants_in_submission_order_with_zero_delay(self):
        policy = FIFOArbitration()
        first, second = make_packet("a"), make_packet("b")
        policy.enqueue(first)
        policy.enqueue(second)
        assert policy.pending_count() == 2
        assert policy.next_grant(0.0) == (first, 0.0)
        assert policy.next_grant(0.0) == (second, 0.0)
        assert policy.next_grant(0.0) is None


class TestTDMAArbitration:
    def test_grant_waits_for_owners_slot(self):
        policy = TDMAArbitration(link_rate_bps=1e6,
                                 superframe_seconds=0.010,
                                 guard_seconds=0.0)
        policy.register_node("a", 1e5)
        policy.register_node("b", 1e5)
        policy.enqueue(make_packet("b"))
        packet, delay = policy.next_grant(0.0)
        # Node b's slot starts after node a's 1 ms slot.
        assert packet.source == "b"
        assert delay == pytest.approx(0.001)

    def test_in_slot_grant_is_immediate(self):
        policy = TDMAArbitration(link_rate_bps=1e6,
                                 superframe_seconds=0.010,
                                 guard_seconds=0.0)
        policy.register_node("a", 1e5)
        policy.enqueue(make_packet("a"))
        _, delay = policy.next_grant(0.0)
        assert delay == 0.0

    def test_oversubscribed_schedule_degrades_to_shares(self):
        policy = TDMAArbitration(link_rate_bps=1e5)
        policy.register_node("a", 1e6)  # 10x the link: infeasible
        policy.register_node("b", 1e6)
        policy.enqueue(make_packet("a"))
        packet, delay = policy.next_grant(0.0)
        assert packet.source == "a"
        assert delay < policy.superframe_seconds

    def test_unregistered_source_accepted(self):
        policy = TDMAArbitration(link_rate_bps=1e6)
        policy.enqueue(make_packet("ghost"))
        packet, _ = policy.next_grant(0.0)
        assert packet.source == "ghost"

    def test_simulated_latency_includes_slot_wait(self):
        fifo = BodyNetworkSimulator(wir_commercial(), rng=0)
        tdma = BodyNetworkSimulator(wir_commercial(), rng=0,
                                    arbitration="tdma")
        for simulator in (fifo, tdma):
            for index in range(8):
                simulator.attach(NodeConfig(f"leaf{index}",
                                   PeriodicSource.from_rate(64e3)))
        fifo_result = fifo.run(2.0)
        tdma_result = tdma.run(2.0)
        assert tdma_result.delivered_packets == fifo_result.delivered_packets
        assert tdma_result.mean_latency_seconds > \
            fifo_result.mean_latency_seconds
        assert tdma_result.arbitration == "tdma"


class TestHubPollingArbitration:
    def test_poll_cost_charged_per_grant(self):
        policy = HubPollingArbitration(link_rate_bps=1e6,
                                       poll_overhead_bits=100.0,
                                       turnaround_seconds=1e-4)
        policy.register_node("a", 0.0)
        policy.enqueue(make_packet("a"))
        _, delay = policy.next_grant(0.0)
        assert delay == pytest.approx(100.0 / 1e6 + 1e-4)

    def test_empty_polls_charged_while_walking_the_ring(self):
        policy = HubPollingArbitration(link_rate_bps=1e6,
                                       poll_overhead_bits=0.0,
                                       turnaround_seconds=1e-3)
        for name in ("a", "b", "c"):
            policy.register_node(name, 0.0)
        policy.enqueue(make_packet("c"))
        _, delay = policy.next_grant(0.0)
        # Cursor starts at a: polls a (empty), b (empty), then c.
        assert delay == pytest.approx(3e-3)

    def test_round_robin_cursor_advances(self):
        policy = HubPollingArbitration(link_rate_bps=1e6,
                                       turnaround_seconds=1e-3)
        policy.register_node("a", 0.0)
        policy.register_node("b", 0.0)
        policy.enqueue(make_packet("a"))
        policy.enqueue(make_packet("a"))
        policy.enqueue(make_packet("b"))
        first, _ = policy.next_grant(0.0)
        second, _ = policy.next_grant(0.0)
        third, _ = policy.next_grant(0.0)
        assert [p.source for p in (first, second, third)] == ["a", "b", "a"]

    def test_simulated_polling_slower_than_fifo(self):
        fifo = BodyNetworkSimulator(wir_commercial(), rng=0)
        polling = BodyNetworkSimulator(wir_commercial(), rng=0,
                                       arbitration="polling")
        for simulator in (fifo, polling):
            for index in range(8):
                simulator.attach(NodeConfig(f"leaf{index}",
                                   PeriodicSource.from_rate(64e3)))
        fifo_result = fifo.run(2.0)
        polling_result = polling.run(2.0)
        assert polling_result.delivered_packets == \
            fifo_result.delivered_packets
        assert polling_result.mean_latency_seconds > \
            fifo_result.mean_latency_seconds


class TestMixedTechnologies:
    def test_per_node_rate_slows_serialisation(self):
        queue = EventQueue()
        medium = Medium(queue, link_rate_bps=4e6)
        medium.register_node("slow", 64e3, link_rate_bps=1e6)
        fast = make_packet("fast", bits=1e6)
        slow = make_packet("slow", bits=1e6)
        assert medium.service_time_seconds(slow) == \
            pytest.approx(4 * medium.service_time_seconds(fast), rel=0.01)

    def test_mixed_simulation_accounts_energy_per_technology(self):
        simulator = BodyNetworkSimulator(wir_commercial(), rng=0)
        simulator.attach(NodeConfig("wir", PeriodicSource.from_rate(64e3)))
        simulator.attach(NodeConfig("ble", PeriodicSource.from_rate(64e3),
                           technology=ble_1m_phy()))
        result = simulator.run(2.0)
        assert result.per_node_goodput_bps["wir"] == \
            pytest.approx(result.per_node_goodput_bps["ble"])
        # BLE burns orders of magnitude more energy per bit than Wi-R.
        assert result.per_node_average_power_watts["ble"] > \
            10 * result.per_node_average_power_watts["wir"]
        assert "BLE 1M PHY" in simulator.describe()["node_technologies"]

    def test_invalid_per_node_rate_rejected(self):
        medium = Medium(EventQueue(), link_rate_bps=1e6)
        with pytest.raises(SimulationError):
            medium.register_node("x", 1e3, link_rate_bps=0.0)


class TestDeliveredFraction:
    def test_backlog_counts_against_delivered_fraction(self):
        """A saturated medium reads < 1.0 even before its buffer drops."""
        simulator = BodyNetworkSimulator(wir_commercial(), rng=0)
        rate = wir_commercial().data_rate_bps()
        for index in range(5):
            simulator.attach(NodeConfig(f"leaf{index}",
                               PeriodicSource.from_rate(0.9 * rate)))
        result = simulator.run(2.0)
        assert result.dropped_packets == 0 or result.delivered_fraction < 1.0
        assert result.offered_packets > result.delivered_packets
        assert result.delivered_fraction < 0.5

    def test_unloaded_network_delivers_everything_but_in_flight(self):
        simulator = BodyNetworkSimulator(wir_commercial(), rng=0)
        simulator.attach(NodeConfig("ecg", PeriodicSource.from_rate(3e3)))
        result = simulator.run(10.0)
        assert result.offered_packets >= result.delivered_packets
        assert result.delivered_fraction > 0.9


class TestHubIdleAccounting:
    def test_hub_ledger_includes_receiver_sleep(self):
        simulator = BodyNetworkSimulator(wir_commercial(), rng=0)
        simulator.attach(NodeConfig("ecg", PeriodicSource.from_rate(3e3)))
        result = simulator.run(10.0)
        breakdown = simulator.hub_ledger.breakdown()
        assert breakdown["wir_rx"] > 0.0
        assert breakdown["wir_sleep"] > 0.0
        assert result.hub_energy_joules == pytest.approx(
            breakdown["wir_rx"] + breakdown["wir_sleep"])
        # The mostly idle hub is dominated by sleep power here.
        assert result.hub_energy_joules > result.hub_rx_energy_joules
        assert result.hub_average_power_watts == pytest.approx(
            result.hub_energy_joules / 10.0)
