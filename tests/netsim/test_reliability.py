"""The lossy-link reliability layer: erasures, ARQ, energy, determinism.

Covers the netsim half of the reliability subsystem: the ARQ closed
forms, the per-node seeded erasure process, the medium's
erase-retransmit-lose state machine, the per-attempt energy accounting
and — the hard acceptance bound — that a reliability model with zero
error rates (and the PER = 0 / no-ARQ configuration in general) leaves
the golden-hex pinned lossless kernel bit-identical.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.comm.eqs_hbc import wir_commercial
from repro.errors import SimulationError
from repro.netsim import (
    ARQPolicy,
    BodyNetworkSimulator,
    LinkReliability,
    PeriodicSource,
    PoissonSource,
)
from repro.energy.battery import BatterySpec
from repro.netsim.config import NodeConfig


def build_simulator(error_rate: float | None = None,
                    arq: ARQPolicy | None = ARQPolicy(retry_limit=3),
                    nodes: int = 3, seed: int = 7,
                    reliability_seed: int = 0) -> BodyNetworkSimulator:
    reliability = None
    if error_rate is not None:
        reliability = LinkReliability(seed=reliability_seed, arq=arq)
    simulator = BodyNetworkSimulator(wir_commercial(), rng=seed,
                                     reliability=reliability)
    for index in range(nodes):
        simulator.attach(NodeConfig(
            f"leaf{index}",
            PeriodicSource.from_rate(units.kilobit_per_second(64.0)),
            sensing_power_watts=units.microwatt(30.0),
        ))
        if reliability is not None:
            reliability.set_error_rate(f"leaf{index}", error_rate)
    return simulator


class TestARQPolicy:
    def test_max_attempts(self):
        assert ARQPolicy(retry_limit=3).max_attempts == 4
        assert math.isinf(ARQPolicy(retry_limit=None).max_attempts)

    def test_may_retry_respects_limit(self):
        policy = ARQPolicy(retry_limit=2)
        assert policy.may_retry(1) and policy.may_retry(2)
        assert not policy.may_retry(3)

    def test_unbounded_always_retries(self):
        assert ARQPolicy(retry_limit=None).may_retry(10_000)

    def test_delivery_probability_closed_form(self):
        policy = ARQPolicy(retry_limit=3)
        assert policy.delivery_probability(0.0) == 1.0
        assert policy.delivery_probability(0.5) == pytest.approx(1 - 0.5 ** 4)
        assert policy.delivery_probability(1.0) == 0.0
        assert ARQPolicy(retry_limit=None).delivery_probability(0.999) == 1.0

    def test_expected_attempts_truncated_geometric(self):
        policy = ARQPolicy(retry_limit=3)
        per = 0.3
        assert policy.expected_attempts(per) == pytest.approx(
            (1 - per ** 4) / (1 - per))
        assert policy.expected_attempts(0.0) == 1.0
        assert policy.expected_attempts(1.0) == 4.0
        assert ARQPolicy(retry_limit=None).expected_attempts(0.5) \
            == pytest.approx(2.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            ARQPolicy(retry_limit=-1)
        with pytest.raises(SimulationError):
            ARQPolicy(ack_bits=-1.0)
        with pytest.raises(SimulationError):
            ARQPolicy(ack_turnaround_seconds=-1e-6)
        with pytest.raises(SimulationError):
            ARQPolicy().delivery_probability(1.5)


class TestLinkReliability:
    def test_default_and_explicit_rates(self):
        model = LinkReliability(default_error_rate=0.1)
        model.set_error_rate("a", 0.5)
        assert model.error_rate("a") == 0.5
        assert model.error_rate("unknown") == 0.1

    def test_rates_validated(self):
        with pytest.raises(SimulationError):
            LinkReliability(default_error_rate=-0.1)
        with pytest.raises(SimulationError):
            LinkReliability().set_error_rate("a", 1.5)

    def test_zero_rate_draws_nothing(self):
        model = LinkReliability(seed=3)
        assert not model.draw_erasure("quiet")
        # No generator was even created for the zero-rate node.
        assert "quiet" not in model._rngs

    def test_draws_deterministic_and_order_independent(self):
        first = LinkReliability(seed=11)
        second = LinkReliability(seed=11)
        for node in ("a", "b"):
            first.set_error_rate(node, 0.4)
            second.set_error_rate(node, 0.4)
        # Interleave differently: per-node streams must not care.
        draws_first = [first.draw_erasure("a") for _ in range(50)] \
            + [first.draw_erasure("b") for _ in range(50)]
        draws_second = []
        for _ in range(50):
            draws_second.append(second.draw_erasure("a"))
            second.draw_erasure("b")
        for _ in range(50):
            pass
        assert draws_first[:50] == draws_second

    def test_certain_erasure(self):
        model = LinkReliability()
        model.set_error_rate("a", 1.0)
        assert model.draw_erasure("a")


class TestLossyMedium:
    def test_erasures_reduce_delivered_fraction(self):
        lossy = build_simulator(error_rate=0.3).run(5.0)
        clean = build_simulator(error_rate=0.0).run(5.0)
        assert lossy.reliability_enabled
        assert lossy.erased_attempts > 0
        assert lossy.retransmissions > 0
        assert lossy.delivered_packets < clean.delivered_packets \
            or lossy.lost_packets > 0
        assert lossy.attempts_per_delivered > 1.05

    def test_without_arq_every_erasure_is_a_loss(self):
        result = build_simulator(error_rate=0.3, arq=None).run(5.0)
        assert result.retransmissions == 0
        assert result.lost_packets == result.erased_attempts > 0
        assert result.delivered_fraction < 1.0
        assert result.delivered_packets + result.lost_packets \
            == result.offered_packets

    def test_retry_limit_exhaustion_loses_packets(self):
        result = build_simulator(error_rate=0.9,
                                 arq=ARQPolicy(retry_limit=1)).run(2.0)
        assert result.lost_packets > 0
        # Each offered packet is attempted at most retry_limit + 1 times.
        assert result.erased_attempts <= 2 * result.offered_packets

    def test_certain_erasure_delivers_nothing(self):
        result = build_simulator(error_rate=1.0,
                                 arq=ARQPolicy(retry_limit=2)).run(1.0)
        assert result.delivered_packets == 0
        assert result.lost_packets == result.offered_packets > 0
        assert result.delivered_fraction == 0.0
        # Zero deliveries at non-zero cost is not a perfect link.
        assert math.isinf(result.attempts_per_delivered)

    def test_goodput_excludes_lost_packets(self):
        """Regression: bits of packets the link gave up on are not
        goodput, even though they were accepted at submit time."""
        simulator = build_simulator(error_rate=0.3, arq=None, nodes=1)
        result = simulator.run(20.0)
        assert result.lost_packets > 0
        node = simulator.nodes["leaf0"]
        goodput = result.per_node_goodput_bps["leaf0"]
        assert goodput == pytest.approx(
            (node.bits_sent - node.lost_bits) / 20.0)
        # Delivered bits bound the goodput from below; the lost share
        # must be gone from it (at most one in-flight frame of slack).
        assert goodput * 20.0 <= result.delivered_bits + 8192.0
        assert node.lost_bits == pytest.approx(
            result.lost_packets * 8192.0)

    def test_serialised_bits_match_the_medium(self):
        """Regression: a lost packet's only/final frame was counted in
        both ``bits_sent`` and ``retx_bits``, overstating tx time in the
        sleep split.  Total serialised frames = delivered + erased."""
        for arq in (None, ARQPolicy(retry_limit=2)):
            simulator = build_simulator(error_rate=0.4, arq=arq, nodes=2)
            result = simulator.run(10.0)
            serialised = sum(node.bits_sent + node.retx_bits
                             for node in simulator.nodes.values())
            expected_frames = result.delivered_packets \
                + result.erased_attempts
            # Periodic 8192-bit packets: frame arithmetic is exact up to
            # whatever is still queued or in flight at the horizon.
            in_flight = serialised / 8192.0 - expected_frames
            assert 0.0 <= in_flight <= result.offered_packets \
                - result.delivered_packets - result.lost_packets + 0.5

    def test_latency_includes_retransmission_delay(self):
        lossy = build_simulator(error_rate=0.4, nodes=1).run(5.0)
        clean = build_simulator(error_rate=0.0, nodes=1).run(5.0)
        assert lossy.mean_latency_seconds > clean.mean_latency_seconds

    def test_lossy_runs_reproducible(self):
        first = build_simulator(error_rate=0.3).run(5.0)
        second = build_simulator(error_rate=0.3).run(5.0)
        assert first.delivered_packets == second.delivered_packets
        assert first.erased_attempts == second.erased_attempts
        assert first.mean_latency_seconds == second.mean_latency_seconds
        assert first.retransmission_energy_joules \
            == second.retransmission_energy_joules

    def test_erasure_seed_changes_the_draw_not_the_traffic(self):
        first = build_simulator(error_rate=0.3, reliability_seed=0).run(5.0)
        second = build_simulator(error_rate=0.3, reliability_seed=1).run(5.0)
        assert first.offered_packets == second.offered_packets
        assert first.erased_attempts != second.erased_attempts

    def test_mid_run_error_rate_update(self):
        simulator = build_simulator(error_rate=0.0, nodes=1)
        simulator.queue.schedule_at(
            2.5, lambda: simulator.set_node_error_rate("leaf0", 1.0))
        result = simulator.run(5.0)
        # Clean first half delivers, hopeless second half loses.
        assert result.delivered_packets > 0
        assert result.lost_packets > 0

    def test_set_error_rate_requires_model_and_node(self):
        with pytest.raises(SimulationError):
            build_simulator(error_rate=None).set_node_error_rate("leaf0", 0.1)
        with pytest.raises(SimulationError):
            build_simulator(error_rate=0.1).set_node_error_rate("ghost", 0.1)


class TestLossyEnergyAccounting:
    def test_retransmission_energy_matches_erased_attempts(self):
        simulator = build_simulator(error_rate=0.3)
        result = simulator.run(5.0)
        technology = wir_commercial()
        # Fixed 8192-bit frames: every corrupted attempt posted exactly
        # one frame of wasted transmit energy.
        expected = result.erased_attempts * 8192.0 \
            * technology.tx_energy_per_bit()
        assert result.retransmission_energy_joules == pytest.approx(expected)
        assert result.retransmission_energy_joules > 0.0

    def test_ack_energy_per_delivered_packet(self):
        arq = ARQPolicy(retry_limit=3, ack_bits=64.0)
        simulator = build_simulator(error_rate=0.2, arq=arq)
        result = simulator.run(5.0)
        technology = wir_commercial()
        assert result.ack_energy_joules == pytest.approx(
            result.delivered_packets * 64.0 * technology.rx_energy_per_bit())
        # The hub transmitted each of those acks.
        assert simulator.hub_ledger.total_energy("ack_tx") == pytest.approx(
            result.delivered_packets * 64.0 * technology.tx_energy_per_bit())

    def test_hub_listens_to_corrupted_frames(self):
        lossy = build_simulator(error_rate=0.3, arq=None).run(5.0)
        technology = wir_commercial()
        # Hub rx energy covers delivered AND erased frames.
        expected_bits = lossy.delivered_bits \
            + lossy.erased_attempts * 8192.0
        assert lossy.hub_rx_energy_joules == pytest.approx(
            expected_bits * technology.rx_energy_per_bit())

    def test_wasted_attempts_can_brown_a_node_out(self):
        """Retransmission energy flows through NodeEnergyState: a cell
        sized for the clean traffic dies early under 50% erasures."""
        technology = wir_commercial()
        rate = units.kilobit_per_second(64.0)
        # Energy for ~2.5 s of clean transmit + static load.
        clean_joules = 2.5 * (rate * technology.tx_energy_per_bit()
                              + units.microwatt(30.0)
                              + technology.sleep_power())
        capacity_mah = clean_joules / 3.0 / 3.6  # 3 V nominal
        battery = BatterySpec(name="tiny", capacity_mah=capacity_mah,
                              voltage=3.0)
        reliability = LinkReliability(seed=0, arq=ARQPolicy(retry_limit=None))
        simulator = BodyNetworkSimulator(
            technology, rng=7, reliability=reliability,
            energy_update_interval_seconds=0.01)
        simulator.attach(NodeConfig(
            "leaf0", PeriodicSource.from_rate(rate),
            sensing_power_watts=units.microwatt(30.0), battery=battery))
        reliability.set_error_rate("leaf0", 0.5)
        lossy = simulator.run(5.0)

        clean_simulator = BodyNetworkSimulator(
            technology, rng=7, energy_update_interval_seconds=0.01)
        clean_simulator.attach(NodeConfig(
            "leaf0", PeriodicSource.from_rate(rate),
            sensing_power_watts=units.microwatt(30.0), battery=battery))
        clean = clean_simulator.run(5.0)

        assert lossy.first_death_seconds < clean.first_death_seconds
        # Death is terminal: no retransmissions queue after the brownout.
        assert lossy.delivered_packets < clean.delivered_packets


# ---------------------------------------------------------------------------
# Satellite: property-based guarantees (Hypothesis).

#: Golden values of the pre-reliability kernel (mixed periodic/Poisson
#: 6-node network, seed 7, 2 s) — same constants pinned in
#: test_fifo_regression.py.
PRE_RELIABILITY_GOLDEN = {
    "mean_latency_seconds": "0x1.b90bca7c1802ap-9",
    "p99_latency_seconds": "0x1.5feda66128400p-7",
    "delivered_bits": "0x1.8a5205383b6bdp+19",
    "hub_rx_energy_joules": "0x1.52b7f8a39f153p-14",
    "leaf0_power": "0x1.3006194b2b1bep-15",
    "events_power": "0x1.475b58b49ea94p-17",
}


def golden_network(reliability: LinkReliability | None) -> BodyNetworkSimulator:
    """The exact seed-7 network the FIFO golden-hex regression pins."""
    simulator = BodyNetworkSimulator(wir_commercial(), rng=7,
                                     reliability=reliability)
    for index in range(5):
        simulator.attach(NodeConfig(
            f"leaf{index}",
            PeriodicSource.from_rate(units.kilobit_per_second(64.0)),
            sensing_power_watts=units.microwatt(30.0),
        ))
    simulator.attach(NodeConfig("events", PoissonSource(
        mean_interarrival_seconds=0.02, mean_bits_per_packet=2048.0)))
    return simulator


class TestLosslessBitIdentity:
    @pytest.mark.parametrize("reliability", [
        None,
        LinkReliability(seed=0),
        LinkReliability(seed=123, default_error_rate=0.0),
    ], ids=["no-model", "per0", "per0-other-seed"])
    def test_per_zero_matches_pre_reliability_golden_hex(self, reliability):
        """PER = 0 / no ARQ reproduces the pre-reliability kernel exactly."""
        result = golden_network(reliability).run(2.0)
        assert result.delivered_packets == 172
        assert result.mean_latency_seconds.hex() == \
            PRE_RELIABILITY_GOLDEN["mean_latency_seconds"]
        assert result.p99_latency_seconds.hex() == \
            PRE_RELIABILITY_GOLDEN["p99_latency_seconds"]
        assert float(result.delivered_bits).hex() == \
            PRE_RELIABILITY_GOLDEN["delivered_bits"]
        assert float(result.hub_rx_energy_joules).hex() == \
            PRE_RELIABILITY_GOLDEN["hub_rx_energy_joules"]
        assert float(result.per_node_average_power_watts["leaf0"]).hex() == \
            PRE_RELIABILITY_GOLDEN["leaf0_power"]
        assert float(result.per_node_average_power_watts["events"]).hex() == \
            PRE_RELIABILITY_GOLDEN["events_power"]

    @given(seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_per_zero_identity_holds_for_any_erasure_seed(self, seed):
        """The erasure seed is invisible while every rate is zero."""
        baseline = golden_network(None).run(1.0)
        with_model = golden_network(LinkReliability(seed=seed)).run(1.0)
        assert with_model.mean_latency_seconds.hex() == \
            baseline.mean_latency_seconds.hex()
        assert with_model.delivered_packets == baseline.delivered_packets
        assert with_model.erased_attempts == 0


class TestEventualDelivery:
    @given(error_rate=st.floats(min_value=0.0, max_value=0.9),
           erasure_seed=st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=25, deadline=None)
    def test_unbounded_arq_eventually_delivers_everything(
            self, error_rate, erasure_seed):
        """Retry limit ∞ and PER < 1: every offered packet is delivered.

        The horizon leaves generous slack over the offered load so that
        even an unlucky erasure streak drains the backlog; nothing may
        be lost, and anything still undelivered at the horizon can only
        be the final in-flight packet.
        """
        reliability = LinkReliability(seed=erasure_seed,
                                      arq=ARQPolicy(retry_limit=None))
        simulator = BodyNetworkSimulator(wir_commercial(), rng=3,
                                         reliability=reliability)
        simulator.attach(NodeConfig(
            "leaf0",
            PeriodicSource.from_rate(units.kilobit_per_second(16.0)),
            sensing_power_watts=units.microwatt(30.0),
        ))
        reliability.set_error_rate("leaf0", error_rate)
        result = simulator.run(10.0)
        assert result.lost_packets == 0
        assert result.offered_packets > 0
        assert result.delivered_packets >= result.offered_packets - 1
