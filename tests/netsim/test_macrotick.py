"""Hybrid macro-tick fast path vs the exact batched kernel.

The hybrid kernel (``fast_path="hybrid"``) must agree with the exact
event loop within the same tolerance envelope the analytic cohort path
documents (docs/netsim-architecture.md): leaf and hub power within 5%,
delivered fraction within 0.05, mean latency within a factor of 2.5,
p99 within a factor of 3, bus utilisation within 0.02 absolute.  On
workloads the macro-tick engine statically refuses (Poisson sources)
and on runs too short for any leap, the hybrid driver degenerates to a
single exact kernel call and must be *bit-identical*, not just close.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cohort import analytic
from repro.cohort.aggregate import MemberMetrics
from repro.errors import SimulationError
from repro.netsim import macrotick
from repro.scenarios import all_scenarios, get_scenario


def run_metrics(spec, fast_path):
    simulator = spec.build(seed=0)
    result = simulator.run(spec.duration_seconds, fast_path=fast_path)
    return MemberMetrics.from_simulation(0, spec, result)


def assert_within_envelope(hybrid, exact):
    assert hybrid.leaf_power_watts == pytest.approx(
        exact.leaf_power_watts, rel=macrotick.POWER_REL_TOL)
    assert hybrid.hub_power_watts == pytest.approx(
        exact.hub_power_watts, rel=macrotick.POWER_REL_TOL)
    assert abs(hybrid.delivered_fraction
               - exact.delivered_fraction) < macrotick.DELIVERED_ABS_TOL
    ratio = hybrid.mean_latency_seconds / exact.mean_latency_seconds
    assert 1.0 / macrotick.MEAN_LATENCY_FACTOR < ratio \
        < macrotick.MEAN_LATENCY_FACTOR
    p99_ratio = hybrid.p99_latency_seconds / exact.p99_latency_seconds
    assert 1.0 / macrotick.P99_LATENCY_FACTOR < p99_ratio \
        < macrotick.P99_LATENCY_FACTOR
    assert abs(hybrid.bus_utilization
               - exact.bus_utilization) < macrotick.UTILIZATION_ABS_TOL


@pytest.mark.parametrize("scenario", [spec.name for spec in all_scenarios()])
def test_hybrid_within_envelope_on_gallery(scenario):
    spec = get_scenario(scenario)
    # Representative slices as in the analytic-vs-DES test, but the
    # lossy slice is longer: here *both* sides sample an erasure
    # stream (the analytic test compares one sample to an expectation),
    # so the variance of the comparison doubles and a few hundred
    # packets per node are not yet enough for a 5% power bound.
    scale = 0.05 if spec.reliability is None else 0.5
    scaled = dataclasses.replace(
        spec, duration_seconds=spec.duration_seconds * scale)
    exact = run_metrics(scaled, None)
    hybrid = run_metrics(scaled, "hybrid")
    assert_within_envelope(hybrid, exact)


class TestBitIdenticalFallbacks:
    @pytest.mark.parametrize("scenario",
                             ["implant_mix", "legacy_ble_island"])
    def test_poisson_workloads_run_exact(self, scenario):
        """Poisson sources make the engine statically ineligible: the
        hybrid driver must degrade to one exact kernel call."""
        spec = get_scenario(scenario)
        scaled = dataclasses.replace(
            spec, duration_seconds=spec.duration_seconds * 0.05)
        exact = scaled.build(seed=3).run(scaled.duration_seconds)
        hybrid = scaled.build(seed=3).run(scaled.duration_seconds,
                                          fast_path="hybrid")
        assert hybrid.to_dict() == exact.to_dict()

    def test_short_run_is_bit_identical(self):
        """A run shorter than the minimum leap makes exactly one exact
        kernel call — indistinguishable from fast_path off."""
        spec = get_scenario("sleep_night")
        exact = spec.build(seed=0).run(5.0)
        hybrid = spec.build(seed=0).run(5.0, fast_path="hybrid")
        assert hybrid.to_dict() == exact.to_dict()

    def test_exact_alias_matches_default(self):
        spec = get_scenario("workout")
        default = spec.build(seed=1).run(30.0)
        exact = spec.build(seed=1).run(30.0, fast_path="exact")
        assert exact.to_dict() == default.to_dict()

    def test_unknown_fast_path_rejected(self):
        spec = get_scenario("workout")
        simulator = spec.build(seed=0)
        with pytest.raises(SimulationError):
            simulator.run(30.0, fast_path="warp")


def test_validity_region_pinned_to_analytic_path():
    """The leap refuses outside the same utilisation region the analytic
    cohort path documents; the two constants must not drift apart."""
    assert macrotick.VALIDITY_UTILIZATION == analytic.VALIDITY_UTILIZATION


class TestHybridEnvelopeProperty:
    """Randomized hybrid-vs-exact agreement on event-bearing scenarios.

    Each draw picks a duty-cycled gallery body (two or more scheduled
    activation edges, so every run crosses at least two segment
    boundaries), a seed and a duration scale; the hybrid run must stay
    inside the documented envelope of the exact run.
    """

    @settings(max_examples=8, deadline=None)
    @given(scenario=st.sampled_from(["sleep_night", "workout"]),
           seed=st.integers(min_value=0, max_value=7),
           scale=st.floats(min_value=0.03, max_value=0.1))
    def test_hybrid_tracks_exact(self, scenario, seed, scale):
        # Lossless bodies only: at these short slices a lossy pair of
        # runs compares two independent erasure streams, whose variance
        # exceeds the power envelope (the gallery-wide test covers the
        # lossy scenarios at a long enough slice).
        spec = get_scenario(scenario)
        scaled = dataclasses.replace(
            spec, duration_seconds=spec.duration_seconds * scale)
        exact_sim = scaled.build(seed=seed)
        exact = MemberMetrics.from_simulation(
            0, scaled, exact_sim.run(scaled.duration_seconds))
        hybrid_sim = scaled.build(seed=seed)
        hybrid = MemberMetrics.from_simulation(
            0, scaled, hybrid_sim.run(scaled.duration_seconds,
                                      fast_path="hybrid"))
        assert_within_envelope(hybrid, exact)
