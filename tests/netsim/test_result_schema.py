"""Round-trip tests for SimulationResult.to_dict()/from_dict()."""

from __future__ import annotations

import json
import math

import pytest

from repro.comm.eqs_hbc import wir_commercial
from repro.errors import SimulationError
from repro.netsim import NodeConfig
from repro.netsim.simulator import (
    RESULT_SCHEMA_VERSION,
    BodyNetworkSimulator,
    EnergyEvent,
    SimulationResult,
)
from repro.netsim.traffic import PeriodicSource
from repro.runner.artifacts import sanitize


def _run_result() -> SimulationResult:
    simulator = BodyNetworkSimulator(wir_commercial(), rng=3)
    for index in range(3):
        simulator.attach(NodeConfig(f"leaf{index}",
                                    PeriodicSource.from_rate(
                                        4000.0, bits_per_packet=512.0),
                                    sensing_power_watts=3e-6))
    return simulator.run(60.0)


def _synthetic_result() -> SimulationResult:
    return SimulationResult(
        duration_seconds=10.0,
        delivered_packets=0,
        dropped_packets=2,
        delivered_bits=0.0,
        mean_latency_seconds=math.nan,
        p99_latency_seconds=math.nan,
        bus_utilization=0.25,
        per_node_average_power_watts={"a": 1e-6},
        per_node_goodput_bps={"a": 0.0},
        hub_rx_energy_joules=0.0,
        offered_packets=2,
        per_node_state_of_charge={"a": 0.0},
        per_node_first_death_seconds={"a": 4.5},
        per_node_delivered_before_death={"a": 0},
        energy_events=(
            EnergyEvent(kind="low_battery", node="a", time_seconds=2.0,
                        state_of_charge_fraction=0.2),
            EnergyEvent(kind="brownout", node="a", time_seconds=4.5,
                        state_of_charge_fraction=0.0),
        ),
        reliability_enabled=True,
        erased_attempts=3,
        lost_packets=2,
    )


class TestRoundTrip:
    def test_real_run_round_trips_exactly(self):
        result = _run_result()
        assert result.to_dict()["result_schema_version"] \
            == RESULT_SCHEMA_VERSION
        assert SimulationResult.from_dict(result.to_dict()) == result

    def test_round_trip_survives_json_and_sanitize(self):
        result = _synthetic_result()
        document = json.loads(json.dumps(sanitize(result.to_dict())))
        rebuilt = SimulationResult.from_dict(document)
        assert math.isnan(rebuilt.mean_latency_seconds)
        assert rebuilt.energy_events == result.energy_events
        assert rebuilt.per_node_first_death_seconds \
            == result.per_node_first_death_seconds
        assert rebuilt.delivered_fraction == result.delivered_fraction
        # NaN fields compare unequal, so compare everything else via dict.
        original = result.to_dict()
        restored = rebuilt.to_dict()
        for key in original:
            if key in ("mean_latency_seconds", "p99_latency_seconds"):
                continue
            assert restored[key] == original[key], key

    def test_derived_properties_recompute_after_round_trip(self):
        result = _run_result()
        rebuilt = SimulationResult.from_dict(result.to_dict())
        assert rebuilt.delivered_fraction == result.delivered_fraction
        assert rebuilt.attempts_per_delivered == result.attempts_per_delivered
        assert rebuilt.total_leaf_power_watts == result.total_leaf_power_watts
        assert rebuilt.alive_fraction == result.alive_fraction

    def test_energy_events_rebuild_as_typed_tuple(self):
        rebuilt = SimulationResult.from_dict(_synthetic_result().to_dict())
        assert isinstance(rebuilt.energy_events, tuple)
        assert all(isinstance(event, EnergyEvent)
                   for event in rebuilt.energy_events)
        assert rebuilt.first_death_seconds == 4.5


class TestVersionGate:
    def test_missing_version_is_rejected(self):
        document = _synthetic_result().to_dict()
        del document["result_schema_version"]
        with pytest.raises(SimulationError, match="schema version"):
            SimulationResult.from_dict(document)

    def test_future_version_is_rejected(self):
        document = _synthetic_result().to_dict()
        document["result_schema_version"] = RESULT_SCHEMA_VERSION + 1
        with pytest.raises(SimulationError, match="schema version"):
            SimulationResult.from_dict(document)
