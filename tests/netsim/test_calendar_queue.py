"""Calendar-queue edge cases: churn compaction, ties, heap equivalence.

The kernel's :class:`~repro.netsim.events.EventQueue` is a calendar
queue with lazy cancellation; :class:`~repro.netsim.events.
HeapEventQueue` is the historical binary heap kept as a reference
implementation.  These tests pin the behaviours the batched simulator
kernel depends on: cancelled entries never accumulate past the
compaction bound, simultaneous timestamps fire in scheduling order even
across calendar resizes, and any schedule/cancel workload pops in
exactly the order the heap reference produces.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.netsim.events import EventQueue, HeapEventQueue


class TestCancelledEventChurn:
    def test_compaction_bounds_stored_entries_under_heavy_churn(self):
        queue = EventQueue()
        survivors = []
        for round_index in range(50):
            events = [queue.schedule_at(float(round_index) + 0.001 * i,
                                        lambda: None)
                      for i in range(100)]
            for event in events[1:]:
                event.cancel()
            survivors.append(events[0])
            # Lazy cancellation may keep dead entries around, but the
            # compaction trigger caps them at half the physical store.
            assert queue.stored_events <= 2 * max(len(queue), 1)
        assert len(queue) == len(survivors)

    def test_cancelled_events_never_fire(self):
        queue = EventQueue()
        fired = []
        keep = [queue.schedule_at(float(i), lambda i=i: fired.append(i))
                for i in range(0, 100, 2)]
        drop = [queue.schedule_at(float(i), lambda i=i: fired.append(i))
                for i in range(1, 100, 2)]
        for event in drop:
            event.cancel()
        queue.run_until(200.0)
        assert fired == list(range(0, 100, 2))
        assert len(keep) == len(fired)

    def test_cancelling_everything_empties_the_queue(self):
        queue = EventQueue()
        events = [queue.schedule_at(float(i), lambda: None)
                  for i in range(257)]
        for event in events:
            event.cancel()
        assert len(queue) == 0
        assert queue.pop_next() is None
        # Compaction ran at some point, so the store is not 257-deep.
        assert queue.stored_events <= len(events)

    def test_double_cancel_is_idempotent(self):
        queue = EventQueue()
        event = queue.schedule_at(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert len(queue) == 0


class TestSimultaneousTimestamps:
    def test_ties_fire_in_scheduling_order_across_resizes(self):
        queue = EventQueue()
        fired = []
        # Enough entries to force the calendar through several resizes;
        # every event lands on one of only three timestamps.
        for i in range(600):
            queue.schedule_at(float(i % 3), lambda i=i: fired.append(i))
        queue.run_until(10.0)
        expected = ([i for i in range(600) if i % 3 == 0]
                    + [i for i in range(600) if i % 3 == 1]
                    + [i for i in range(600) if i % 3 == 2])
        assert fired == expected

    def test_tie_order_survives_interleaved_cancellation(self):
        queue = EventQueue()
        fired = []
        events = [queue.schedule_at(1.0, lambda i=i: fired.append(i))
                  for i in range(200)]
        for event in events[::2]:
            event.cancel()
        queue.run_until(2.0)
        assert fired == list(range(1, 200, 2))

    def test_pop_next_respects_claimed_sequences(self):
        # The kernel interleaves externally sequenced streams with the
        # control queue; a tie between a scheduled event and a claimed
        # sequence must resolve by sequence number.
        queue = EventQueue()
        first = queue.schedule_at(1.0, lambda: None)
        claimed = queue.claim_sequence()
        second = queue.schedule_at(1.0, lambda: None)
        assert first.sequence < claimed < second.sequence
        assert queue.peek_key() == (1.0, first.sequence)
        assert queue.pop_next() is first
        assert queue.pop_next() is second

    def test_past_scheduling_is_rejected(self):
        queue = EventQueue()
        queue.schedule_at(5.0, lambda: None)
        queue.run_until(5.0)
        with pytest.raises(SimulationError):
            queue.schedule_at(4.0, lambda: None)


_times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                   allow_infinity=False)


class TestHeapEquivalence:
    @given(times=st.lists(_times, min_size=1, max_size=60),
           cancels=st.lists(st.integers(min_value=0, max_value=59),
                            max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_calendar_and_heap_pop_identical_sequences(self, times, cancels):
        calendar, heap = EventQueue(), HeapEventQueue()
        fired: dict[str, list[tuple[float, int]]] = {"cal": [], "heap": []}
        scheduled = {"cal": [], "heap": []}
        for kind, queue in (("cal", calendar), ("heap", heap)):
            for label, time in enumerate(times):
                scheduled[kind].append(queue.schedule_at(
                    time,
                    lambda kind=kind, time=time, label=label:
                        fired[kind].append((time, label))))
            for index in cancels:
                scheduled[kind][index % len(times)].cancel()
        while calendar.step():
            pass
        while heap.step():
            pass
        assert fired["cal"] == fired["heap"]
        assert calendar.now == heap.now
        assert len(calendar) == len(heap) == 0

    @given(times=st.lists(_times, min_size=1, max_size=40),
           horizon=_times)
    @settings(max_examples=60, deadline=None)
    def test_run_until_fires_the_same_prefix(self, times, horizon):
        calendar, heap = EventQueue(), HeapEventQueue()
        fired: dict[str, list[tuple[float, int]]] = {"cal": [], "heap": []}
        for kind, queue in (("cal", calendar), ("heap", heap)):
            for label, time in enumerate(times):
                queue.schedule_at(
                    time,
                    lambda kind=kind, time=time, label=label:
                        fired[kind].append((time, label)))
            queue.run_until(horizon)
        assert fired["cal"] == fired["heap"]
        assert calendar.now == heap.now == horizon
        assert len(calendar) == len(heap)
