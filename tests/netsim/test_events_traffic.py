"""Tests for repro.netsim.events, packet and traffic sources."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.netsim.events import EventQueue
from repro.netsim.packet import Packet
from repro.netsim.traffic import PeriodicSource, PoissonSource


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule_at(2.0, lambda: fired.append("late"))
        queue.schedule_at(1.0, lambda: fired.append("early"))
        queue.run_until(10.0)
        assert fired == ["early", "late"]

    def test_simultaneous_events_fire_in_scheduling_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule_at(1.0, lambda: fired.append("first"))
        queue.schedule_at(1.0, lambda: fired.append("second"))
        queue.run_until(2.0)
        assert fired == ["first", "second"]

    def test_run_until_stops_before_later_events(self):
        queue = EventQueue()
        fired = []
        queue.schedule_at(5.0, lambda: fired.append("too late"))
        queue.run_until(2.0)
        assert fired == []
        assert queue.now == pytest.approx(2.0)
        queue.run_until(6.0)
        assert fired == ["too late"]

    def test_schedule_in_is_relative(self):
        queue = EventQueue()
        times = []
        queue.schedule_in(1.0, lambda: times.append(queue.now))
        queue.run_until(5.0)
        assert times == [pytest.approx(1.0)]

    def test_cancelled_events_do_not_fire(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule_at(1.0, lambda: fired.append("x"))
        event.cancel()
        queue.run_until(2.0)
        assert fired == []

    def test_cannot_schedule_in_the_past(self):
        queue = EventQueue()
        queue.schedule_at(1.0, lambda: None)
        queue.run_until(5.0)
        with pytest.raises(SimulationError):
            queue.schedule_at(2.0, lambda: None)

    def test_cannot_run_backwards(self):
        queue = EventQueue()
        queue.run_until(3.0)
        with pytest.raises(SimulationError):
            queue.run_until(1.0)

    def test_events_can_schedule_more_events(self):
        queue = EventQueue()
        fired = []

        def chain() -> None:
            fired.append(queue.now)
            if len(fired) < 5:
                queue.schedule_in(1.0, chain)

        queue.schedule_at(0.0, chain)
        queue.run_until(10.0)
        assert fired == [pytest.approx(t) for t in (0.0, 1.0, 2.0, 3.0, 4.0)]

    def test_step_returns_false_when_empty(self):
        assert EventQueue().step() is False

    def test_len_counts_pending_events(self):
        queue = EventQueue()
        queue.schedule_at(1.0, lambda: None)
        event = queue.schedule_at(2.0, lambda: None)
        event.cancel()
        assert len(queue) == 1

    def test_len_is_constant_time_bookkeeping(self):
        """len() reads counters; cancelling updates them incrementally."""
        queue = EventQueue()
        handles = [queue.schedule_at(float(index), lambda: None)
                   for index in range(100)]
        assert len(queue) == 100
        for handle in handles[:30]:
            handle.cancel()
        assert len(queue) == 70

    def test_cancelled_majority_triggers_compaction(self):
        """The store never carries more cancelled entries than live ones."""
        queue = EventQueue()
        handles = [queue.schedule_at(float(index), lambda: None)
                   for index in range(1000)]
        for handle in handles[:501]:
            handle.cancel()
        # Compaction has physically removed the cancelled events.
        assert queue.stored_events == 499
        assert len(queue) == 499

    def test_double_cancel_counts_once(self):
        queue = EventQueue()
        keep = queue.schedule_at(1.0, lambda: None)
        event = queue.schedule_at(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert len(queue) == 1
        assert keep is not None

    def test_cancel_after_firing_does_not_corrupt_count(self):
        queue = EventQueue()
        fired = []
        early = queue.schedule_at(1.0, lambda: fired.append("early"))
        queue.schedule_at(2.0, lambda: fired.append("late"))
        queue.run_until(1.5)
        early.cancel()  # stale handle: the event already fired
        queue.run_until(3.0)
        assert fired == ["early", "late"]
        assert len(queue) == 0

    def test_compaction_preserves_firing_order(self):
        queue = EventQueue()
        fired: list[int] = []
        handles = [queue.schedule_at(float(index % 7),
                                     lambda index=index: fired.append(index))
                   for index in range(50)]
        for handle in handles[::2]:
            handle.cancel()
        queue.run_until(10.0)
        survivors = [index for index in range(50) if index % 2 == 1]
        expected = sorted(survivors, key=lambda index: (index % 7, index))
        assert fired == expected

    def test_many_simultaneous_events_fire_in_scheduling_order(self):
        """Determinism satellite: equal-time events keep insertion order."""
        queue = EventQueue()
        fired: list[int] = []
        for index in range(200):
            queue.schedule_at(1.0, lambda index=index: fired.append(index))
        queue.run_until(2.0)
        assert fired == list(range(200))

    def test_simultaneous_events_deterministic_across_runs(self):
        def run_once() -> list[int]:
            queue = EventQueue()
            fired: list[int] = []
            for index in range(64):
                queue.schedule_at(0.5, lambda index=index: fired.append(index))
            handles = [queue.schedule_at(0.5, lambda: fired.append(-1))
                       for _ in range(8)]
            for handle in handles[::2]:
                handle.cancel()
            queue.run_until(1.0)
            return fired

        assert run_once() == run_once()


class TestPacket:
    def test_latency_requires_delivery(self):
        packet = Packet(source="a", destination="hub", bits=100.0, created_at=0.0)
        with pytest.raises(SimulationError):
            _ = packet.latency_seconds
        packet.delivered_at = 0.5
        assert packet.latency_seconds == pytest.approx(0.5)

    def test_queueing_delay(self):
        packet = Packet(source="a", destination="hub", bits=1.0, created_at=1.0)
        packet.queued_at = 1.2
        assert packet.queueing_delay_seconds == pytest.approx(0.2)

    def test_negative_size_rejected(self):
        with pytest.raises(SimulationError):
            Packet(source="a", destination="b", bits=-1.0, created_at=0.0)


class TestTrafficSources:
    def test_periodic_average_rate(self):
        source = PeriodicSource(period_seconds=0.5, bits_per_packet=1000.0)
        assert source.average_rate_bps() == pytest.approx(2000.0)

    def test_periodic_from_rate_round_trip(self):
        source = PeriodicSource.from_rate(64_000.0, bits_per_packet=8192.0)
        assert source.average_rate_bps() == pytest.approx(64_000.0)

    def test_periodic_deterministic(self, rng):
        source = PeriodicSource(period_seconds=0.25, bits_per_packet=100.0)
        assert source.next_interarrival_seconds(rng) == 0.25
        assert source.packet_bits(rng) == 100.0

    def test_poisson_mean_rate_approximately_correct(self):
        source = PoissonSource(mean_interarrival_seconds=0.1,
                               mean_bits_per_packet=1000.0)
        rng = np.random.default_rng(0)
        intervals = [source.next_interarrival_seconds(rng) for _ in range(5000)]
        assert np.mean(intervals) == pytest.approx(0.1, rel=0.1)

    def test_poisson_packet_sizes_positive(self):
        source = PoissonSource(mean_interarrival_seconds=1.0,
                               mean_bits_per_packet=100.0,
                               size_jitter_fraction=0.5)
        rng = np.random.default_rng(1)
        sizes = [source.packet_bits(rng) for _ in range(1000)]
        assert min(sizes) >= 8.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            PeriodicSource(period_seconds=0.0, bits_per_packet=1.0)
        with pytest.raises(SimulationError):
            PoissonSource(mean_interarrival_seconds=1.0, mean_bits_per_packet=0.0)
        with pytest.raises(SimulationError):
            PeriodicSource.from_rate(0.0)

    @given(st.floats(min_value=1e-3, max_value=10.0),
           st.floats(min_value=8.0, max_value=1e6))
    def test_periodic_rate_property(self, period, bits):
        source = PeriodicSource(period_seconds=period, bits_per_packet=bits)
        assert source.average_rate_bps() == pytest.approx(bits / period)
