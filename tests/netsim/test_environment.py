"""RFEnvironment: geometry, epoch timeline, neutrality, co-simulation."""

from __future__ import annotations

import math

import pytest

from repro import units
from repro.comm.eqs_hbc import wir_commercial
from repro.errors import SimulationError
from repro.netsim.config import NodeConfig
from repro.netsim.environment import (
    MINIMUM_BODY_DISTANCE_METRES,
    NO_INTERFERENCE,
    EnvironmentBody,
    InterferenceState,
    RFEnvironment,
)
from repro.netsim.simulator import BodyNetworkSimulator
from repro.netsim.traffic import PeriodicSource


def make_simulator(seed: int = 0, nodes: int = 2) -> BodyNetworkSimulator:
    simulator = BodyNetworkSimulator(wir_commercial(), rng=seed)
    for index in range(nodes):
        simulator.attach(NodeConfig(
            f"leaf{index}",
            PeriodicSource.from_rate(units.kilobit_per_second(64.0)),
            sensing_power_watts=units.microwatt(30.0),
        ))
    return simulator


def make_body(name: str, *, seed: int = 0, duration: float = 2.0,
              **overrides) -> EnvironmentBody:
    return EnvironmentBody(
        name=name,
        simulator=make_simulator(seed=seed),
        duration_seconds=duration,
        **overrides,
    )


class TestInterferenceState:
    def test_default_is_neutral(self):
        assert NO_INTERFERENCE.neutral
        assert InterferenceState().neutral

    def test_any_contribution_breaks_neutrality(self):
        assert not InterferenceState(rf_dbm=-120.0).neutral
        assert not InterferenceState(eqs_volts=1e-9).neutral


class TestEnvironmentBody:
    def test_occupancy_window_validation(self):
        with pytest.raises(SimulationError):
            make_body("a", arrival_fraction=0.7, departure_fraction=0.3)

    def test_presence_window_half_open(self):
        body = make_body("a", arrival_fraction=0.25,
                         departure_fraction=0.75)
        assert not body.present(0.0)
        assert body.present(0.25)
        assert body.present(0.5)
        assert not body.present(0.75)

    def test_full_run_presence_includes_endpoint(self):
        assert make_body("a").present(1.0)

    def test_duty_fraction_clamped(self):
        assert make_body("a", airtime_fraction=1.8).duty_fraction == 1.0


class TestConstruction:
    def test_needs_bodies(self):
        with pytest.raises(SimulationError):
            RFEnvironment([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(SimulationError, match="unique"):
            RFEnvironment([make_body("a"), make_body("a", seed=1)])

    def test_rejects_disagreeing_durations(self):
        with pytest.raises(SimulationError, match="duration"):
            RFEnvironment([make_body("a"),
                           make_body("b", seed=1, duration=3.0)])


class TestGeometry:
    def test_distance_clamped_at_minimum(self):
        env = RFEnvironment([
            make_body("a"),
            make_body("b", seed=1, position_metres=(0.0, 0.01))])
        assert env.distance_metres(env.bodies[0], env.bodies[1]) \
            == MINIMUM_BODY_DISTANCE_METRES

    def test_rf_contribution_log_distance(self):
        env = RFEnvironment(
            [make_body("a"),
             make_body("b", seed=1, airtime_fraction=0.1,
                       rf_level_dbm=-10.0, position_metres=(10.0, 0.0))],
            rf_reference_loss_db=40.0, rf_path_loss_exponent=3.0)
        # -10 dBm + 10*log10(0.1) - (40 + 30*log10(10)) = -90 dBm.
        rf = env._rf_contribution_dbm(env.bodies[0], env.bodies[1])
        assert rf == pytest.approx(-90.0)

    def test_eqs_contribution_near_field_decay(self):
        env = RFEnvironment(
            [make_body("a"),
             make_body("b", seed=1, airtime_fraction=0.25,
                       eqs_level_volts=8e-4, position_metres=(2.0, 0.0))],
            eqs_coupling_exponent=3.0)
        # 8e-4 * (1/2)^3 * sqrt(0.25) = 5e-5 V.
        eqs = env._eqs_contribution_volts(env.bodies[0], env.bodies[1])
        assert eqs == pytest.approx(5e-5)

    def test_silent_interferer_contributes_nothing(self):
        env = RFEnvironment([
            make_body("a"),
            make_body("b", seed=1, airtime_fraction=0.0,
                      rf_level_dbm=-10.0, eqs_level_volts=1.0,
                      position_metres=(1.0, 0.0))])
        assert env.interference_at(0, [True, True]) is NO_INTERFERENCE


class TestInterferenceAt:
    def loud(self, name: str, seed: int,
             position: tuple[float, float]) -> EnvironmentBody:
        return make_body(name, seed=seed, airtime_fraction=0.2,
                         rf_level_dbm=-20.0, eqs_level_volts=5e-4,
                         position_metres=position)

    def test_lone_body_is_neutral(self):
        env = RFEnvironment([self.loud("a", 0, (0.0, 0.0))])
        assert env.interference_at(0, [True]) is NO_INTERFERENCE

    def test_absent_victim_feels_nothing(self):
        env = RFEnvironment([self.loud("a", 0, (0.0, 0.0)),
                             self.loud("b", 1, (1.0, 0.0))])
        assert env.interference_at(0, [False, True]) is NO_INTERFERENCE

    def test_absent_interferer_radiates_nothing(self):
        env = RFEnvironment([self.loud("a", 0, (0.0, 0.0)),
                             self.loud("b", 1, (1.0, 0.0))])
        assert env.interference_at(0, [True, False]) is NO_INTERFERENCE

    def test_contributions_accumulate_in_power(self):
        pair = RFEnvironment([self.loud("a", 0, (0.0, 0.0)),
                              self.loud("b", 1, (1.0, 0.0))])
        trio = RFEnvironment([self.loud("a", 0, (0.0, 0.0)),
                              self.loud("b", 1, (1.0, 0.0)),
                              self.loud("c", 2, (0.0, 1.0))])
        two = pair.interference_at(0, [True, True])
        three = trio.interference_at(0, [True, True, True])
        assert three.rf_dbm > two.rf_dbm
        assert three.eqs_volts > two.eqs_volts


class TestEpochTimeline:
    def test_epochs_from_occupancy_boundaries(self):
        env = RFEnvironment([
            make_body("a"),
            make_body("b", seed=1, arrival_fraction=0.25),
            make_body("c", seed=2, departure_fraction=0.75),
        ])
        assert env.epoch_fractions() == [0.0, 0.25, 0.75]

    def test_schedule_computed_once(self):
        env = RFEnvironment([make_body("a")])
        first = env.interference_schedule()
        assert env.interference_schedule() is first

    def test_one_body_schedule_is_single_neutral_epoch(self):
        env = RFEnvironment([make_body("a")])
        schedule = env.interference_schedule()
        assert schedule == [(0.0, (NO_INTERFERENCE,))]


class TestRun:
    def test_one_body_run_bit_identical_to_standalone(self):
        standalone = make_simulator(seed=7).run(2.0)
        env = RFEnvironment([make_body("solo", seed=7)])
        wrapped = env.run().result_for("solo")
        assert wrapped.delivered_packets == standalone.delivered_packets
        for attribute in ("mean_latency_seconds", "p99_latency_seconds",
                          "hub_energy_joules", "bus_utilization"):
            assert getattr(wrapped, attribute).hex() \
                == getattr(standalone, attribute).hex()
        for name, power in standalone.per_node_average_power_watts.items():
            assert wrapped.per_node_average_power_watts[name].hex() \
                == power.hex()

    def test_swap_events_replay_the_schedule(self):
        seen: list[tuple[float, InterferenceState]] = []
        late = make_body("late", seed=1, arrival_fraction=0.5,
                         airtime_fraction=0.2, rf_level_dbm=-20.0)
        victim = make_body("victim", seed=0)
        victim.apply_interference = lambda state: seen.append(
            (victim.simulator.queue.now, state))
        env = RFEnvironment([victim, late])
        env.run()
        # t=0: the late body is absent, the victim stays neutral (no
        # event, no install).  t=1.0: the arrival swaps the victim's
        # state in as an ordinary control event on its own queue.
        assert len(seen) == 1
        time_seconds, state = seen[0]
        assert time_seconds == pytest.approx(1.0)
        assert not state.neutral
        assert victim.current_interference is state

    def test_occupancy_gates_traffic(self):
        always = make_simulator(seed=3).run(2.0)
        env = RFEnvironment([make_body("half", seed=3,
                                       arrival_fraction=0.5)])
        half = env.run().result_for("half")
        assert 0 < half.delivered_packets < always.delivered_packets

    def test_result_accessors(self):
        env = RFEnvironment([make_body("a"), make_body("b", seed=1)])
        result = env.run()
        assert result.body_names == ("a", "b")
        assert result.result_for("a") is result.body_results[0]
        with pytest.raises(SimulationError, match="unknown body"):
            result.result_for("c")
        assert 0.0 <= result.mean_delivered_fraction <= 1.0
        assert dict(result)["b"] is result.body_results[1]
