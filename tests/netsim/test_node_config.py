"""Tests for the NodeConfig front door (the sole way to attach nodes)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.comm.eqs_hbc import wir_commercial
from repro.energy.battery import BatterySpec
from repro.errors import SimulationError
from repro.netsim import NodeConfig
from repro.netsim.simulator import BodyNetworkSimulator
from repro.netsim.traffic import PeriodicSource


def _source() -> PeriodicSource:
    return PeriodicSource.from_rate(2000.0,
                                    bits_per_packet=256.0)


def _battery(joules: float = 0.05) -> BatterySpec:
    return BatterySpec(name="coin", capacity_mah=joules / (3.6 * 3.0),
                       self_discharge_per_year=0.0)


class TestAttach:
    def test_attach_registers_the_node(self):
        simulator = BodyNetworkSimulator(wir_commercial())
        node = simulator.attach(NodeConfig("ecg", _source(),
                                           sensing_power_watts=1e-6))
        assert simulator.nodes["ecg"] is node
        assert node.sensing_power_watts == 1e-6

    def test_duplicate_name_is_rejected(self):
        simulator = BodyNetworkSimulator(wir_commercial())
        simulator.attach(NodeConfig("ecg", _source()))
        with pytest.raises(SimulationError, match="already exists"):
            simulator.attach(NodeConfig("ecg", _source()))

    def test_invalid_stride_is_rejected(self):
        simulator = BodyNetworkSimulator(wir_commercial())
        with pytest.raises(SimulationError, match="stride"):
            simulator.attach(NodeConfig("ecg", _source(),
                                        low_battery_stride=0))

    def test_battery_config_arms_the_energy_runtime(self):
        simulator = BodyNetworkSimulator(wir_commercial())
        node = simulator.attach(NodeConfig("ecg", _source(),
                                           battery=_battery(),
                                           initial_charge_fraction=0.5))
        assert node.energy is not None
        assert node.energy.state_of_charge_fraction == pytest.approx(0.5)

    def test_config_is_frozen_and_reusable(self):
        config = NodeConfig("ecg", _source())
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.name = "other"
        first = BodyNetworkSimulator(wir_commercial())
        second = BodyNetworkSimulator(wir_commercial())
        first.attach(config)
        second.attach(config)
        assert "ecg" in first.nodes and "ecg" in second.nodes


class TestAddNodeRemoved:
    def test_add_node_shim_is_gone(self):
        # The deprecation cycle is complete (frozen in PR 8, deleted
        # here): the keyword-soup front end must not quietly return.
        simulator = BodyNetworkSimulator(wir_commercial())
        with pytest.raises(AttributeError):
            simulator.add_node("ecg", _source())
