"""Tests for the NodeConfig front door and the add_node shim."""

from __future__ import annotations

import dataclasses
import warnings

import pytest

from repro.comm.eqs_hbc import wir_commercial
from repro.energy.battery import BatterySpec
from repro.errors import SimulationError
from repro.netsim import NodeConfig
from repro.netsim import simulator as simulator_module
from repro.netsim.simulator import BodyNetworkSimulator
from repro.netsim.traffic import PeriodicSource


def _source() -> PeriodicSource:
    return PeriodicSource.from_rate(2000.0,
                                    bits_per_packet=256.0)


def _battery(joules: float = 0.05) -> BatterySpec:
    return BatterySpec(name="coin", capacity_mah=joules / (3.6 * 3.0),
                       self_discharge_per_year=0.0)


class TestAttach:
    def test_attach_registers_the_node(self):
        simulator = BodyNetworkSimulator(wir_commercial())
        node = simulator.attach(NodeConfig("ecg", _source(),
                                           sensing_power_watts=1e-6))
        assert simulator.nodes["ecg"] is node
        assert node.sensing_power_watts == 1e-6

    def test_duplicate_name_is_rejected(self):
        simulator = BodyNetworkSimulator(wir_commercial())
        simulator.attach(NodeConfig("ecg", _source()))
        with pytest.raises(SimulationError, match="already exists"):
            simulator.attach(NodeConfig("ecg", _source()))

    def test_invalid_stride_is_rejected(self):
        simulator = BodyNetworkSimulator(wir_commercial())
        with pytest.raises(SimulationError, match="stride"):
            simulator.attach(NodeConfig("ecg", _source(),
                                        low_battery_stride=0))

    def test_battery_config_arms_the_energy_runtime(self):
        simulator = BodyNetworkSimulator(wir_commercial())
        node = simulator.attach(NodeConfig("ecg", _source(),
                                           battery=_battery(),
                                           initial_charge_fraction=0.5))
        assert node.energy is not None
        assert node.energy.state_of_charge_fraction == pytest.approx(0.5)

    def test_config_is_frozen_and_reusable(self):
        config = NodeConfig("ecg", _source())
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.name = "other"
        first = BodyNetworkSimulator(wir_commercial())
        second = BodyNetworkSimulator(wir_commercial())
        first.attach(config)
        second.attach(config)
        assert "ecg" in first.nodes and "ecg" in second.nodes


class TestAddNodeShim:
    def test_add_node_forwards_and_warns_once(self, monkeypatch):
        monkeypatch.setattr(simulator_module, "_ADD_NODE_WARNED", False)
        simulator = BodyNetworkSimulator(wir_commercial())
        with pytest.warns(DeprecationWarning, match="NodeConfig"):
            simulator.add_node("ecg", _source())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            simulator.add_node("imu", _source())
        assert not [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
        assert set(simulator.nodes) == {"ecg", "imu"}

    def test_shim_and_attach_produce_identical_runs(self):
        via_shim = BodyNetworkSimulator(wir_commercial(), rng=7)
        via_shim.add_node("ecg", _source(), sensing_power_watts=1e-6)
        via_config = BodyNetworkSimulator(wir_commercial(), rng=7)
        via_config.attach(NodeConfig("ecg", _source(),
                                     sensing_power_watts=1e-6))
        old = via_shim.run(30.0)
        new = via_config.run(30.0)
        assert old == new
