"""Tests for repro.netsim.bus and repro.netsim.simulator."""

from __future__ import annotations

import pytest

from repro import units
from repro.comm.eqs_hbc import wir_commercial
from repro.errors import SimulationError
from repro.netsim.bus import SharedBus
from repro.netsim.events import EventQueue
from repro.netsim.packet import Packet
from repro.netsim.simulator import BodyNetworkSimulator
from repro.netsim.traffic import PeriodicSource, PoissonSource
from repro.netsim.config import NodeConfig


def make_bus(rate: float = 1e6, overhead: float = 0.0,
             max_queue: int = 100) -> tuple[EventQueue, SharedBus]:
    queue = EventQueue()
    bus = SharedBus(queue, link_rate_bps=rate,
                    per_packet_overhead_seconds=overhead,
                    max_queue_packets=max_queue)
    return queue, bus


class TestSharedBus:
    def test_single_packet_latency_is_serialization_time(self):
        queue, bus = make_bus(rate=1e6)
        packet = Packet(source="a", destination="hub", bits=1e6, created_at=0.0)
        bus.submit(packet)
        queue.run_until(10.0)
        assert packet.delivered
        assert packet.latency_seconds == pytest.approx(1.0)

    def test_fifo_ordering(self):
        queue, bus = make_bus(rate=1e6)
        first = Packet(source="a", destination="hub", bits=1e5, created_at=0.0)
        second = Packet(source="b", destination="hub", bits=1e5, created_at=0.0)
        bus.submit(first)
        bus.submit(second)
        queue.run_until(10.0)
        assert first.delivered_at < second.delivered_at

    def test_queueing_delay_accumulates(self):
        queue, bus = make_bus(rate=1e6)
        packets = [
            Packet(source="a", destination="hub", bits=5e5, created_at=0.0)
            for _ in range(3)
        ]
        for packet in packets:
            bus.submit(packet)
        queue.run_until(10.0)
        latencies = [p.latency_seconds for p in packets]
        assert latencies == sorted(latencies)
        assert latencies[-1] == pytest.approx(1.5)

    def test_overhead_charged_per_packet(self):
        queue, bus = make_bus(rate=1e6, overhead=0.01)
        packet = Packet(source="a", destination="hub", bits=1e4, created_at=0.0)
        bus.submit(packet)
        queue.run_until(1.0)
        assert packet.latency_seconds == pytest.approx(0.01 + 0.01)

    def test_drops_when_queue_full(self):
        queue, bus = make_bus(rate=1e3, max_queue=2)
        accepted = [
            bus.submit(Packet(source="a", destination="hub", bits=1e3, created_at=0.0))
            for _ in range(5)
        ]
        assert accepted.count(False) >= 2
        assert bus.stats.dropped_packets >= 2

    def test_stats_utilization_and_throughput(self):
        queue, bus = make_bus(rate=1e6)
        bus.submit(Packet(source="a", destination="hub", bits=5e5, created_at=0.0))
        queue.run_until(1.0)
        assert bus.stats.throughput_bps(1.0) == pytest.approx(5e5)
        assert bus.stats.utilization(1.0) == pytest.approx(0.5)

    def test_delivery_callback_invoked(self):
        queue, bus = make_bus()
        seen = []
        bus.on_delivery(seen.append)
        bus.submit(Packet(source="a", destination="hub", bits=100.0, created_at=0.0))
        queue.run_until(1.0)
        assert len(seen) == 1

    def test_latency_percentiles_require_deliveries(self):
        _, bus = make_bus()
        with pytest.raises(SimulationError):
            bus.stats.latency_percentile(99.0)

    def test_invalid_configuration_rejected(self):
        queue = EventQueue()
        with pytest.raises(SimulationError):
            SharedBus(queue, link_rate_bps=0.0)


class TestBodyNetworkSimulator:
    def make_simulator(self) -> BodyNetworkSimulator:
        return BodyNetworkSimulator(wir_commercial(), rng=0)

    def test_runs_and_delivers_packets(self):
        simulator = self.make_simulator()
        simulator.attach(NodeConfig("ecg", PeriodicSource.from_rate(3_000.0),
                           sensing_power_watts=units.microwatt(30.0)))
        result = simulator.run(5.0)
        assert result.delivered_packets > 0
        assert result.dropped_packets == 0

    def test_goodput_tracks_offered_rate(self):
        simulator = self.make_simulator()
        simulator.attach(NodeConfig("audio", PeriodicSource.from_rate(256_000.0)))
        result = simulator.run(5.0)
        assert result.per_node_goodput_bps["audio"] == pytest.approx(256_000.0, rel=0.15)

    def test_leaf_power_dominated_by_sensing_for_low_rate_nodes(self):
        """A 3 kb/s ECG leaf on Wi-R: communication adds < 2 uW on average."""
        simulator = self.make_simulator()
        simulator.attach(NodeConfig("ecg", PeriodicSource.from_rate(3_000.0),
                           sensing_power_watts=units.microwatt(30.0)))
        result = simulator.run(10.0)
        power = result.per_node_average_power_watts["ecg"]
        assert units.microwatt(29.0) <= power <= units.microwatt(34.0)

    def test_hub_receive_energy_positive(self):
        simulator = self.make_simulator()
        simulator.attach(NodeConfig("imu", PeriodicSource.from_rate(9_600.0)))
        result = simulator.run(2.0)
        assert result.hub_rx_energy_joules > 0.0

    def test_latency_grows_with_contention(self):
        lightly_loaded = self.make_simulator()
        lightly_loaded.attach(NodeConfig("n0", PeriodicSource.from_rate(100_000.0)))
        light = lightly_loaded.run(2.0)

        heavily_loaded = self.make_simulator()
        for index in range(30):
            heavily_loaded.attach(NodeConfig(f"n{index}", PeriodicSource.from_rate(100_000.0)))
        heavy = heavily_loaded.run(2.0)
        assert heavy.mean_latency_seconds > light.mean_latency_seconds
        assert heavy.bus_utilization > light.bus_utilization

    def test_poisson_sources_supported(self):
        simulator = self.make_simulator()
        simulator.attach(NodeConfig("events", PoissonSource(
            mean_interarrival_seconds=0.05, mean_bits_per_packet=4096.0,
        )))
        result = simulator.run(5.0)
        assert result.delivered_packets > 10

    def test_duplicate_node_rejected(self):
        simulator = self.make_simulator()
        simulator.attach(NodeConfig("x", PeriodicSource.from_rate(1000.0)))
        with pytest.raises(SimulationError):
            simulator.attach(NodeConfig("x", PeriodicSource.from_rate(1000.0)))

    def test_run_requires_nodes(self):
        with pytest.raises(SimulationError):
            self.make_simulator().run(1.0)

    def test_describe(self):
        simulator = self.make_simulator()
        simulator.attach(NodeConfig("a", PeriodicSource.from_rate(1000.0)))
        description = simulator.describe()
        assert description["node_count"] == 1
        assert description["technology"] == wir_commercial().name

    def test_deterministic_given_seed(self):
        def run_once() -> float:
            simulator = BodyNetworkSimulator(wir_commercial(), rng=7)
            simulator.attach(NodeConfig("events", PoissonSource(
                mean_interarrival_seconds=0.02, mean_bits_per_packet=2048.0,
            )))
            return simulator.run(2.0).delivered_bits

        assert run_once() == pytest.approx(run_once())
