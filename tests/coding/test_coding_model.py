"""Tests for the rate-adaptive source-coding model (repro.coding)."""

from __future__ import annotations

import pytest

from repro.coding import (
    COMPRESSIBILITY,
    DEFAULT_COMPRESSIBILITY,
    CodingSpec,
    ModalityCompressibility,
    compressibility_for,
)
from repro.errors import ConfigurationError
from repro.sensors.catalog import SensorModality


class TestCompressibility:
    def test_paper_modalities_have_entries(self):
        for modality in (SensorModality.IMU, SensorModality.ECG,
                         SensorModality.TEMPERATURE, SensorModality.PPG):
            entry = COMPRESSIBILITY[modality]
            assert 0.0 < entry.distortion_floor <= entry.lossless_floor <= 1.0

    def test_unknown_and_none_fall_back_to_default(self):
        assert compressibility_for(None) is DEFAULT_COMPRESSIBILITY

    def test_correlation_lowers_the_floor(self):
        entry = COMPRESSIBILITY[SensorModality.ECG]
        assert entry.floor(0.8) < entry.floor(0.2) < entry.floor(0.0)
        assert entry.floor(0.0) == entry.lossless_floor

    def test_floor_never_crosses_the_distortion_bound(self):
        for entry in COMPRESSIBILITY.values():
            assert entry.floor(1.0) >= entry.distortion_floor

    def test_invalid_floors_rejected(self):
        with pytest.raises(ConfigurationError):
            ModalityCompressibility(lossless_floor=0.3,
                                    distortion_floor=0.5,
                                    correlation_gain=0.5)
        with pytest.raises(ConfigurationError):
            ModalityCompressibility(lossless_floor=0.5,
                                    distortion_floor=0.2,
                                    correlation_gain=1.5)


class TestCodingSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CodingSpec(rate=0.0)
        with pytest.raises(ConfigurationError):
            CodingSpec(rate=1.2)
        with pytest.raises(ConfigurationError):
            CodingSpec(rate=0.5, correlation=1.0)
        with pytest.raises(ConfigurationError):
            CodingSpec(rate=0.5, energy_per_source_bit_joules=-1.0)
        with pytest.raises(ConfigurationError):
            CodingSpec(rate=0.5, effort_exponent=-0.1)

    def test_rate_clamps_at_the_floor(self):
        spec = CodingSpec(rate=0.05)
        floor = spec.floor(SensorModality.ECG)
        assert spec.effective_rate(SensorModality.ECG) == floor
        assert spec.coded_bits(4096.0, SensorModality.ECG) \
            == pytest.approx(4096.0 * floor)

    def test_passthrough_rate_is_exact(self):
        spec = CodingSpec(rate=1.0)
        assert spec.effective_rate(SensorModality.IMU) == 1.0
        bits = 4096.0
        assert spec.coded_bits(bits, SensorModality.IMU) == bits
        assert spec.compression_depth(SensorModality.IMU) == 0.0

    def test_encode_energy_grows_with_depth(self):
        energies = [
            CodingSpec(rate=rate).encode_energy_per_source_bit_joules(
                SensorModality.ECG)
            for rate in (1.0, 0.8, 0.6, 0.5)]
        assert energies == sorted(energies)
        assert energies[-1] > energies[0]

    def test_zero_depth_energy_is_the_base_scale(self):
        spec = CodingSpec(rate=1.0, energy_per_source_bit_joules=7e-12)
        assert spec.encode_energy_per_source_bit_joules(
            SensorModality.ECG) == 7e-12

    def test_correlation_makes_a_given_rate_cheaper(self):
        lonely = CodingSpec(rate=0.6, correlation=0.0)
        helped = CodingSpec(rate=0.6, correlation=0.8)
        assert helped.encode_energy_per_source_bit_joules(
            SensorModality.ECG) \
            < lonely.encode_energy_per_source_bit_joules(SensorModality.ECG)

    def test_correlation_unlocks_lower_rates(self):
        lonely = CodingSpec(rate=0.01, correlation=0.0)
        helped = CodingSpec(rate=0.01, correlation=0.9)
        assert helped.effective_rate(SensorModality.ECG) \
            < lonely.effective_rate(SensorModality.ECG)

    def test_encode_power_scales_with_source_rate(self):
        spec = CodingSpec(rate=0.7)
        one = spec.encode_power_watts(1000.0, SensorModality.IMU)
        two = spec.encode_power_watts(2000.0, SensorModality.IMU)
        assert two == pytest.approx(2.0 * one)

    def test_depth_is_bounded(self):
        for rate in (1.0, 0.7, 0.4, 0.01):
            spec = CodingSpec(rate=rate, correlation=0.5)
            depth = spec.compression_depth(SensorModality.PPG)
            assert 0.0 <= depth <= 1.0
