"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.body.model import default_adult_body
from repro.comm.ble import ble_1m_phy
from repro.comm.eqs_hbc import wir_commercial, wir_leaf_node
from repro.core.compute import hub_soc, isa_accelerator, leaf_mcu
from repro.energy.battery import coin_cell_high_capacity
from repro.sensors.frontend import AFESurveyModel


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for signal-generation tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def wir():
    """Commercial Wi-R operating point (4 Mb/s, 100 pJ/bit)."""
    return wir_commercial()


@pytest.fixture
def wir_leaf():
    """Leaf-class Wi-R operating point (1 Mb/s, 100 pJ/bit)."""
    return wir_leaf_node()


@pytest.fixture
def ble():
    """BLE 1M PHY baseline radio."""
    return ble_1m_phy()


@pytest.fixture
def body():
    """Default 1.75 m adult body model."""
    return default_adult_body()


@pytest.fixture
def battery_1000mah():
    """The paper's Fig. 3 battery assumption."""
    return coin_cell_high_capacity()


@pytest.fixture
def survey_model():
    """Default AFE sensing-power survey fit."""
    return AFESurveyModel()


@pytest.fixture
def leaf_accelerator():
    """ISA compute device on a human-inspired leaf node."""
    return isa_accelerator()


@pytest.fixture
def mcu():
    """Conventional wearable MCU."""
    return leaf_mcu()


@pytest.fixture
def hub():
    """On-body hub SoC."""
    return hub_soc()
