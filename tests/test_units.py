"""Tests for repro.units."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro import units
from repro.errors import UnitError


class TestPowerHelpers:
    def test_watt_identity(self):
        assert units.watt(1.5) == 1.5

    def test_milliwatt_scale(self):
        assert units.milliwatt(10.0) == pytest.approx(0.010)

    def test_microwatt_scale(self):
        assert units.microwatt(100.0) == pytest.approx(1e-4)

    def test_nanowatt_scale(self):
        assert units.nanowatt(415.0) == pytest.approx(415e-9)

    def test_round_trip_microwatt(self):
        assert units.to_microwatt(units.microwatt(42.0)) == pytest.approx(42.0)

    def test_round_trip_milliwatt(self):
        assert units.to_milliwatt(units.milliwatt(7.0)) == pytest.approx(7.0)

    def test_negative_power_rejected(self):
        with pytest.raises(UnitError):
            units.milliwatt(-1.0)

    def test_nan_rejected(self):
        with pytest.raises(UnitError):
            units.watt(float("nan"))

    def test_infinity_rejected(self):
        with pytest.raises(UnitError):
            units.watt(float("inf"))


class TestEnergyHelpers:
    def test_picojoule_per_bit(self):
        assert units.picojoule_per_bit(100.0) == pytest.approx(1e-10)

    def test_nanojoule_per_bit(self):
        assert units.nanojoule_per_bit(1.0) == pytest.approx(1e-9)

    def test_to_picojoule_per_bit_round_trip(self):
        assert units.to_picojoule_per_bit(
            units.picojoule_per_bit(6.3)
        ) == pytest.approx(6.3)

    def test_mah_default_voltage(self):
        # 1000 mAh at 3 V = 1 Ah * 3 V * 3600 s = 10.8 kJ.
        assert units.mAh(1000.0) == pytest.approx(10_800.0)

    def test_mah_explicit_voltage(self):
        assert units.mAh(100.0, volts=3.7) == pytest.approx(0.1 * 3.7 * 3600.0)

    def test_mah_zero_voltage_rejected(self):
        with pytest.raises(UnitError):
            units.mAh(100.0, volts=0.0)

    def test_watt_hour(self):
        assert units.watt_hour(1.0) == pytest.approx(3600.0)

    def test_energy_prefixes_ordering(self):
        assert units.picojoule(1.0) < units.nanojoule(1.0) < units.microjoule(1.0) \
            < units.millijoule(1.0) < units.joule(1.0)


class TestRateAndSizeHelpers:
    def test_kilobit_per_second(self):
        assert units.kilobit_per_second(10.0) == pytest.approx(1e4)

    def test_megabit_per_second(self):
        assert units.megabit_per_second(4.0) == pytest.approx(4e6)

    def test_byte_per_second(self):
        assert units.byte_per_second(1.0) == pytest.approx(8.0)

    def test_to_megabit_round_trip(self):
        assert units.to_megabit_per_second(
            units.megabit_per_second(1.5)
        ) == pytest.approx(1.5)

    def test_bytes_to_bits(self):
        assert units.bytes_(2.0) == pytest.approx(16.0)

    def test_kibibytes(self):
        assert units.kibibytes(1.0) == pytest.approx(8192.0)


class TestTimeHelpers:
    def test_days(self):
        assert units.days(1.0) == pytest.approx(86_400.0)

    def test_weeks(self):
        assert units.weeks(1.0) == pytest.approx(7 * 86_400.0)

    def test_years(self):
        assert units.years(1.0) == pytest.approx(365.25 * 86_400.0)

    def test_to_days_round_trip(self):
        assert units.to_days(units.days(3.0)) == pytest.approx(3.0)

    def test_to_years_round_trip(self):
        assert units.to_years(units.years(2.0)) == pytest.approx(2.0)

    def test_hours_to_seconds(self):
        assert units.hours(2.0) == pytest.approx(7200.0)

    def test_milliseconds(self):
        assert units.milliseconds(7.5) == pytest.approx(0.0075)


class TestFrequencyAndDistance:
    def test_megahertz(self):
        assert units.megahertz(30.0) == pytest.approx(30e6)

    def test_gigahertz(self):
        assert units.gigahertz(2.4) == pytest.approx(2.4e9)

    def test_centimetre(self):
        assert units.centimetre(150.0) == pytest.approx(1.5)

    def test_picofarad(self):
        assert units.picofarad(150.0) == pytest.approx(150e-12)

    def test_femtofarad(self):
        assert units.femtofarad(300.0) == pytest.approx(3e-13)


class TestDecibelHelpers:
    def test_db_to_linear(self):
        assert units.db_to_linear(10.0) == pytest.approx(10.0)

    def test_linear_to_db(self):
        assert units.linear_to_db(100.0) == pytest.approx(20.0)

    def test_db_round_trip(self):
        assert units.db_to_linear(units.linear_to_db(42.0)) == pytest.approx(42.0)

    def test_dbm_to_watt_zero_dbm(self):
        assert units.dbm_to_watt(0.0) == pytest.approx(1e-3)

    def test_watt_to_dbm_round_trip(self):
        assert units.watt_to_dbm(units.dbm_to_watt(7.0)) == pytest.approx(7.0)

    def test_watt_to_dbm_rejects_zero(self):
        with pytest.raises(UnitError):
            units.watt_to_dbm(0.0)


class TestUnitProperties:
    @given(st.floats(min_value=0.0, max_value=1e9, allow_nan=False))
    def test_microwatt_round_trip_property(self, value):
        assert units.to_microwatt(units.microwatt(value)) == pytest.approx(value)

    @given(st.floats(min_value=1e-6, max_value=1e6))
    def test_db_linear_round_trip_property(self, ratio):
        assert units.db_to_linear(units.linear_to_db(ratio)) == pytest.approx(
            ratio, rel=1e-9
        )

    @given(st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
           st.floats(min_value=0.5, max_value=12.0))
    def test_mah_scales_linearly_with_voltage(self, capacity, voltage):
        assert units.mAh(capacity, volts=voltage) == pytest.approx(
            capacity * 1e-3 * 3600.0 * voltage
        )

    @given(st.floats(min_value=0.0, max_value=1e12, allow_nan=False))
    def test_time_conversions_consistent(self, seconds_value):
        assert units.to_days(seconds_value) * 86_400.0 == pytest.approx(
            seconds_value, rel=1e-12, abs=1e-9
        )
        assert math.isclose(
            units.to_years(seconds_value) * 365.25,
            units.to_days(seconds_value),
            rel_tol=1e-12, abs_tol=1e-9,
        )
