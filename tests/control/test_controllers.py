"""Unit tests for the shipped controllers and the control protocol."""

from __future__ import annotations

import pytest

from repro.control import (
    CONTROLLER_KINDS,
    Action,
    Controller,
    ControllerSpec,
    Observation,
    PERBackoffController,
    SoCThrottleController,
    StaticController,
    make_controller,
)
from repro.errors import SimulationError


def cadence_obs(erased: int, delivered: int, offset: float = 0.0,
                time_seconds: float = 10.0) -> Observation:
    return Observation(kind="cadence", time_seconds=time_seconds,
                       window_seconds=10.0, erased_attempts=erased,
                       delivered_packets=delivered,
                       tx_power_offset_db=offset)


def crossing_obs(soc: float = 0.25, stride: int = 4) -> Observation:
    return Observation(kind="low_battery", time_seconds=30.0,
                       state_of_charge=soc, low_battery=True,
                       tx_stride=1, low_battery_stride=stride)


class TestProtocol:
    def test_shipped_controllers_satisfy_protocol(self):
        for kind in CONTROLLER_KINDS:
            assert isinstance(make_controller(kind), Controller)

    def test_make_controller_defaults_to_static(self):
        assert isinstance(make_controller(None), StaticController)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError, match="unknown controller"):
            ControllerSpec(kind="pid")

    def test_action_validation(self):
        with pytest.raises(SimulationError):
            Action(tx_stride=0)
        with pytest.raises(SimulationError):
            Action(coding_rate=0.0)
        with pytest.raises(SimulationError):
            Action(slot_share=1.5)

    def test_observation_per(self):
        assert cadence_obs(3, 7).packet_error_rate == pytest.approx(0.3)
        assert cadence_obs(0, 0).packet_error_rate == 0.0

    def test_spec_validation(self):
        with pytest.raises(SimulationError):
            ControllerSpec(cadence_seconds=0.0)
        with pytest.raises(SimulationError):
            ControllerSpec(per_threshold=0.1, per_recover_threshold=0.2)
        with pytest.raises(SimulationError):
            ControllerSpec(throttle_stride=0)


class TestStatic:
    def test_never_acts(self):
        controller = StaticController()
        assert controller.cadence_seconds is None
        assert controller.evaluate(cadence_obs(50, 50)) is None
        assert controller.evaluate(crossing_obs()) is None


class TestPERBackoff:
    def spec(self, **overrides) -> ControllerSpec:
        base = dict(kind="per_backoff", cadence_seconds=5.0,
                    per_threshold=0.2, per_recover_threshold=0.05,
                    step_db=2.0, max_offset_db=6.0)
        base.update(overrides)
        return ControllerSpec(**base)

    def test_steps_up_on_high_per(self):
        controller = PERBackoffController(self.spec())
        action = controller.evaluate(cadence_obs(erased=5, delivered=5))
        assert action.tx_power_offset_db == pytest.approx(2.0)

    def test_offset_caps_at_max(self):
        controller = PERBackoffController(self.spec())
        action = controller.evaluate(
            cadence_obs(erased=9, delivered=1, offset=5.0))
        assert action.tx_power_offset_db == pytest.approx(6.0)
        action = controller.evaluate(
            cadence_obs(erased=9, delivered=1, offset=6.0))
        # At the cap, the offset is re-asserted, never exceeded.
        assert action.tx_power_offset_db == pytest.approx(6.0)

    def test_steps_down_on_recovery(self):
        controller = PERBackoffController(self.spec())
        action = controller.evaluate(
            cadence_obs(erased=0, delivered=50, offset=4.0))
        assert action.tx_power_offset_db == pytest.approx(2.0)

    def test_hysteresis_band_reasserts(self):
        controller = PERBackoffController(self.spec())
        # PER 0.1 sits between recover (0.05) and trigger (0.2).
        action = controller.evaluate(
            cadence_obs(erased=1, delivered=9, offset=4.0))
        assert action.tx_power_offset_db == pytest.approx(4.0)

    def test_silent_window_is_not_evidence(self):
        controller = PERBackoffController(self.spec())
        assert controller.evaluate(cadence_obs(0, 0)) is None
        # ... but an applied offset is still re-asserted.
        action = controller.evaluate(cadence_obs(0, 0, offset=2.0))
        assert action.tx_power_offset_db == pytest.approx(2.0)

    def test_keeps_low_battery_throttle(self):
        controller = PERBackoffController(self.spec())
        action = controller.evaluate(crossing_obs(stride=3))
        assert action.tx_stride == 3


class TestSoCThrottle:
    def test_throttles_on_crossing_with_node_stride(self):
        controller = SoCThrottleController()
        assert controller.cadence_seconds is None
        action = controller.evaluate(crossing_obs(stride=4))
        assert action.tx_stride == 4

    def test_spec_stride_overrides_node_stride(self):
        controller = SoCThrottleController(
            ControllerSpec(kind="soc_throttle", throttle_stride=8))
        action = controller.evaluate(crossing_obs(stride=4))
        assert action.tx_stride == 8

    def test_ignores_cadence_observations(self):
        controller = SoCThrottleController()
        assert controller.evaluate(cadence_obs(9, 1)) is None
