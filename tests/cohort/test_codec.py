"""Tests for the binary columnar shard codec.

Three contracts pinned here:

* **Round trip** — for arbitrary member metrics (zeros, denormals, huge
  magnitudes, empty and single-member shards, members kept or dropped),
  ``decode_shard(encode_shard(frame))`` reproduces the accumulator state
  bit-exactly.
* **Golden digest** — at a fixed seed and shard layout, the aggregates
  decoded from ``run_cohort``'s binary frames are bit-identical to an
  in-memory shard merge that never touches the codec, and the
  uncompressed frame bytes themselves hash to a pinned digest (format
  stability: changing the layout without bumping
  ``SHARD_CODEC_VERSION`` fails this test).
* **Index-free skipping** — ``read_summary`` answers overview queries
  from the footer alone, consistent with the decoded accumulator.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cohort import (
    SHARD_CODEC_VERSION,
    CohortAccumulator,
    CohortSpec,
    MemberMetrics,
    MEMBER_METRIC_FIELDS,
    ShardFrame,
    ValidationRecord,
    decode_shard,
    encode_shard,
    read_frames,
    read_summary,
    run_cohort,
    split_frames,
    write_frames,
)
from repro.cohort.engine import _run_shard
from repro.errors import CodecError

# Exercises zeros, denormals, round numbers and huge magnitudes — every
# one must survive the frame bit-exactly (raw binary64 columns).
finite_floats = st.floats(allow_nan=False, allow_infinity=False,
                          min_value=-1e300, max_value=1e300)
tricky_floats = st.one_of(
    finite_floats,
    st.sampled_from([0.0, -0.0, 5e-324, -5e-324, 1e-310, 2.5, 1e300]))
# Fields folded into LatencyAccumulator columns must be non-negative
# (the accumulator enforces it); -0.0 passes and must keep its sign bit.
metric_floats = st.one_of(
    st.floats(min_value=0.0, max_value=1e300, allow_nan=False,
              allow_infinity=False),
    st.sampled_from([0.0, -0.0, 5e-324, 1e-310, 2.5, 1e300]))


@st.composite
def member_metrics(draw, index: int):
    return MemberMetrics(
        index=index,
        scenario=draw(st.sampled_from(["office", "gym", "commute"])),
        source=draw(st.sampled_from(["analytic", "des"])),
        arbitration=draw(st.sampled_from(["fifo", "tdma", "polling"])),
        node_count=draw(st.integers(min_value=0, max_value=64)),
        duration_seconds=draw(tricky_floats),
        delivered_packets=draw(st.integers(min_value=0, max_value=10**9)),
        delivered_fraction=draw(metric_floats),
        mean_latency_seconds=draw(metric_floats),
        p99_latency_seconds=draw(metric_floats),
        bus_utilization=draw(metric_floats),
        leaf_power_watts=draw(metric_floats),
        hub_power_watts=draw(metric_floats),
        leaf_energy_joules=draw(metric_floats),
        hub_energy_joules=draw(tricky_floats),
        alive_fraction=draw(metric_floats),
        first_death_seconds=draw(st.one_of(st.just(math.inf),
                                           tricky_floats)),
    )


@st.composite
def shard_frames(draw):
    count = draw(st.integers(min_value=0, max_value=25))
    keep = draw(st.booleans())
    accumulator = CohortAccumulator(keep_members=keep)
    for index in range(count):
        accumulator.add(draw(member_metrics(index)))
    for _ in range(draw(st.integers(min_value=0, max_value=5))):
        accumulator.packet_latency.add(draw(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False)))
    validations = tuple(
        ValidationRecord(
            index=i, scenario="office", arbitration="fifo",
            analytic_leaf_power_watts=draw(tricky_floats),
            des_leaf_power_watts=draw(tricky_floats),
            analytic_delivered_fraction=draw(tricky_floats),
            des_delivered_fraction=draw(tricky_floats),
            analytic_mean_latency_seconds=draw(tricky_floats),
            des_mean_latency_seconds=draw(tricky_floats))
        for i in range(draw(st.integers(min_value=0, max_value=3))))
    return ShardFrame(shard_index=draw(st.integers(0, 100)),
                      start=0, stop=count, accumulator=accumulator,
                      validations=validations,
                      elapsed_seconds=draw(
                          st.floats(min_value=0.0, max_value=1e6,
                                    allow_nan=False)))


def bits(value):
    """Bit-pattern view of a state tree: nan == nan, -0.0 != 0.0."""
    if isinstance(value, float):
        return struct.pack("<d", value)
    if isinstance(value, dict):
        return {key: bits(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [bits(item) for item in value]
    return value


def members_bits(members):
    return [bits(dataclasses.asdict(member)) for member in members]


def assert_accumulators_identical(left: CohortAccumulator,
                                  right: CohortAccumulator) -> None:
    assert left.population == right.population
    assert left.node_count == right.node_count
    assert left.delivered_packets == right.delivered_packets
    assert left.dead_members == right.dead_members
    assert left.first_death_seconds == right.first_death_seconds
    assert left.by_policy == right.by_policy
    assert left.by_source == right.by_source
    assert left.keep_members == right.keep_members
    assert members_bits(left.members) == members_bits(right.members)
    for name in MEMBER_METRIC_FIELDS:
        assert bits(left.metrics[name].to_state()) == bits(
            right.metrics[name].to_state()), name
    assert bits(left.packet_latency.to_state()) == bits(
        right.packet_latency.to_state())


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(frame=shard_frames(),
           compression=st.sampled_from(["none", "zlib"]))
    def test_arbitrary_frames_round_trip_bit_exactly(self, frame,
                                                     compression):
        blob = encode_shard(frame, compression=compression)
        decoded = decode_shard(blob)
        assert decoded.shard_index == frame.shard_index
        assert decoded.start == frame.start
        assert decoded.stop == frame.stop
        assert decoded.elapsed_seconds == frame.elapsed_seconds
        assert decoded.validations == frame.validations
        assert_accumulators_identical(decoded.accumulator, frame.accumulator)

    def test_empty_shard_round_trips(self):
        frame = ShardFrame(shard_index=0, start=0, stop=0,
                           accumulator=CohortAccumulator())
        decoded = decode_shard(encode_shard(frame))
        assert decoded.accumulator.population == 0
        summary = read_summary(encode_shard(frame))
        assert summary.population == 0
        assert summary.packets.count == 0

    def test_single_member_shard_round_trips(self):
        accumulator = CohortAccumulator(keep_members=True)
        accumulator.add(MemberMetrics(
            index=7, scenario="office", source="des", arbitration="tdma",
            node_count=3, duration_seconds=5e-324, delivered_packets=0,
            delivered_fraction=0.0, mean_latency_seconds=-0.0,
            p99_latency_seconds=0.0, bus_utilization=1e-310,
            leaf_power_watts=0.0, hub_power_watts=0.0,
            leaf_energy_joules=0.0, hub_energy_joules=0.0,
            alive_fraction=1.0, first_death_seconds=math.inf))
        frame = ShardFrame(shard_index=1, start=7, stop=8,
                           accumulator=accumulator)
        decoded = decode_shard(encode_shard(frame))
        assert decoded.accumulator.members == accumulator.members
        # -0.0 == 0.0 under ==; check the sign bit survived too.
        assert math.copysign(
            1.0, decoded.accumulator.members[0].mean_latency_seconds) == -1.0

    def test_spilled_sketch_accumulator_round_trips(self):
        accumulator = CohortAccumulator(exact_capacity=32)
        for index in range(200):
            accumulator.add(MemberMetrics(
                index=index, scenario="office", source="analytic",
                arbitration="fifo", node_count=1, duration_seconds=1.0,
                delivered_packets=1, delivered_fraction=1.0,
                mean_latency_seconds=index * 1e-4,
                p99_latency_seconds=index * 2e-4, bus_utilization=0.1,
                leaf_power_watts=1e-3, hub_power_watts=1e-3,
                leaf_energy_joules=1e-2, hub_energy_joules=1e-2,
                alive_fraction=1.0, first_death_seconds=math.inf))
        frame = ShardFrame(shard_index=0, start=0, stop=200,
                           accumulator=accumulator)
        decoded = decode_shard(encode_shard(frame))
        assert_accumulators_identical(decoded.accumulator, accumulator)


class TestGoldenDigest:
    def test_binary_path_matches_in_memory_merge_bit_for_bit(self):
        spec = CohortSpec(population=60, seed=19,
                          member_duration_seconds=10.0)
        shards = 4
        in_memory = CohortAccumulator()
        for index in range(shards):
            in_memory.merge(_run_shard(spec, index, shards, "analytic",
                                       0).accumulator)
        result = run_cohort(spec, fast_path="analytic", shard_count=shards,
                            validate_stride=0)
        decoded = CohortAccumulator()
        for blob in result.frames:
            decoded.merge_encoded(blob)
        assert_accumulators_identical(decoded, in_memory)
        assert_accumulators_identical(result.accumulator, in_memory)
        assert decoded.summary_rows() == in_memory.summary_rows()
        assert decoded.overview() == in_memory.overview()

    def test_frame_bytes_are_format_stable(self):
        # An uncompressed frame over fixed input must hash identically
        # forever within codec version 1: the layout IS the contract.
        # (Compressed bytes are never pinned — zlib output may legally
        # change between library builds.)
        accumulator = CohortAccumulator(keep_members=True)
        for index in range(8):
            accumulator.add(MemberMetrics(
                index=index, scenario="office",
                source="des" if index % 2 else "analytic",
                arbitration="fifo", node_count=index,
                duration_seconds=10.0, delivered_packets=10 * index,
                delivered_fraction=index / 8.0,
                mean_latency_seconds=index * 0.125,
                p99_latency_seconds=index * 0.25,
                bus_utilization=index * 0.0625,
                leaf_power_watts=index * 1e-3,
                hub_power_watts=index * 2e-3,
                leaf_energy_joules=index * 1e-2,
                hub_energy_joules=index * 2e-2,
                alive_fraction=1.0,
                first_death_seconds=math.inf if index % 2 else float(index)))
        accumulator.packet_latency.add(0.5)
        frame = ShardFrame(shard_index=3, start=24, stop=32,
                           accumulator=accumulator,
                           elapsed_seconds=1.5)
        blob = encode_shard(frame, compression="none")
        digest = hashlib.sha256(blob).hexdigest()
        assert digest == ("c43214c5e57175cd766d670da347ab45"
                          "b1391ba8dfc60677f31b2c47a6a6f74c")

    def test_codec_version_is_stamped(self):
        frame = ShardFrame(shard_index=0, start=0, stop=0,
                           accumulator=CohortAccumulator())
        blob = encode_shard(frame)
        assert blob[:4] == b"RSHD"
        assert blob[4] == SHARD_CODEC_VERSION


class TestSummaryFooter:
    def test_summary_matches_decoded_aggregates(self):
        spec = CohortSpec(population=40, seed=3,
                          member_duration_seconds=10.0)
        result = run_cohort(spec, fast_path="analytic", shard_count=3,
                            validate_stride=0)
        for blob in result.frames:
            summary = read_summary(blob)
            decoded = decode_shard(blob)
            accumulator = decoded.accumulator
            assert summary.population == accumulator.population
            assert summary.delivered_packets == accumulator.delivered_packets
            assert summary.by_policy == accumulator.by_policy
            assert summary.stop - summary.start == summary.population
            for name in MEMBER_METRIC_FIELDS:
                metric = accumulator.metrics[name]
                assert summary.metrics[name].count == metric.count
                assert summary.metrics[name].min == metric.min_seconds
                assert summary.metrics[name].max == metric.max_seconds
                assert summary.metrics[name].mean == pytest.approx(
                    metric.mean, rel=1e-12)

    def test_summary_rows_are_json_safe(self):
        frame = ShardFrame(shard_index=0, start=0, stop=0,
                           accumulator=CohortAccumulator())
        row = read_summary(encode_shard(frame)).row()
        json.dumps(row, allow_nan=False)


class TestFrameStreams:
    def test_concatenated_frames_split_and_reload(self, tmp_path):
        frames = []
        for shard in range(3):
            accumulator = CohortAccumulator()
            for index in range(shard + 1):
                accumulator.add(MemberMetrics(
                    index=index, scenario="office", source="analytic",
                    arbitration="fifo", node_count=1, duration_seconds=1.0,
                    delivered_packets=1, delivered_fraction=1.0,
                    mean_latency_seconds=0.01, p99_latency_seconds=0.02,
                    bus_utilization=0.1, leaf_power_watts=1e-3,
                    hub_power_watts=1e-3, leaf_energy_joules=1e-2,
                    hub_energy_joules=1e-2))
            frames.append(encode_shard(ShardFrame(
                shard_index=shard, start=0, stop=shard + 1,
                accumulator=accumulator)))
        path = write_frames(tmp_path / "cohort.shards.bin", frames)
        assert read_frames(path) == frames
        stream = b"".join(frames)
        assert [bytes(view) for view in split_frames(stream)] == frames

    def test_truncated_stream_rejected(self):
        frame = ShardFrame(shard_index=0, start=0, stop=0,
                           accumulator=CohortAccumulator())
        blob = encode_shard(frame)
        with pytest.raises(CodecError):
            list(split_frames(blob + blob[:40]))


class TestCorruption:
    def make_blob(self) -> bytes:
        return encode_shard(ShardFrame(
            shard_index=0, start=0, stop=0,
            accumulator=CohortAccumulator()))

    def test_bad_magic_rejected(self):
        blob = self.make_blob()
        with pytest.raises(CodecError, match="magic"):
            decode_shard(b"XXXX" + blob[4:])

    def test_unknown_version_rejected(self):
        blob = bytearray(self.make_blob())
        blob[4] = SHARD_CODEC_VERSION + 1
        with pytest.raises(CodecError, match="version"):
            decode_shard(bytes(blob))

    def test_truncated_frame_rejected(self):
        with pytest.raises(CodecError, match="truncated|header"):
            decode_shard(self.make_blob()[:40])

    def test_flipped_byte_fails_crc(self):
        blob = bytearray(self.make_blob())
        blob[-1] ^= 0xFF
        with pytest.raises(CodecError, match="CRC|corrupt"):
            decode_shard(bytes(blob))

    def test_zstd_without_package_raises_codec_error(self):
        try:
            import zstandard  # noqa: F401
            pytest.skip("zstandard installed")
        except ImportError:
            pass
        with pytest.raises(CodecError, match="zstandard"):
            encode_shard(ShardFrame(shard_index=0, start=0, stop=0,
                                    accumulator=CohortAccumulator()),
                         compression="zstd")


class TestDegenerateOverviewSanitized:
    """Regression: a cohort with zero delivered packets must still
    produce a JSON artifact — ``overview()`` used to leak raw ``inf``
    and ``nan`` floats when every member was dead and nothing was
    delivered."""

    def make_dead_member(self, index: int) -> MemberMetrics:
        return MemberMetrics(
            index=index, scenario="office", source="analytic",
            arbitration="fifo", node_count=2, duration_seconds=10.0,
            delivered_packets=0, delivered_fraction=0.0,
            mean_latency_seconds=math.nan, p99_latency_seconds=math.inf,
            bus_utilization=0.0, leaf_power_watts=math.inf,
            hub_power_watts=0.0, leaf_energy_joules=math.inf,
            hub_energy_joules=0.0, alive_fraction=0.0,
            first_death_seconds=0.5)

    def test_overview_is_json_safe(self):
        accumulator = CohortAccumulator()
        accumulator.add(self.make_dead_member(0))
        overview = accumulator.overview()
        # allow_nan=False is exactly what a strict JSON consumer does;
        # raw inf/nan floats would raise here.
        json.dumps(overview, allow_nan=False)
        assert overview["mean_member_p99_ms"] == "inf"
        assert overview["mean_leaf_power_uw"] == "inf"
        assert overview["dead_members"] == 1

    def test_summary_rows_are_json_safe(self):
        accumulator = CohortAccumulator()
        for index in range(3):
            accumulator.add(self.make_dead_member(index))
        json.dumps(accumulator.summary_rows(), allow_nan=False)

    def test_degenerate_cohort_round_trips_through_codec(self):
        accumulator = CohortAccumulator()
        accumulator.add(self.make_dead_member(0))
        frame = ShardFrame(shard_index=0, start=0, stop=1,
                           accumulator=accumulator)
        decoded = decode_shard(encode_shard(frame))
        json.dumps(decoded.accumulator.overview(), allow_nan=False)
        assert_accumulators_identical(decoded.accumulator, accumulator)
