"""Vectorised depletion model vs the DES, and cohort battery sampling."""

from __future__ import annotations

import math

import pytest

from repro.cohort import CohortSpec, evaluate_member, run_cohort
from repro.cohort.aggregate import (
    MEMBER_METRIC_FIELDS,
    CohortAccumulator,
    MemberMetrics,
)
from repro.cohort.distributions import Categorical
from repro.errors import ScenarioError
from repro.scenarios import get_scenario


def simulate(spec):
    simulator = spec.build(seed=0)
    return MemberMetrics.from_simulation(
        0, spec, simulator.run(spec.duration_seconds))


class TestDepletionModel:
    def test_week_wear_death_matches_des_within_one_percent(self):
        spec = get_scenario("week_wear")
        analytic = evaluate_member(spec)
        des = simulate(spec)
        assert analytic.first_death_seconds == pytest.approx(
            des.first_death_seconds, rel=0.01)
        assert analytic.alive_fraction == des.alive_fraction

    def test_harvested_member_projected_perpetual(self):
        analytic = evaluate_member(get_scenario("harvester_patch"))
        assert math.isinf(analytic.first_death_seconds)
        assert analytic.alive_fraction == 1.0

    def test_batteryless_member_unchanged(self):
        analytic = evaluate_member(get_scenario("dense_50_leaf"))
        assert math.isinf(analytic.first_death_seconds)
        assert analytic.alive_fraction == 1.0

    def test_dead_nodes_reduce_energy(self):
        """A member whose node dies early consumes visibly less than the
        same member on an infinite battery."""
        import dataclasses

        spec = get_scenario("week_wear")
        batteryless = dataclasses.replace(spec, nodes=tuple(
            dataclasses.replace(node, battery=None, harvester=None)
            for node in spec.nodes))
        constrained = evaluate_member(spec)
        unconstrained = evaluate_member(batteryless)
        assert (constrained.leaf_energy_joules
                < unconstrained.leaf_energy_joules)


class TestAliveFractionAggregation:
    def test_alive_fraction_is_a_summary_metric(self):
        assert "alive_fraction" in MEMBER_METRIC_FIELDS

    def test_accumulator_tracks_deaths_and_first_death(self):
        accumulator = CohortAccumulator()
        base = dict(
            scenario="m", source="analytic", arbitration="fifo",
            node_count=2, duration_seconds=10.0, delivered_packets=1,
            delivered_fraction=1.0, mean_latency_seconds=0.1,
            p99_latency_seconds=0.2, bus_utilization=0.1,
            leaf_power_watts=1.0, hub_power_watts=1.0,
            leaf_energy_joules=10.0, hub_energy_joules=10.0)
        accumulator.add(MemberMetrics(index=0, **base))
        accumulator.add(MemberMetrics(index=1, alive_fraction=0.5,
                                      first_death_seconds=4.0, **base))
        assert accumulator.dead_members == 1
        assert accumulator.first_death_seconds == 4.0
        other = CohortAccumulator()
        other.add(MemberMetrics(index=2, alive_fraction=0.0,
                                first_death_seconds=2.0, **base))
        accumulator.merge(other)
        assert accumulator.dead_members == 2
        assert accumulator.first_death_seconds == 2.0
        overview = accumulator.overview()
        assert overview["dead_members"] == 2
        assert overview["first_death_s"] == 2.0

    def test_overview_omits_first_death_when_none(self):
        accumulator = CohortAccumulator()
        accumulator.add(MemberMetrics(
            index=0, scenario="m", source="analytic", arbitration="fifo",
            node_count=1, duration_seconds=1.0, delivered_packets=0,
            delivered_fraction=1.0, mean_latency_seconds=0.0,
            p99_latency_seconds=0.0, bus_utilization=0.0,
            leaf_power_watts=0.0, hub_power_watts=0.0,
            leaf_energy_joules=0.0, hub_energy_joules=0.0))
        assert "first_death_s" not in accumulator.overview()


class TestBatteryCohorts:
    def test_default_cohort_samples_no_batteries(self):
        member = CohortSpec(population=3, seed=0).member(0)
        assert all(node.battery is None and node.harvester is None
                   for node in member.scenario.nodes)

    def test_battery_mix_applies_to_member_nodes(self):
        spec = CohortSpec(
            population=20, seed=1,
            batteries=Categorical(choices=("cr2032", ""),
                                  weights=(0.5, 0.5)),
            battery_scale=0.25,
            harvesters=Categorical(choices=("teg", ""),
                                   weights=(0.5, 0.5)))
        carrying = 0
        for index in range(20):
            nodes = spec.member(index).scenario.nodes
            keys = {node.battery for node in nodes}
            assert len(keys) == 1  # one draw per member, applied to all
            if keys != {None}:
                carrying += 1
                assert all(node.battery_scale == 0.25 for node in nodes)
        assert 0 < carrying < 20

    def test_unknown_battery_choice_rejected(self):
        with pytest.raises(ScenarioError):
            CohortSpec(population=1,
                       batteries=Categorical(choices=("aa",)))
        with pytest.raises(ScenarioError):
            CohortSpec(population=1, battery_scale=0.0)
        with pytest.raises(ScenarioError):
            CohortSpec(population=1,
                       harvesters=Categorical(choices=("fusion",)))

    def test_starved_cohort_records_deaths_and_validates(self):
        """Tiny scaled cells across a cohort: members die in both the
        analytic and the DES path, and the cross-check agrees."""
        spec = CohortSpec(
            population=12, seed=2, member_duration_seconds=30.0,
            batteries=Categorical(choices=("cr2032",)),
            battery_scale=2e-7)  # ~0.5 mJ cells die within seconds
        result = run_cohort(spec, fast_path="analytic", validate_stride=4)
        assert result.accumulator.dead_members > 0
        assert result.accumulator.first_death_seconds < 30.0
        errors = result.max_validation_errors()
        assert errors["alive_fraction_abs_error"] <= 0.5
        assert errors["leaf_power_rel_error"] < 0.15
