"""Tests for the deterministic KLL-style quantile sketch.

The central property: for any input stream, every percentile estimate
stays within the sketch's documented rank-error envelope (``4 / k``) of
the true normalised rank — measured with *interval* ranks, because on
tied data the point rank of an exactly-correct answer can be arbitrary
(``searchsorted`` on a constant stream puts every value at rank 0 or 1).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cohort import QuantileSketch
from repro.errors import SimulationError

FRACTIONS = (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99)


def interval_rank_error(samples: np.ndarray, estimate: float,
                        fraction: float) -> float:
    """Normalised rank error, tolerant of ties.

    An estimate that equals a tied value occupies the whole rank
    interval [searchsorted-left, searchsorted-right]; the error is its
    distance from the target fraction to the *nearest* end of that
    interval (zero whenever the target lies inside it).
    """
    ordered = np.sort(samples)
    left = np.searchsorted(ordered, estimate, side="left") / len(ordered)
    right = np.searchsorted(ordered, estimate, side="right") / len(ordered)
    return max(0.0, left - fraction, fraction - right)


def assert_within_envelope(sketch: QuantileSketch,
                           samples: np.ndarray) -> None:
    for fraction in FRACTIONS:
        estimate = sketch.quantile(fraction)
        error = interval_rank_error(samples, estimate, fraction)
        assert error <= sketch.rank_error_bound, (
            f"q{fraction}: estimate {estimate} has rank error {error:.4f} "
            f"> bound {sketch.rank_error_bound:.4f}")


class TestAccuracy:
    @pytest.mark.parametrize("make_stream", [
        lambda rng: rng.uniform(0.0, 1.0, 50_000),
        lambda rng: rng.lognormal(0.0, 2.0, 50_000),
        lambda rng: np.sort(rng.uniform(0.0, 1.0, 50_000)),
        lambda rng: np.sort(rng.uniform(0.0, 1.0, 50_000))[::-1],
        lambda rng: np.full(50_000, 3.25),
        lambda rng: np.where(rng.uniform(size=50_000) < 0.9, 0.0, 1e6),
    ], ids=["uniform", "lognormal", "sorted", "reversed", "constant",
            "zeros-and-spikes"])
    def test_streams_stay_within_envelope(self, make_stream):
        rng = np.random.default_rng(11)
        samples = make_stream(rng)
        sketch = QuantileSketch()
        for value in samples:
            sketch.add(float(value))
        assert_within_envelope(sketch, samples)

    def test_merged_shards_stay_within_envelope(self):
        rng = np.random.default_rng(5)
        samples = rng.lognormal(0.0, 1.0, 80_000)
        merged = QuantileSketch()
        for chunk in np.array_split(samples, 8):
            shard = QuantileSketch()
            for value in chunk:
                shard.add(float(value))
            merged.merge(shard)
        assert merged.count == len(samples)
        assert_within_envelope(merged, samples)

    def test_retained_size_is_bounded(self):
        sketch = QuantileSketch()
        rng = np.random.default_rng(3)
        for value in rng.uniform(size=200_000):
            sketch.add(float(value))
        # The KLL bound: ~3k values however long the stream ran.
        assert sketch.retained <= 4 * sketch.k

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(min_value=-1e12, max_value=1e12,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=2000))
    def test_any_finite_stream_within_envelope(self, values):
        sketch = QuantileSketch()
        for value in values:
            sketch.add(value)
        assert_within_envelope(sketch, np.asarray(values))


class TestDeterminism:
    def test_same_stream_same_sketch(self):
        rng = np.random.default_rng(9)
        samples = rng.uniform(size=10_000)
        first, second = QuantileSketch(), QuantileSketch()
        for value in samples:
            first.add(float(value))
            second.add(float(value))
        assert first.to_state() == second.to_state()

    def test_merge_order_is_deterministic(self):
        rng = np.random.default_rng(2)
        chunks = [rng.uniform(size=5_000) for _ in range(4)]

        def merged():
            total = QuantileSketch()
            for chunk in chunks:
                shard = QuantileSketch()
                for value in chunk:
                    shard.add(float(value))
                total.merge(shard)
            return total

        assert merged().to_state() == merged().to_state()


class TestWeightedInsertion:
    def test_add_repeated_matches_repeated_add_counts(self):
        sketch = QuantileSketch()
        sketch.add_repeated(1.0, 1000)
        sketch.add_repeated(2.0, 13)
        assert sketch.count == 1013
        assert sketch.min_value == 1.0
        assert sketch.max_value == 2.0
        total_weight = sum(weight for _, weight in sketch.weighted_items())
        assert total_weight == 1013

    def test_add_repeated_percentiles(self):
        sketch = QuantileSketch()
        sketch.add_repeated(0.0, 900)
        sketch.add_repeated(100.0, 100)
        assert sketch.quantile(0.5) == 0.0
        assert sketch.quantile(0.99) == 100.0

    def test_zero_weight_is_a_noop(self):
        sketch = QuantileSketch()
        sketch.add_repeated(5.0, 0)
        assert sketch.is_empty

    def test_negative_weight_rejected(self):
        with pytest.raises(SimulationError):
            QuantileSketch().add_repeated(1.0, -1)


class TestStateRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9,
                              allow_nan=False, allow_infinity=False),
                    max_size=1500))
    def test_state_round_trip_is_exact(self, values):
        sketch = QuantileSketch()
        for value in values:
            sketch.add(value)
        restored = QuantileSketch.from_state(sketch.to_state())
        assert restored.to_state() == sketch.to_state()
        if values:
            for fraction in FRACTIONS:
                assert restored.quantile(fraction) == sketch.quantile(fraction)

    def test_mismatched_state_rejected(self):
        state = QuantileSketch().to_state()
        state["flips"] = []
        with pytest.raises(SimulationError):
            QuantileSketch.from_state(state)


class TestValidation:
    def test_non_finite_values_rejected(self):
        sketch = QuantileSketch()
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(SimulationError):
                sketch.add(bad)
            with pytest.raises(SimulationError):
                sketch.add_repeated(bad, 3)

    def test_empty_sketch_refuses_queries(self):
        with pytest.raises(SimulationError):
            QuantileSketch().quantile(0.5)

    def test_quantile_bounds_checked(self):
        sketch = QuantileSketch()
        sketch.add(1.0)
        with pytest.raises(SimulationError):
            sketch.quantile(1.5)
        with pytest.raises(SimulationError):
            sketch.percentile(200.0)

    def test_tiny_k_rejected(self):
        with pytest.raises(SimulationError):
            QuantileSketch(k=4)

    def test_endpoints_are_exact(self):
        sketch = QuantileSketch()
        rng = np.random.default_rng(7)
        samples = rng.uniform(size=30_000)
        for value in samples:
            sketch.add(float(value))
        assert sketch.quantile(0.0) == samples.min()
        assert sketch.quantile(1.0) == samples.max()
