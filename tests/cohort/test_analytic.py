"""Analytic fast path vs the discrete-event simulator.

The documented tolerance envelope (docs/cohort-engine.md): on workloads
inside the validity region (utilisation < 0.9), leaf power within 5%,
hub power within 5%, delivered fraction within 0.05, mean latency within
a factor of 2.5 and p99 latency within a factor of 3.  All six gallery
scenarios — three MAC policies, mixed link technologies, duty-cycle
events, a 50-leaf stress body — must sit inside that envelope.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.cohort import CohortSpec, evaluate_member, evaluate_members
from repro.cohort.aggregate import MemberMetrics
from repro.cohort.analytic import active_fractions
from repro.errors import ScenarioError
from repro.scenarios import all_scenarios, get_scenario

#: The documented fast-path tolerance envelope.
LEAF_POWER_REL_TOL = 0.05
HUB_POWER_REL_TOL = 0.05
DELIVERED_ABS_TOL = 0.05
MEAN_LATENCY_FACTOR = 2.5
P99_LATENCY_FACTOR = 3.0


def simulate(spec):
    simulator = spec.build(seed=0)
    result = simulator.run(spec.duration_seconds)
    return MemberMetrics.from_simulation(0, spec, result)


@pytest.mark.parametrize("scenario", [spec.name for spec in all_scenarios()])
def test_analytic_agrees_with_des_on_gallery(scenario):
    spec = get_scenario(scenario)
    # A representative slice keeps the DES side fast; the steady state is
    # reached within seconds of simulated time for every gallery body.
    # Lossy scenarios get a longer slice: the envelope bounds are
    # unchanged, but the sampled erasure process needs a few hundred
    # packets per node before its observed rate settles near the
    # closed-form PER the analytic side uses.
    scale = 0.05 if spec.reliability is None else 0.2
    scaled = dataclasses.replace(
        spec, duration_seconds=spec.duration_seconds * scale)
    analytic = evaluate_member(scaled)
    des = simulate(scaled)

    assert analytic.leaf_power_watts == pytest.approx(
        des.leaf_power_watts, rel=LEAF_POWER_REL_TOL)
    assert analytic.hub_power_watts == pytest.approx(
        des.hub_power_watts, rel=HUB_POWER_REL_TOL)
    assert abs(analytic.delivered_fraction
               - des.delivered_fraction) < DELIVERED_ABS_TOL
    ratio = analytic.mean_latency_seconds / des.mean_latency_seconds
    assert 1.0 / MEAN_LATENCY_FACTOR < ratio < MEAN_LATENCY_FACTOR
    p99_ratio = analytic.p99_latency_seconds / des.p99_latency_seconds
    assert 1.0 / P99_LATENCY_FACTOR < p99_ratio < P99_LATENCY_FACTOR
    assert abs(analytic.bus_utilization - des.bus_utilization) < 0.02


class TestActiveFractions:
    def test_sleep_and_wake_windows_integrate(self):
        spec = get_scenario("sleep_night")  # IMU sleeps 10% -> 85%
        fractions = active_fractions(spec)
        assert fractions["imu_wrist"] == pytest.approx(0.25)
        assert fractions["ecg_patch"] == 1.0

    def test_sleep_only_event(self):
        spec = get_scenario("workout")  # audio wakes at 50%
        fractions = active_fractions(spec)
        assert fractions["audio_coach"] == pytest.approx(0.5)
        assert fractions["imu_limb0"] == 1.0


class TestBatchApi:
    def test_batch_matches_single_member_evaluation(self):
        cohort = CohortSpec(population=12, seed=5,
                            member_duration_seconds=20.0)
        members = [cohort.member(index) for index in range(12)]
        batch = evaluate_members([m.scenario for m in members],
                                 [m.index for m in members])
        for member, metrics in zip(members, batch):
            alone = evaluate_member(member.scenario, member.index)
            assert alone == metrics  # bit-identical, any batch layout

    def test_indices_must_match_batch(self):
        cohort = CohortSpec(population=3, seed=0)
        with pytest.raises(ScenarioError):
            evaluate_members([cohort.member(0).scenario], [0, 1])

    def test_empty_batch(self):
        assert evaluate_members([]) == []

    def test_saturated_member_signals_overload(self):
        # 80 leaves at 64 kb/s over one 4 Mb/s medium with per-packet
        # overhead is past saturation: the fast path must report a
        # delivered fraction clearly below one and utilisation at 1.
        from repro.scenarios.spec import ScenarioNodeSpec, ScenarioSpec

        spec = ScenarioSpec(
            name="saturated", description="overload shape",
            duration_seconds=10.0, arbitration="fifo",
            nodes=(ScenarioNodeSpec(name="leaf", rate_bps=64000.0,
                                    count=80),),
        )
        metrics = evaluate_member(spec)
        assert metrics.delivered_fraction < 0.9
        assert metrics.bus_utilization == pytest.approx(1.0)
        assert metrics.mean_latency_seconds > 0.01
