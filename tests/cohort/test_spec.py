"""Tests for cohort distributions and deterministic member sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cohort import (
    Bernoulli,
    Categorical,
    CohortSpec,
    LogUniform,
    Uniform,
)
from repro.cohort.spec import DUTY_CYCLED_MODALITIES
from repro.errors import ScenarioError
from repro.scenarios.spec import ScenarioSpec


class TestDistributions:
    def test_categorical_uniform_and_weighted(self):
        rng = np.random.default_rng(0)
        uniform = Categorical(choices=("a", "b", "c"))
        drawn = {uniform.sample(rng) for _ in range(100)}
        assert drawn == {"a", "b", "c"}
        loaded = Categorical(choices=("x", "y"), weights=(1.0, 0.0))
        assert all(loaded.sample(rng) == "x" for _ in range(20))

    def test_categorical_validation(self):
        with pytest.raises(ScenarioError):
            Categorical(choices=())
        with pytest.raises(ScenarioError):
            Categorical(choices=("a",), weights=(1.0, 2.0))
        with pytest.raises(ScenarioError):
            Categorical(choices=("a",), weights=(-1.0,))
        with pytest.raises(ScenarioError):
            Categorical(choices=("a", "b"), weights=(0.0, 0.0))

    def test_uniform_bounds(self):
        rng = np.random.default_rng(1)
        dist = Uniform(2.0, 3.0)
        values = [dist.sample(rng) for _ in range(50)]
        assert all(2.0 <= value <= 3.0 for value in values)
        assert Uniform(5.0, 5.0).sample(rng) == 5.0
        with pytest.raises(ScenarioError):
            Uniform(3.0, 2.0)

    def test_log_uniform_spans_decades(self):
        rng = np.random.default_rng(2)
        dist = LogUniform(1e-3, 1e3)
        values = [dist.sample(rng) for _ in range(200)]
        assert min(values) < 1e-1 and max(values) > 1e1
        with pytest.raises(ScenarioError):
            LogUniform(0.0, 1.0)

    def test_bernoulli_extremes(self):
        rng = np.random.default_rng(3)
        assert Bernoulli(1.0).sample(rng) is True
        assert Bernoulli(0.0).sample(rng) is False
        with pytest.raises(ScenarioError):
            Bernoulli(1.5)


class TestCohortSpecValidation:
    def test_rejects_bad_population_and_adoption(self):
        with pytest.raises(ScenarioError):
            CohortSpec(population=0)
        with pytest.raises(ScenarioError):
            CohortSpec(adoption={"ppg": 1.5})
        with pytest.raises(ScenarioError):
            CohortSpec(adoption={"warp_drive": 0.5})
        with pytest.raises(ScenarioError):
            CohortSpec(adoption={})

    def test_rejects_unknown_policy_and_technology(self):
        with pytest.raises(ScenarioError):
            CohortSpec(mac_policies=Categorical(choices=("csma",)))
        with pytest.raises(ScenarioError):
            CohortSpec(technologies=Categorical(choices=("carrier-pigeon",)))

    def test_member_index_bounds_checked(self):
        spec = CohortSpec(population=5)
        with pytest.raises(ScenarioError):
            spec.member(5)
        with pytest.raises(ScenarioError):
            spec.member_seed(-1)
        with pytest.raises(ScenarioError):
            list(spec.members(2, 9))


class TestMemberSampling:
    def test_member_expansion_is_deterministic(self):
        spec = CohortSpec(population=50, seed=11)
        first = spec.member(17).scenario
        second = spec.member(17).scenario
        assert first == second

    def test_member_independent_of_access_order(self):
        spec = CohortSpec(population=50, seed=11)
        forward = [spec.member(index).scenario for index in range(10)]
        backward = [spec.member(index).scenario
                    for index in reversed(range(10))]
        assert forward == list(reversed(backward))

    def test_member_seeds_distinct_and_stable(self):
        spec = CohortSpec(population=200, seed=0)
        seeds = [spec.member_seed(index) for index in range(200)]
        assert len(set(seeds)) == 200
        assert seeds == [spec.member_seed(index) for index in range(200)]

    def test_different_cohort_seeds_sample_different_members(self):
        member_a = CohortSpec(population=10, seed=0).member(3).scenario
        member_b = CohortSpec(population=10, seed=1).member(3).scenario
        assert member_a != member_b

    def test_members_are_valid_scenarios_with_at_least_one_node(self):
        spec = CohortSpec(population=64, seed=5)
        for member in spec.members():
            assert isinstance(member.scenario, ScenarioSpec)
            assert member.scenario.leaf_count >= 1
            assert member.scenario.arbitration in ("fifo", "tdma", "polling")

    def test_adoption_rates_roughly_respected(self):
        spec = CohortSpec(population=400, seed=2,
                          adoption={"ppg": 0.9, "eeg": 0.1})
        ppg = eeg = 0
        for member in spec.members():
            names = {node.name for node in member.scenario.nodes}
            ppg += "ppg" in names
            eeg += "eeg" in names
        assert 0.8 < ppg / 400 < 1.0
        assert 0.02 < eeg / 400 < 0.2

    def test_zero_adoption_forces_baseline_node(self):
        spec = CohortSpec(population=5, seed=0, adoption={"eeg": 0.0},
                          implant=Bernoulli(0.0))
        for member in spec.members():
            assert [node.name for node in member.scenario.nodes] == \
                ["temperature"]

    def test_duty_cycled_modalities_get_sleep_events(self):
        spec = CohortSpec(population=100, seed=4,
                          adoption={"imu": 1.0, "audio": 1.0},
                          duty_cycle=Uniform(0.4, 0.6))
        for member in spec.members(0, 20):
            prefixes = {prefix for event in member.scenario.events
                        for prefix in event.node_prefixes}
            assert prefixes  # duty cycle < 1 always sleeps something
            assert prefixes <= set(DUTY_CYCLED_MODALITIES)

    def test_slow_streams_get_clamped_packets(self):
        spec = CohortSpec(population=30, seed=6,
                          adoption={"temperature": 1.0},
                          member_duration_seconds=60.0)
        for member in spec.members(0, 10):
            node = member.scenario.nodes[0]
            packets = (node.resolved_rate_bps() * 60.0
                       / node.bits_per_packet)
            assert packets >= 4.0

    def test_spec_is_picklable(self):
        import pickle

        spec = CohortSpec(population=10, seed=0)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.member(3).scenario == spec.member(3).scenario
