"""Tests for sharded cohort execution and streaming aggregation.

The central property: at a fixed cohort seed, shard-merged summaries are
bit-identical to a single-process run, whatever the shard layout or
worker count — member seeds depend only on the member index and metric
accumulators concatenate exactly while the population fits their exact
window.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cohort import (
    CohortAccumulator,
    CohortSpec,
    MemberMetrics,
    run_cohort,
    shard_bounds,
)
from repro.errors import ScenarioError


def make_metrics(index: int, value: float,
                 source: str = "analytic") -> MemberMetrics:
    return MemberMetrics(
        index=index, scenario=f"m-{index}", source=source,
        arbitration="fifo", node_count=2, duration_seconds=10.0,
        delivered_packets=100, delivered_fraction=1.0,
        mean_latency_seconds=value, p99_latency_seconds=2.0 * value,
        bus_utilization=0.1, leaf_power_watts=value, hub_power_watts=value,
        leaf_energy_joules=10.0 * value, hub_energy_joules=10.0 * value,
    )


class TestShardBounds:
    def test_partition_is_exact_and_contiguous(self):
        for population, shards in ((10, 3), (7, 7), (100, 8), (5, 1)):
            ranges = [shard_bounds(population, shards, index)
                      for index in range(shards)]
            assert ranges[0][0] == 0
            assert ranges[-1][1] == population
            for (_, stop), (start, _) in zip(ranges, ranges[1:]):
                assert stop == start
            sizes = [stop - start for start, stop in ranges]
            assert max(sizes) - min(sizes) <= 1

    def test_invalid_shard_rejected(self):
        with pytest.raises(ScenarioError):
            shard_bounds(10, 3, 3)
        with pytest.raises(ScenarioError):
            shard_bounds(10, 0, 0)


class TestAccumulator:
    def test_empty_accumulator_refuses_summary(self):
        with pytest.raises(ScenarioError):
            CohortAccumulator().summary_rows()
        with pytest.raises(ScenarioError):
            CohortAccumulator().overview()

    def test_merge_equals_sequential_adds(self):
        values = [0.001 * (index + 1) for index in range(40)]
        serial = CohortAccumulator()
        for index, value in enumerate(values):
            serial.add(make_metrics(index, value))
        left, right = CohortAccumulator(), CohortAccumulator()
        for index, value in enumerate(values):
            (left if index < 25 else right).add(make_metrics(index, value))
        left.merge(right)
        assert left.summary_rows() == serial.summary_rows()
        assert left.overview() == serial.overview()

    def test_counts_and_policy_mix_merge(self):
        accumulator = CohortAccumulator()
        accumulator.add(make_metrics(0, 0.1))
        other = CohortAccumulator()
        other.add(make_metrics(1, 0.2, source="des"))
        accumulator.merge(other)
        assert accumulator.population == 2
        assert accumulator.by_source == {"analytic": 1, "des": 1}
        assert accumulator.by_policy == {"fifo": 2}


class TestShardedExecution:
    @settings(max_examples=12, deadline=None)
    @given(population=st.integers(min_value=1, max_value=40),
           shards=st.integers(min_value=1, max_value=6),
           seed=st.integers(min_value=0, max_value=2 ** 16))
    def test_shard_merge_matches_serial_bit_for_bit(self, population,
                                                    shards, seed):
        """Property: analytic shard-merged percentiles == serial run."""
        spec = CohortSpec(population=population, seed=seed,
                          member_duration_seconds=20.0)
        serial = run_cohort(spec, fast_path="analytic", shard_count=1,
                            validate_stride=0)
        sharded = run_cohort(spec, fast_path="analytic", shard_count=shards,
                             validate_stride=0)
        assert serial.rows() == sharded.rows()
        assert serial.overview()["policies"] == \
            sharded.overview()["policies"]

    def test_des_shard_merge_matches_serial_bit_for_bit(self):
        spec = CohortSpec(population=24, seed=3,
                          member_duration_seconds=15.0)
        serial = run_cohort(spec, fast_path="des", shard_count=1)
        sharded = run_cohort(spec, fast_path="des", shard_count=5)
        assert serial.rows() == sharded.rows()
        packets_serial = serial.accumulator.packet_latency
        packets_sharded = sharded.accumulator.packet_latency
        assert packets_serial.count == packets_sharded.count
        for percentile in (50.0, 90.0, 99.0):
            assert packets_serial.percentile(percentile) == \
                packets_sharded.percentile(percentile)

    def test_process_parallel_matches_in_process(self):
        spec = CohortSpec(population=16, seed=8,
                          member_duration_seconds=15.0)
        in_process = run_cohort(spec, fast_path="analytic", shard_count=4,
                                parallel=1, validate_stride=0)
        multi_process = run_cohort(spec, fast_path="analytic", shard_count=4,
                                   parallel=3, validate_stride=0)
        assert in_process.rows() == multi_process.rows()

    def test_validation_records_on_analytic_path(self):
        spec = CohortSpec(population=30, seed=0,
                          member_duration_seconds=20.0)
        result = run_cohort(spec, fast_path="analytic", validate_stride=10)
        assert [record.index for record in result.validations] == [0, 10, 20]
        errors = result.max_validation_errors()
        assert errors["leaf_power_rel_error"] < 0.10
        assert errors["delivered_fraction_abs_error"] < 0.05
        assert errors["mean_latency_factor"] < 3.0
        assert any("validated 3 member(s)" in line
                   for line in result.summary_lines())

    def test_des_path_never_validates(self):
        spec = CohortSpec(population=6, seed=0,
                          member_duration_seconds=10.0)
        result = run_cohort(spec, fast_path="des", validate_stride=2)
        assert result.validations == ()
        assert result.max_validation_errors() == {}

    def test_unknown_fast_path_rejected(self):
        spec = CohortSpec(population=4)
        with pytest.raises(ScenarioError, match="fast path"):
            run_cohort(spec, fast_path="quantum")

    def test_non_positive_shard_count_rejected(self):
        spec = CohortSpec(population=4)
        with pytest.raises(ScenarioError, match="shard count"):
            run_cohort(spec, shard_count=0)

    def test_shard_count_clamped_to_population(self):
        spec = CohortSpec(population=3, seed=0,
                          member_duration_seconds=10.0)
        result = run_cohort(spec, fast_path="analytic", shard_count=16,
                            validate_stride=0)
        assert result.shard_count == 3
        assert result.accumulator.population == 3

    def test_no_member_results_are_materialised(self):
        spec = CohortSpec(population=25, seed=1,
                          member_duration_seconds=10.0)
        result = run_cohort(spec, fast_path="analytic", validate_stride=0)
        # The result carries aggregates only: bounded accumulators, no
        # per-member list of any kind.
        assert not hasattr(result, "members")
        assert not hasattr(result, "results")
        for accumulator in result.accumulator.metrics.values():
            assert accumulator.retained_samples <= accumulator.exact_capacity


class TestEncodedFrames:
    def test_run_returns_frames_and_timings(self):
        spec = CohortSpec(population=20, seed=4,
                          member_duration_seconds=10.0)
        result = run_cohort(spec, fast_path="analytic", shard_count=4,
                            validate_stride=0)
        assert len(result.frames) == 4
        assert result.encoded_bytes == sum(len(f) for f in result.frames)
        assert result.encoded_bytes > 0
        assert result.encode_seconds > 0.0
        assert result.decode_seconds > 0.0
        assert any("codec:" in line for line in result.summary_lines())

    def test_keep_members_retains_rows_through_frames(self):
        spec = CohortSpec(population=12, seed=7,
                          member_duration_seconds=10.0)
        kept = run_cohort(spec, fast_path="analytic", shard_count=3,
                          validate_stride=0, keep_members=True)
        assert kept.keep_members
        assert [m.index for m in kept.accumulator.members] == list(range(12))
        dropped = run_cohort(spec, fast_path="analytic", shard_count=3,
                             validate_stride=0)
        assert dropped.accumulator.members == []
        # Aggregates are unaffected by retention.
        assert kept.rows() == dropped.rows()

    def test_uncompressed_run_matches_compressed(self):
        spec = CohortSpec(population=15, seed=2,
                          member_duration_seconds=10.0)
        zlib_run = run_cohort(spec, fast_path="analytic", shard_count=2,
                              validate_stride=0, compression="zlib")
        raw_run = run_cohort(spec, fast_path="analytic", shard_count=2,
                             validate_stride=0, compression="none")
        assert zlib_run.rows() == raw_run.rows()
        assert zlib_run.encoded_bytes < raw_run.encoded_bytes
