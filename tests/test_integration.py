"""Cross-module integration tests.

These tests exercise full pipelines spanning several subpackages — the
kind of end-to-end flows a user of the library would run — rather than
individual units:

* signal generation -> ISA feature extraction -> DNN inference,
* DNN profiling -> partitioning -> discrete-event simulation of the
  resulting traffic on the body bus,
* the network designer's closed-form plan cross-checked against the
  simulator,
* closed-form Fig. 3 battery life cross-checked against the stateful
  battery model.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import units
from repro.body.landmarks import BodyLandmark
from repro.comm.eqs_hbc import WiRLink, wir_commercial
from repro.core.battery_life import project_battery_life
from repro.core.compute import hub_soc, isa_accelerator
from repro.core.designer import ApplicationSpec, NetworkDesigner
from repro.core.partition import optimal_partition
from repro.energy.battery import Battery, coin_cell_high_capacity
from repro.isa.features import log_mel_energies
from repro.isa.pipeline import audio_feature_pipeline
from repro.netsim.simulator import BodyNetworkSimulator
from repro.netsim.traffic import PeriodicSource
from repro.nn.profile import profile_model
from repro.nn.zoo import keyword_spotting_cnn
from repro.sensors.audio import AudioGenerator
from repro.sensors.catalog import SensorModality
from repro.netsim.config import NodeConfig


class TestAudioToInferencePipeline:
    def test_microphone_to_keyword_scores(self):
        """Raw audio -> log-mel features -> KWS CNN posterior, end to end."""
        generator = AudioGenerator(utterance_rate_hz=1.0)
        audio = generator.generate(1.0, rng=0)
        features = log_mel_energies(audio, generator.sample_rate_hz,
                                    frame_seconds=0.025, hop_seconds=0.020,
                                    n_mels=40)
        model = keyword_spotting_cnn(n_mels=40, n_frames=features.shape[0])
        batch = features[np.newaxis, :, :, np.newaxis]
        posterior = model(batch)
        assert posterior.shape == (1, 12)
        assert posterior.sum() == pytest.approx(1.0)

    def test_partitioned_execution_matches_monolithic_output(self):
        """Running leaf layers then hub layers reproduces the full forward pass."""
        model = keyword_spotting_cnn()
        profile = profile_model(model)
        decision = optimal_partition(
            profile, isa_accelerator(), hub_soc(), wir_commercial(),
        )
        split = max(decision.best.split_index, 1)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 49, 40, 1))
        leaf_output = model.forward(x, 0, split)
        hub_output = model.forward(leaf_output, split, None)
        assert np.allclose(hub_output, model(x))


class TestPartitionFeedsSimulation:
    def test_partitioned_traffic_runs_on_the_body_bus(self):
        """The partitioner's transfer size becomes simulated traffic."""
        profile = profile_model(keyword_spotting_cnn())
        decision = optimal_partition(
            profile, isa_accelerator(), hub_soc(), wir_commercial(),
        )
        inference_rate_hz = 2.0
        simulator = BodyNetworkSimulator(wir_commercial(), rng=1)
        simulator.attach(NodeConfig(
            "kws leaf",
            PeriodicSource(period_seconds=1.0 / inference_rate_hz,
                           bits_per_packet=max(decision.best.transfer_bits, 8.0)),
            sensing_power_watts=units.milliwatt(2.0),
        ))
        result = simulator.run(10.0)
        assert result.delivered_packets >= 18
        assert result.dropped_packets == 0
        # The simulated per-inference transmit energy matches the analytical one.
        simulated_tx = result.per_node_goodput_bps["kws leaf"] \
            * wir_commercial().tx_energy_per_bit()
        analytical_tx = decision.best.link_tx_energy_joules * inference_rate_hz
        assert simulated_tx == pytest.approx(analytical_tx, rel=0.1)

    def test_simulated_latency_bounded_by_partition_latency_budget(self):
        profile = profile_model(keyword_spotting_cnn())
        decision = optimal_partition(
            profile, isa_accelerator(), hub_soc(), wir_commercial(),
        )
        simulator = BodyNetworkSimulator(wir_commercial(), rng=2)
        simulator.attach(NodeConfig("kws leaf", PeriodicSource(
            period_seconds=1.0, bits_per_packet=max(decision.best.transfer_bits, 8.0),
        )))
        result = simulator.run(10.0)
        assert result.mean_latency_seconds == pytest.approx(
            decision.best.transfer_latency_seconds, rel=0.5, abs=1e-3,
        )


class TestDesignerAgainstSimulator:
    def test_planned_rates_are_simulatable(self):
        applications = [
            ApplicationSpec(
                name="ecg", modality=SensorModality.ECG,
                placement=BodyLandmark.STERNUM, model_name="ecg_arrhythmia",
                inference_rate_hz=1.2,
                sensing_power_watts=units.microwatt(30.0),
            ),
            ApplicationSpec(
                name="kws", modality=SensorModality.AUDIO,
                placement=BodyLandmark.CHEST, model_name="keyword_spotting",
                inference_rate_hz=1.0, isa_pipeline=audio_feature_pipeline(),
                sensing_power_watts=units.milliwatt(2.0),
            ),
        ]
        designer = NetworkDesigner()
        plan = designer.plan(applications)
        assert plan.schedule_feasible

        simulator = BodyNetworkSimulator(designer.technology, rng=3)
        for node_plan in plan.nodes:
            simulator.attach(NodeConfig(
                node_plan.application.name,
                PeriodicSource.from_rate(max(node_plan.streaming_rate_bps, 64.0)),
                sensing_power_watts=node_plan.sensing_power_watts,
            ))
        result = simulator.run(5.0)
        assert result.dropped_packets == 0
        assert result.bus_utilization < 0.5

    def test_planned_node_power_consistent_with_simulation(self):
        application = ApplicationSpec(
            name="ecg", modality=SensorModality.ECG,
            placement=BodyLandmark.STERNUM, model_name="ecg_arrhythmia",
            inference_rate_hz=1.2,
            sensing_power_watts=units.microwatt(30.0),
        )
        designer = NetworkDesigner()
        plan = designer.plan_node(application)

        simulator = BodyNetworkSimulator(designer.technology, rng=4)
        simulator.attach(NodeConfig(
            "ecg",
            PeriodicSource.from_rate(max(plan.streaming_rate_bps, 64.0)),
            sensing_power_watts=plan.sensing_power_watts,
        ))
        result = simulator.run(20.0)
        simulated = result.per_node_average_power_watts["ecg"]
        # Within 3x: the simulator adds sleep power and packet quantisation,
        # the plan adds leaf compute; both stay in the tens of microwatts.
        assert simulated < 3.0 * plan.average_power_watts + units.microwatt(10.0)
        assert plan.average_power_watts < units.microwatt(100.0)


class TestEnergyModelsAgree:
    def test_fig3_projection_matches_stateful_battery(self):
        point = project_battery_life(
            units.kilobit_per_second(3.0),
            sensing_power_watts=units.microwatt(30.0),
        )
        cell = Battery(spec=coin_cell_high_capacity())
        # Without self-discharge the cell sustains exactly capacity / load;
        # run it 1 % past that and check it empties at the expected time.
        ideal_life = cell.spec.usable_energy_joules / point.total_power_watts
        sustained = cell.run(point.total_power_watts, ideal_life * 1.01)
        assert cell.is_empty
        assert sustained == pytest.approx(ideal_life, rel=1e-6)
        # The closed-form projection is more conservative because it folds
        # in the cell's self-discharge, but stays within ~15 %.
        assert point.life_seconds <= ideal_life
        assert point.life_seconds == pytest.approx(ideal_life, rel=0.15)

    def test_wir_link_budget_closes_for_every_designer_placement(self):
        body_placements = [BodyLandmark.STERNUM, BodyLandmark.CHEST,
                           BodyLandmark.RIGHT_WRIST, BodyLandmark.LEFT_ANKLE,
                           BodyLandmark.FOREHEAD]
        designer = NetworkDesigner()
        for placement in body_placements:
            length = designer.body.channel_length(placement, designer.hub_placement)
            link = WiRLink(transceiver=wir_commercial(),
                           channel_length_metres=length)
            assert link.link_margin_db() > 0.0

    def test_infinite_life_reported_consistently(self):
        point = project_battery_life(
            units.kilobit_per_second(1.0),
            sensing_power_watts=units.microwatt(10.0),
            harvested_power_watts=units.microwatt(100.0),
        )
        assert math.isinf(point.life_seconds)
        assert point.is_perpetual
