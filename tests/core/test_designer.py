"""Tests for repro.core.designer (the end-to-end network designer)."""

from __future__ import annotations

import pytest

from repro import units
from repro.body.landmarks import BodyLandmark
from repro.comm.ble import ble_1m_phy
from repro.core.battery_life import LifeBand
from repro.core.designer import ApplicationSpec, NetworkDesigner
from repro.core.offload import OffloadStrategy
from repro.errors import ConfigurationError
from repro.isa.pipeline import audio_feature_pipeline
from repro.sensors.catalog import SensorModality


def standard_applications() -> list[ApplicationSpec]:
    return [
        ApplicationSpec(
            name="arrhythmia monitor",
            modality=SensorModality.ECG,
            placement=BodyLandmark.STERNUM,
            model_name="ecg_arrhythmia",
            inference_rate_hz=1.2,
            sensing_power_watts=units.microwatt(30.0),
        ),
        ApplicationSpec(
            name="keyword spotter",
            modality=SensorModality.AUDIO,
            placement=BodyLandmark.CHEST,
            model_name="keyword_spotting",
            inference_rate_hz=1.0,
            isa_pipeline=audio_feature_pipeline(),
            sensing_power_watts=units.milliwatt(2.0),
        ),
        ApplicationSpec(
            name="activity tracker",
            modality=SensorModality.IMU,
            placement=BodyLandmark.RIGHT_WRIST,
            model_name="imu_har",
            inference_rate_hz=1.0,
            sensing_power_watts=units.microwatt(300.0),
        ),
    ]


class TestNodePlanning:
    def test_plan_produces_entry_per_application(self):
        designer = NetworkDesigner()
        plan = designer.plan(standard_applications())
        assert len(plan.nodes) == 3
        assert plan.node("keyword spotter").application.modality is SensorModality.AUDIO

    def test_biopotential_leaf_is_perpetual(self):
        designer = NetworkDesigner()
        plan = designer.plan(standard_applications())
        ecg_plan = plan.node("arrhythmia monitor")
        assert ecg_plan.life_band is LifeBand.PERPETUAL
        assert ecg_plan.battery_life_days > 365.0

    def test_all_leaves_reach_all_week_or_better(self):
        designer = NetworkDesigner()
        plan = designer.plan(standard_applications())
        assert plan.all_leaves_perpetual_or_better_than(LifeBand.ALL_WEEK)

    def test_schedule_feasible_for_standard_suite(self):
        plan = NetworkDesigner().plan(standard_applications())
        assert plan.schedule_feasible
        assert plan.bus_utilization < 1.0

    def test_link_budget_margin_positive_for_all_placements(self):
        plan = NetworkDesigner().plan(standard_applications())
        for node in plan.nodes:
            assert node.link_margin_db > 0.0
            assert node.channel_length_metres <= 2.0

    def test_hub_power_is_hub_class(self):
        plan = NetworkDesigner().plan(standard_applications())
        assert plan.hub_compute_power_watts >= units.milliwatt(10.0)
        assert plan.hub_compute_power_watts <= 5.0

    def test_leaf_power_orders_of_magnitude_below_hub(self):
        plan = NetworkDesigner().plan(standard_applications())
        for node in plan.nodes:
            assert node.average_power_watts * 10.0 < plan.hub_compute_power_watts

    def test_latency_requirement_checked(self):
        application = ApplicationSpec(
            name="strict voice assistant",
            modality=SensorModality.AUDIO,
            placement=BodyLandmark.CHEST,
            model_name="keyword_spotting",
            inference_rate_hz=1.0,
            latency_requirement_seconds=1.0,
            sensing_power_watts=units.milliwatt(2.0),
        )
        plan = NetworkDesigner().plan_node(application)
        assert plan.meets_latency_requirement

    def test_offload_decision_attached(self):
        plan = NetworkDesigner().plan_node(standard_applications()[0])
        assert plan.offload.chosen.strategy in set(OffloadStrategy)
        assert plan.profile.total_macs > 0


class TestDesignerConfiguration:
    def test_ble_designer_yields_shorter_lives(self):
        wir_plan = NetworkDesigner().plan(standard_applications())
        ble_plan = NetworkDesigner(technology=ble_1m_phy()).plan(standard_applications())
        for application in ("arrhythmia monitor", "keyword spotter"):
            assert ble_plan.node(application).average_power_watts >= \
                wir_plan.node(application).average_power_watts

    def test_duplicate_application_names_rejected(self):
        applications = standard_applications()
        applications[1] = ApplicationSpec(
            name="arrhythmia monitor",
            modality=SensorModality.AUDIO,
            placement=BodyLandmark.CHEST,
            model_name="keyword_spotting",
            inference_rate_hz=1.0,
        )
        with pytest.raises(ConfigurationError):
            NetworkDesigner().plan(applications)

    def test_empty_application_list_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkDesigner().plan([])

    def test_unknown_plan_lookup_rejected(self):
        plan = NetworkDesigner().plan(standard_applications()[:1])
        with pytest.raises(ConfigurationError):
            plan.node("nonexistent")

    def test_invalid_application_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            ApplicationSpec(
                name="bad",
                modality=SensorModality.ECG,
                placement=BodyLandmark.STERNUM,
                model_name="ecg_arrhythmia",
                inference_rate_hz=0.0,
            )

    def test_hub_placement_configurable(self):
        designer = NetworkDesigner(hub_placement=BodyLandmark.LEFT_WRIST)
        plan = designer.plan(standard_applications()[:1])
        assert plan.hub_placement is BodyLandmark.LEFT_WRIST
