"""Tests for repro.core.hub_analysis (the daily-charged wearable brain)."""

from __future__ import annotations

import pytest

from repro import units
from repro.body.landmarks import BodyLandmark
from repro.core.designer import ApplicationSpec, NetworkDesigner
from repro.core.hub_analysis import analyse_hub_load
from repro.energy.battery import BatterySpec
from repro.errors import ConfigurationError
from repro.isa.pipeline import audio_feature_pipeline
from repro.sensors.catalog import SensorModality


@pytest.fixture(scope="module")
def plan():
    applications = [
        ApplicationSpec("ecg", SensorModality.ECG, BodyLandmark.STERNUM,
                        "ecg_arrhythmia", 1.2,
                        sensing_power_watts=units.microwatt(30.0)),
        ApplicationSpec("kws", SensorModality.AUDIO, BodyLandmark.CHEST,
                        "keyword_spotting", 1.0,
                        isa_pipeline=audio_feature_pipeline(),
                        sensing_power_watts=units.milliwatt(2.0)),
        ApplicationSpec("vision", SensorModality.VIDEO_QVGA,
                        BodyLandmark.RIGHT_EYE, "vision_tiny", 2.0,
                        sensing_power_watts=units.milliwatt(60.0)),
        ApplicationSpec("har", SensorModality.IMU, BodyLandmark.RIGHT_WRIST,
                        "imu_har", 1.0,
                        sensing_power_watts=units.microwatt(300.0)),
    ]
    return NetworkDesigner().plan(applications)


class TestHubLoadReport:
    def test_total_is_sum_of_components(self, plan):
        report = analyse_hub_load(plan)
        assert report.total_power_watts == pytest.approx(
            report.idle_power_watts + report.body_rx_power_watts
            + report.offloaded_compute_power_watts + report.uplink_power_watts
        )

    def test_hub_survives_daily_charging(self, plan):
        """The paper's premise: the hub is the one daily-charged device."""
        report = analyse_hub_load(plan)
        assert report.survives_charging_interval
        assert report.battery_life_hours >= 24.0

    def test_hub_power_is_hub_class_not_leaf_class(self, plan):
        report = analyse_hub_load(plan)
        assert units.milliwatt(10.0) <= report.total_power_watts <= 5.0

    def test_compute_headroom_is_large(self, plan):
        """A smartphone-class NPU barely notices a few wearable DNNs."""
        report = analyse_hub_load(plan)
        assert report.compute_headroom > 1e3

    def test_offload_share_bounded(self, plan):
        report = analyse_hub_load(plan)
        assert 0.0 <= report.offload_share_of_power <= 1.0

    def test_rows_include_total(self, plan):
        rows = analyse_hub_load(plan).as_rows()
        assert rows[-1]["component"] == "TOTAL"
        assert len(rows) == 5

    def test_tiny_hub_battery_fails_the_day(self, plan):
        small = BatterySpec(name="tiny hub", capacity_mah=100.0)
        report = analyse_hub_load(plan, battery=small)
        assert not report.survives_charging_interval

    def test_uplink_fraction_increases_power(self, plan):
        low = analyse_hub_load(plan, uplink_fraction=0.0)
        high = analyse_hub_load(plan, uplink_fraction=1.0)
        assert high.total_power_watts >= low.total_power_watts

    def test_invalid_parameters_rejected(self, plan):
        with pytest.raises(ConfigurationError):
            analyse_hub_load(plan, uplink_fraction=1.5)
        with pytest.raises(ConfigurationError):
            analyse_hub_load(plan, charging_interval_seconds=0.0)
