"""Tests for repro.core.compute, repro.core.power_budget and repro.core.node."""

from __future__ import annotations

import pytest

from repro import units
from repro.body.landmarks import BodyLandmark
from repro.comm.ble import ble_1m_phy
from repro.comm.eqs_hbc import wir_leaf_node
from repro.core.compute import (
    ComputeDevice,
    cloud_server,
    hub_soc,
    isa_accelerator,
    leaf_mcu,
)
from repro.core.node import (
    ConventionalNodeSpec,
    HubNodeSpec,
    LeafNodeSpec,
    NodeRole,
    SensorSuite,
)
from repro.core.power_budget import PowerBudget, PowerComponent
from repro.errors import ConfigurationError
from repro.sensors.catalog import SensorModality


class TestComputeDevice:
    def test_energy_proportional_to_macs(self, hub):
        assert hub.compute_energy_joules(2e6) == pytest.approx(
            2.0 * hub.compute_energy_joules(1e6)
        )

    def test_latency_inverse_of_throughput(self, hub):
        assert hub.compute_latency_seconds(hub.macs_per_second) == pytest.approx(1.0)

    def test_wakeup_costs_added_on_request(self, mcu):
        base = mcu.compute_energy_joules(1e3)
        with_wakeup = mcu.compute_energy_joules(1e3, include_wakeup=True)
        assert with_wakeup - base == pytest.approx(mcu.wakeup_energy_joules)

    def test_average_power_includes_idle(self, leaf_accelerator):
        power = leaf_accelerator.average_power_watts(0.0, 0.0)
        assert power == pytest.approx(leaf_accelerator.idle_power_watts)

    def test_sustainable_inference_rate(self, hub):
        rate = hub.sustainable_inference_rate_hz(1e9)
        assert rate == pytest.approx(hub.macs_per_second / 1e9)

    def test_tier_energy_ordering(self):
        """ISA accelerator < hub SoC < leaf MCU in energy per MAC."""
        assert isa_accelerator().energy_per_mac_joules \
            < hub_soc().energy_per_mac_joules \
            < leaf_mcu().energy_per_mac_joules

    def test_tier_throughput_ordering(self):
        assert hub_soc().macs_per_second > leaf_mcu().macs_per_second
        assert cloud_server().macs_per_second > hub_soc().macs_per_second

    def test_isa_active_power_is_100_microwatt_class(self):
        """Fig. 1: the ISA block in a human-inspired node is ~100 uW."""
        isa = isa_accelerator()
        active = isa.energy_per_mac_joules * isa.macs_per_second
        assert units.microwatt(20.0) <= active <= units.microwatt(300.0)

    def test_mcu_active_power_is_milliwatt_class(self):
        """Fig. 1: the CPU block in a today's node is ~mW."""
        mcu = leaf_mcu()
        active = mcu.energy_per_mac_joules * mcu.macs_per_second
        assert units.milliwatt(1.0) <= active <= units.milliwatt(20.0)

    def test_cloud_compute_is_free_for_the_wearable(self):
        assert cloud_server().compute_energy_joules(1e12) == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ComputeDevice(name="bad", energy_per_mac_joules=-1.0, macs_per_second=1.0)
        with pytest.raises(ConfigurationError):
            ComputeDevice(name="bad", energy_per_mac_joules=1.0, macs_per_second=0.0)
        with pytest.raises(ConfigurationError):
            hub_soc().compute_energy_joules(-1.0)


class TestPowerBudget:
    def make_budget(self) -> PowerBudget:
        budget = PowerBudget(node_name="test node")
        budget.add("sensor", units.microwatt(30.0), category="sensing")
        budget.add("isa", units.microwatt(100.0), category="compute")
        budget.add("wi-r", units.microwatt(100.0), category="communication")
        return budget

    def test_total(self):
        assert self.make_budget().total_watts() == pytest.approx(units.microwatt(230.0))

    def test_component_lookup(self):
        assert self.make_budget().component_power("isa") == pytest.approx(
            units.microwatt(100.0)
        )

    def test_unknown_component_raises(self):
        with pytest.raises(ConfigurationError):
            self.make_budget().component_power("gpu")

    def test_category_power(self):
        budget = self.make_budget()
        assert budget.category_power("communication") == pytest.approx(
            units.microwatt(100.0)
        )
        assert budget.categories() == ["sensing", "compute", "communication"]

    def test_fractions_sum_to_one(self):
        fractions = self.make_budget().fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_dominant_component(self):
        budget = self.make_budget()
        assert budget.dominant_component().name in ("isa", "wi-r")

    def test_ratio_over(self):
        small = self.make_budget()
        large = PowerBudget(node_name="big")
        large.add("radio", units.milliwatt(10.0))
        assert large.ratio_over(small) > 40.0

    def test_empty_budget_dominant_raises(self):
        with pytest.raises(ConfigurationError):
            PowerBudget(node_name="empty").dominant_component()

    def test_negative_component_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerComponent(name="bad", power_watts=-1.0)

    def test_as_rows_includes_total(self):
        rows = self.make_budget().as_rows()
        assert rows[-1]["component"] == "TOTAL"
        assert len(rows) == 4


class TestNodeSpecs:
    def test_sensor_suite_rates(self):
        suite = SensorSuite(modalities=(SensorModality.ECG, SensorModality.IMU))
        assert suite.raw_data_rate_bps() == pytest.approx(3000.0 + 9600.0)
        assert suite.compressed_data_rate_bps() < suite.raw_data_rate_bps()

    def test_empty_suite_rejected(self):
        with pytest.raises(ConfigurationError):
            SensorSuite(modalities=())

    def test_leaf_node_role(self):
        leaf = LeafNodeSpec(
            name="ecg patch",
            sensors=SensorSuite(modalities=(SensorModality.ECG,)),
            placement=BodyLandmark.STERNUM,
            link=wir_leaf_node(),
        )
        assert leaf.role is NodeRole.LEAF
        assert leaf.battery.capacity_mah == 1000.0

    def test_conventional_node_role(self):
        node = ConventionalNodeSpec(
            name="smartwatch",
            sensors=SensorSuite(modalities=(SensorModality.PPG,)),
            placement=BodyLandmark.LEFT_WRIST,
            radio=ble_1m_phy(),
        )
        assert node.role is NodeRole.CONVENTIONAL

    def test_hub_node_defaults(self):
        hub = HubNodeSpec(
            name="phone hub",
            placement=BodyLandmark.LEFT_POCKET,
            body_link=wir_leaf_node(),
        )
        assert hub.role is NodeRole.HUB
        assert hub.soc.macs_per_second > 1e9

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            LeafNodeSpec(
                name="",
                sensors=SensorSuite(modalities=(SensorModality.ECG,)),
                placement=BodyLandmark.STERNUM,
                link=wir_leaf_node(),
            )
