"""Tests for repro.core.battery_life (the Fig. 3 projection)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import units
from repro.comm.ble import ble_1m_phy
from repro.core.battery_life import (
    DEVICE_CLASS_PLACEMENTS,
    PERPETUAL_THRESHOLD_SECONDS,
    LifeBand,
    battery_life_vs_data_rate,
    classify_battery_life,
    project_battery_life,
)
from repro.errors import ConfigurationError


class TestBandClassification:
    def test_band_boundaries(self):
        assert classify_battery_life(units.hours(5.0)) is LifeBand.SUB_DAY
        assert classify_battery_life(units.days(1.5)) is LifeBand.ALL_DAY
        assert classify_battery_life(units.days(7.0)) is LifeBand.ALL_WEEK
        assert classify_battery_life(units.days(90.0)) is LifeBand.ALL_MONTH
        assert classify_battery_life(units.years(2.0)) is LifeBand.PERPETUAL

    def test_one_year_is_the_perpetual_threshold(self):
        assert PERPETUAL_THRESHOLD_SECONDS == pytest.approx(units.years(1.0))
        just_under = classify_battery_life(units.years(1.0) - 1.0)
        assert just_under is LifeBand.ALL_MONTH

    def test_infinite_life_is_perpetual(self):
        assert classify_battery_life(math.inf) is LifeBand.PERPETUAL

    def test_negative_life_rejected(self):
        with pytest.raises(ConfigurationError):
            classify_battery_life(-1.0)


class TestProjectBatteryLife:
    def test_fig3_assumptions_defaults(self):
        """Defaults are the paper's: 1000 mAh, 100 pJ/bit Wi-R, no compute."""
        point = project_battery_life(units.kilobit_per_second(3.0))
        assert point.compute_power_watts == 0.0
        assert point.communication_power_watts == pytest.approx(
            3000.0 * 100e-12, rel=0.5
        )

    def test_biopotential_node_is_perpetual(self):
        point = project_battery_life(
            units.kilobit_per_second(3.0),
            sensing_power_watts=units.microwatt(30.0),
        )
        assert point.is_perpetual
        assert point.band is LifeBand.PERPETUAL

    def test_video_node_is_all_day(self):
        point = project_battery_life(
            units.megabit_per_second(10.0),
            sensing_power_watts=units.milliwatt(120.0),
        )
        assert point.band is LifeBand.ALL_DAY

    def test_life_decreases_with_data_rate(self):
        low = project_battery_life(units.kilobit_per_second(1.0))
        high = project_battery_life(units.megabit_per_second(1.0))
        assert high.life_seconds < low.life_seconds

    def test_harvesting_can_make_any_leaf_node_infinite(self):
        point = project_battery_life(
            units.kilobit_per_second(3.0),
            sensing_power_watts=units.microwatt(30.0),
            harvested_power_watts=units.microwatt(200.0),
        )
        assert math.isinf(point.life_seconds)
        assert point.life_days == math.inf

    def test_ble_counterfactual_shorter_life(self):
        wir_point = project_battery_life(units.kilobit_per_second(100.0))
        ble_point = project_battery_life(units.kilobit_per_second(100.0),
                                         technology=ble_1m_phy())
        assert ble_point.life_seconds < wir_point.life_seconds

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            project_battery_life(-1.0)

    def test_negative_sensing_power_rejected(self):
        with pytest.raises(ConfigurationError):
            project_battery_life(1e3, sensing_power_watts=-1.0)

    @given(st.floats(min_value=1e2, max_value=1e8))
    def test_total_power_is_sum_of_parts(self, rate):
        point = project_battery_life(rate)
        assert point.total_power_watts == pytest.approx(
            point.sensing_power_watts + point.communication_power_watts
            + point.compute_power_watts
        )


class TestFig3Sweep:
    def test_curve_monotone_in_life(self):
        projection = battery_life_vs_data_rate(np.logspace(2, 7, 21))
        lives = [point.life_seconds for point in projection.curve]
        assert all(later <= earlier + 1e-6 for earlier, later in zip(lives, lives[1:]))

    def test_device_class_bands_match_paper(self):
        """The three claimed regions of Fig. 3 are reproduced."""
        projection = battery_life_vs_data_rate(np.logspace(2, 8, 25))
        for placement, point in projection.device_points:
            assert point.band is placement.expected_band, placement.name

    def test_perpetual_region_covers_kbps_class_nodes(self):
        """Perpetual operation extends through the biopotential/ring rates."""
        projection = battery_life_vs_data_rate(np.logspace(2, 8, 49))
        limit = projection.perpetual_max_rate_bps()
        assert limit >= units.kilobit_per_second(10.0)
        assert limit <= units.megabit_per_second(1.0)

    def test_band_for_rate_lookup(self):
        projection = battery_life_vs_data_rate(np.logspace(2, 8, 25))
        assert projection.band_for_rate(units.kilobit_per_second(1.0)) \
            is LifeBand.PERPETUAL

    def test_rows_report_every_device_class(self):
        projection = battery_life_vs_data_rate(np.logspace(2, 8, 13))
        rows = projection.as_rows()
        assert len(rows) == len(DEVICE_CLASS_PLACEMENTS)
        assert all(row["matches_paper"] for row in rows)

    def test_device_class_catalog_covers_paper_annotations(self):
        names = " ".join(p.name for p in DEVICE_CLASS_PLACEMENTS).lower()
        for keyword in ("biopotential", "ring", "fitness", "audio", "video"):
            assert keyword in names
