"""Tests for repro.core.partition (the DNN partitioner)."""

from __future__ import annotations

import pytest

from repro.core.partition import (
    PartitionObjective,
    evaluate_split,
    min_cut_partition,
    optimal_partition,
    sweep_partitions,
)
from repro.errors import PartitionError
from repro.nn.profile import profile_model
from repro.nn.zoo import imu_har_mlp, keyword_spotting_cnn, mobilenet_tiny


@pytest.fixture(scope="module")
def kws_profile():
    return profile_model(keyword_spotting_cnn())


@pytest.fixture(scope="module")
def vision_profile():
    return profile_model(mobilenet_tiny())


@pytest.fixture(scope="module")
def har_profile():
    return profile_model(imu_har_mlp())


class TestEvaluateSplit:
    def test_split_zero_ships_raw_input(self, kws_profile, leaf_accelerator, hub, wir):
        point = evaluate_split(kws_profile, 0, leaf_accelerator, hub, wir)
        assert point.leaf_macs == 0
        assert point.hub_macs == kws_profile.total_macs
        assert point.transfer_bits == pytest.approx(kws_profile.input_bits)
        assert point.boundary_layer == "<input>"

    def test_full_split_runs_everything_on_leaf(self, kws_profile,
                                                leaf_accelerator, hub, wir):
        last = len(kws_profile.layers)
        point = evaluate_split(kws_profile, last, leaf_accelerator, hub, wir)
        assert point.hub_macs == 0
        assert point.leaf_macs == kws_profile.total_macs
        assert point.transfer_bits == pytest.approx(kws_profile.output_bits)

    def test_energy_components_sum(self, kws_profile, leaf_accelerator, hub, wir):
        point = evaluate_split(kws_profile, 3, leaf_accelerator, hub, wir)
        assert point.leaf_energy_joules == pytest.approx(
            point.leaf_compute_energy_joules + point.link_tx_energy_joules
        )
        assert point.total_energy_joules == pytest.approx(
            point.leaf_energy_joules + point.hub_energy_joules
        )

    def test_latency_is_sum_of_stages(self, kws_profile, leaf_accelerator, hub, wir):
        point = evaluate_split(kws_profile, 3, leaf_accelerator, hub, wir)
        assert point.latency_seconds == pytest.approx(
            point.leaf_latency_seconds + point.transfer_latency_seconds
            + point.hub_latency_seconds
        )

    def test_out_of_range_split_rejected(self, kws_profile, leaf_accelerator, hub, wir):
        with pytest.raises(PartitionError):
            evaluate_split(kws_profile, 999, leaf_accelerator, hub, wir)


class TestSweepAndOptimal:
    def test_sweep_covers_all_split_points(self, kws_profile, leaf_accelerator,
                                           hub, wir):
        points = sweep_partitions(kws_profile, leaf_accelerator, hub, wir)
        assert len(points) == len(kws_profile.layers) + 1
        assert [p.split_index for p in points] == kws_profile.split_points()

    def test_optimal_is_minimum_of_sweep(self, kws_profile, leaf_accelerator,
                                         hub, wir):
        decision = optimal_partition(kws_profile, leaf_accelerator, hub, wir)
        sweep_min = min(
            p.leaf_energy_joules for p in decision.points
        )
        assert decision.best.leaf_energy_joules == pytest.approx(sweep_min)

    def test_wir_prefers_early_offload_for_kws(self, kws_profile,
                                               leaf_accelerator, hub, wir):
        """With 100 pJ/bit communication, shipping data early wins."""
        decision = optimal_partition(kws_profile, leaf_accelerator, hub, wir)
        assert decision.runs_fully_on_hub or decision.best.split_index <= 2

    def test_ble_prefers_local_compute_for_kws(self, kws_profile,
                                               leaf_accelerator, hub, ble):
        """With nJ/bit communication, the optimum keeps compute on the leaf."""
        decision = optimal_partition(kws_profile, leaf_accelerator, hub, ble)
        assert decision.best.split_index > 2
        fraction_on_hub = decision.best.hub_macs / kws_profile.total_macs
        assert fraction_on_hub < 0.5

    def test_wir_leaf_energy_below_ble_leaf_energy(self, kws_profile,
                                                   leaf_accelerator, hub, wir, ble):
        wir_best = optimal_partition(kws_profile, leaf_accelerator, hub, wir).best
        ble_best = optimal_partition(kws_profile, leaf_accelerator, hub, ble).best
        assert wir_best.leaf_energy_joules < ble_best.leaf_energy_joules

    def test_latency_objective_can_differ_from_energy_objective(
            self, vision_profile, leaf_accelerator, hub, wir):
        energy = optimal_partition(vision_profile, leaf_accelerator, hub, wir,
                                   objective=PartitionObjective.LEAF_ENERGY)
        latency = optimal_partition(vision_profile, leaf_accelerator, hub, wir,
                                    objective=PartitionObjective.LATENCY)
        assert latency.best.latency_seconds <= energy.best.latency_seconds + 1e-12

    def test_total_energy_objective(self, har_profile, leaf_accelerator, hub, wir):
        decision = optimal_partition(har_profile, leaf_accelerator, hub, wir,
                                     objective=PartitionObjective.TOTAL_ENERGY)
        best_total = min(p.total_energy_joules for p in decision.points)
        assert decision.best.total_energy_joules == pytest.approx(best_total)

    def test_energy_delay_product_objective(self, har_profile, leaf_accelerator,
                                            hub, wir):
        decision = optimal_partition(har_profile, leaf_accelerator, hub, wir,
                                     objective=PartitionObjective.ENERGY_DELAY_PRODUCT)
        best = min(p.energy_delay_product for p in decision.points)
        assert decision.best.energy_delay_product == pytest.approx(best)

    def test_improvement_over_reports_ratio(self, kws_profile, leaf_accelerator,
                                            hub, wir):
        decision = optimal_partition(kws_profile, leaf_accelerator, hub, wir)
        full_local = len(kws_profile.layers)
        assert decision.improvement_over(full_local) >= 1.0

    def test_improvement_over_unknown_split_rejected(self, kws_profile,
                                                     leaf_accelerator, hub, wir):
        decision = optimal_partition(kws_profile, leaf_accelerator, hub, wir)
        with pytest.raises(PartitionError):
            decision.improvement_over(999)


class TestMinCutCrossCheck:
    @pytest.mark.parametrize("model_builder", [keyword_spotting_cnn, imu_har_mlp])
    def test_min_cut_matches_exhaustive_for_wir(self, model_builder,
                                                leaf_accelerator, hub, wir):
        profile = profile_model(model_builder())
        exhaustive = optimal_partition(profile, leaf_accelerator, hub, wir)
        flow_based = min_cut_partition(profile, leaf_accelerator, hub, wir)
        exhaustive_value = exhaustive.best.leaf_energy_joules
        flow_value = evaluate_split(
            profile, flow_based, leaf_accelerator, hub, wir
        ).leaf_energy_joules
        assert flow_value == pytest.approx(exhaustive_value, rel=1e-9)

    def test_min_cut_matches_exhaustive_for_ble(self, leaf_accelerator, hub, ble):
        profile = profile_model(keyword_spotting_cnn())
        exhaustive = optimal_partition(profile, leaf_accelerator, hub, ble)
        flow_based = min_cut_partition(profile, leaf_accelerator, hub, ble)
        flow_value = evaluate_split(
            profile, flow_based, leaf_accelerator, hub, ble
        ).leaf_energy_joules
        assert flow_value == pytest.approx(exhaustive.best.leaf_energy_joules,
                                           rel=1e-9)
