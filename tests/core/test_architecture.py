"""Tests for repro.core.architecture (the Fig. 1 comparison)."""

from __future__ import annotations

import pytest

from repro import units
from repro.body.landmarks import BodyLandmark
from repro.comm.ble import ble_1m_phy
from repro.comm.eqs_hbc import wir_leaf_node
from repro.core.architecture import (
    compare_architectures,
    conventional_node_budget,
    human_inspired_node_budget,
)
from repro.core.node import ConventionalNodeSpec, LeafNodeSpec, SensorSuite
from repro.errors import ConfigurationError
from repro.isa.pipeline import biopotential_delta_pipeline
from repro.sensors.catalog import SensorModality


def ecg_conventional() -> ConventionalNodeSpec:
    return ConventionalNodeSpec(
        name="ECG patch (today)",
        sensors=SensorSuite(
            modalities=(SensorModality.ECG,),
            sensing_power_watts=units.microwatt(150.0),
        ),
        placement=BodyLandmark.STERNUM,
        radio=ble_1m_phy(),
    )


def ecg_human() -> LeafNodeSpec:
    return LeafNodeSpec(
        name="ECG patch (human-inspired)",
        sensors=SensorSuite(
            modalities=(SensorModality.ECG,),
            sensing_power_watts=units.microwatt(20.0),
        ),
        placement=BodyLandmark.STERNUM,
        link=wir_leaf_node(),
    )


class TestConventionalBudget:
    def test_fig1_component_bands_active_mode(self):
        """Fig. 1 left: sensor ~100s uW, CPU ~mW, radio ~10s mW."""
        budget = conventional_node_budget(ecg_conventional(), mode="active")
        sensor = budget.component_power("sensor")
        cpu = budget.component_power("cpu")
        radio = budget.component_power("radio")
        assert units.microwatt(50.0) <= sensor <= units.microwatt(500.0)
        assert units.milliwatt(1.0) <= cpu <= units.milliwatt(20.0)
        assert units.milliwatt(5.0) <= radio <= units.milliwatt(50.0)

    def test_radio_dominates_active_budget(self):
        budget = conventional_node_budget(ecg_conventional(), mode="active")
        assert budget.dominant_component().name == "radio"

    def test_average_mode_below_active_mode(self):
        active = conventional_node_budget(ecg_conventional(), mode="active")
        average = conventional_node_budget(ecg_conventional(), mode="average")
        assert average.total_watts() < active.total_watts()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            conventional_node_budget(ecg_conventional(), mode="peak")

    def test_survey_model_used_when_no_explicit_sensing_power(self):
        spec = ConventionalNodeSpec(
            name="imu node",
            sensors=SensorSuite(modalities=(SensorModality.IMU,)),
            placement=BodyLandmark.RIGHT_THIGH,
            radio=ble_1m_phy(),
        )
        budget = conventional_node_budget(spec, mode="active")
        assert budget.component_power("sensor") > 0.0


class TestHumanInspiredBudget:
    def test_fig1_component_bands_active_mode(self):
        """Fig. 1 right: sensor 10-50 uW, ISA ~100 uW, Wi-R ~100 uW."""
        budget = human_inspired_node_budget(ecg_human(), mode="active")
        sensor = budget.component_power("sensor")
        isa = budget.component_power("isa")
        wir = budget.component_power("wi-r")
        assert units.microwatt(10.0) <= sensor <= units.microwatt(50.0)
        assert units.microwatt(20.0) <= isa <= units.microwatt(300.0)
        assert units.microwatt(50.0) <= wir <= units.microwatt(300.0)

    def test_total_active_power_sub_milliwatt(self):
        budget = human_inspired_node_budget(ecg_human(), mode="active")
        assert budget.total_watts() < units.milliwatt(1.0)

    def test_average_mode_with_isa_pipeline(self):
        budget = human_inspired_node_budget(
            ecg_human(), mode="average", isa_pipeline=biopotential_delta_pipeline(),
        )
        # Duty-cycled at 3 kb/s, the Wi-R radio contributes almost nothing.
        assert budget.component_power("wi-r") < units.microwatt(2.0)
        assert budget.total_watts() < units.microwatt(50.0)


class TestComparison:
    def test_power_reduction_factor_large(self):
        """The architecture shift buys >= 50x on a biopotential node."""
        comparison = compare_architectures(ecg_conventional(), ecg_human(),
                                           mode="active")
        assert comparison.power_reduction_factor >= 50.0

    def test_communication_reduction_is_the_main_lever(self):
        comparison = compare_architectures(ecg_conventional(), ecg_human(),
                                           mode="active")
        assert comparison.communication_reduction_factor >= 50.0
        assert comparison.communication_reduction_factor >= \
            comparison.power_reduction_factor * 0.5

    def test_rows_include_ratio_entry(self):
        comparison = compare_architectures(ecg_conventional(), ecg_human())
        rows = comparison.as_rows()
        assert any(row["component"] == "power reduction" for row in rows)

    def test_average_mode_comparison_also_favours_human_inspired(self):
        comparison = compare_architectures(ecg_conventional(), ecg_human(),
                                           mode="average")
        assert comparison.power_reduction_factor > 3.0
