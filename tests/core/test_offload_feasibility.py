"""Tests for repro.core.offload and repro.core.feasibility."""

from __future__ import annotations

import math

import pytest

from repro import units
from repro.core.feasibility import harvesting_headroom_watts, perpetual_feasibility
from repro.core.offload import (
    OffloadStrategy,
    choose_offload_strategy,
    evaluate_offload_strategies,
)
from repro.core.partition import PartitionObjective
from repro.energy.battery import BatterySpec
from repro.energy.harvester import (
    HarvestingEnvironment,
    indoor_photovoltaic,
    thermoelectric_body,
)
from repro.errors import ConfigurationError
from repro.isa.pipeline import audio_feature_pipeline
from repro.nn.profile import profile_model
from repro.nn.zoo import keyword_spotting_cnn


@pytest.fixture(scope="module")
def kws_profile():
    return profile_model(keyword_spotting_cnn())


class TestOffloadStrategies:
    def test_all_strategies_evaluated_with_isa(self, kws_profile, leaf_accelerator,
                                               hub, wir):
        options = evaluate_offload_strategies(
            kws_profile, leaf_accelerator, hub, wir, inference_rate_hz=1.0,
            isa_pipeline=audio_feature_pipeline(),
        )
        strategies = {option.strategy for option in options}
        assert strategies == {
            OffloadStrategy.LOCAL_ALL,
            OffloadStrategy.OFFLOAD_RAW,
            OffloadStrategy.OFFLOAD_FEATURES,
            OffloadStrategy.PARTITIONED,
        }

    def test_features_strategy_absent_without_pipeline(self, kws_profile,
                                                       leaf_accelerator, hub, wir):
        options = evaluate_offload_strategies(
            kws_profile, leaf_accelerator, hub, wir, inference_rate_hz=1.0,
        )
        strategies = {option.strategy for option in options}
        assert OffloadStrategy.OFFLOAD_FEATURES not in strategies

    def test_partitioned_never_worse_than_extremes(self, kws_profile,
                                                   leaf_accelerator, hub, wir):
        decision = choose_offload_strategy(
            kws_profile, leaf_accelerator, hub, wir, inference_rate_hz=1.0,
        )
        partitioned = decision.option(OffloadStrategy.PARTITIONED)
        local = decision.option(OffloadStrategy.LOCAL_ALL)
        raw = decision.option(OffloadStrategy.OFFLOAD_RAW)
        assert partitioned.leaf_energy_joules <= local.leaf_energy_joules + 1e-15
        assert partitioned.leaf_energy_joules <= raw.leaf_energy_joules + 1e-15

    def test_wir_chooses_offload_ble_prefers_local(self, kws_profile,
                                                   leaf_accelerator, hub, wir, ble):
        """The central architectural claim as an offload decision."""
        over_wir = choose_offload_strategy(
            kws_profile, leaf_accelerator, hub, wir, inference_rate_hz=1.0,
        )
        over_ble = choose_offload_strategy(
            kws_profile, leaf_accelerator, hub, ble, inference_rate_hz=1.0,
        )
        wir_hub_macs = over_wir.chosen.partition.best.hub_macs \
            if over_wir.chosen.partition else (
                kws_profile.total_macs
                if over_wir.chosen.strategy is OffloadStrategy.OFFLOAD_RAW else 0
            )
        ble_hub_macs = over_ble.chosen.partition.best.hub_macs \
            if over_ble.chosen.partition else (
                kws_profile.total_macs
                if over_ble.chosen.strategy is OffloadStrategy.OFFLOAD_RAW else 0
            )
        assert wir_hub_macs >= ble_hub_macs
        assert over_wir.chosen.leaf_energy_joules < over_ble.chosen.leaf_energy_joules

    def test_leaf_average_power_scales_with_inference_rate(self, kws_profile,
                                                           leaf_accelerator, hub, wir):
        slow = choose_offload_strategy(
            kws_profile, leaf_accelerator, hub, wir, inference_rate_hz=0.5,
        )
        fast = choose_offload_strategy(
            kws_profile, leaf_accelerator, hub, wir, inference_rate_hz=2.0,
        )
        assert fast.chosen.leaf_average_power_watts == pytest.approx(
            4.0 * slow.chosen.leaf_average_power_watts, rel=1e-6
        )

    def test_always_on_kws_leaf_power_is_microwatt_class_over_wir(
            self, kws_profile, leaf_accelerator, hub, wir):
        """A once-per-second keyword-spotting leaf stays in the uW class."""
        decision = choose_offload_strategy(
            kws_profile, leaf_accelerator, hub, wir, inference_rate_hz=1.0,
        )
        assert decision.chosen.leaf_average_power_watts < units.microwatt(50.0)

    def test_latency_objective_supported(self, kws_profile, leaf_accelerator,
                                         hub, wir):
        decision = choose_offload_strategy(
            kws_profile, leaf_accelerator, hub, wir, inference_rate_hz=1.0,
            objective=PartitionObjective.LATENCY,
        )
        fastest = min(option.latency_seconds for option in decision.options)
        assert decision.chosen.latency_seconds == pytest.approx(fastest)

    def test_leaf_energy_ratio_lookup(self, kws_profile, leaf_accelerator, hub, wir):
        decision = choose_offload_strategy(
            kws_profile, leaf_accelerator, hub, wir, inference_rate_hz=1.0,
        )
        assert decision.leaf_energy_ratio(OffloadStrategy.LOCAL_ALL) >= 1.0

    def test_unknown_option_lookup_rejected(self, kws_profile, leaf_accelerator,
                                            hub, wir):
        decision = choose_offload_strategy(
            kws_profile, leaf_accelerator, hub, wir, inference_rate_hz=1.0,
        )
        with pytest.raises(ConfigurationError):
            decision.option(OffloadStrategy.OFFLOAD_FEATURES)

    def test_negative_inference_rate_rejected(self, kws_profile, leaf_accelerator,
                                              hub, wir):
        with pytest.raises(ConfigurationError):
            evaluate_offload_strategies(
                kws_profile, leaf_accelerator, hub, wir, inference_rate_hz=-1.0,
            )


class TestFeasibility:
    def test_leaf_node_perpetual_with_indoor_harvesting(self):
        """A 50 uW leaf node is energy-neutral on indoor PV + TEG."""
        report = perpetual_feasibility(
            "ecg leaf", units.microwatt(50.0),
            harvesters=[indoor_photovoltaic(), thermoelectric_body()],
        )
        assert report.is_energy_neutral
        assert report.is_perpetual
        assert report.battery_life_days == math.inf

    def test_millwatt_node_not_energy_neutral_indoors(self):
        report = perpetual_feasibility(
            "audio node", units.milliwatt(15.0),
            harvesters=[indoor_photovoltaic(), thermoelectric_body()],
        )
        assert not report.is_energy_neutral
        assert not report.is_perpetual
        assert report.harvesting_margin_watts < 0.0

    def test_battery_perpetual_without_harvesting(self):
        """A 30 uW node exceeds one year on the 1000 mAh cell alone."""
        report = perpetual_feasibility("biopotential patch", units.microwatt(30.0))
        assert not report.is_energy_neutral
        assert report.is_perpetual

    def test_small_battery_changes_the_verdict(self):
        tiny = BatterySpec(name="tiny", capacity_mah=20.0)
        report = perpetual_feasibility("ring", units.microwatt(100.0), battery=tiny)
        assert not report.is_perpetual

    def test_headroom_sign(self):
        headroom = harvesting_headroom_watts(
            units.microwatt(30.0),
            [indoor_photovoltaic(), thermoelectric_body()],
            HarvestingEnvironment.INDOOR_OFFICE,
        )
        assert headroom > 0.0
        shortfall = harvesting_headroom_watts(
            units.milliwatt(10.0), [indoor_photovoltaic()],
        )
        assert shortfall < 0.0

    def test_negative_load_rejected(self):
        with pytest.raises(ConfigurationError):
            perpetual_feasibility("bad", -1.0)
