"""Tests for the central experiment registry."""

from __future__ import annotations

import pytest

from repro.analysis.reporting import format_table
from repro.errors import RegistryError
from repro.runner import ExperimentSpec, all_specs, experiment_ids, resolve


class TestRegistryContents:
    def test_all_eighteen_experiments_registered(self):
        specs = all_specs()
        assert len(specs) == 18
        assert [spec.eid for spec in specs] == [f"E{i}" for i in range(1, 19)]

    def test_ids_and_modules_are_unique(self):
        specs = all_specs()
        assert len({spec.id for spec in specs}) == len(specs)
        assert len({spec.module for spec in specs}) == len(specs)

    def test_experiment_ids_sorted(self):
        ids = experiment_ids()
        assert ids == sorted(ids)
        assert "fig1" in ids and "scaling" in ids

    def test_titles_nonempty_and_runnable(self):
        for spec in all_specs():
            assert spec.title
            assert callable(spec.run)


class TestResolution:
    def test_resolve_by_short_name(self):
        assert resolve("scaling").module == "network_scaling"

    def test_resolve_by_module_name(self):
        assert resolve("network_scaling") is resolve("scaling")

    def test_resolve_by_paper_id(self):
        assert resolve("E8") is resolve("scaling")
        assert resolve("e1") is resolve("fig1")

    def test_unknown_name_raises(self):
        with pytest.raises(RegistryError):
            resolve("does-not-exist")


class TestRowsContract:
    """Every registered experiment must yield non-empty, formattable rows."""

    @pytest.mark.parametrize("spec", all_specs(), ids=lambda spec: spec.id)
    def test_rows_nonempty_and_table_formattable(self, spec: ExperimentSpec):
        overrides = ({"simulated_seconds": 0.25}
                     if spec.accepts("simulated_seconds") else {})
        result = spec.execute(**overrides)
        rows = spec.extract_rows(result)
        assert rows, f"{spec.id} produced no rows"
        for row in rows:
            assert isinstance(row, dict) and row
        table = format_table(rows, title=spec.title)
        assert spec.title in table
        for line in spec.summary_lines(result):
            assert isinstance(line, str) and line

    def test_fig2_rows_attribute_normalised(self):
        # Fig. 2's result exposes `rows` as a plain attribute; the registry
        # must still hand back a list of dicts like every other experiment.
        spec = resolve("fig2")
        rows = spec.extract_rows(spec.execute())
        assert isinstance(rows, list)
        assert all(isinstance(row, dict) for row in rows)


class TestDefaultSweepGrids:
    """Every spec's default sweep grid must execute end to end."""

    @pytest.mark.parametrize(
        "spec", [spec for spec in all_specs() if spec.sweep_defaults],
        ids=lambda spec: spec.id)
    def test_every_default_grid_point_summarises(self, spec: ExperimentSpec):
        for params in ({key: values[0] for key, values in
                        spec.sweep_defaults.items()},
                       {key: values[-1] for key, values in
                        spec.sweep_defaults.items()}):
            if spec.accepts("simulated_seconds"):
                params.setdefault("simulated_seconds", 0.25)
            result = spec.execute(**params)
            assert spec.extract_rows(result)
            spec.summary_lines(result)  # must not raise on any grid point


class TestSpecBehaviour:
    def test_execute_merges_defaults_under_overrides(self):
        spec = resolve("scaling")
        assert spec.defaults["simulated_seconds"] == 1.0
        result = spec.execute(node_counts=(1, 2), simulated_seconds=0.25)
        assert len(result.points) == 2

    def test_accepts_reports_run_signature(self):
        assert resolve("scaling").accepts("seed")
        assert not resolve("fig2").accepts("seed")
