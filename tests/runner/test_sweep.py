"""Tests for the parallel sweep runner and its cache."""

from __future__ import annotations

import pytest

from repro.errors import SweepError
from repro.runner import SweepRunner, derive_seed, expand_grid
from repro.runner import resolve as resolve_spec

#: Small, fast scaling grid used throughout these tests.
SCALING_GRID = {"seed": [0, 1], "simulated_seconds": [0.25],
                "node_counts": [(1, 2, 4)]}


class TestExpandGrid:
    def test_empty_grid_is_one_task(self):
        assert expand_grid({}) == [{}]

    def test_cartesian_product_in_key_order(self):
        points = expand_grid({"b": [1, 2], "a": ["x"]})
        assert points == [{"a": "x", "b": 1}, {"a": "x", "b": 2}]

    def test_string_axis_rejected(self):
        with pytest.raises(SweepError):
            expand_grid({"a": "xy"})

    def test_empty_axis_rejected(self):
        with pytest.raises(SweepError):
            expand_grid({"a": []})

    def test_duplicate_axis_value_rejected(self):
        with pytest.raises(SweepError, match="more than once"):
            expand_grid({"seed": [0, 1, 0]})

    def test_equal_but_distinct_typed_values_accepted(self):
        # 0 and 0.0 compare equal but are distinct configurations (the
        # digest encoding is type-preserving), so both may be swept.
        points = expand_grid({"x": [0, 0.0]})
        assert len(points) == 2


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "scaling", {"x": 1}) == \
            derive_seed(0, "scaling", {"x": 1})

    def test_varies_with_params_and_base(self):
        seeds = {derive_seed(0, "scaling", {"x": 1}),
                 derive_seed(0, "scaling", {"x": 2}),
                 derive_seed(1, "scaling", {"x": 1}),
                 derive_seed(0, "fig1", {"x": 1})}
        assert len(seeds) == 4

    def test_fits_in_32_bits(self):
        assert 0 <= derive_seed(0, "scaling", {}) < 2 ** 32


class TestTaskConstruction:
    def test_seed_injected_when_accepted_and_unpinned(self):
        runner = SweepRunner(out_dir=None)
        tasks = runner.tasks("scaling", {"simulated_seconds": [0.25, 0.5]})
        assert all("seed" in task.kwargs for task in tasks)
        assert tasks[0].kwargs["seed"] != tasks[1].kwargs["seed"]

    def test_pinned_seed_not_overridden(self):
        runner = SweepRunner(out_dir=None)
        tasks = runner.tasks("scaling", {"seed": [7]})
        assert tasks[0].kwargs["seed"] == 7

    def test_defaults_merged_into_kwargs(self):
        runner = SweepRunner(out_dir=None)
        task = runner.tasks("scaling", {"seed": [0]})[0]
        assert task.kwargs["simulated_seconds"] == 1.0

    def test_invalid_parallel_rejected(self):
        with pytest.raises(SweepError):
            SweepRunner(parallel=0)

    def test_unknown_grid_key_rejected(self):
        runner = SweepRunner(out_dir=None)
        with pytest.raises(SweepError, match="bogus"):
            runner.tasks("scaling", {"bogus": [1, 2]})

    def test_unknown_override_rejected_for_single_run(self):
        runner = SweepRunner(out_dir=None)
        with pytest.raises(SweepError, match="bogus"):
            runner.run_experiment("fig2", {"bogus": 1})

    def test_string_grid_values_coerced_to_enums(self):
        from repro.core.partition import PartitionObjective

        runner = SweepRunner(out_dir=None)
        by_value = runner.tasks("partition", {"objective": ["leaf_energy"]})
        by_name = runner.tasks("partition", {"objective": ["LEAF_ENERGY"]})
        as_enum = runner.tasks(
            "partition", {"objective": [PartitionObjective.LEAF_ENERGY]})
        assert by_value[0].kwargs["objective"] is PartitionObjective.LEAF_ENERGY
        assert by_name[0].kwargs["objective"] is PartitionObjective.LEAF_ENERGY
        # Equivalent spellings share one cache digest.
        assert by_value[0].digest == by_name[0].digest == as_enum[0].digest

    def test_single_run_keeps_driver_default_seed(self):
        # `repro run scaling` must match a direct run() call: the derived
        # sweep seed is only injected for grid tasks.
        runner = SweepRunner(out_dir=None, base_seed=99)
        task = runner._task(resolve_spec("scaling"), 0, {}, inject_seed=False)
        assert "seed" not in task.kwargs

    def test_unwritable_out_dir_warns_but_returns_results(self, tmp_path):
        blocker = tmp_path / "plain-file"
        blocker.write_text("not a directory")
        runner = SweepRunner(out_dir=blocker / "sub", parallel=1)
        result = runner.run_experiment("fig2")
        assert result.rows  # computed results survive the write failure
        assert result.path is None
        assert runner.warnings and "cannot write" in runner.warnings[0]


class TestSweepExecution:
    def test_parallel_matches_serial(self, tmp_path):
        serial = SweepRunner(out_dir=tmp_path / "serial", parallel=1)
        parallel = SweepRunner(out_dir=tmp_path / "parallel", parallel=2)
        rows_serial = serial.run_sweep("scaling", SCALING_GRID).rows()
        rows_parallel = parallel.run_sweep("scaling", SCALING_GRID).rows()
        assert rows_serial == rows_parallel

    def test_rerun_is_served_from_cache(self, tmp_path):
        runner = SweepRunner(out_dir=tmp_path, parallel=1)
        first = runner.run_sweep("scaling", SCALING_GRID)
        assert first.cached_count == 0
        second = runner.run_sweep("scaling", SCALING_GRID)
        assert second.cached_count == len(second.results)
        assert second.rows() == first.rows()

    def test_corrupted_artifact_is_a_cache_miss(self, tmp_path):
        runner = SweepRunner(out_dir=tmp_path, parallel=1)
        first = runner.run_experiment("fig2")
        first.path.write_text("truncated garbage")
        second = runner.run_experiment("fig2")
        assert not second.cached
        assert second.rows == first.rows  # artifact rewritten, result intact
        assert runner.run_experiment("fig2").cached

    def test_force_recomputes(self, tmp_path):
        runner = SweepRunner(out_dir=tmp_path, parallel=1)
        runner.run_sweep("scaling", SCALING_GRID)
        forced = SweepRunner(out_dir=tmp_path, parallel=1, force=True)
        result = forced.run_sweep("scaling", SCALING_GRID)
        assert result.cached_count == 0

    def test_artifacts_written_per_task_plus_manifest(self, tmp_path):
        runner = SweepRunner(out_dir=tmp_path, parallel=1)
        sweep = runner.run_sweep("scaling", SCALING_GRID)
        task_files = list(tmp_path.glob("scaling-*.json"))
        manifest_files = list(tmp_path.glob("sweep-scaling-*.json"))
        assert len(task_files) == len(sweep.results) == 2
        assert len(manifest_files) == 1
        assert sweep.manifest_path in manifest_files

    def test_default_grid_has_at_least_three_points(self):
        runner = SweepRunner(out_dir=None)
        tasks = runner.tasks("network_scaling")
        assert len(tasks) >= 3

    def test_no_out_dir_disables_artifacts(self):
        runner = SweepRunner(out_dir=None, parallel=1)
        sweep = runner.run_sweep("scaling", {"seed": [0],
                                             "simulated_seconds": [0.25],
                                             "node_counts": [(1, 2)]})
        assert sweep.manifest_path is None
        assert all(result.path is None for result in sweep.results)

    def test_run_many_covers_several_experiments(self, tmp_path):
        runner = SweepRunner(out_dir=tmp_path, parallel=1)
        results = runner.run_many(["fig2", "charging"])
        assert [result.task.experiment for result in results] == \
            ["fig2", "charging"]
        assert all(result.rows for result in results)
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_parallel_failure_preserves_completed_results(self, tmp_path):
        from repro.errors import ReproError

        runner = SweepRunner(out_dir=tmp_path, parallel=2)
        with pytest.raises(ReproError):
            runner.run_sweep("fig1", {"mode": ["active", "bogus"]})
        # The successful 'active' task's artifact survived the batch failure
        # and is served from cache on retry.
        assert len(list(tmp_path.glob("fig1-*.json"))) == 1
        retry = runner.run_tasks(runner.tasks("fig1", {"mode": ["active"]}))
        assert retry[0].cached

    def test_duplicate_grid_points_rejected(self, tmp_path):
        runner = SweepRunner(out_dir=tmp_path, parallel=1)
        with pytest.raises(SweepError, match="seed"):
            runner.run_sweep("scaling", {"seed": [0, 0, 0],
                                         "simulated_seconds": [0.25],
                                         "node_counts": [(1, 2)]})
        assert not list(tmp_path.glob("scaling-*.json"))  # nothing executed

    def test_same_digest_within_batch_executes_once(self, tmp_path):
        # Duplicate *grids* are rejected, but equivalent spellings of one
        # configuration (enum name vs value) still collapse to a single
        # execution through the digest-based in-batch dedup.
        runner = SweepRunner(out_dir=tmp_path, parallel=1)
        results = runner.run_tasks(
            runner.tasks("partition",
                         {"objective": ["leaf_energy", "LEAF_ENERGY"]}))
        assert len(results) == 2
        assert sum(1 for result in results if result.deduplicated) == 1
        assert len(list(tmp_path.glob("partition-*.json"))) == 1

    def test_worker_failure_names_the_grid_point(self, tmp_path):
        runner = SweepRunner(out_dir=tmp_path, parallel=2)
        with pytest.raises(SweepError) as excinfo:
            runner.run_sweep("fig1", {"mode": ["active", "bogus"]})
        message = str(excinfo.value)
        assert "'mode': 'bogus'" in message  # the failing grid point
        assert "worker traceback" in message  # the remote traceback text
        assert "Traceback (most recent call last)" in message

    def test_serial_failure_preserves_completed_results(self, tmp_path):
        from repro.errors import ReproError

        runner = SweepRunner(out_dir=tmp_path, parallel=1)
        with pytest.raises(ReproError):
            runner.run_sweep("fig1", {"mode": ["active", "bogus"]})
        # The 'active' task ran first and its artifact survived.
        assert len(list(tmp_path.glob("fig1-*.json"))) == 1
        retry = runner.run_tasks(runner.tasks("fig1", {"mode": ["active"]}))
        assert retry[0].cached

    def test_serial_failure_propagates_the_original_error(self):
        # In-process failures keep their type and a clean message (the
        # CLI prints one line, not a traceback dump); only the process
        # boundary needs traceback capture.
        from repro.errors import ReproError, SweepError as SweepErrorType

        runner = SweepRunner(out_dir=None, parallel=1)
        with pytest.raises(ReproError, match="mode") as excinfo:
            runner.run_experiment("fig1", {"mode": "bogus"})
        assert not isinstance(excinfo.value, SweepErrorType)
        assert "worker traceback" not in str(excinfo.value)

    def test_rows_prefixed_with_grid_point(self):
        runner = SweepRunner(out_dir=None, parallel=1)
        sweep = runner.run_sweep("scaling", {"seed": [3],
                                             "simulated_seconds": [0.25],
                                             "node_counts": [(1, 2)]})
        for row in sweep.rows():
            assert row["seed"] == 3
            assert "nodes" in row
