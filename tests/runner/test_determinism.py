"""Determinism regression tests: same seed, bit-identical results."""

from __future__ import annotations

import dataclasses

from repro.comm.eqs_hbc import wir_commercial
from repro.netsim.simulator import BodyNetworkSimulator
from repro.netsim.traffic import PeriodicSource
from repro.runner import SweepRunner
from repro.netsim.config import NodeConfig
from repro import units


def _simulate(seed: int):
    simulator = BodyNetworkSimulator(wir_commercial(), rng=seed)
    for index in range(4):
        simulator.attach(NodeConfig(
            f"leaf{index}",
            PeriodicSource.from_rate(units.kilobit_per_second(64.0)),
            sensing_power_watts=units.microwatt(30.0),
        ))
    return simulator.run(0.5)


def test_non_finite_duration_rejected():
    # A sweep grid can legitimately parse `inf`; the simulator must refuse
    # it cleanly instead of running forever.
    import pytest

    from repro.errors import SimulationError

    simulator = BodyNetworkSimulator(wir_commercial(), rng=0)
    simulator.attach(NodeConfig("leaf0", PeriodicSource.from_rate(
        units.kilobit_per_second(64.0))))
    for bad in (float("inf"), float("nan")):
        with pytest.raises(SimulationError):
            simulator.run(bad)


class TestSimulatorDeterminism:
    def test_same_seed_identical_result_fields(self):
        first = dataclasses.asdict(_simulate(seed=1234))
        second = dataclasses.asdict(_simulate(seed=1234))
        assert first == second

    def test_different_seed_still_converges_on_counts(self):
        # Periodic sources make the *derived* packet totals seed-independent
        # even though per-packet timing may differ; this guards the seed
        # plumbing without asserting an input constant back.
        first = _simulate(seed=1)
        second = _simulate(seed=2)
        assert first.delivered_packets == second.delivered_packets
        assert first.dropped_packets == second.dropped_packets
        assert first.delivered_bits == second.delivered_bits


class TestSweepDeterminism:
    GRID = {"seed": [11, 12], "simulated_seconds": [0.25],
            "node_counts": [(1, 2, 4)]}

    def test_two_parallel_executions_identical(self):
        first = SweepRunner(out_dir=None, parallel=2).run_sweep(
            "scaling", self.GRID).rows()
        second = SweepRunner(out_dir=None, parallel=2).run_sweep(
            "scaling", self.GRID).rows()
        assert first == second

    def test_parallel_identical_to_serial(self):
        parallel = SweepRunner(out_dir=None, parallel=2).run_sweep(
            "scaling", self.GRID).rows()
        serial = SweepRunner(out_dir=None, parallel=1).run_sweep(
            "scaling", self.GRID).rows()
        assert parallel == serial

    def test_derived_seeds_stable_across_runners(self):
        grid = {"simulated_seconds": [0.25], "node_counts": [(1, 2)]}
        first = SweepRunner(out_dir=None, base_seed=5).tasks("scaling", grid)
        second = SweepRunner(out_dir=None, base_seed=5).tasks("scaling", grid)
        assert [task.kwargs for task in first] == \
            [task.kwargs for task in second]
