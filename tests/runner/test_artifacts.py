"""Tests for JSON artifact serialisation and the digest-keyed cache."""

from __future__ import annotations

import enum
import json

import numpy as np
import pytest

from repro.errors import ArtifactError
from repro.runner import (
    ARTIFACT_SCHEMA_VERSION,
    artifact_path,
    digest_key,
    load_artifact,
    load_artifacts,
    sanitize,
    write_artifact,
)
from repro.runner.artifacts import source_fingerprint


class Colour(enum.Enum):
    RED = "red"


class TestSanitize:
    def test_plain_types_pass_through(self):
        assert sanitize({"a": 1, "b": "x", "c": True, "d": None}) == \
            {"a": 1, "b": "x", "c": True, "d": None}

    def test_tuples_become_lists(self):
        assert sanitize((1, 2, (3,))) == [1, 2, [3]]

    def test_enums_use_their_value(self):
        assert sanitize(Colour.RED) == "red"

    def test_numpy_scalars_become_python_numbers(self):
        assert sanitize(np.float64(1.5)) == 1.5
        assert sanitize(np.int64(3)) == 3

    def test_non_finite_floats_become_strings(self):
        assert sanitize(float("nan")) == "nan"
        assert sanitize(float("inf")) == "inf"
        assert sanitize(float("-inf")) == "-inf"

    def test_everything_is_json_encodable(self):
        payload = sanitize({"rows": [(Colour.RED, np.float64(2.0))],
                            "weird": object()})
        json.dumps(payload)  # must not raise


class TestDigest:
    def test_digest_is_stable_across_key_order(self):
        assert digest_key("fig1", {"a": 1, "b": 2}) == \
            digest_key("fig1", {"b": 2, "a": 1})

    def test_digest_changes_with_kwargs(self):
        assert digest_key("fig1", {"a": 1}) != digest_key("fig1", {"a": 2})

    def test_digest_changes_with_experiment(self):
        assert digest_key("fig1", {}) != digest_key("fig2", {})

    def test_digest_distinguishes_enum_from_its_value(self):
        # A false cache hit here would serve an enum run's rows for a
        # string configuration that actually fails when executed.
        assert digest_key("partition", {"objective": Colour.RED}) != \
            digest_key("partition", {"objective": "red"})

    def test_digest_distinguishes_tuple_from_list(self):
        assert digest_key("scaling", {"node_counts": (1, 2)}) != \
            digest_key("scaling", {"node_counts": [1, 2]})

    def test_digest_distinguishes_nonfinite_from_strings(self):
        assert digest_key("x", {"a": float("nan")}) != digest_key("x", {"a": "nan"})
        assert digest_key("x", {"a": float("inf")}) != digest_key("x", {"a": "inf"})

    def test_digest_covers_the_source_tree(self):
        # Editing any model source must invalidate cached artifacts.
        fingerprint = source_fingerprint()
        assert fingerprint == source_fingerprint()
        int(fingerprint, 16)
        source_fingerprint.cache_clear()
        assert source_fingerprint() == fingerprint


class TestArtifactIO:
    def test_roundtrip(self, tmp_path):
        path = artifact_path(tmp_path, "fig1", "abc123")
        written = write_artifact(path, {"experiment": "fig1",
                                        "rows": [{"x": 1}]})
        document = load_artifact(written)
        assert document["schema_version"] == ARTIFACT_SCHEMA_VERSION
        assert document["experiment"] == "fig1"
        assert document["rows"] == [{"x": 1}]
        assert document["source_fingerprint"] == source_fingerprint()

    def test_row_column_order_is_preserved(self, tmp_path):
        rows = [{"zeta": 1, "alpha": 2, "mid": 3}]
        path = write_artifact(tmp_path / "a.json", {"rows": rows})
        loaded = load_artifact(path)
        assert list(loaded["rows"][0]) == ["zeta", "alpha", "mid"]

    def test_load_rejects_non_artifact_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ArtifactError):
            load_artifact(path)

    def test_load_rejects_wrong_schema_version(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema_version": -1}))
        with pytest.raises(ArtifactError):
            load_artifact(path)

    def test_load_artifacts_skips_foreign_files(self, tmp_path):
        write_artifact(tmp_path / "good.json", {"experiment": "fig1",
                                                "digest": "d1", "rows": []})
        (tmp_path / "junk.json").write_text("not json at all")
        (tmp_path / "foreign.json").write_text(json.dumps([1, 2, 3]))
        documents = load_artifacts(tmp_path)
        assert len(documents) == 1
        assert documents[0]["experiment"] == "fig1"

    def test_load_artifacts_requires_directory(self, tmp_path):
        with pytest.raises(ArtifactError):
            load_artifacts(tmp_path / "missing")

    def test_write_failure_raises_artifact_error(self, tmp_path):
        blocker = tmp_path / "file.txt"
        blocker.write_text("plain file, not a directory")
        with pytest.raises(ArtifactError, match="cannot write"):
            write_artifact(blocker / "x.json", {"rows": []})
