"""Cross-cutting property-based tests (hypothesis).

These invariants span module boundaries and hold for *any* valid input,
not just the handful of named operating points used elsewhere:

* energy accounting is conservative (no component of a transfer or a
  partition can be negative; totals equal the sum of their parts);
* the partitioner's optimum is never worse than any explicitly evaluated
  split, for arbitrary device/link parameters;
* battery life is monotone in load and in harvested power;
* the TDMA schedule admits a set of flows iff their utilisation fits.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.comm.eqs_hbc import EQSHBCTransceiver
from repro.comm.link import transfer_cost
from repro.comm.mac import TDMASchedule
from repro.core.battery_life import classify_battery_life, project_battery_life
from repro.core.compute import ComputeDevice
from repro.core.partition import PartitionObjective, optimal_partition, sweep_partitions
from repro.energy.battery import BatterySpec, battery_life_seconds
from repro.nn.profile import profile_model
from repro.nn.zoo import imu_har_mlp

# A fixed small profile keeps the partition properties fast.
_HAR_PROFILE = profile_model(imu_har_mlp())


def _transceiver(rate_bps: float, energy_per_bit: float) -> EQSHBCTransceiver:
    return EQSHBCTransceiver(name="prop link", data_rate=rate_bps,
                             energy_per_bit=energy_per_bit)


def _device(energy_per_mac: float, macs_per_second: float) -> ComputeDevice:
    return ComputeDevice(name="prop device", energy_per_mac_joules=energy_per_mac,
                         macs_per_second=macs_per_second)


class TestTransferCostProperties:
    @given(rate=st.floats(min_value=1e3, max_value=1e8),
           energy=st.floats(min_value=1e-13, max_value=1e-8),
           payload=st.floats(min_value=0.0, max_value=1e9))
    @settings(max_examples=60, deadline=None)
    def test_costs_non_negative_and_additive(self, rate, energy, payload):
        link = _transceiver(rate, energy)
        cost = transfer_cost(link, payload)
        assert cost.tx_energy_joules >= 0.0
        assert cost.rx_energy_joules >= 0.0
        assert cost.total_energy_joules == pytest.approx(
            cost.tx_energy_joules + cost.rx_energy_joules
        )

    @given(rate=st.floats(min_value=1e3, max_value=1e8),
           energy=st.floats(min_value=1e-13, max_value=1e-8),
           payload=st.floats(min_value=1.0, max_value=1e8))
    @settings(max_examples=60, deadline=None)
    def test_doubling_payload_doubles_marginal_energy(self, rate, energy, payload):
        link = _transceiver(rate, energy)
        single = transfer_cost(link, payload, include_wakeup=False)
        double = transfer_cost(link, 2.0 * payload, include_wakeup=False)
        assert double.tx_energy_joules == pytest.approx(
            2.0 * single.tx_energy_joules, rel=1e-9
        )


class TestPartitionProperties:
    @given(leaf_energy=st.floats(min_value=1e-13, max_value=1e-9),
           hub_energy=st.floats(min_value=1e-13, max_value=1e-10),
           link_energy=st.floats(min_value=1e-12, max_value=1e-8),
           link_rate=st.floats(min_value=1e4, max_value=1e7))
    @settings(max_examples=40, deadline=None)
    def test_optimum_never_worse_than_any_split(self, leaf_energy, hub_energy,
                                                link_energy, link_rate):
        leaf = _device(leaf_energy, 1e7)
        hub = _device(hub_energy, 1e12)
        link = _transceiver(link_rate, link_energy)
        decision = optimal_partition(_HAR_PROFILE, leaf, hub, link)
        for point in sweep_partitions(_HAR_PROFILE, leaf, hub, link):
            assert decision.best.leaf_energy_joules <= point.leaf_energy_joules + 1e-18

    @given(link_energy=st.floats(min_value=1e-12, max_value=1e-8))
    @settings(max_examples=40, deadline=None)
    def test_energy_components_consistent(self, link_energy):
        leaf = _device(2e-12, 5e7)
        hub = _device(5e-12, 1e12)
        link = _transceiver(1e6, link_energy)
        for point in sweep_partitions(_HAR_PROFILE, leaf, hub, link):
            assert point.leaf_macs + point.hub_macs == _HAR_PROFILE.total_macs
            assert point.total_energy_joules >= point.leaf_energy_joules
            assert point.latency_seconds >= point.transfer_latency_seconds

    @given(link_energy_cheap=st.floats(min_value=1e-12, max_value=1e-10),
           multiplier=st.floats(min_value=2.0, max_value=1e3))
    @settings(max_examples=40, deadline=None)
    def test_cheaper_link_never_increases_offload_cost(self, link_energy_cheap,
                                                       multiplier):
        leaf = _device(2e-12, 5e7)
        hub = _device(5e-12, 1e12)
        cheap = _transceiver(1e6, link_energy_cheap)
        costly = _transceiver(1e6, link_energy_cheap * multiplier)
        cheap_best = optimal_partition(_HAR_PROFILE, leaf, hub, cheap).best
        costly_best = optimal_partition(_HAR_PROFILE, leaf, hub, costly).best
        assert cheap_best.leaf_energy_joules <= costly_best.leaf_energy_joules + 1e-18

    def test_all_objectives_produce_valid_optima(self):
        leaf = _device(2e-12, 5e7)
        hub = _device(5e-12, 1e12)
        link = _transceiver(4e6, 1e-10)
        for objective in PartitionObjective:
            decision = optimal_partition(_HAR_PROFILE, leaf, hub, link,
                                         objective=objective)
            assert 0 <= decision.best.split_index <= len(_HAR_PROFILE.layers)


class TestBatteryLifeProperties:
    @given(capacity=st.floats(min_value=10.0, max_value=5000.0),
           load=st.floats(min_value=1e-6, max_value=1.0),
           extra=st.floats(min_value=1e-7, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_life_monotone_in_load(self, capacity, load, extra):
        spec = BatterySpec(name="prop", capacity_mah=capacity,
                           self_discharge_per_year=0.0)
        assert battery_life_seconds(spec, load + extra) <= \
            battery_life_seconds(spec, load)

    @given(load=st.floats(min_value=1e-6, max_value=1e-2),
           harvest=st.floats(min_value=0.0, max_value=1e-2))
    @settings(max_examples=60, deadline=None)
    def test_life_monotone_in_harvest(self, load, harvest):
        spec = BatterySpec(name="prop", capacity_mah=1000.0,
                           self_discharge_per_year=0.0)
        with_harvest = battery_life_seconds(spec, load, harvested_power_watts=harvest)
        without = battery_life_seconds(spec, load)
        assert with_harvest >= without

    @given(rate=st.floats(min_value=10.0, max_value=1e8))
    @settings(max_examples=60, deadline=None)
    def test_projection_band_consistent_with_life(self, rate):
        point = project_battery_life(rate)
        assert point.band is classify_battery_life(point.life_seconds)
        assert point.life_seconds > 0.0 or math.isinf(point.life_seconds)

    @given(rate_a=st.floats(min_value=10.0, max_value=1e7),
           factor=st.floats(min_value=1.1, max_value=100.0))
    @settings(max_examples=60, deadline=None)
    def test_projection_monotone_in_rate(self, rate_a, factor):
        slow = project_battery_life(rate_a)
        fast = project_battery_life(rate_a * factor)
        assert fast.life_seconds <= slow.life_seconds


class TestTDMAProperties:
    @given(rates=st.lists(st.floats(min_value=100.0, max_value=5e5),
                          min_size=1, max_size=25),
           link_rate=st.floats(min_value=1e6, max_value=1e7))
    @settings(max_examples=60, deadline=None)
    def test_feasibility_matches_utilisation(self, rates, link_rate):
        schedule = TDMASchedule(link_rate_bps=link_rate)
        for index, rate in enumerate(rates):
            schedule.add_node(f"node{index}", rate)
        assert schedule.is_feasible() == (schedule.utilization() <= 1.0)

    @given(rates=st.lists(st.floats(min_value=100.0, max_value=2e4),
                          min_size=1, max_size=15))
    @settings(max_examples=60, deadline=None)
    def test_built_schedule_serves_every_flow(self, rates):
        schedule = TDMASchedule(link_rate_bps=units.megabit_per_second(4.0))
        for index, rate in enumerate(rates):
            schedule.add_node(f"node{index}", rate)
        assignments = schedule.build()
        served = {assignment.node_name: assignment.goodput_bps
                  for assignment in assignments}
        for index, rate in enumerate(rates):
            assert served[f"node{index}"] == pytest.approx(rate, rel=1e-9)
