"""Tests for repro.comm.mac (TDMA and polling on the body bus)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro import units
from repro.comm.mac import PollingMAC, TDMASchedule
from repro.errors import SchedulingError


def make_schedule(link_rate_bps: float = 4e6) -> TDMASchedule:
    return TDMASchedule(link_rate_bps=link_rate_bps)


class TestTDMASchedule:
    def test_empty_schedule_feasible(self):
        assert make_schedule().is_feasible()
        assert make_schedule().utilization() == pytest.approx(0.0)

    def test_add_and_remove_nodes(self):
        schedule = make_schedule()
        schedule.add_node("ecg", 3e3)
        assert schedule.node_count == 1
        schedule.remove_node("ecg")
        assert schedule.node_count == 0

    def test_duplicate_node_rejected(self):
        schedule = make_schedule()
        schedule.add_node("ecg", 3e3)
        with pytest.raises(SchedulingError):
            schedule.add_node("ecg", 3e3)

    def test_remove_unknown_node_rejected(self):
        with pytest.raises(SchedulingError):
            make_schedule().remove_node("ghost")

    def test_utilization_grows_with_demand(self):
        schedule = make_schedule()
        schedule.add_node("a", 1e5)
        low = schedule.utilization()
        schedule.add_node("b", 1e6)
        assert schedule.utilization() > low

    def test_infeasible_when_demand_exceeds_link(self):
        schedule = make_schedule(link_rate_bps=1e6)
        schedule.add_node("video", 2e6)
        assert not schedule.is_feasible()
        with pytest.raises(SchedulingError):
            schedule.build()

    def test_build_goodput_matches_offered_rate(self):
        schedule = make_schedule()
        schedule.add_node("audio", 256e3)
        schedule.add_node("imu", 9.6e3)
        assignments = {a.node_name: a for a in schedule.build()}
        assert assignments["audio"].goodput_bps == pytest.approx(256e3)
        assert assignments["imu"].goodput_bps == pytest.approx(9.6e3)

    def test_slot_durations_fit_in_superframe(self):
        schedule = make_schedule()
        for index in range(10):
            schedule.add_node(f"leaf{index}", 64e3)
        assignments = schedule.build()
        assert sum(a.slot_seconds for a in assignments) <= schedule.superframe_seconds

    def test_worst_case_latency_is_superframe(self):
        schedule = make_schedule()
        schedule.add_node("a", 1e4)
        assignment = schedule.build()[0]
        assert assignment.worst_case_latency_seconds == pytest.approx(
            schedule.superframe_seconds
        )

    def test_many_ecg_leaves_fit_on_one_wir_hub(self):
        """Dozens of biopotential leaves share a single 4 Mb/s Wi-R bus."""
        schedule = make_schedule()
        for index in range(30):
            schedule.add_node(f"ecg{index}", units.kilobit_per_second(3.0))
        assert schedule.is_feasible()

    def test_max_additional_nodes_consistent_with_feasibility(self):
        schedule = make_schedule()
        schedule.add_node("seed", 64e3)
        extra = schedule.max_additional_nodes(64e3)
        for index in range(extra):
            schedule.add_node(f"extra{index}", 64e3)
        assert schedule.is_feasible()
        schedule.add_node("one_too_many", 64e3)
        assert not schedule.is_feasible()

    def test_invalid_link_rate_rejected(self):
        with pytest.raises(SchedulingError):
            TDMASchedule(link_rate_bps=0.0)

    def test_max_additional_nodes_at_exact_saturation(self):
        """A schedule whose demand exactly fills the superframe admits 0."""
        schedule = TDMASchedule(link_rate_bps=1e6, superframe_seconds=0.010,
                                guard_seconds=0.0)
        schedule.add_node("full", 1e6)  # payload time == superframe exactly
        assert schedule.utilization() == pytest.approx(1.0, abs=0.0)
        assert schedule.is_feasible()
        assert schedule.max_additional_nodes(1.0) == 0
        assert schedule.max_additional_nodes(0.0) == 0

    def test_max_additional_nodes_guard_only_saturation(self):
        """Guards alone can saturate: 200 x 50 us guards fill 10 ms."""
        schedule = TDMASchedule(link_rate_bps=1e6, superframe_seconds=0.010,
                                guard_seconds=50e-6)
        for index in range(200):
            schedule.add_node(f"n{index}", 0.0)
        assert schedule.utilization() == pytest.approx(1.0)
        assert schedule.max_additional_nodes(0.0) == 0

    def test_max_additional_nodes_zero_rate_counts_guards(self):
        """Zero-rate nodes still consume guard time, bounding admission."""
        schedule = TDMASchedule(link_rate_bps=1e6, superframe_seconds=0.010,
                                guard_seconds=50e-6)
        admitted = schedule.max_additional_nodes(0.0)
        assert admitted == int(0.010 // 50e-6)

    @given(st.lists(st.floats(min_value=1e2, max_value=1e5), min_size=1,
                    max_size=20))
    def test_utilization_additive_property(self, rates):
        schedule = make_schedule()
        for index, rate in enumerate(rates):
            schedule.add_node(f"n{index}", rate)
        payload_fraction = sum(rates) / schedule.link_rate_bps
        guard_fraction = (
            schedule.guard_seconds * len(rates) / schedule.superframe_seconds
        )
        assert schedule.utilization() == pytest.approx(
            payload_fraction + guard_fraction, rel=1e-9
        )


class TestPollingMAC:
    def test_cycle_time_grows_with_population(self):
        mac = PollingMAC(link_rate_bps=4e6)
        assert mac.cycle_time_seconds(10, 8192) > mac.cycle_time_seconds(2, 8192)

    def test_per_node_goodput_shrinks_with_population(self):
        mac = PollingMAC(link_rate_bps=4e6)
        assert mac.per_node_goodput_bps(2, 8192) > mac.per_node_goodput_bps(20, 8192)

    def test_max_nodes_for_rate(self):
        mac = PollingMAC(link_rate_bps=4e6)
        capacity = mac.max_nodes_for_rate(64e3, 8192)
        assert capacity >= 1
        assert mac.per_node_goodput_bps(capacity, 8192) >= 64e3
        assert mac.per_node_goodput_bps(capacity + 1, 8192) < 64e3

    def test_zero_capacity_when_rate_unreachable(self):
        mac = PollingMAC(link_rate_bps=1e5, turnaround_seconds=0.01)
        assert mac.max_nodes_for_rate(1e6, 1000) == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SchedulingError):
            PollingMAC(link_rate_bps=0.0)
        mac = PollingMAC(link_rate_bps=1e6)
        with pytest.raises(SchedulingError):
            mac.cycle_time_seconds(0, 100)
        with pytest.raises(SchedulingError):
            mac.max_nodes_for_rate(0.0, 100)

    def test_zero_burst_leaves_yield_zero_goodput(self):
        """Polling idle leaves burns cycle time but moves no payload."""
        mac = PollingMAC(link_rate_bps=4e6)
        for count in (1, 5, 100):
            cycle = mac.cycle_time_seconds(count, 0.0)
            assert cycle == pytest.approx(
                count * (mac.poll_overhead_bits / mac.link_rate_bps
                         + mac.turnaround_seconds))
            assert mac.per_node_goodput_bps(count, 0.0) == 0.0

    def test_zero_burst_cannot_meet_any_rate(self):
        mac = PollingMAC(link_rate_bps=4e6)
        assert mac.max_nodes_for_rate(1.0, 0.0) == 0

    def test_free_polls_zero_burst_degenerate_cycle(self):
        """Zero overhead, zero turnaround, zero burst: the cycle is empty."""
        mac = PollingMAC(link_rate_bps=4e6, poll_overhead_bits=0.0,
                         turnaround_seconds=0.0)
        assert mac.cycle_time_seconds(10, 0.0) == 0.0
        assert mac.per_node_goodput_bps(10, 0.0) == 0.0
