"""Tests for repro.comm.security (physical-security / leakage model)."""

from __future__ import annotations

import pytest

from repro.comm.ble import ble_1m_phy
from repro.comm.eqs_hbc import wir_commercial
from repro.comm.nfmi import nfmi_hearing_aid
from repro.comm.security import (
    EQS_LEAKAGE_DISTANCE_METRES,
    SecurityModel,
    interception_report,
    leakage_distance_metres,
)
from repro.comm.wifi import wifi_hub_uplink
from repro.errors import ConfigurationError


class TestLeakageDistance:
    def test_eqs_leakage_is_personal_bubble(self, wir):
        assert leakage_distance_metres(wir) == pytest.approx(
            EQS_LEAKAGE_DISTANCE_METRES
        )
        assert leakage_distance_metres(wir) < 0.5

    def test_ble_leakage_is_room_scale(self, ble):
        assert leakage_distance_metres(ble) >= 5.0

    def test_wifi_leaks_furthest(self, ble):
        assert leakage_distance_metres(wifi_hub_uplink()) > leakage_distance_metres(ble)

    def test_nfmi_between_eqs_and_rf(self, wir, ble):
        nfmi = leakage_distance_metres(nfmi_hearing_aid())
        assert leakage_distance_metres(wir) < nfmi < leakage_distance_metres(ble)


class TestSecurityModel:
    def test_wir_is_physically_secure(self, wir):
        model = SecurityModel(intended_channel_length_metres=1.5)
        assert model.is_physically_secure(wir)

    def test_ble_is_not_physically_secure(self, ble):
        model = SecurityModel(intended_channel_length_metres=1.5)
        assert not model.is_physically_secure(ble)

    def test_exposure_ratio_ordering(self, wir, ble):
        model = SecurityModel()
        assert model.exposure_ratio(wir) < 1.0 < model.exposure_ratio(ble)

    def test_interception_area_grows_quadratically(self, ble):
        model = SecurityModel()
        radius = model.leakage_distance(ble)
        assert model.interception_area_m2(ble) == pytest.approx(
            3.141592653589793 * radius * radius
        )

    def test_invalid_channel_length_rejected(self):
        with pytest.raises(ConfigurationError):
            SecurityModel(intended_channel_length_metres=0.0)

    def test_invalid_threshold_rejected(self, wir):
        with pytest.raises(ConfigurationError):
            SecurityModel().is_physically_secure(wir, threshold_ratio=0.0)


class TestInterceptionReport:
    def test_report_covers_all_technologies(self, wir, ble):
        rows = interception_report([wir, ble, wifi_hub_uplink()])
        assert len(rows) == 3
        names = {row["name"] for row in rows}
        assert wir.name in names and ble.name in names

    def test_only_body_confined_links_marked_secure(self):
        rows = interception_report([wir_commercial(), ble_1m_phy()])
        by_name = {row["name"]: row for row in rows}
        assert by_name[wir_commercial().name]["physically_secure"]
        assert not by_name[ble_1m_phy().name]["physically_secure"]
