"""Tests for repro.comm.eqs_hbc (Wi-R transceivers and links)."""

from __future__ import annotations

import pytest

from repro import units
from repro.comm.eqs_hbc import (
    EQSHBCTransceiver,
    WiRLink,
    eqs_hbc_bodywire,
    eqs_hbc_sub_uw,
    wir_commercial,
    wir_downlink_capable,
    wir_leaf_node,
)
from repro.errors import ConfigurationError, LinkBudgetError


class TestOperatingPoints:
    def test_commercial_wir_matches_paper(self):
        """Ref [29]/[30]: 4 Mb/s at ~100 pJ/bit."""
        wir = wir_commercial()
        assert wir.data_rate_bps() == pytest.approx(units.megabit_per_second(4.0))
        assert units.to_picojoule_per_bit(wir.tx_energy_per_bit()) == pytest.approx(100.0)

    def test_commercial_wir_active_power_sub_milliwatt(self):
        wir = wir_commercial()
        assert wir.tx_active_power() < units.milliwatt(1.0)

    def test_leaf_node_wir_is_100_microwatts(self):
        """Fig. 1's "Wi-R ~100 uW" block: 1 Mb/s at 100 pJ/bit."""
        leaf = wir_leaf_node()
        assert units.to_microwatt(leaf.tx_active_power()) == pytest.approx(100.0)

    def test_sub_uw_point_matches_paper(self):
        """Ref [21]: 415 nW at 1-10 kb/s."""
        node = eqs_hbc_sub_uw()
        assert node.tx_active_power() == pytest.approx(units.nanowatt(415.0))
        assert node.data_rate_bps() == pytest.approx(units.kilobit_per_second(10.0))

    def test_bodywire_point_matches_paper(self):
        """Ref [20]: 6.3 pJ/bit at 30 Mb/s."""
        node = eqs_hbc_bodywire()
        assert units.to_picojoule_per_bit(node.tx_energy_per_bit()) == pytest.approx(6.3)
        assert node.data_rate_bps() == pytest.approx(units.megabit_per_second(30.0))

    def test_all_points_are_body_confined(self):
        for factory in (wir_commercial, wir_leaf_node, eqs_hbc_sub_uw,
                        eqs_hbc_bodywire, wir_downlink_capable):
            assert factory().body_confined

    def test_all_points_stay_in_eqs_regime(self):
        for factory in (wir_commercial, wir_leaf_node, eqs_hbc_sub_uw,
                        eqs_hbc_bodywire, wir_downlink_capable):
            assert factory().carrier_frequency_hz <= 30e6

    def test_range_is_body_scale(self):
        assert wir_commercial().max_range_metres() <= 2.5


class TestTransceiverValidation:
    def test_rejects_carrier_above_30mhz(self):
        with pytest.raises(ConfigurationError):
            EQSHBCTransceiver(name="bad", data_rate=1e6, energy_per_bit=1e-10,
                              carrier_frequency_hz=100e6)

    def test_rejects_zero_data_rate(self):
        with pytest.raises(ConfigurationError):
            EQSHBCTransceiver(name="bad", data_rate=0.0, energy_per_bit=1e-10)

    def test_rx_energy_defaults_to_tx(self):
        node = EQSHBCTransceiver(name="x", data_rate=1e6, energy_per_bit=1e-10)
        assert node.rx_energy_per_bit() == pytest.approx(node.tx_energy_per_bit())

    def test_describe_has_expected_keys(self):
        description = wir_commercial().describe()
        for key in ("name", "data_rate_bps", "tx_energy_pj_per_bit",
                    "tx_active_power_uw", "body_confined"):
            assert key in description


class TestDutyCycling:
    def test_average_power_scales_with_offered_rate(self, wir):
        low = wir.average_power_at_rate(units.kilobit_per_second(10.0))
        high = wir.average_power_at_rate(units.megabit_per_second(1.0))
        assert low < high

    def test_average_power_at_zero_rate_is_sleep_power(self, wir):
        assert wir.average_power_at_rate(0.0) == pytest.approx(wir.sleep_power())

    def test_average_power_at_full_rate_is_active_power(self, wir):
        assert wir.average_power_at_rate(wir.data_rate_bps()) == pytest.approx(
            wir.tx_active_power()
        )

    def test_offered_rate_above_capacity_rejected(self, wir):
        with pytest.raises(LinkBudgetError):
            wir.average_power_at_rate(wir.data_rate_bps() * 2.0)

    def test_ecg_stream_duty_cycled_power_under_microwatt_class(self, wir):
        """A 3 kb/s biopotential stream keeps the Wi-R radio essentially asleep."""
        power = wir.average_power_at_rate(units.kilobit_per_second(3.0))
        assert power < units.microwatt(1.0)


class TestWiRLink:
    def test_budget_closes_over_full_body(self):
        link = WiRLink(transceiver=wir_commercial(), channel_length_metres=1.8)
        link.check_budget()
        assert link.link_margin_db() > 0.0

    def test_margin_decreases_with_distance(self):
        near = WiRLink(transceiver=wir_commercial(), channel_length_metres=0.2)
        far = WiRLink(transceiver=wir_commercial(), channel_length_metres=1.8)
        assert near.link_margin_db() > far.link_margin_db()

    def test_budget_fails_for_deaf_receiver(self):
        deaf = EQSHBCTransceiver(
            name="deaf", data_rate=1e6, energy_per_bit=1e-10,
            rx_sensitivity_volts=10.0,
        )
        link = WiRLink(transceiver=deaf, channel_length_metres=1.5)
        with pytest.raises(LinkBudgetError):
            link.check_budget()

    def test_transfer_energy_uses_energy_per_bit(self):
        link = WiRLink(transceiver=wir_commercial(), channel_length_metres=1.0)
        energy = link.transfer_energy_joules(1e6)
        assert energy == pytest.approx(1e6 * units.picojoule_per_bit(100.0))

    def test_transfer_latency_uses_data_rate(self):
        link = WiRLink(transceiver=wir_commercial(), channel_length_metres=1.0)
        latency = link.transfer_latency_seconds(units.megabit_per_second(4.0))
        assert latency == pytest.approx(1.0)

    def test_negative_payload_rejected(self):
        link = WiRLink(transceiver=wir_commercial())
        with pytest.raises(ConfigurationError):
            link.transfer_energy_joules(-1.0)

    def test_received_swing_below_drive_swing(self):
        link = WiRLink(transceiver=wir_commercial(), channel_length_metres=1.5)
        assert link.received_swing_volts() < link.transceiver.tx_swing_volts
