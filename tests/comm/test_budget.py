"""Tests for repro.comm.budget (SNR → BER → packet error rate)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.body.posture import Posture, channel_for_posture
from repro.comm.budget import (
    LinkBudget,
    eqs_link_budget,
    packet_error_rate,
    rf_link_budget,
    snr_to_bit_error_rate,
)
from repro.comm.channel import EQSChannelModel, RFPathLossModel
from repro.errors import ChannelError, LinkBudgetError


class TestBerCurve:
    def test_waterfall_is_monotone_decreasing_in_snr(self):
        bers = [snr_to_bit_error_rate(snr) for snr in range(-10, 25)]
        assert all(late <= early for early, late in zip(bers, bers[1:]))

    def test_textbook_point(self):
        # Coherent BPSK at 9.6 dB SNR (Eb/N0 ~ 6.6 dB): BER ~ 1e-3.
        assert snr_to_bit_error_rate(9.6) == pytest.approx(1.2e-3, rel=0.2)

    def test_no_signal_conveys_nothing(self):
        assert snr_to_bit_error_rate(-60.0) == pytest.approx(0.5, abs=1e-3)

    def test_high_snr_is_error_free(self):
        assert snr_to_bit_error_rate(30.0) == 0.0


class TestPacketErrorRate:
    def test_zero_ber_gives_zero_per(self):
        assert packet_error_rate(0.0, 8192.0) == 0.0

    def test_certain_bit_error_gives_certain_packet_error(self):
        assert packet_error_rate(1.0, 1.0) == 1.0

    def test_matches_direct_formula(self):
        assert packet_error_rate(1e-3, 1000.0) == pytest.approx(
            1.0 - (1.0 - 1e-3) ** 1000, rel=1e-9)

    def test_tiny_ber_does_not_round_to_zero(self):
        # 1e-12 over a 8192-bit packet: PER ~ 8.2e-9, not 0.
        per = packet_error_rate(1e-12, 8192.0)
        assert per == pytest.approx(8.192e-9, rel=1e-3)

    def test_longer_packets_fail_more(self):
        assert packet_error_rate(1e-4, 8192.0) > packet_error_rate(1e-4, 128.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(LinkBudgetError):
            packet_error_rate(1.5, 100.0)
        with pytest.raises(LinkBudgetError):
            packet_error_rate(0.1, -1.0)

    @given(st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1e6))
    def test_always_a_probability(self, ber, bits):
        assert 0.0 <= packet_error_rate(ber, bits) <= 1.0


class TestLinkBudget:
    def test_level_arithmetic(self):
        budget = LinkBudget(tx_level_db=0.0, channel_gain_db=-70.0,
                            noise_floor_db=-90.0)
        assert budget.received_level_db == -70.0
        assert budget.snr_db == 20.0
        assert budget.margin_db == 10.0
        assert budget.closes()

    def test_implementation_loss_erodes_margin(self):
        clean = LinkBudget(tx_level_db=0.0, channel_gain_db=-70.0,
                           noise_floor_db=-85.0)
        lossy = LinkBudget(tx_level_db=0.0, channel_gain_db=-70.0,
                           noise_floor_db=-85.0, implementation_loss_db=6.0)
        assert lossy.snr_db == clean.snr_db - 6.0

    def test_negative_implementation_loss_rejected(self):
        with pytest.raises(LinkBudgetError):
            LinkBudget(tx_level_db=0.0, channel_gain_db=0.0,
                       noise_floor_db=0.0, implementation_loss_db=-1.0)

    def test_from_snr(self):
        budget = LinkBudget.from_snr_db(12.0)
        assert budget.snr_db == 12.0
        assert budget.packet_error_rate(0.0) == 0.0
        assert 0.0 < budget.packet_error_rate(4096.0) < 1.0

    def test_per_monotone_in_snr(self):
        pers = [LinkBudget.from_snr_db(snr).packet_error_rate(4096.0)
                for snr in (6.0, 9.0, 12.0, 15.0)]
        assert all(late <= early for early, late in zip(pers, pers[1:]))


class TestEqsBudget:
    def test_wir_class_link_is_clean_at_nominal_noise(self):
        budget = eqs_link_budget(EQSChannelModel(), tx_swing_volts=1.0,
                                 noise_rms_volts=1e-6)
        assert budget.snr_db > 40.0
        assert budget.packet_error_rate(8192.0) == 0.0

    def test_posture_moves_the_snr(self):
        """Standing barefoot couples hardest to ground: worst gain."""
        kwargs = dict(tx_swing_volts=1.0, noise_rms_volts=1e-5)
        barefoot = eqs_link_budget(
            channel_for_posture(Posture.STANDING_BAREFOOT), **kwargs)
        lying = eqs_link_budget(
            channel_for_posture(Posture.LYING_ON_BED), **kwargs)
        assert lying.snr_db > barefoot.snr_db + 5.0

    def test_invalid_levels_rejected(self):
        with pytest.raises(ChannelError):
            eqs_link_budget(EQSChannelModel(), tx_swing_volts=0.0,
                            noise_rms_volts=1e-6)
        with pytest.raises(ChannelError):
            eqs_link_budget(EQSChannelModel(), tx_swing_volts=1.0,
                            noise_rms_volts=0.0)


class TestRfBudget:
    def test_body_worn_ble_at_thermal_floor_is_mostly_clean(self):
        budget = rf_link_budget(RFPathLossModel(), tx_power_dbm=0.0,
                                noise_floor_dbm=-94.0)
        assert budget.snr_db > 10.0

    def test_raised_noise_floor_degrades_per(self):
        quiet = rf_link_budget(RFPathLossModel(), tx_power_dbm=0.0,
                               noise_floor_dbm=-94.0)
        ward = rf_link_budget(RFPathLossModel(), tx_power_dbm=0.0,
                              noise_floor_dbm=-80.0)
        assert ward.packet_error_rate(2048.0) \
            > quiet.packet_error_rate(2048.0)

    def test_distance_must_be_positive(self):
        with pytest.raises(ChannelError):
            rf_link_budget(RFPathLossModel(), tx_power_dbm=0.0,
                           noise_floor_dbm=-94.0, distance_metres=0.0)

    def test_snr_tracks_path_loss(self):
        model = RFPathLossModel()
        budget = rf_link_budget(model, tx_power_dbm=4.0,
                                noise_floor_dbm=-90.0, distance_metres=1.2)
        assert budget.snr_db == pytest.approx(
            4.0 - model.path_loss_db(1.2) + 90.0)
