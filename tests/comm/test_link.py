"""Tests for repro.comm.link (transfer costs and technology comparison)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro import units
from repro.comm.eqs_hbc import wir_commercial
from repro.comm.link import compare_technologies, transfer_cost
from repro.errors import ConfigurationError, LinkBudgetError


class TestTransferCost:
    def test_energy_proportional_to_payload(self, wir):
        small = transfer_cost(wir, 1e3, include_wakeup=False)
        large = transfer_cost(wir, 1e6, include_wakeup=False)
        assert large.tx_energy_joules == pytest.approx(
            1000.0 * small.tx_energy_joules
        )

    def test_latency_is_serialization_time(self, wir):
        cost = transfer_cost(wir, wir.data_rate_bps(), include_wakeup=False)
        assert cost.latency_seconds == pytest.approx(1.0)

    def test_wakeup_adds_fixed_overhead(self, ble):
        without = transfer_cost(ble, 1e4, include_wakeup=False)
        with_wakeup = transfer_cost(ble, 1e4, include_wakeup=True)
        assert with_wakeup.tx_energy_joules - without.tx_energy_joules \
            == pytest.approx(ble.wakeup_energy())
        assert with_wakeup.latency_seconds - without.latency_seconds \
            == pytest.approx(ble.wakeup_latency())

    def test_zero_payload_costs_nothing(self, wir):
        cost = transfer_cost(wir, 0.0)
        assert cost.tx_energy_joules == 0.0
        assert cost.rx_energy_joules == 0.0
        assert cost.latency_seconds == 0.0

    def test_effective_energy_per_bit(self, wir):
        cost = transfer_cost(wir, 1e6, include_wakeup=False)
        assert cost.tx_energy_per_bit == pytest.approx(wir.tx_energy_per_bit())

    def test_total_energy_sums_both_ends(self, wir):
        cost = transfer_cost(wir, 1e5, include_wakeup=False)
        assert cost.total_energy_joules == pytest.approx(
            cost.tx_energy_joules + cost.rx_energy_joules
        )

    def test_negative_payload_rejected(self, wir):
        with pytest.raises(ConfigurationError):
            transfer_cost(wir, -1.0)

    def test_wir_transfer_cheaper_than_ble(self, wir, ble):
        payload = units.kibibytes(10.0)
        wir_cost = transfer_cost(wir, payload, include_wakeup=False)
        ble_cost = transfer_cost(ble, payload, include_wakeup=False)
        assert wir_cost.tx_energy_joules < ble_cost.tx_energy_joules / 50.0

    @given(st.floats(min_value=0.0, max_value=1e9))
    def test_energy_non_negative_property(self, payload):
        cost = transfer_cost(wir_commercial(), payload)
        assert cost.tx_energy_joules >= 0.0
        assert cost.rx_energy_joules >= 0.0
        assert cost.latency_seconds >= 0.0


class TestAveragePower:
    def test_direction_validation(self, wir):
        with pytest.raises(ConfigurationError):
            wir.average_power_at_rate(1e3, direction="sideways")

    def test_rx_direction_uses_rx_power(self, ble):
        tx = ble.average_power_at_rate(1e4, direction="tx")
        rx = ble.average_power_at_rate(1e4, direction="rx")
        # For the symmetric BLE model they coincide.
        assert tx == pytest.approx(rx)

    def test_offered_rate_above_link_rate_raises(self, ble):
        with pytest.raises(LinkBudgetError):
            ble.average_power_at_rate(ble.data_rate_bps() * 1.01)


class TestCompareTechnologies:
    def test_report_row_per_technology(self, wir, ble):
        reports = compare_technologies([wir, ble])
        assert len(reports) == 2
        assert {report.name for report in reports} == {wir.name, ble.name}

    def test_rate_and_power_ratios(self, wir, ble):
        reports = {r.name: r for r in compare_technologies([wir, ble])}
        wir_report = reports[wir.name]
        ble_report = reports[ble.name]
        assert wir_report.rate_ratio_over(ble_report) >= 10.0
        assert ble_report.power_ratio_over(wir_report) > 20.0

    def test_body_confinement_flag_propagates(self, wir, ble):
        reports = {r.name: r for r in compare_technologies([wir, ble])}
        assert reports[wir.name].body_confined
        assert not reports[ble.name].body_confined
