"""Tests for the RF baselines: BLE, Wi-Fi and NFMI."""

from __future__ import annotations

import pytest

from repro import units
from repro.comm.ble import BLERadio, ble_1m_phy, ble_2m_phy, ble_coded_phy
from repro.comm.nfmi import NFMIRadio, nfmi_hearing_aid
from repro.comm.wifi import WiFiRadio, wifi_hub_uplink
from repro.errors import ConfigurationError


class TestBLE:
    def test_active_power_in_paper_range(self, ble):
        """Section III-B: RF-based communication burns 1-10 mW."""
        assert units.milliwatt(1.0) <= ble.tx_active_power() <= units.milliwatt(20.0)

    def test_goodput_below_phy_rate(self, ble):
        assert ble.data_rate_bps() < ble.phy_rate

    def test_energy_per_bit_is_nanojoule_class(self, ble):
        energy = ble.tx_energy_per_bit()
        assert units.nanojoule_per_bit(1.0) <= energy <= units.nanojoule_per_bit(100.0)

    def test_2m_phy_faster_than_1m(self):
        assert ble_2m_phy().data_rate_bps() > ble_1m_phy().data_rate_bps()

    def test_coded_phy_slower_but_longer_range(self):
        coded = ble_coded_phy()
        standard = ble_1m_phy()
        assert coded.data_rate_bps() < standard.data_rate_bps()
        assert coded.max_range_metres() >= standard.max_range_metres()

    def test_radiation_range_is_room_scale(self, ble):
        """The privacy bubble the paper criticises: >= 5 m for an RF radio."""
        assert ble.radiation_range_metres() >= 5.0

    def test_radiation_range_exceeds_body_range(self, ble, body):
        assert ble.radiation_range_metres() > body.max_channel_length()

    def test_not_body_confined(self, ble):
        assert not ble.body_confined

    def test_connection_event_overhead_positive(self, ble):
        assert ble.wakeup_energy() > 0.0
        assert ble.wakeup_latency() > 0.0

    def test_invalid_goodput_rejected(self):
        with pytest.raises(ConfigurationError):
            BLERadio(name="bad", phy_rate=1e6, goodput_fraction=0.0)

    def test_invalid_phy_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            BLERadio(name="bad", phy_rate=0.0)


class TestWiFi:
    def test_hub_uplink_rate_exceeds_body_links(self, wir):
        assert wifi_hub_uplink().data_rate_bps() > wir.data_rate_bps()

    def test_active_power_is_hub_class(self):
        """Wi-Fi belongs on the daily-charged hub, not on a leaf node."""
        assert wifi_hub_uplink().tx_active_power() > units.milliwatt(100.0)

    def test_range_exceeds_ble(self, ble):
        assert wifi_hub_uplink().max_range_metres() > ble.max_range_metres()

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            WiFiRadio(name="bad", phy_rate=-1.0)


class TestNFMI:
    def test_body_confined(self):
        assert nfmi_hearing_aid().body_confined

    def test_range_is_body_scale(self):
        assert nfmi_hearing_aid().max_range_metres() <= 2.0

    def test_rate_between_sub_uw_hbc_and_wir(self, wir):
        nfmi = nfmi_hearing_aid()
        assert units.kilobit_per_second(100.0) <= nfmi.data_rate_bps()
        assert nfmi.data_rate_bps() < wir.data_rate_bps()

    def test_energy_per_bit_worse_than_wir(self, wir):
        assert nfmi_hearing_aid().tx_energy_per_bit() > wir.tx_energy_per_bit()

    def test_invalid_range_rejected(self):
        with pytest.raises(ConfigurationError):
            NFMIRadio(name="bad", working_range_metres=0.0)
