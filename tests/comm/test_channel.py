"""Tests for repro.comm.channel (EQS body channel and RF path loss)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.comm.channel import (
    EQS_MAX_FREQUENCY_HZ,
    BodyShadowingModel,
    EQSChannelModel,
    RFPathLossModel,
    eqs_channel_gain_db,
    free_space_path_loss_db,
)
from repro.errors import ChannelError
from repro import units


class TestFreeSpacePathLoss:
    def test_increases_with_distance(self):
        close = free_space_path_loss_db(1.0, 2.4e9)
        far = free_space_path_loss_db(10.0, 2.4e9)
        assert far > close

    def test_20db_per_decade_of_distance(self):
        loss_1m = free_space_path_loss_db(1.0, 2.4e9)
        loss_10m = free_space_path_loss_db(10.0, 2.4e9)
        assert loss_10m - loss_1m == pytest.approx(20.0, abs=1e-6)

    def test_known_value_at_2_4ghz_1m(self):
        # Textbook value: ~40 dB at 1 m, 2.4 GHz.
        assert free_space_path_loss_db(1.0, 2.4e9) == pytest.approx(40.05, abs=0.2)

    def test_zero_distance_rejected(self):
        with pytest.raises(ChannelError):
            free_space_path_loss_db(0.0, 2.4e9)

    def test_zero_frequency_rejected(self):
        with pytest.raises(ChannelError):
            free_space_path_loss_db(1.0, 0.0)


class TestRFPathLossModel:
    def test_body_shadowing_adds_loss(self):
        body_worn = RFPathLossModel(body_worn=True)
        free = RFPathLossModel(body_worn=False)
        assert body_worn.path_loss_db(1.5) > free.path_loss_db(1.5)

    def test_received_power_decreases_with_distance(self):
        model = RFPathLossModel(body_worn=False)
        assert model.received_power_dbm(0.0, 1.0) > model.received_power_dbm(0.0, 5.0)

    def test_ble_free_space_range_is_room_scale(self):
        """Section III-B: RF radiates data 5-10+ m away from the body."""
        model = RFPathLossModel(frequency_hz=2.4e9, body_worn=False)
        ble_range = model.range_for_sensitivity(0.0, -95.0)
        assert ble_range >= 5.0

    def test_range_zero_when_link_cannot_close(self):
        model = RFPathLossModel(body_worn=False)
        assert model.range_for_sensitivity(-100.0, -10.0) == 0.0

    def test_range_caps_at_max_distance(self):
        model = RFPathLossModel(body_worn=False)
        assert model.range_for_sensitivity(30.0, -110.0, max_distance_metres=50.0) \
            == pytest.approx(50.0)

    def test_range_solution_closes_link(self):
        model = RFPathLossModel(frequency_hz=2.4e9, body_worn=True)
        distance = model.range_for_sensitivity(0.0, -95.0)
        assert model.received_power_dbm(0.0, distance) >= -95.0 - 0.1

    def test_shadowing_model_zero_at_zero_distance(self):
        assert BodyShadowingModel().loss_db(0.0) == 0.0

    def test_shadowing_negative_distance_rejected(self):
        with pytest.raises(ChannelError):
            BodyShadowingModel().loss_db(-1.0)

    def test_shadowing_continuous_at_zero(self):
        """No step at zero: the base loss ramps in over the first cm."""
        model = BodyShadowingModel()
        assert model.loss_db(1e-6) == pytest.approx(0.0, abs=1e-3)
        assert model.loss_db(1e-3) < 1.0

    def test_shadowing_matches_historical_model_beyond_ramp(self):
        model = BodyShadowingModel()
        for distance in (model.ramp_metres, 0.3, 1.5, 10.0):
            assert model.loss_db(distance) == pytest.approx(
                model.base_loss_db + model.per_metre_loss_db * distance)

    @given(st.floats(min_value=0.0, max_value=5.0),
           st.floats(min_value=1e-4, max_value=1.0))
    def test_shadowing_monotone_non_decreasing(self, distance, step):
        model = BodyShadowingModel()
        assert model.loss_db(distance + step) >= model.loss_db(distance)

    def test_shadowing_negative_ramp_rejected(self):
        with pytest.raises(ChannelError):
            BodyShadowingModel(ramp_metres=-0.01)

    def test_range_bisection_resolves_short_body_worn_links(self):
        """A link that closes only at a few cm reports that range instead
        of collapsing to the historical 0-vs-1-cm cliff."""
        model = RFPathLossModel(body_worn=True)
        # Budget chosen so the link closes at ~2 cm but not at 10 cm.
        loss_at_2cm = model.path_loss_db(0.02)
        sensitivity = -loss_at_2cm  # tx 0 dBm closes exactly at 2 cm
        distance = model.range_for_sensitivity(0.0, sensitivity)
        assert 0.015 < distance < 0.025
        assert model.received_power_dbm(0.0, distance) >= sensitivity - 0.1


class TestEQSChannelModel:
    def test_gain_is_negative_db(self):
        """The capacitive divider attenuates: gain well below 0 dB."""
        gain = eqs_channel_gain_db(1.5, units.megahertz(1.0))
        assert gain < -20.0

    def test_flat_with_frequency_for_high_impedance(self):
        model = EQSChannelModel()
        low = model.channel_gain_db(1.0, units.kilohertz(100.0))
        high = model.channel_gain_db(1.0, units.megahertz(20.0))
        assert low == pytest.approx(high, abs=0.01)

    def test_high_pass_for_low_impedance_termination(self):
        """50-ohm termination attenuates low EQS frequencies heavily."""
        model = EQSChannelModel()
        low = model.channel_gain_db(1.0, units.kilohertz(100.0),
                                    termination="low_impedance")
        high = model.channel_gain_db(1.0, units.megahertz(20.0),
                                     termination="low_impedance")
        assert high > low + 20.0

    def test_high_impedance_beats_low_impedance_in_eqs_band(self):
        model = EQSChannelModel()
        high_z = model.channel_gain_db(1.0, units.megahertz(1.0))
        low_z = model.channel_gain_db(1.0, units.megahertz(1.0),
                                      termination="low_impedance")
        assert high_z > low_z

    def test_nearly_flat_with_distance(self):
        """Whole-body channel flatness: a few dB finger-to-toe at most."""
        model = EQSChannelModel()
        assert model.channel_flatness_db(0.1, 1.8) < 6.0

    def test_rejects_frequencies_above_eqs_regime(self):
        model = EQSChannelModel()
        with pytest.raises(ChannelError):
            model.channel_gain_db(1.0, EQS_MAX_FREQUENCY_HZ * 2.0)

    def test_rejects_unknown_termination(self):
        with pytest.raises(ChannelError):
            EQSChannelModel().channel_gain_db(1.0, 1e6, termination="magic")

    def test_rejects_negative_distance(self):
        with pytest.raises(ChannelError):
            EQSChannelModel().channel_gain_db(-1.0, 1e6)

    def test_quasistatic_criterion(self):
        model = EQSChannelModel()
        assert model.is_quasistatic(units.megahertz(1.0))
        assert not model.is_quasistatic(units.gigahertz(2.4))

    def test_electrophysiology_interference_boundary(self):
        """Carriers above 10 kHz do not overlap body-generated signals."""
        model = EQSChannelModel()
        assert model.interferes_with_electrophysiology(units.kilohertz(5.0))
        assert not model.interferes_with_electrophysiology(units.megahertz(1.0))

    def test_minimum_detectable_swing_within_cmos_levels(self):
        """A 100 uV-sensitive receiver needs only a CMOS-level drive swing."""
        model = EQSChannelModel()
        swing = model.minimum_detectable_swing(1e-4, 1.5, units.megahertz(20.0))
        assert swing < 3.3

    def test_body_potential_gain_matches_capacitor_divider(self):
        model = EQSChannelModel(c_return_tx=300e-15, c_body_ground=150e-12)
        expected = 300e-15 / (300e-15 + 150e-12)
        assert model.body_potential_gain() == pytest.approx(expected)

    @given(st.floats(min_value=0.0, max_value=2.0),
           st.floats(min_value=1e5, max_value=EQS_MAX_FREQUENCY_HZ))
    def test_gain_monotone_non_increasing_with_distance(self, distance, frequency):
        model = EQSChannelModel()
        near = model.channel_gain_db(distance, frequency)
        far = model.channel_gain_db(distance + 0.5, frequency)
        assert far <= near + 1e-9
