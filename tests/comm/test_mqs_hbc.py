"""Tests for repro.comm.mqs_hbc (magneto-quasistatic implant links)."""

from __future__ import annotations

import pytest

from repro import units
from repro.comm.eqs_hbc import wir_commercial
from repro.comm.link import compare_technologies, transfer_cost
from repro.comm.mqs_hbc import (
    MQSHBCTransceiver,
    mqs_implant_link,
    mqs_wearable_relay,
)
from repro.comm.security import leakage_distance_metres
from repro.errors import ConfigurationError, LinkBudgetError


class TestOperatingPoints:
    def test_implant_link_is_ulp(self):
        link = mqs_implant_link()
        assert link.tx_active_power() < units.microwatt(10.0)
        assert link.tx_energy_per_bit() <= units.picojoule_per_bit(50.0)

    def test_relay_faster_than_implant(self):
        assert mqs_wearable_relay().data_rate_bps() > mqs_implant_link().data_rate_bps()

    def test_body_confined_and_short_range(self):
        link = mqs_implant_link()
        assert link.body_confined
        assert link.max_range_metres() <= 0.5

    def test_carrier_must_stay_quasistatic(self):
        with pytest.raises(ConfigurationError):
            MQSHBCTransceiver(name="bad", data_rate=1e5, energy_per_bit=1e-11,
                              carrier_frequency_hz=2.4e9)

    def test_invalid_coil_rejected(self):
        with pytest.raises(ConfigurationError):
            MQSHBCTransceiver(name="bad", data_rate=1e5, energy_per_bit=1e-11,
                              coil_radius_metres=0.0)


class TestCouplingPhysics:
    def test_loss_increases_steeply_with_distance(self):
        link = mqs_implant_link()
        near = link.coupling_loss_db(0.02)
        far = link.coupling_loss_db(0.2)
        assert far - near == pytest.approx(60.0, abs=1.0)

    def test_tissue_adds_little_loss(self):
        """The body is transparent to magnetic fields (paper, Section I)."""
        link = mqs_implant_link()
        through_air = link.coupling_loss_db(0.05)
        through_tissue = link.coupling_loss_db(0.05, tissue_depth_metres=0.05)
        assert through_tissue - through_air < 1.0

    def test_link_closes_at_implant_depths(self):
        link = mqs_implant_link()
        assert link.link_closes(0.05, tissue_depth_metres=0.05)
        link.require_link(0.05, tissue_depth_metres=0.05)

    def test_link_fails_across_the_room(self):
        link = mqs_implant_link()
        assert not link.link_closes(1.0)
        with pytest.raises(LinkBudgetError):
            link.require_link(1.0)

    def test_invalid_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            mqs_implant_link().coupling_loss_db(0.0)


class TestIntegrationWithLinkLayer:
    def test_transfer_cost_works(self):
        cost = transfer_cost(mqs_implant_link(), 1e5)
        assert cost.tx_energy_joules > 0.0
        assert cost.latency_seconds > 0.0

    def test_comparison_table_includes_mqs(self):
        reports = compare_technologies([wir_commercial(), mqs_implant_link()])
        assert {report.name for report in reports} == {
            wir_commercial().name, mqs_implant_link().name,
        }

    def test_security_model_treats_mqs_as_body_confined(self):
        assert leakage_distance_metres(mqs_implant_link()) < 1.0

    def test_implant_streaming_power_is_nanowatt_class_when_duty_cycled(self):
        """A 1 kb/s neural-implant stream costs well under a microwatt."""
        link = mqs_implant_link()
        power = link.average_power_at_rate(units.kilobit_per_second(1.0))
        assert power < units.microwatt(0.5)
