"""Tests for the repro command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command_parses(self):
        arguments = build_parser().parse_args(["list"])
        assert arguments.command == "list"

    def test_run_command_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "does-not-exist"])

    def test_run_all_is_accepted(self):
        arguments = build_parser().parse_args(["run", "all"])
        assert arguments.experiment == "all"


class TestCommands:
    def test_no_command_prints_help_and_fails(self):
        out = io.StringIO()
        assert main([], out=out) == 1
        assert "usage" in out.getvalue()

    def test_list_names_every_experiment(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        text = out.getvalue()
        for name in EXPERIMENTS:
            assert name in text

    def test_run_fig2_prints_survey_rows(self):
        out = io.StringIO()
        assert main(["run", "fig2"], out=out) == 0
        text = out.getvalue()
        assert "smartphone" in text
        assert "matches_claim" in text

    def test_run_fig1_prints_power_rows(self):
        out = io.StringIO()
        assert main(["run", "fig1"], out=out) == 0
        assert "power reduction factor" in out.getvalue()

    def test_links_table_includes_wir_and_ble(self):
        out = io.StringIO()
        assert main(["links"], out=out) == 0
        text = out.getvalue()
        assert "Wi-R" in text
        assert "BLE" in text
        assert "MQS" in text

    def test_survey_command(self):
        out = io.StringIO()
        assert main(["survey"], out=out) == 0
        assert "smart ring" in out.getvalue()

    def test_registry_descriptions_nonempty(self):
        for name, (description, producer) in EXPERIMENTS.items():
            assert description
            assert callable(producer)
