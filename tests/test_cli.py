"""Tests for the repro command-line interface."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import build_parser, main
from repro.runner import all_specs


class TestParser:
    def test_list_command_parses(self):
        arguments = build_parser().parse_args(["list"])
        assert arguments.command == "list"

    def test_run_command_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "does-not-exist"])

    def test_run_all_is_accepted(self):
        arguments = build_parser().parse_args(["run", "all"])
        assert arguments.experiment == "all"


class TestCommands:
    def test_no_command_prints_help_and_fails(self):
        out = io.StringIO()
        assert main([], out=out) == 1
        assert "usage" in out.getvalue()

    def test_list_names_every_experiment(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        text = out.getvalue()
        for spec in all_specs():
            assert spec.id in text

    def test_run_fig2_prints_survey_rows(self):
        out = io.StringIO()
        assert main(["run", "fig2", "--out", "none"], out=out) == 0
        text = out.getvalue()
        assert "smartphone" in text
        assert "matches_claim" in text

    def test_run_fig1_prints_power_rows(self):
        out = io.StringIO()
        assert main(["run", "fig1", "--out", "none"], out=out) == 0
        assert "power reduction factor" in out.getvalue()

    def test_run_accepts_module_name_alias(self):
        out = io.StringIO()
        assert main(["run", "fig2_battery_survey", "--out", "none"],
                    out=out) == 0
        assert "matches_claim" in out.getvalue()

    def test_run_accepts_paper_id_alias(self):
        for alias in ("E2", "e2"):
            out = io.StringIO()
            assert main(["run", alias, "--out", "none"], out=out) == 0
            assert "matches_claim" in out.getvalue()

    def test_links_table_includes_wir_and_ble(self):
        out = io.StringIO()
        assert main(["links"], out=out) == 0
        text = out.getvalue()
        assert "Wi-R" in text
        assert "BLE" in text
        assert "MQS" in text

    def test_survey_command(self):
        out = io.StringIO()
        assert main(["survey"], out=out) == 0
        assert "smart ring" in out.getvalue()

    def test_registry_descriptions_nonempty(self):
        for spec in all_specs():
            assert spec.title
            assert callable(spec.run)


class TestArtifactsAndCache:
    def test_run_writes_artifact_then_hits_cache(self, tmp_path):
        out = io.StringIO()
        assert main(["run", "fig2", "--out", str(tmp_path)], out=out) == 0
        assert "[cached]" not in out.getvalue()
        assert len(list(tmp_path.glob("fig2-*.json"))) == 1

        again = io.StringIO()
        assert main(["run", "fig2", "--out", str(tmp_path)], out=again) == 0
        text = again.getvalue()
        assert "[cached]" in text
        assert "smartphone" in text  # cached rows still render the table
        assert len(list(tmp_path.glob("fig2-*.json"))) == 1

    def test_run_force_recomputes(self, tmp_path):
        assert main(["run", "fig2", "--out", str(tmp_path)],
                    out=io.StringIO()) == 0
        out = io.StringIO()
        assert main(["run", "fig2", "--out", str(tmp_path), "--force"],
                    out=out) == 0
        assert "[cached]" not in out.getvalue()


class TestSweepCommand:
    def test_sweep_with_explicit_grid(self, tmp_path):
        out = io.StringIO()
        assert main(["sweep", "scaling", "--out", str(tmp_path),
                     "--grid", "seed=0,1", "simulated_seconds=0.25",
                     "node_counts=(1,2)"], out=out) == 0
        text = out.getvalue()
        assert "sweep scaling: 2 tasks" in text
        assert "manifest:" in text
        assert len(list(tmp_path.glob("scaling-*.json"))) == 2
        assert len(list(tmp_path.glob("sweep-scaling-*.json"))) == 1

    def test_sweep_accepts_module_name(self, tmp_path):
        out = io.StringIO()
        assert main(["sweep", "network_scaling", "--out", str(tmp_path),
                     "--grid", "seed=0", "simulated_seconds=0.25",
                     "node_counts=(1,)"], out=out) == 0
        assert "sweep scaling: 1 tasks" in out.getvalue()

    def test_grid_parsing_preserves_quoted_and_tuple_values(self):
        from repro.cli import parse_grid

        grid = parse_grid(['mode="a,b","c"', "node_counts=(1,2),(3,)",
                           "seed=0,1"])
        assert grid["mode"] == ["a,b", "c"]
        assert grid["node_counts"] == [(1, 2), (3,)]
        assert grid["seed"] == [0, 1]

    def test_grid_parsing_handles_float_words(self):
        import math

        from repro.cli import parse_grid

        grid = parse_grid(["x=inf,-inf,nan"])
        assert grid["x"][0] == float("inf")
        assert grid["x"][1] == float("-inf")
        assert math.isnan(grid["x"][2])

        from repro.errors import ReproError
        with pytest.raises(ReproError, match="not a valid Python literal"):
            parse_grid(["x=+-inf"])

    def test_malformed_grid_fails_cleanly(self, tmp_path):
        out = io.StringIO()
        assert main(["sweep", "scaling", "--out", str(tmp_path),
                     "--grid", "seed"], out=out) == 2
        assert "error:" in out.getvalue()

    def test_enum_parameter_expressible_from_grid(self):
        out = io.StringIO()
        assert main(["sweep", "partition", "--out", "none",
                     "--grid", "objective=leaf_energy"], out=out) == 0
        assert "sweep partition: 1 tasks" in out.getvalue()

    def test_repeated_grid_flags_combine(self, tmp_path):
        out = io.StringIO()
        assert main(["sweep", "scaling", "--out", str(tmp_path),
                     "--grid", "seed=0,1", "--grid", "simulated_seconds=0.25",
                     "--grid", "node_counts=(1,)"], out=out) == 0
        assert "sweep scaling: 2 tasks" in out.getvalue()

    def test_sweep_without_grid_or_defaults_errors(self, tmp_path):
        out = io.StringIO()
        assert main(["sweep", "claims", "--out", str(tmp_path)], out=out) == 2
        assert "no default sweep grid" in out.getvalue()

    def test_duplicate_grid_key_rejected(self, tmp_path):
        out = io.StringIO()
        assert main(["sweep", "scaling", "--out", str(tmp_path),
                     "--grid", "seed=0,1", "seed=2"], out=out) == 2
        assert "more than once" in out.getvalue()

    def test_malformed_literal_grid_value_rejected(self, tmp_path):
        out = io.StringIO()
        assert main(["sweep", "scaling", "--out", str(tmp_path),
                     "--grid", "node_counts=(1,2"], out=out) == 2
        assert "not a valid Python literal" in out.getvalue()

    def test_driver_value_error_reported_cleanly(self, tmp_path):
        # Drivers validate their own inputs with plain ValueError; the CLI
        # must turn that into `error: ...`, not a traceback.
        out = io.StringIO()
        assert main(["sweep", "charging", "--out", str(tmp_path),
                     "--grid", "max_devices=0"], out=out) == 2
        assert "error:" in out.getvalue()


class TestRunGridAlias:
    def test_run_with_default_grid_sweeps_all_policies(self):
        out = io.StringIO()
        assert main(["run", "network_scaling", "--grid", "--out", "none"],
                    out=out) == 0
        text = out.getvalue()
        assert "sweep scaling: 9 tasks" in text
        for policy in ("fifo", "tdma", "polling"):
            assert policy in text

    def test_run_with_explicit_grid(self):
        out = io.StringIO()
        assert main(["run", "scaling", "--grid", "mac_policy=tdma",
                     "seed=0", "simulated_seconds=0.25",
                     "node_counts=(1,2)", "--out", "none"], out=out) == 0
        assert "sweep scaling: 1 tasks" in out.getvalue()

    def test_run_all_with_grid_rejected(self):
        out = io.StringIO()
        assert main(["run", "all", "--grid", "--out", "none"], out=out) == 2
        assert "error:" in out.getvalue()


class TestScenariosCommand:
    def test_scenarios_list_names_all_registered(self):
        from repro.scenarios import scenario_names

        out = io.StringIO()
        assert main(["scenarios", "list"], out=out) == 0
        text = out.getvalue()
        for name in scenario_names():
            assert name in text

    def test_scenarios_run_writes_schema_versioned_artifact(self, tmp_path):
        out = io.StringIO()
        assert main(["scenarios", "run", "clinical_ward", "--duration", "5",
                     "--out", str(tmp_path)], out=out) == 0
        assert "clinical_ward" in out.getvalue()
        artifacts = list(tmp_path.glob("scenario-clinical_ward-*.json"))
        assert len(artifacts) == 1
        document = json.loads(artifacts[0].read_text())
        assert document["schema_version"] == 1
        assert document["experiment"] == "scenario:clinical_ward"
        assert document["rows"][0]["scenario"] == "clinical_ward"

    def test_scenarios_run_all_scaled(self, tmp_path):
        from repro.scenarios import scenario_names

        out = io.StringIO()
        assert main(["scenarios", "run", "all", "--scale", "0.005",
                     "--out", str(tmp_path)], out=out) == 0
        text = out.getvalue()
        for name in scenario_names():
            assert name in text
        assert len(list(tmp_path.glob("scenario-*.json"))) == \
            len(scenario_names())

    def test_scenarios_run_artifacts_render_in_report(self, tmp_path):
        assert main(["scenarios", "run", "sleep_night", "--duration", "5",
                     "--out", str(tmp_path)], out=io.StringIO()) == 0
        out = io.StringIO()
        assert main(["report", str(tmp_path)], out=out) == 0
        assert "scenario:sleep_night" in out.getvalue()

    def test_scenarios_run_out_none_writes_nothing(self, tmp_path):
        out = io.StringIO()
        assert main(["scenarios", "run", "sleep_night", "--duration", "5",
                     "--out", "none"], out=out) == 0
        assert "sleep_night" in out.getvalue()

    def test_unknown_scenario_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenarios", "run", "nope"])

    def test_invalid_scale_reported_cleanly(self):
        out = io.StringIO()
        assert main(["scenarios", "run", "sleep_night", "--scale", "0",
                     "--out", "none"], out=out) == 2
        assert "error:" in out.getvalue()

    def test_scenarios_without_subcommand_prints_usage(self):
        out = io.StringIO()
        assert main(["scenarios"], out=out) == 1
        assert "scenarios" in out.getvalue()


class TestCohortCommand:
    def test_cohort_run_prints_distribution_and_writes_artifact(self,
                                                                tmp_path):
        out = io.StringIO()
        assert main(["cohort", "run", "--population", "40",
                     "--duration", "15", "--validate-stride", "20",
                     "--out", str(tmp_path)], out=out) == 0
        text = out.getvalue()
        assert "member-metric distribution" in text
        assert "mean_latency_seconds" in text
        assert "analytic-vs-DES validation" in text
        artifacts = list(tmp_path.glob("cohort-*.json"))
        assert len(artifacts) == 1
        document = json.loads(artifacts[0].read_text())
        assert document["schema_version"] == 1
        assert document["experiment"] == "cohort"
        assert document["eid"] == "E14"
        assert document["overview"]["population"] == 40
        assert document["rows"]

    def test_cohort_run_des_path(self, tmp_path):
        out = io.StringIO()
        assert main(["cohort", "run", "--population", "6",
                     "--fast-path", "des", "--duration", "10",
                     "--out", "none"], out=out) == 0
        assert "des:6" in out.getvalue()

    def test_cohort_summarize_reprints_artifacts(self, tmp_path):
        assert main(["cohort", "run", "--population", "20",
                     "--duration", "10", "--validate-stride", "0",
                     "--out", str(tmp_path)], out=io.StringIO()) == 0
        out = io.StringIO()
        assert main(["cohort", "summarize", str(tmp_path)], out=out) == 0
        text = out.getvalue()
        assert "member-metric distribution" in text
        assert "leaf_power_watts" in text

    def test_cohort_summarize_empty_directory_fails(self, tmp_path):
        out = io.StringIO()
        assert main(["cohort", "summarize", str(tmp_path)], out=out) == 1
        assert "no cohort artifacts" in out.getvalue()

    def test_cohort_artifacts_render_in_report(self, tmp_path):
        assert main(["cohort", "run", "--population", "10",
                     "--duration", "10", "--validate-stride", "0",
                     "--out", str(tmp_path)], out=io.StringIO()) == 0
        out = io.StringIO()
        assert main(["report", str(tmp_path)], out=out) == 0
        assert "cohort" in out.getvalue()

    def test_cohort_invalid_population_reported_cleanly(self):
        out = io.StringIO()
        assert main(["cohort", "run", "--population", "0",
                     "--out", "none"], out=out) == 2
        assert "error:" in out.getvalue()

    def test_cohort_without_subcommand_prints_usage(self):
        out = io.StringIO()
        assert main(["cohort"], out=out) == 1
        assert "cohort" in out.getvalue()


class TestReportCommand:
    def test_report_reprints_saved_tables(self, tmp_path):
        assert main(["run", "fig2", "--out", str(tmp_path)],
                    out=io.StringIO()) == 0
        out = io.StringIO()
        assert main(["report", str(tmp_path)], out=out) == 0
        text = out.getvalue()
        assert "fig2" in text
        assert "smartphone" in text

    def test_report_empty_directory_fails(self, tmp_path):
        out = io.StringIO()
        assert main(["report", str(tmp_path)], out=out) == 1
        assert "no artifacts" in out.getvalue()

    def test_unwritable_out_dir_still_prints_tables(self, tmp_path):
        blocker = tmp_path / "plain-file"
        blocker.write_text("not a directory")
        out = io.StringIO()
        assert main(["run", "fig2", "--out", str(blocker / "sub")],
                    out=out) == 0
        text = out.getvalue()
        assert "smartphone" in text  # results were not lost
        assert "warning: cannot write artifact" in text

    def test_report_notes_incompatible_schema(self, tmp_path):
        (tmp_path / "old.json").write_text(json.dumps({"schema_version": -1}))
        out = io.StringIO()
        assert main(["report", str(tmp_path)], out=out) == 1
        text = out.getvalue()
        assert "incompatible schema version" in text
        assert "no artifacts" in text

    def test_report_flags_stale_artifacts(self, tmp_path):
        from repro.runner import write_artifact

        write_artifact(tmp_path / "fig2-old.json",
                       {"experiment": "fig2", "digest": "old",
                        "rows": [{"x": 1}]})
        document = json.loads((tmp_path / "fig2-old.json").read_text())
        document["source_fingerprint"] = "0" * 16
        (tmp_path / "fig2-old.json").write_text(json.dumps(document))

        # Default report skips stale artifacts with a note...
        out = io.StringIO()
        assert main(["report", str(tmp_path)], out=out) == 1
        text = out.getvalue()
        assert "skipped 1 stale artifact" in text
        assert "no artifacts" in text
        # ...and --all prints them, flagged.
        out = io.StringIO()
        assert main(["report", str(tmp_path), "--all"], out=out) == 0
        assert "[stale" in out.getvalue()

    def test_report_does_not_duplicate_sweep_rows(self, tmp_path):
        assert main(["sweep", "scaling", "--out", str(tmp_path),
                     "--grid", "seed=0", "simulated_seconds=0.25",
                     "node_counts=(1,)"], out=io.StringIO()) == 0
        out = io.StringIO()
        assert main(["report", str(tmp_path)], out=out) == 0
        text = out.getvalue()
        # One task table plus a row-less manifest line; the combined rows
        # are not embedded in the manifest a second time.
        assert text.count("tdma_utilization") == 1
        assert "(no rows)" in text
