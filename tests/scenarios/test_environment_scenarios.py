"""Multi-body environment specs: neutrality pins, monotonicity, gallery."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.control import ControllerSpec
from repro.errors import ScenarioError
from repro.scenarios import (
    BodyPlacement,
    EnvironmentSpec,
    ReliabilitySpec,
    ScenarioNodeSpec,
    ScenarioSpec,
    all_environments,
    environment_names,
    get_environment,
    get_scenario,
    scenario_names,
)
from repro.sensors.catalog import SensorModality

#: Golden pin: ``barefoot_yoga`` standalone, seed 0, 120 simulated
#: seconds (float.hex for exact comparison).  The one-body environment
#: and the attached-but-static controller runs below must reproduce
#: every value bit-for-bit — the neutrality contract of the multi-body
#: layer.
BAREFOOT_GOLDEN = {
    "delivered_packets": 606,
    "mean_latency_seconds": "0x1.055c6c5f92b0bp-8",
    "p99_latency_seconds": "0x1.450efdc9c0000p-7",
    "hub_energy_joules": "0x1.44ef5c6f4d8cbp-12",
    "bus_utilization": "0x1.e63bc206589d6p-8",
}


def assert_matches_golden(result) -> None:
    assert result.delivered_packets == BAREFOOT_GOLDEN["delivered_packets"]
    for attribute, expected in BAREFOOT_GOLDEN.items():
        if attribute == "delivered_packets":
            continue
        assert getattr(result, attribute).hex() == expected, attribute


def one_body(controller: ControllerSpec | None = None) -> EnvironmentSpec:
    return EnvironmentSpec(
        name="solo_room",
        description="one body alone in the room",
        bodies=(BodyPlacement(scenario="barefoot_yoga",
                              controller=controller),),
    )


def crowd_member() -> ScenarioSpec:
    """A minimal lossy body for the monotonicity property."""
    return ScenarioSpec(
        name="property_member",
        description="one lossy EQS node",
        duration_seconds=60.0,
        reliability=ReliabilitySpec(posture="standing_shoes",
                                    eqs_noise_rms_volts=4.5e-5,
                                    arq_retry_limit=2),
        nodes=(ScenarioNodeSpec(name="imu", modality=SensorModality.IMU,
                                bits_per_packet=4096.0),),
    )


def room(spec: ScenarioSpec, count: int, spacing: float,
         leakage: float) -> EnvironmentSpec:
    return EnvironmentSpec(
        name=f"property_room_{count}",
        description="monotonicity probe",
        bodies=(BodyPlacement(scenario=spec, count=count, name="m"),),
        spacing_metres=spacing,
        eqs_leakage_fraction=leakage,
    )


class TestNeutrality:
    def test_standalone_matches_golden(self):
        result = get_scenario("barefoot_yoga").run(
            seed=0, duration_seconds=120.0)
        assert_matches_golden(result.simulated)

    def test_one_body_environment_bit_identical(self):
        run = one_body().run(seed=0, duration_seconds=120.0)
        assert_matches_golden(run.simulated.result_for("barefoot_yoga"))

    def test_one_body_static_controller_bit_identical(self):
        run = one_body(ControllerSpec(kind="static")).run(
            seed=0, duration_seconds=120.0)
        assert_matches_golden(run.simulated.result_for("barefoot_yoga"))

    def test_one_body_environment_schedules_no_epoch_events(self):
        environment = one_body().build(seed=0, duration_seconds=120.0)
        schedule = environment.interference_schedule()
        assert len(schedule) == 1
        assert all(state.neutral for state in schedule[0][1])


class TestMonotonicity:
    @settings(max_examples=15, deadline=None)
    @given(counts=st.lists(st.integers(min_value=1, max_value=8),
                           min_size=2, max_size=2, unique=True),
           spacing=st.floats(min_value=0.6, max_value=2.5),
           leakage=st.floats(min_value=1e-4, max_value=1e-3))
    def test_interference_and_per_monotone_in_occupancy(
            self, counts, spacing, leakage):
        """More bodies in the room never *reduce* anyone's erasure rate.

        The grid layout is fixed-width, so growing the room adds bodies
        without moving existing ones: body 0's aggregate interference —
        and through the monotone waterfall, its PER — is non-decreasing
        in the body count.
        """
        small, large = sorted(counts)
        spec = crowd_member()
        states = []
        pers = []
        for count in (small, large):
            environment = room(spec, count, spacing, leakage).build(seed=0)
            state = environment.interference_schedule()[0][1][0]
            states.append(state)
            pers.append(spec.reliability.node_error_rate_adjusted(
                spec.nodes[0], posture="standing_shoes",
                rf_interference_dbm=state.rf_dbm,
                eqs_interference_volts=state.eqs_volts))
        assert states[1].eqs_volts >= states[0].eqs_volts
        assert states[1].rf_dbm >= states[0].rf_dbm \
            or states[1].rf_dbm == -math.inf
        assert pers[1] >= pers[0]

    def test_degradation_is_visible_at_room_scale(self):
        spec = crowd_member()
        solo = room(spec, 1, 0.8, 8e-4).run(seed=0)
        packed = room(spec, 8, 0.8, 8e-4).run(seed=0)
        # ARQ may still deliver every packet; the erasures (and the
        # retry energy they cost) are where the packed room shows up.
        assert packed.simulated.body_results[0].erased_attempts \
            > solo.simulated.body_results[0].erased_attempts
        assert packed.simulated.body_results[0].delivered_fraction \
            <= solo.simulated.body_results[0].delivered_fraction


class TestSpecValidation:
    def test_duplicate_body_names_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate"):
            EnvironmentSpec(
                name="dup", description="",
                bodies=(BodyPlacement(scenario="barefoot_yoga"),
                        BodyPlacement(scenario="barefoot_yoga")))

    def test_disagreeing_durations_need_override(self):
        bodies = (BodyPlacement(scenario="barefoot_yoga", name="a"),
                  BodyPlacement(scenario="commute_walk", name="b"))
        with pytest.raises(ScenarioError, match="disagree"):
            EnvironmentSpec(name="clash", description="", bodies=bodies)
        spec = EnvironmentSpec(name="clash", description="",
                               bodies=bodies, duration_seconds=60.0)
        assert spec.resolved_duration() == 60.0

    def test_positioned_groups_rejected(self):
        with pytest.raises(ScenarioError, match="grid"):
            BodyPlacement(scenario="barefoot_yoga", count=2,
                          position_metres=(0.0, 0.0))

    def test_grid_never_reflows(self):
        spec = one_body()
        for index, expected in ((0, (0.0, 0.0)), (3, (4.5, 0.0)),
                                (4, (0.0, 1.5)), (5, (1.5, 1.5))):
            assert spec.grid_position(index) == expected


class TestGallery:
    def test_builtin_environments_registered(self):
        names = environment_names()
        for expected in ("gym_floor", "ward_shift", "commuter_train"):
            assert expected in names

    def test_environment_names_disjoint_from_scenarios(self):
        assert not set(environment_names()) & set(scenario_names())

    def test_describe_rows_share_scenario_keys(self):
        scenario_keys = list(get_scenario("barefoot_yoga").describe())
        for spec in all_environments():
            assert list(spec.describe()) == scenario_keys

    def test_capability_tags(self):
        by_name = {spec.name: spec.capabilities()
                   for spec in all_environments()}
        for name, tags in by_name.items():
            assert "multi-body" in tags, name
        assert "lossy" in by_name["gym_floor"]

    def test_ward_shift_occupancy_boundaries(self):
        spec = get_environment("ward_shift")
        assert spec.describe()["events"] == 2
