"""Source coding through the scenario stack: wiring and exact neutrality.

The golden-hex regression suite (tests/netsim/test_fifo_regression.py)
pins the coding-off DES bit-for-bit; these tests pin the complementary
contracts: a disabled coder changes *nothing* anywhere in the compiled
artefacts, an enabled coder changes exactly the things it should, and
the cohort analytic fast path agrees with the DES on coded bodies.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.coding import CodingSpec
from repro.cohort import evaluate_member
from repro.netsim.traffic import PeriodicSource, PoissonSource
from repro.scenarios import get_scenario
from repro.scenarios.spec import (
    ReliabilitySpec,
    ScenarioNodeSpec,
    ScenarioSpec,
)
from repro.sensors.catalog import SensorModality


def lossy_spec(coding: CodingSpec | None,
               technology: str = "ble",
               duration_seconds: float = 30.0) -> ScenarioSpec:
    return ScenarioSpec(
        name="coding_probe",
        description="coding wiring probe",
        duration_seconds=duration_seconds,
        hub_technology=technology,
        nodes=(ScenarioNodeSpec(name="eeg", modality=SensorModality.EEG,
                                technology=technology,
                                bits_per_packet=4096.0, count=2,
                                coding=coding),),
        reliability=ReliabilitySpec(rf_noise_floor_dbm=-94.0),
    )


class TestExactNeutrality:
    def test_uncoded_accessors_return_the_plain_attributes(self):
        node = ScenarioNodeSpec(name="a", rate_bps=8000.0)
        assert node.coded_bits_per_packet() is node.bits_per_packet
        assert node.effective_coding_rate() == 1.0
        assert node.coding_power_watts() == 0.0
        assert node.air_rate_bps() == node.resolved_rate_bps()

    def test_noop_coder_is_bit_identical_to_no_coder(self):
        # A pass-through coder (rate 1.0) with a zero-energy encoder
        # must not perturb a single float in the result — the strongest
        # form of the off-neutrality contract, run through a lossy
        # scenario so PER, ARQ and energy paths are all exercised.
        noop = CodingSpec(rate=1.0, energy_per_source_bit_joules=0.0)
        coded = lossy_spec(noop).run(seed=0).simulated
        plain = lossy_spec(None).run(seed=0).simulated
        assert coded == plain
        assert coded.to_dict() == plain.to_dict()

    def test_noop_coder_analytic_bit_identity(self):
        noop = CodingSpec(rate=1.0, energy_per_source_bit_joules=0.0)
        assert evaluate_member(lossy_spec(noop)) \
            == evaluate_member(lossy_spec(None))

    def test_uncoded_rows_gain_no_coding_columns(self):
        result = get_scenario("clinical_ward").run(seed=0,
                                                   duration_seconds=2.0)
        row = result.row()
        assert "bit_reduction" not in row
        assert "encode_energy_fraction" not in row


class TestCodedWiring:
    def test_sources_keep_cadence_and_shrink_payload(self):
        coding = CodingSpec(rate=0.5, correlation=0.5)
        base = ScenarioNodeSpec(name="imu", modality=SensorModality.IMU,
                                bits_per_packet=4096.0)
        coded = dataclasses.replace(base, coding=coding)
        plain_source = base.make_source()
        coded_source = coded.make_source()
        assert isinstance(coded_source, PeriodicSource)
        assert coded_source.period_seconds == plain_source.period_seconds
        assert coded_source.bits_per_packet \
            == coding.coded_bits(4096.0, SensorModality.IMU)
        poisson = dataclasses.replace(coded, traffic="poisson").make_source()
        assert isinstance(poisson, PoissonSource)
        assert poisson.mean_interarrival_seconds \
            == plain_source.period_seconds
        assert poisson.mean_bits_per_packet == coded_source.bits_per_packet

    def test_air_rate_matches_the_source_registration_rate(self):
        coded = ScenarioNodeSpec(name="imu", modality=SensorModality.IMU,
                                 bits_per_packet=4096.0,
                                 coding=CodingSpec(rate=0.5))
        assert coded.air_rate_bps() \
            == coded.make_source().average_rate_bps()

    def test_coding_lowers_the_packet_error_rate(self):
        rel = ReliabilitySpec(eqs_noise_rms_volts=6e-5)
        plain = ScenarioNodeSpec(name="ecg", modality=SensorModality.ECG,
                                 bits_per_packet=4096.0)
        coded = dataclasses.replace(plain, coding=CodingSpec(rate=0.5))
        assert rel.node_error_rate(coded) < rel.node_error_rate(plain)

    def test_has_coding_property(self):
        assert lossy_spec(CodingSpec(rate=0.7)).has_coding
        assert not lossy_spec(None).has_coding
        assert get_scenario("coded_ward").has_coding
        assert not get_scenario("noisy_ward").has_coding

    def test_coded_run_reports_coding_metrics(self):
        result = lossy_spec(CodingSpec(rate=0.7, correlation=0.5)).run(
            seed=0).simulated
        assert result.coding_enabled
        assert result.coding_energy_joules > 0.0
        # Packets in flight at the end of the run are sent but not yet
        # delivered, so the measured ratio sits slightly above 1/rate.
        assert result.bit_reduction_factor == pytest.approx(1.0 / 0.7,
                                                            rel=0.02)
        assert 0.0 < result.encode_energy_fraction < 1.0
        assert result.source_bits_delivered > result.delivered_bits

    def test_coded_row_gains_gated_columns(self):
        row = get_scenario("coded_ward").run(seed=0,
                                             duration_seconds=30.0).row()
        assert row["bit_reduction"] > 1.0
        assert 0.0 < row["encode_energy_fraction"] < 1.0

    def test_coding_saves_energy_in_the_coded_ward(self):
        coded = get_scenario("coded_ward").run(seed=0,
                                               duration_seconds=60.0)
        plain = get_scenario("noisy_ward").run(seed=0,
                                               duration_seconds=60.0)
        assert coded.simulated.total_leaf_power_watts \
            < plain.simulated.total_leaf_power_watts

    def test_result_round_trips_with_coding_fields(self):
        from repro.netsim.simulator import SimulationResult

        result = lossy_spec(CodingSpec(rate=0.7)).run(seed=0).simulated
        rebuilt = SimulationResult.from_dict(result.to_dict())
        assert rebuilt == result
        assert rebuilt.coding_enabled is True
        assert rebuilt.bit_reduction_factor == result.bit_reduction_factor
        assert rebuilt.encode_energy_fraction \
            == result.encode_energy_fraction

    def test_old_result_documents_still_load(self):
        # An artifact written before the coding layer has no coding
        # keys; from_dict must leave the fields at their defaults.
        from repro.netsim.simulator import SimulationResult

        document = lossy_spec(None).run(seed=0).simulated.to_dict()
        for key in ("coding_enabled", "coding_energy_joules",
                    "source_bits_delivered"):
            del document[key]
        rebuilt = SimulationResult.from_dict(document)
        assert rebuilt.coding_enabled is False
        assert rebuilt.bit_reduction_factor == 1.0
        assert rebuilt.encode_energy_fraction == 0.0


class TestAnalyticAgreement:
    @pytest.mark.parametrize("rate", [1.0, 0.8, 0.6])
    def test_analytic_tracks_des_on_coded_lossy_bodies(self, rate):
        spec = lossy_spec(CodingSpec(rate=rate, correlation=0.5))
        analytic = evaluate_member(spec)
        simulated = spec.run(seed=0).simulated
        assert analytic.leaf_power_watts == pytest.approx(
            simulated.total_leaf_power_watts, rel=0.05)
        assert abs(analytic.delivered_fraction
                   - simulated.delivered_fraction) < 0.05
