"""The per-spec compile cache (service times, TDMA slot tables).

``ScenarioSpec`` is frozen and fully hashable, so it keys a process-wide
cache of derived tables: per-node bus service times and, for TDMA
bodies, the slot ring.  A sweep runner that builds the same spec
thousands of times (one member per cohort draw, one point per grid
cell) then skips the re-derivation — and a warm build must behave
bit-identically to a cold one.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.scenarios import get_scenario
from repro.scenarios.spec import _COMPILE_CACHE, _COMPILE_CACHE_LIMIT


@pytest.fixture(autouse=True)
def clean_cache():
    _COMPILE_CACHE.clear()
    yield
    _COMPILE_CACHE.clear()


class TestCompileCache:
    def test_build_populates_cache_once(self):
        spec = get_scenario("clinical_ward")
        spec.build(seed=0)
        assert len(_COMPILE_CACHE) == 1
        spec.build(seed=1)
        assert len(_COMPILE_CACHE) == 1

    def test_warm_build_is_bit_identical(self):
        spec = get_scenario("sleep_night")
        cold = spec.build(seed=0).run(30.0)
        assert spec in _COMPILE_CACHE
        warm = spec.build(seed=0).run(30.0)
        assert warm.to_dict() == cold.to_dict()

    def test_tdma_slot_table_cached_and_identical(self):
        spec = get_scenario("workout")  # TDMA arbitration
        cold = spec.build(seed=0).run(30.0)
        cached = _COMPILE_CACHE[spec]
        assert "windows" in cached
        warm = spec.build(seed=0).run(30.0)
        assert warm.to_dict() == cold.to_dict()

    def test_distinct_specs_get_distinct_entries(self):
        get_scenario("clinical_ward").build(seed=0)
        get_scenario("workout").build(seed=0)
        assert len(_COMPILE_CACHE) == 2

    def test_modified_spec_misses_the_cache(self):
        spec = get_scenario("clinical_ward")
        spec.build(seed=0)
        shorter = dataclasses.replace(spec, duration_seconds=10.0)
        shorter.build(seed=0)
        assert len(_COMPILE_CACHE) == 2

    def test_cache_clears_at_limit(self):
        spec = get_scenario("clinical_ward")
        for index in range(_COMPILE_CACHE_LIMIT):
            _COMPILE_CACHE[dataclasses.replace(
                spec, duration_seconds=1000.0 + index)] = {}
        spec.build(seed=0)
        assert len(_COMPILE_CACHE) == 1
        assert spec in _COMPILE_CACHE
