"""Tests for repro.scenarios (spec, registry, gallery, events)."""

from __future__ import annotations

import pytest

from repro.errors import ScenarioError
from repro.scenarios import (
    ScenarioEvent,
    ScenarioNodeSpec,
    ScenarioSpec,
    all_scenarios,
    get_scenario,
    scenario_names,
)
from repro.sensors.catalog import SensorModality, modality_spec


class TestRegistry:
    def test_at_least_six_scenarios_registered(self):
        names = scenario_names()
        assert len(names) >= 6
        for expected in ("sleep_night", "workout", "clinical_ward",
                         "dense_50_leaf", "implant_mix",
                         "legacy_ble_island"):
            assert expected in names

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ScenarioError):
            get_scenario("does_not_exist")

    def test_every_scenario_builds_and_describes(self):
        for spec in all_scenarios():
            assert spec.leaf_count >= 1
            assert spec.offered_rate_bps() > 0
            description = spec.describe()
            assert description["scenario"] == spec.name
            simulator = spec.build(seed=0, duration_seconds=1.0)
            assert len(simulator.nodes) == spec.leaf_count

    def test_gallery_covers_all_policies_and_mixed_links(self):
        policies = {spec.arbitration for spec in all_scenarios()}
        assert policies == {"fifo", "tdma", "polling"}
        technologies = {key for spec in all_scenarios()
                        for key in spec.technologies()}
        assert {"wir", "mqs_implant", "ble"} <= technologies


class TestNodeSpec:
    def test_modality_rate_resolution(self):
        node = ScenarioNodeSpec(name="ecg", modality=SensorModality.ECG)
        assert node.resolved_rate_bps() == \
            modality_spec(SensorModality.ECG).compressed_data_rate_bps

    def test_explicit_rate_overrides_modality(self):
        node = ScenarioNodeSpec(name="x", modality=SensorModality.ECG,
                                rate_bps=1234.0)
        assert node.resolved_rate_bps() == 1234.0

    def test_replication_names(self):
        node = ScenarioNodeSpec(name="imu", modality=SensorModality.IMU,
                                count=3)
        assert node.expanded_names() == ["imu0", "imu1", "imu2"]

    def test_invalid_nodes_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioNodeSpec(name="x")  # no modality, no rate
        with pytest.raises(ScenarioError):
            ScenarioNodeSpec(name="x", rate_bps=-1.0)
        with pytest.raises(ScenarioError):
            ScenarioNodeSpec(name="x", rate_bps=1.0, traffic="bursty")
        with pytest.raises(ScenarioError):
            ScenarioNodeSpec(name="x", rate_bps=1.0, technology="zigbee")


class TestSpecValidation:
    def make_spec(self, **overrides) -> ScenarioSpec:
        parameters = dict(
            name="test",
            description="test scenario",
            duration_seconds=10.0,
            nodes=(ScenarioNodeSpec(name="a", rate_bps=1e3),),
        )
        parameters.update(overrides)
        return ScenarioSpec(**parameters)

    def test_duplicate_concrete_names_rejected(self):
        with pytest.raises(ScenarioError):
            self.make_spec(nodes=(
                ScenarioNodeSpec(name="a", rate_bps=1e3),
                ScenarioNodeSpec(name="a", rate_bps=2e3),
            ))

    def test_rate_exceeding_link_rejected(self):
        with pytest.raises(ScenarioError):
            # sub-uW EQS link carries 10 kb/s; 1 Mb/s cannot fit.
            self.make_spec(nodes=(
                ScenarioNodeSpec(name="a", rate_bps=1e6,
                                 technology="sub_uw"),
            ))

    def test_unknown_arbitration_rejected(self):
        with pytest.raises(ScenarioError):
            self.make_spec(arbitration="aloha")

    def test_event_prefix_must_match_a_node(self):
        with pytest.raises(ScenarioError):
            self.make_spec(events=(
                ScenarioEvent(at_fraction=0.5, action="sleep",
                              node_prefixes=("ghost",)),
            ))

    def test_invalid_events_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioEvent(at_fraction=1.5, action="sleep",
                          node_prefixes=("a",))
        with pytest.raises(ScenarioError):
            ScenarioEvent(at_fraction=0.5, action="toggle",
                          node_prefixes=("a",))


class TestExecution:
    def test_run_produces_labelled_result(self):
        result = get_scenario("clinical_ward").run(seed=0,
                                                   duration_seconds=5.0)
        assert result.scenario == "clinical_ward"
        assert result.simulated.delivered_packets > 0
        row = result.row()
        assert row["nodes"] == result.node_count
        assert row["mac"] == "fifo"

    def test_same_seed_reproducible(self):
        first = get_scenario("implant_mix").run(seed=3, duration_seconds=10.0)
        second = get_scenario("implant_mix").run(seed=3, duration_seconds=10.0)
        assert first.simulated == second.simulated

    def test_sleep_events_suppress_traffic(self):
        spec = ScenarioSpec(
            name="duty",
            description="duty-cycle check",
            duration_seconds=10.0,
            nodes=(ScenarioNodeSpec(name="a", rate_bps=8e3),
                   ScenarioNodeSpec(name="b", rate_bps=8e3)),
            events=(ScenarioEvent(at_fraction=0.5, action="sleep",
                                  node_prefixes=("b",)),),
        )
        result = spec.run(seed=0)
        goodput = result.simulated.per_node_goodput_bps
        # b generated for only half the run.
        assert goodput["b"] == pytest.approx(goodput["a"] / 2.0, rel=0.15)

    def test_wake_events_restore_traffic(self):
        spec = ScenarioSpec(
            name="duty2",
            description="wake check",
            duration_seconds=10.0,
            nodes=(ScenarioNodeSpec(name="a", rate_bps=8e3),),
            events=(
                ScenarioEvent(at_fraction=0.0, action="sleep",
                              node_prefixes=("a",)),
                ScenarioEvent(at_fraction=0.75, action="wake",
                              node_prefixes=("a",)),
            ),
        )
        result = spec.run(seed=0)
        assert 0 < result.simulated.delivered_packets < 10

    def test_mixed_technology_scenario_runs(self):
        result = get_scenario("implant_mix").run(seed=0,
                                                 duration_seconds=30.0)
        assert len(result.technologies) == 3
        assert result.simulated.delivered_fraction > 0.9

    def test_dense_scenario_streams_with_bounded_memory(self):
        spec = get_scenario("dense_50_leaf")
        simulator = spec.build(seed=0, duration_seconds=60.0,
                               latency_exact_capacity=512)
        result = simulator.run(60.0)
        accumulator = simulator.bus.stats.latency
        assert result.delivered_packets > 512
        assert not accumulator.is_exact
        assert accumulator.retained_samples == 0
        assert accumulator.count == result.delivered_packets
        assert result.p99_latency_seconds >= result.mean_latency_seconds
