"""Scenario-layer reliability: posture-driven channels, lossy gallery."""

from __future__ import annotations

import pytest

from repro.errors import ScenarioError
from repro.netsim.reliability import ARQPolicy
from repro.scenarios import (
    ReliabilitySpec,
    ScenarioEvent,
    ScenarioNodeSpec,
    ScenarioSpec,
    get_scenario,
    scenario_names,
)


def lossy_spec(events=(), reliability=None, **node_kwargs) -> ScenarioSpec:
    node_kwargs.setdefault("rate_bps", 4000.0)
    node_kwargs.setdefault("bits_per_packet", 4096.0)
    return ScenarioSpec(
        name="lossy_test",
        description="test body",
        duration_seconds=60.0,
        nodes=(ScenarioNodeSpec(name="leaf", **node_kwargs),),
        events=tuple(events),
        reliability=(reliability if reliability is not None
                     else ReliabilitySpec(eqs_noise_rms_volts=5.5e-5)),
    )


class TestReliabilitySpec:
    def test_validation(self):
        with pytest.raises(ScenarioError):
            ReliabilitySpec(posture="floating")
        with pytest.raises(ScenarioError):
            ReliabilitySpec(eqs_noise_rms_volts=0.0)
        with pytest.raises(ScenarioError):
            ReliabilitySpec(default_error_rate=1.5)
        with pytest.raises(ScenarioError):
            ReliabilitySpec(arq_retry_limit=-1)
        with pytest.raises(ScenarioError):
            ReliabilitySpec(ack_bits=-1.0)

    def test_arq_policy_compilation(self):
        spec = ReliabilitySpec(arq_retry_limit=5, ack_bits=32.0)
        policy = spec.arq_policy()
        assert isinstance(policy, ARQPolicy)
        assert policy.retry_limit == 5 and policy.ack_bits == 32.0
        assert ReliabilitySpec(arq=False).arq_policy() is None

    def test_eqs_error_rate_depends_on_posture(self):
        spec = ReliabilitySpec(eqs_noise_rms_volts=5.5e-5)
        node = ScenarioNodeSpec(name="n", rate_bps=4000.0,
                                bits_per_packet=4096.0)
        barefoot = spec.node_error_rate(node, "standing_barefoot")
        lying = spec.node_error_rate(node, "lying_on_bed")
        assert barefoot > 0.5 > lying

    def test_rf_error_rate_depends_on_noise_floor(self):
        node = ScenarioNodeSpec(name="n", rate_bps=4000.0,
                                bits_per_packet=2048.0, technology="ble")
        quiet = ReliabilitySpec(rf_noise_floor_dbm=-94.0)
        ward = ReliabilitySpec(rf_noise_floor_dbm=-90.0)
        assert ward.node_error_rate(node) > quiet.node_error_rate(node)
        # RF links do not feel posture (no capacitive return path).
        assert ward.node_error_rate(node, "lying_on_bed") == \
            ward.node_error_rate(node, "standing_barefoot")

    def test_unmodelled_technologies_get_the_default(self):
        node = ScenarioNodeSpec(name="n", rate_bps=2000.0,
                                technology="mqs_implant")
        spec = ReliabilitySpec(default_error_rate=0.07)
        assert spec.node_error_rate(node) == 0.07

    def test_shorter_channel_is_cleaner(self):
        spec = ReliabilitySpec(eqs_noise_rms_volts=5.5e-5,
                               posture="sitting_office_chair")
        far = ScenarioNodeSpec(name="n", rate_bps=4000.0,
                               bits_per_packet=4096.0,
                               channel_distance_metres=1.8)
        near = ScenarioNodeSpec(name="n", rate_bps=4000.0,
                                bits_per_packet=4096.0,
                                channel_distance_metres=0.3)
        assert spec.node_error_rate(near) < spec.node_error_rate(far)


class TestPostureEvents:
    def test_posture_event_validation(self):
        with pytest.raises(ScenarioError):
            ScenarioEvent(at_fraction=0.5, action="posture",
                          node_prefixes=("",))  # no posture given
        with pytest.raises(ScenarioError):
            ScenarioEvent(at_fraction=0.5, action="posture",
                          node_prefixes=("",), posture="hovering")
        with pytest.raises(ScenarioError):
            ScenarioEvent(at_fraction=0.5, action="sleep",
                          node_prefixes=("",), posture="walking")

    def test_posture_events_require_reliability_spec(self):
        with pytest.raises(ScenarioError, match="reliability"):
            ScenarioSpec(
                name="x", description="d", duration_seconds=10.0,
                nodes=(ScenarioNodeSpec(name="leaf", rate_bps=1000.0),),
                events=(ScenarioEvent(at_fraction=0.5, action="posture",
                                      node_prefixes=("",),
                                      posture="walking"),),
            )

    def test_node_posture_timeline(self):
        spec = lossy_spec(events=(
            ScenarioEvent(at_fraction=0.25, action="posture",
                          node_prefixes=("",), posture="walking"),
            ScenarioEvent(at_fraction=0.75, action="posture",
                          node_prefixes=("",), posture="lying_on_bed"),
        ))
        timeline = spec.node_posture_timeline("leaf", spec.nodes[0])
        assert timeline == [
            (0.0, 0.25, "standing_shoes"),
            (0.25, 0.75, "walking"),
            (0.75, 1.0, "lying_on_bed"),
        ]

    def test_timeline_respects_prefix_scope(self):
        spec = ScenarioSpec(
            name="scoped", description="d", duration_seconds=60.0,
            nodes=(ScenarioNodeSpec(name="wrist", rate_bps=4000.0),
                   ScenarioNodeSpec(name="chest", rate_bps=4000.0)),
            events=(ScenarioEvent(at_fraction=0.5, action="posture",
                                  node_prefixes=("wrist",),
                                  posture="walking"),),
            reliability=ReliabilitySpec(),
        )
        wrist = spec.node_posture_timeline("wrist", spec.nodes[0])
        chest = spec.node_posture_timeline("chest", spec.nodes[1])
        assert wrist[-1][2] == "walking"
        assert chest == [(0.0, 1.0, "standing_shoes")]

    def test_reliability_profile_time_weights_postures(self):
        spec = lossy_spec(events=(
            ScenarioEvent(at_fraction=0.5, action="posture",
                          node_prefixes=("",),
                          posture="standing_barefoot"),
        ))
        node = spec.nodes[0]
        arq = spec.reliability.arq_policy()
        shoes = spec.reliability.node_error_rate(node, "standing_shoes")
        barefoot = spec.reliability.node_error_rate(node,
                                                    "standing_barefoot")
        delivered, attempts = spec.reliability_profile()["leaf"]
        assert delivered == pytest.approx(
            0.5 * arq.delivery_probability(shoes)
            + 0.5 * arq.delivery_probability(barefoot))
        assert attempts == pytest.approx(
            0.5 * arq.expected_attempts(shoes)
            + 0.5 * arq.expected_attempts(barefoot))

    def test_profile_ignores_postures_the_node_slept_through(self):
        """A high-PER posture phase the node spends asleep offered no
        packets, so it must not tilt the per-packet average."""
        spec = lossy_spec(events=(
            ScenarioEvent(at_fraction=0.4, action="sleep",
                          node_prefixes=("leaf",)),
            ScenarioEvent(at_fraction=0.4, action="posture",
                          node_prefixes=("",),
                          posture="standing_barefoot"),
            ScenarioEvent(at_fraction=0.8, action="posture",
                          node_prefixes=("",), posture="standing_shoes"),
            ScenarioEvent(at_fraction=0.8, action="wake",
                          node_prefixes=("leaf",)),
        ))
        node = spec.nodes[0]
        arq = spec.reliability.arq_policy()
        shoes = spec.reliability.node_error_rate(node, "standing_shoes")
        delivered, attempts = spec.reliability_profile()["leaf"]
        # Awake only during standing_shoes phases: the barefoot PER is
        # invisible to the per-packet closed forms.
        assert delivered == pytest.approx(arq.delivery_probability(shoes))
        assert attempts == pytest.approx(arq.expected_attempts(shoes))

    def test_awake_intervals(self):
        spec = lossy_spec(events=(
            ScenarioEvent(at_fraction=0.25, action="sleep",
                          node_prefixes=("leaf",)),
            ScenarioEvent(at_fraction=0.75, action="wake",
                          node_prefixes=("leaf",)),
        ))
        assert spec.node_awake_intervals("leaf") == [(0.0, 0.25),
                                                     (0.75, 1.0)]

    def test_lossless_profile_is_unity(self):
        spec = get_scenario("sleep_night")
        assert all(value == (1.0, 1.0)
                   for value in spec.reliability_profile().values())

    def test_posture_swap_changes_observed_erasures(self):
        """The first (clean-posture) half erases nothing; the barefoot
        half erases heavily — observable through the event counters."""
        clean = lossy_spec()  # standing_shoes throughout: PER ~ 0.6%
        baseline = clean.run(seed=0).simulated
        swapped = lossy_spec(events=(
            ScenarioEvent(at_fraction=0.5, action="posture",
                          node_prefixes=("",),
                          posture="standing_barefoot"),
        ))
        degraded = swapped.run(seed=0).simulated
        assert degraded.erased_attempts > baseline.erased_attempts + 10


class TestLossyGallery:
    def test_new_scenarios_registered(self):
        names = scenario_names()
        for name in ("commute_walk", "noisy_ward", "barefoot_yoga"):
            assert name in names

    @pytest.mark.parametrize("name",
                             ["commute_walk", "noisy_ward", "barefoot_yoga"])
    def test_lossy_scenarios_run_and_report(self, name):
        spec = get_scenario(name)
        assert spec.reliability is not None
        result = spec.run(seed=0,
                          duration_seconds=spec.duration_seconds * 0.05)
        row = result.row()
        assert row["erased"] > 0
        assert row["retx"] > 0
        assert row["attempts_per_pkt"] > 1.0
        assert row["retx_energy_uj"] > 0.0
        # ARQ keeps goodput essentially intact at gallery error rates.
        assert row["delivered_fraction"] >= 0.99

    def test_lossless_rows_keep_their_historical_columns(self):
        spec = get_scenario("clinical_ward")
        row = spec.run(seed=0, duration_seconds=30.0).row()
        assert "erased" not in row and "retx" not in row

    def test_commute_walk_postures_modulate_erasures(self):
        """Sitting (train) erases ~18%; the walking leg is nearly clean."""
        spec = get_scenario("commute_walk")
        node = spec.nodes[0]
        sitting = spec.reliability.node_error_rate(
            node, "sitting_office_chair")
        walking = spec.reliability.node_error_rate(node, "walking")
        assert sitting > 0.1
        assert walking < 0.01

    def test_noisy_ward_only_degrades_the_ble_island(self):
        spec = get_scenario("noisy_ward")
        rates = {node.name: spec.reliability.node_error_rate(node)
                 for node in spec.nodes}
        assert rates["ble_pump"] > 0.1 and rates["ble_spo2"] > 0.1
        assert rates["ecg_lead"] == 0.0 and rates["temp_axilla"] == 0.0
