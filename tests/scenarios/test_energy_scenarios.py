"""Battery/harvester scenario plumbing and the two lifetime scenarios."""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.errors import ScenarioError
from repro.scenarios import get_scenario, scenario_names
from repro.scenarios.spec import (
    BATTERY_FACTORIES,
    ENVIRONMENTS,
    HARVESTER_FACTORIES,
    ScenarioNodeSpec,
    ScenarioSpec,
    battery_for,
    environment_for,
    harvester_for,
)


class TestEnergyFieldValidation:
    def test_unknown_battery_rejected(self):
        with pytest.raises(ScenarioError, match="unknown battery"):
            ScenarioNodeSpec(name="x", rate_bps=1000.0, battery="aa")

    def test_unknown_harvester_rejected(self):
        with pytest.raises(ScenarioError, match="unknown harvester"):
            ScenarioNodeSpec(name="x", rate_bps=1000.0, harvester="fusion")

    def test_invalid_battery_scale_rejected(self):
        with pytest.raises(ScenarioError, match="battery scale"):
            ScenarioNodeSpec(name="x", rate_bps=1000.0, battery="cr2032",
                             battery_scale=0.0)

    def test_invalid_initial_charge_rejected(self):
        with pytest.raises(ScenarioError, match="initial charge"):
            ScenarioNodeSpec(name="x", rate_bps=1000.0,
                             initial_charge_fraction=1.5)

    def test_invalid_low_battery_fraction_rejected(self):
        with pytest.raises(ScenarioError, match="low-battery"):
            ScenarioNodeSpec(name="x", rate_bps=1000.0,
                             low_battery_fraction=1.0)

    def test_unknown_environment_rejected(self):
        with pytest.raises(ScenarioError, match="unknown environment"):
            ScenarioSpec(
                name="x", description="", duration_seconds=1.0,
                environment="indoors-ish",
                nodes=(ScenarioNodeSpec(name="n", rate_bps=1000.0),))

    def test_invalid_energy_interval_rejected(self):
        with pytest.raises(ScenarioError, match="energy update interval"):
            ScenarioSpec(
                name="x", description="", duration_seconds=1.0,
                energy_update_interval_seconds=0.0,
                nodes=(ScenarioNodeSpec(name="n", rate_bps=1000.0),))


class TestFactories:
    def test_every_registered_battery_instantiates(self):
        for key in BATTERY_FACTORIES:
            assert battery_for(key).capacity_mah > 0

    def test_battery_scale_multiplies_capacity(self):
        full = battery_for("cr2032")
        half = battery_for("cr2032", 0.5)
        assert half.capacity_mah == pytest.approx(full.capacity_mah / 2.0)

    def test_every_registered_harvester_instantiates(self):
        for key in HARVESTER_FACTORIES:
            assert harvester_for(key).power_watts() >= 0.0

    def test_every_environment_resolves(self):
        for key in ENVIRONMENTS:
            assert environment_for(key) is ENVIRONMENTS[key]


class TestGalleryLifetimeScenarios:
    def test_new_scenarios_registered(self):
        names = scenario_names()
        assert "harvester_patch" in names
        assert "week_wear" in names

    def test_week_wear_brownout_and_adaptation(self):
        """Acceptance: the dense finite-battery hour shows >= 1 brownout."""
        result = get_scenario("week_wear").run(seed=0)
        sim = result.simulated
        assert sim.dead_node_count >= 1
        assert "audio_pendant" in sim.per_node_first_death_seconds
        assert math.isfinite(sim.first_death_seconds)
        kinds = {event.kind for event in sim.energy_events}
        assert kinds == {"brownout", "low_battery"}
        row = result.row()
        assert row["dead_nodes"] >= 1
        assert row["min_soc"] == 0.0

    def test_harvester_patch_is_perpetual(self):
        result = get_scenario("harvester_patch").run(seed=0)
        sim = result.simulated
        assert sim.dead_node_count == 0
        assert sim.harvested_joules > 0.0
        # The PV-harvested patch ends the hour at full charge.
        assert sim.per_node_state_of_charge["ecg_patch"] == pytest.approx(1.0)

    def test_environment_override_changes_harvest(self):
        spec = get_scenario("harvester_patch")
        sunny = dataclasses.replace(spec, environment="outdoor_sun",
                                    duration_seconds=60.0)
        indoor = dataclasses.replace(spec, duration_seconds=60.0)
        assert (sunny.run(seed=0).simulated.harvested_joules
                > indoor.run(seed=0).simulated.harvested_joules)

    def test_default_scenarios_report_no_lifetime_columns(self):
        row = get_scenario("clinical_ward").run(
            seed=0, duration_seconds=5.0).row()
        assert "min_soc" not in row
        assert "dead_nodes" not in row


class TestBuildWiring:
    def test_battery_nodes_reach_the_simulator(self):
        spec = ScenarioSpec(
            name="wired", description="", duration_seconds=10.0,
            nodes=(ScenarioNodeSpec(name="n", rate_bps=1000.0,
                                    battery="cr2032", battery_scale=0.5,
                                    initial_charge_fraction=0.8,
                                    harvester="teg"),),
        )
        assert spec.has_energy_runtime
        simulator = spec.build(seed=0)
        node = simulator.nodes["n"]
        assert node.energy is not None
        assert node.energy.battery.spec.capacity_mah == pytest.approx(
            battery_for("cr2032").capacity_mah / 2.0)
        assert node.energy.state_of_charge_fraction == pytest.approx(0.8)
        assert node.energy.harvester is not None

    def test_batteryless_spec_has_no_energy_runtime(self):
        assert not get_scenario("sleep_night").has_energy_runtime


class TestHarvesterOnlyReporting:
    def test_harvester_without_battery_reports_income(self):
        spec = ScenarioSpec(
            name="solar_only", description="", duration_seconds=60.0,
            nodes=(ScenarioNodeSpec(name="n", rate_bps=1000.0,
                                    harvester="indoor_pv"),),
        )
        result = spec.run(seed=0)
        row = result.row()
        assert row["harvested_j"] > 0.0
        assert "min_soc" not in row  # nothing to deplete or kill
        assert "dead_nodes" not in row
        assert result.simulated.per_node_state_of_charge == {}
