"""Doc freshness: fenced CLI commands parse, relative links resolve.

Documentation drifts silently: a renamed subcommand or a moved doc file
breaks a README example without failing anything. These checks make the
drift loud by dry-running every documented ``repro ...`` invocation
against the real argparse tree (``cli.build_parser()`` — parse only,
nothing executes) and resolving every relative markdown link against
the working tree.

Setting ``REPRO_DOCS_SYNTHETIC_BREAK=1`` injects one deliberately
broken command and one dangling link, proving in CI that the checks
actually fail on drift (mirroring ``REPRO_BENCH_SYNTHETIC_SLOWDOWN``
for the benchmark gate).
"""

from __future__ import annotations

import os
import re
import shlex
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO_ROOT = Path(__file__).resolve().parents[2]

DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")])

_FENCE = re.compile(r"```(\w*)\n(.*?)```", re.DOTALL)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_SYNTHETIC_BREAK = bool(os.environ.get("REPRO_DOCS_SYNTHETIC_BREAK"))


def fenced_blocks(path: Path):
    for match in _FENCE.finditer(path.read_text(encoding="utf-8")):
        yield match.group(1), match.group(2)


def repro_commands(path: Path) -> list[str]:
    """Every ``repro ...`` invocation fenced in *path*, normalised.

    Handles ``PYTHONPATH=src python -m repro`` spellings, trailing
    ``# comment`` annotations and backslash line continuations.
    """
    commands = []
    for language, body in fenced_blocks(path):
        if language not in ("", "console", "bash", "sh", "shell"):
            continue
        logical = body.replace("\\\n", " ").splitlines()
        for line in logical:
            line = line.strip()
            if line.startswith("$ "):
                line = line[2:]
            line = re.sub(r"^PYTHONPATH=\S+\s+", "", line)
            line = re.sub(r"^python\s+-m\s+repro\b", "repro", line)
            if not re.match(r"^repro(\s|$)", line):
                continue
            line = re.sub(r"\s+#.*$", "", line)
            commands.append(line)
    return commands


def doc_commands() -> list[tuple[str, str]]:
    found = [(path.relative_to(REPO_ROOT).as_posix(), command)
             for path in DOC_FILES
             for command in repro_commands(path)]
    if _SYNTHETIC_BREAK:
        found.append(("REPRO_DOCS_SYNTHETIC_BREAK",
                      "repro frobnicate --no-such-flag"))
    return found


def doc_links() -> list[tuple[str, str]]:
    found = []
    for path in DOC_FILES:
        text = path.read_text(encoding="utf-8")
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            found.append((path.relative_to(REPO_ROOT).as_posix(), target))
    if _SYNTHETIC_BREAK:
        found.append(("REPRO_DOCS_SYNTHETIC_BREAK",
                      "docs/no-such-document.md"))
    return found


def test_docs_actually_contain_repro_commands():
    # The checks below are vacuous if extraction silently breaks.
    commands = doc_commands()
    assert len(commands) >= 15
    assert any(source == "README.md" for source, _ in commands)
    assert any(source.startswith("docs/") for source, _ in commands)


@pytest.mark.parametrize(("source", "command"),
                         doc_commands(),
                         ids=lambda value: str(value))
def test_fenced_repro_command_parses(source, command):
    parser = build_parser()
    argv = shlex.split(command)[1:]
    try:
        parser.parse_args(argv)
    except SystemExit:
        pytest.fail(
            f"{source}: documented command does not parse against the "
            f"real CLI: `{command}` (drift, or "
            f"REPRO_DOCS_SYNTHETIC_BREAK is set)")


@pytest.mark.parametrize(("source", "target"),
                         doc_links(),
                         ids=lambda value: str(value))
def test_relative_markdown_link_resolves(source, target):
    base = REPO_ROOT if source == "REPRO_DOCS_SYNTHETIC_BREAK" \
        else (REPO_ROOT / source).parent
    resolved = (base / target.split("#", 1)[0]).resolve()
    if not resolved.exists():
        pytest.fail(
            f"{source}: relative link `{target}` does not resolve "
            f"(drift, or REPRO_DOCS_SYNTHETIC_BREAK is set)")
