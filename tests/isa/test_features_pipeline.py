"""Tests for repro.isa.features and repro.isa.pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.isa.features import (
    FeatureSummary,
    audio_feature_summary,
    detect_r_peaks,
    ecg_feature_summary,
    heart_rate_from_peaks,
    imu_feature_summary,
    imu_window_features,
    log_mel_energies,
)
from repro.isa.pipeline import (
    ISAPipeline,
    ISAStage,
    audio_feature_pipeline,
    biopotential_delta_pipeline,
    isa_compute_energy_joules,
    mjpeg_video_pipeline,
)
from repro.sensors.audio import AudioGenerator
from repro.sensors.biopotential import ECGGenerator
from repro.sensors.imu import IMUGenerator


class TestRPeakDetection:
    def test_detects_peaks_close_to_ground_truth(self):
        generator = ECGGenerator(heart_rate_bpm=72.0, noise_mv=0.01,
                                 heart_rate_variability=0.01)
        signal = generator.generate(30.0, rng=0)
        truth = generator.r_peak_times(30.0, rng=0)
        peaks = detect_r_peaks(signal, generator.sample_rate_hz)
        assert abs(len(peaks) - len(truth)) <= 2

    def test_heart_rate_estimate_matches(self):
        generator = ECGGenerator(heart_rate_bpm=65.0, noise_mv=0.01,
                                 heart_rate_variability=0.01)
        signal = generator.generate(30.0, rng=1)
        peaks = detect_r_peaks(signal, generator.sample_rate_hz)
        assert heart_rate_from_peaks(peaks, generator.sample_rate_hz) \
            == pytest.approx(65.0, abs=5.0)

    def test_too_short_signal_rejected(self):
        with pytest.raises(ConfigurationError):
            detect_r_peaks(np.zeros(10), 250.0)

    def test_heart_rate_needs_two_peaks(self):
        with pytest.raises(ConfigurationError):
            heart_rate_from_peaks(np.array([5]), 250.0)

    def test_ecg_feature_summary_reduction(self):
        summary = ecg_feature_summary(n_samples=250 * 60, n_peaks=70)
        assert summary.reduction_ratio > 100.0


class TestLogMel:
    def test_shape(self):
        audio = AudioGenerator().generate(1.0, rng=2)
        features = log_mel_energies(audio, 16000.0, n_mels=40)
        assert features.shape[1] == 40
        assert features.shape[0] > 90

    def test_features_finite(self):
        audio = AudioGenerator().generate(1.0, rng=3)
        features = log_mel_energies(audio, 16000.0)
        assert np.all(np.isfinite(features))

    def test_reduction_ratio(self):
        summary = audio_feature_summary(n_samples=16000, n_frames=98, n_mels=40)
        assert summary.reduction_ratio > 5.0

    def test_too_short_signal_rejected(self):
        with pytest.raises(ConfigurationError):
            log_mel_energies(np.zeros(10), 16000.0)

    def test_stereo_rejected(self):
        with pytest.raises(ConfigurationError):
            log_mel_energies(np.zeros((2, 16000)), 16000.0)


class TestIMUFeatures:
    def test_feature_vector_length(self):
        window = IMUGenerator().generate(2.0, "walking", rng=4)
        features = imu_window_features(window)
        assert features.shape == (36,)

    def test_features_distinguish_activities(self):
        generator = IMUGenerator()
        rest = imu_window_features(generator.generate(2.0, "rest", rng=5))
        run = imu_window_features(generator.generate(2.0, "running", rng=6))
        # Standard deviation block (features 6..11) separates rest from running.
        assert np.sum(run[6:12]) > np.sum(rest[6:12])

    def test_reduction_ratio(self):
        summary = imu_feature_summary(n_axes=6, n_samples=200)
        assert summary.reduction_ratio > 2.0

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            imu_window_features(np.zeros((6, 1)))


class TestFeatureSummary:
    def test_infinite_reduction_when_output_empty(self):
        assert FeatureSummary("x", 100.0, 0.0).reduction_ratio == float("inf")

    def test_negative_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            FeatureSummary("x", -1.0, 0.0)


class TestISAPipeline:
    def test_stage_validation(self):
        with pytest.raises(ConfigurationError):
            ISAStage(name="bad", rate_reduction=0.0)
        with pytest.raises(ConfigurationError):
            ISAStage(name="bad", rate_reduction=1.5)

    def test_output_rate_composes_stages(self):
        pipeline = ISAPipeline(stages=[
            ISAStage(name="a", rate_reduction=0.5),
            ISAStage(name="b", rate_reduction=0.25),
        ])
        assert pipeline.output_rate_bps(1000.0) == pytest.approx(125.0)
        assert pipeline.total_rate_reduction() == pytest.approx(0.125)

    def test_compute_power_counts_every_stage(self):
        pipeline = ISAPipeline(stages=[
            ISAStage(name="a", rate_reduction=0.5, ops_per_input_bit=1.0),
            ISAStage(name="b", rate_reduction=0.5, ops_per_input_bit=1.0),
        ])
        # Stage a sees 1000 bit/s, stage b sees 500 bit/s; 1 pJ/op each.
        assert pipeline.compute_power_watts(1000.0) == pytest.approx(1.5e-9)

    def test_empty_pipeline_is_identity(self):
        pipeline = ISAPipeline()
        assert pipeline.output_rate_bps(12345.0) == 12345.0
        assert pipeline.compute_power_watts(12345.0) == 0.0

    def test_describe_keys(self):
        description = audio_feature_pipeline().describe(256_000.0)
        for key in ("input_rate_bps", "output_rate_bps", "compute_power_uw"):
            assert key in description

    def test_compute_energy_helper(self):
        assert isa_compute_energy_joules(1e6) == pytest.approx(1e-6)
        with pytest.raises(ConfigurationError):
            isa_compute_energy_joules(-1.0)


class TestBuiltInPipelines:
    def test_mjpeg_pipeline_reduction_about_ten_to_one(self):
        pipeline = mjpeg_video_pipeline(quality=50)
        assert 5.0 <= 1.0 / pipeline.total_rate_reduction() <= 20.0

    def test_audio_pipeline_reduces_to_features(self):
        pipeline = audio_feature_pipeline()
        out = pipeline.output_rate_bps(units.kilobit_per_second(256.0))
        assert out == pytest.approx(units.kilobit_per_second(32.0))

    def test_biopotential_pipeline_power_is_microwatt_class(self):
        """The paper's assumption: ISA compute is negligible (uW class)."""
        pipeline = biopotential_delta_pipeline()
        power = pipeline.compute_power_watts(units.kilobit_per_second(3.0))
        assert power < units.microwatt(1.0)

    def test_mjpeg_pipeline_power_scales_with_video_rate(self):
        pipeline = mjpeg_video_pipeline()
        qvga = pipeline.compute_power_watts(9.2e6)
        hd = pipeline.compute_power_watts(221e6)
        assert hd > qvga
        # Even for 720p the MJPEG ISA block stays in the milliwatt class.
        assert hd < units.milliwatt(5.0)

    def test_invalid_quality_rejected(self):
        with pytest.raises(ConfigurationError):
            mjpeg_video_pipeline(quality=0)
