"""Tests for repro.isa.compression."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ConfigurationError
from repro.isa.compression import (
    CompressionResult,
    MJPEGLikeCodec,
    delta_decode,
    delta_encode,
    delta_encoded_bits,
    dequantize_signal,
    downsample,
    quantize_signal,
    run_length_decode,
    run_length_encode,
)
from repro.sensors.video import VideoGenerator


class TestCompressionResult:
    def test_ratio_and_fraction(self):
        result = CompressionResult(original_bits=1000.0, compressed_bits=100.0)
        assert result.compression_ratio == pytest.approx(10.0)
        assert result.rate_fraction == pytest.approx(0.1)

    def test_zero_compressed_is_infinite_ratio(self):
        result = CompressionResult(original_bits=10.0, compressed_bits=0.0)
        assert result.compression_ratio == float("inf")

    def test_negative_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            CompressionResult(original_bits=-1.0, compressed_bits=0.0)


class TestDeltaCoding:
    def test_round_trip(self):
        samples = np.array([5.0, 7.0, 6.5, 6.5, 10.0])
        assert np.allclose(delta_decode(delta_encode(samples)), samples)

    def test_empty_input(self):
        assert delta_encode(np.array([])).size == 0
        assert delta_decode(np.array([])).size == 0

    def test_2d_input_rejected(self):
        with pytest.raises(ConfigurationError):
            delta_encode(np.zeros((2, 2)))

    def test_delta_bits_smaller_for_smooth_signals(self):
        smooth = np.cumsum(np.ones(1000, dtype=np.int64))
        result = delta_encoded_bits(smooth, sample_bits=16)
        assert result.compression_ratio > 3.0

    def test_delta_bits_do_not_help_white_noise_much(self):
        rng = np.random.default_rng(0)
        noisy = rng.integers(-30000, 30000, size=1000)
        result = delta_encoded_bits(noisy, sample_bits=16)
        assert result.compression_ratio < 2.0

    @given(hnp.arrays(dtype=np.float64, shape=st.integers(1, 200),
                      elements=st.floats(-1e6, 1e6)))
    def test_round_trip_property(self, samples):
        assert np.allclose(delta_decode(delta_encode(samples)), samples, atol=1e-6)


class TestRunLengthCoding:
    def test_round_trip(self):
        values = np.array([1, 1, 1, 2, 2, 3, 1, 1])
        assert np.array_equal(run_length_decode(run_length_encode(values)), values)

    def test_constant_signal_compresses_to_one_run(self):
        runs = run_length_encode(np.zeros(1000))
        assert len(runs) == 1
        assert runs[0][1] == 1000

    def test_empty(self):
        assert run_length_encode(np.array([])) == []
        assert run_length_decode([]).size == 0

    def test_invalid_run_length_rejected(self):
        with pytest.raises(ConfigurationError):
            run_length_decode([(1.0, 0)])


class TestDownsampleAndQuantize:
    def test_downsample_averages(self):
        samples = np.array([0.0, 2.0, 4.0, 6.0])
        assert np.allclose(downsample(samples, 2), [1.0, 5.0])

    def test_downsample_factor_one_is_identity(self):
        samples = np.arange(10.0)
        assert np.allclose(downsample(samples, 1), samples)

    def test_downsample_invalid_factor(self):
        with pytest.raises(ConfigurationError):
            downsample(np.arange(4.0), 0)

    def test_quantize_round_trip_error_bounded(self):
        rng = np.random.default_rng(1)
        signal = rng.normal(size=1000)
        codes, scale, offset = quantize_signal(signal, bits=10)
        reconstructed = dequantize_signal(codes, scale, offset)
        assert np.max(np.abs(signal - reconstructed)) <= scale

    def test_more_bits_less_error(self):
        rng = np.random.default_rng(2)
        signal = rng.normal(size=500)
        def rmse(bits):
            codes, scale, offset = quantize_signal(signal, bits=bits)
            return np.sqrt(np.mean((dequantize_signal(codes, scale, offset) - signal) ** 2))
        assert rmse(12) < rmse(6)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            quantize_signal(np.arange(4.0), bits=0)


class TestMJPEGLikeCodec:
    def test_round_trip_shape(self):
        codec = MJPEGLikeCodec(quality=75)
        frame = VideoGenerator(width=64, height=48).generate(0.2, rng=0)[0]
        coefficients, shape = codec.encode(frame)
        reconstructed = codec.decode(coefficients, shape)
        assert reconstructed.shape == frame.shape

    def test_compression_ratio_meaningful(self):
        """MJPEG-class intra coding: roughly 5-30x on structured frames."""
        codec = MJPEGLikeCodec(quality=50)
        frame = VideoGenerator(width=160, height=120).generate(0.1, rng=1)[0]
        result = codec.compress_frame(frame)
        assert 3.0 <= result.compression_ratio <= 60.0

    def test_higher_quality_larger_and_more_accurate(self):
        frame = VideoGenerator(width=96, height=96).generate(0.1, rng=2)[0]
        low = MJPEGLikeCodec(quality=20).compress_frame(frame)
        high = MJPEGLikeCodec(quality=90).compress_frame(frame)
        assert high.compressed_bits > low.compressed_bits
        assert high.reconstruction_rmse < low.reconstruction_rmse

    def test_reconstruction_error_reasonable(self):
        frame = VideoGenerator(width=64, height=64).generate(0.1, rng=3)[0]
        result = MJPEGLikeCodec(quality=80).compress_frame(frame)
        assert result.reconstruction_rmse < 20.0

    def test_video_aggregation(self):
        frames = VideoGenerator(width=48, height=32, frame_rate_hz=5.0).generate(1.0, rng=4)
        result = MJPEGLikeCodec().compress_video(frames)
        assert result.original_bits == pytest.approx(frames.size * 8)
        assert result.compressed_bits < result.original_bits

    def test_non_multiple_of_block_size_supported(self):
        codec = MJPEGLikeCodec()
        frame = VideoGenerator(width=50, height=30).generate(0.1, rng=5)[0]
        result = codec.compress_frame(frame)
        assert result.compression_ratio > 1.0

    def test_invalid_quality_rejected(self):
        with pytest.raises(ConfigurationError):
            MJPEGLikeCodec(quality=0)

    def test_non_2d_frame_rejected(self):
        with pytest.raises(ConfigurationError):
            MJPEGLikeCodec().encode(np.zeros((2, 2, 3)))
