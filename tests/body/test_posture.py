"""Tests for repro.body.posture (posture-dependent EQS channel variation)."""

from __future__ import annotations

import pytest

from repro.body.posture import (
    GROUND_COUPLING_FACTOR,
    Posture,
    channel_for_posture,
    gain_variation_db,
    worst_case_posture,
)
from repro.comm.channel import EQSChannelModel
from repro.comm.eqs_hbc import WiRLink, wir_commercial
from repro import units


class TestPostureChannel:
    def test_every_posture_has_a_coupling_factor(self):
        for posture in Posture:
            assert posture in GROUND_COUPLING_FACTOR
            assert GROUND_COUPLING_FACTOR[posture] > 0.0

    def test_base_model_untouched(self):
        base = EQSChannelModel()
        adjusted = channel_for_posture(Posture.LYING_ON_BED, base)
        assert adjusted is not base
        assert base.c_body_ground == EQSChannelModel().c_body_ground

    def test_weaker_ground_coupling_gives_higher_gain(self):
        """Lying on an insulating mattress improves the capacitive return path."""
        standing = channel_for_posture(Posture.STANDING_BAREFOOT)
        lying = channel_for_posture(Posture.LYING_ON_BED)
        frequency = units.megahertz(20.0)
        assert lying.channel_gain_db(1.5, frequency) \
            > standing.channel_gain_db(1.5, frequency)

    def test_gain_variation_is_a_few_db(self):
        """Posture moves the channel by single-digit dB, not tens of dB."""
        variation = gain_variation_db()
        assert 1.0 <= variation <= 10.0

    def test_worst_case_is_the_strongest_ground_coupling(self):
        assert worst_case_posture() is Posture.STANDING_BAREFOOT

    def test_wir_link_budget_closes_in_every_posture(self):
        """The Wi-R link keeps positive margin finger-to-toe in all postures."""
        for posture in Posture:
            link = WiRLink(
                transceiver=wir_commercial(),
                channel=channel_for_posture(posture),
                channel_length_metres=1.8,
            )
            assert link.link_margin_db() > 0.0

    def test_negative_distance_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            gain_variation_db(distance_metres=-1.0)
