"""Tests for repro.body (landmarks and body graph)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.body.landmarks import LANDMARK_DESCRIPTIONS, BodyLandmark
from repro.body.model import BodyModel, default_adult_body
from repro.errors import PlacementError


class TestLandmarks:
    def test_every_landmark_has_description(self):
        for landmark in BodyLandmark:
            assert landmark in LANDMARK_DESCRIPTIONS
            assert LANDMARK_DESCRIPTIONS[landmark]

    def test_paper_placements_exist(self):
        """The placements named in the paper's Section I are all modelled."""
        named = [
            BodyLandmark.LEFT_EAR,      # sound output near the ear
            BodyLandmark.RIGHT_WRIST,   # controllers near fingers or wrist
            BodyLandmark.CHEST,         # cameras on the face or chest
            BodyLandmark.STERNUM,       # ECG near the chest
            BodyLandmark.LEFT_FOREARM,  # EMG on limbs
            BodyLandmark.RIGHT_THIGH,   # IMU on limbs
        ]
        body = default_adult_body()
        for landmark in named:
            assert landmark in body.landmarks()


class TestBodyGraph:
    def test_graph_is_connected(self, body):
        import networkx as nx

        assert nx.is_connected(body.graph)

    def test_all_landmarks_in_graph(self, body):
        assert set(body.landmarks()) == set(BodyLandmark)

    def test_channel_length_symmetric(self, body):
        a = body.channel_length(BodyLandmark.LEFT_WRIST, BodyLandmark.RIGHT_EAR)
        b = body.channel_length(BodyLandmark.RIGHT_EAR, BodyLandmark.LEFT_WRIST)
        assert a == pytest.approx(b)

    def test_channel_length_zero_for_same_landmark(self, body):
        assert body.channel_length(BodyLandmark.CHEST, BodyLandmark.CHEST) == 0.0

    def test_max_channel_length_matches_paper_range(self, body):
        """Section III-B: IoB channel lengths are typically 1-2 m."""
        assert 1.0 <= body.max_channel_length() <= 2.5

    def test_wrist_to_pocket_is_about_a_metre(self, body):
        length = body.channel_length(
            BodyLandmark.RIGHT_WRIST, BodyLandmark.LEFT_POCKET
        )
        assert 0.5 <= length <= 1.5

    def test_ear_to_ear_shorter_than_hand_to_foot(self, body):
        ears = body.channel_length(BodyLandmark.LEFT_EAR, BodyLandmark.RIGHT_EAR)
        extremities = body.channel_length(
            BodyLandmark.LEFT_INDEX_FINGER, BodyLandmark.RIGHT_FOOT
        )
        assert ears < extremities

    def test_channel_path_endpoints(self, body):
        path = body.channel_path(BodyLandmark.LEFT_EAR, BodyLandmark.RIGHT_WRIST)
        assert path[0] == BodyLandmark.LEFT_EAR
        assert path[-1] == BodyLandmark.RIGHT_WRIST

    def test_path_length_consistent_with_channel_length(self, body):
        path = body.channel_path(BodyLandmark.FOREHEAD, BodyLandmark.LEFT_ANKLE)
        total = sum(
            body.segment_length(path[i], path[i + 1]) for i in range(len(path) - 1)
        )
        assert total == pytest.approx(
            body.channel_length(BodyLandmark.FOREHEAD, BodyLandmark.LEFT_ANKLE)
        )

    def test_segment_length_requires_direct_edge(self, body):
        with pytest.raises(PlacementError):
            body.segment_length(BodyLandmark.LEFT_EAR, BodyLandmark.RIGHT_FOOT)

    def test_lengths_scale_with_height(self):
        short = BodyModel(height_metres=1.5)
        tall = BodyModel(height_metres=2.0)
        ratio = (
            tall.channel_length(BodyLandmark.HEAD_CROWN, BodyLandmark.LEFT_FOOT)
            / short.channel_length(BodyLandmark.HEAD_CROWN, BodyLandmark.LEFT_FOOT)
        )
        assert ratio == pytest.approx(2.0 / 1.5)

    def test_invalid_height_rejected(self):
        with pytest.raises(PlacementError):
            BodyModel(height_metres=0.0)

    @given(st.sampled_from(list(BodyLandmark)), st.sampled_from(list(BodyLandmark)),
           st.sampled_from(list(BodyLandmark)))
    def test_triangle_inequality(self, a, b, c):
        body = default_adult_body()
        direct = body.channel_length(a, c)
        detour = body.channel_length(a, b) + body.channel_length(b, c)
        assert direct <= detour + 1e-9


class TestPlacement:
    def test_place_and_lookup(self, body):
        body.place("smartwatch", BodyLandmark.LEFT_WRIST)
        placement = body.placement("smartwatch")
        assert placement.landmark == BodyLandmark.LEFT_WRIST
        assert placement.device_name == "smartwatch"

    def test_device_distance(self, body):
        body.place("watch", BodyLandmark.LEFT_WRIST)
        body.place("phone", BodyLandmark.LEFT_POCKET)
        distance = body.device_distance("watch", "phone")
        assert distance == pytest.approx(
            body.channel_length(BodyLandmark.LEFT_WRIST, BodyLandmark.LEFT_POCKET)
        )

    def test_replacing_a_device_updates_location(self, body):
        body.place("ring", BodyLandmark.LEFT_INDEX_FINGER)
        body.place("ring", BodyLandmark.RIGHT_INDEX_FINGER)
        assert body.placement("ring").landmark == BodyLandmark.RIGHT_INDEX_FINGER
        assert len(body.placements()) == 1

    def test_unplaced_device_raises(self, body):
        with pytest.raises(PlacementError):
            body.placement("ghost")

    def test_placements_keep_insertion_order(self, body):
        body.place("a", BodyLandmark.CHEST)
        body.place("b", BodyLandmark.NECK)
        names = [placement.device_name for placement in body.placements()]
        assert names == ["a", "b"]
