"""Tests for repro.analysis.survey and repro.analysis.reporting."""

from __future__ import annotations

import pytest

from repro import units
from repro.analysis.reporting import format_quantity, format_table, markdown_table
from repro.analysis.survey import (
    WEARABLE_SURVEY,
    DeviceCategory,
    devices_by_category,
    estimate_battery_life_seconds,
    survey_rows,
)
from repro.core.battery_life import LifeBand, classify_battery_life
from repro.errors import ConfigurationError, SurveyError


class TestWearableSurvey:
    def test_survey_covers_both_columns_of_fig2(self):
        pre = devices_by_category(DeviceCategory.PRE_2024)
        ai = devices_by_category(DeviceCategory.WEARABLE_AI_2024)
        assert len(pre) >= 5
        assert len(ai) >= 4

    def test_fig2_device_classes_present(self):
        names = " ".join(device.name for device in WEARABLE_SURVEY).lower()
        for keyword in ("ring", "fitness", "earbud", "smartwatch", "smartphone",
                        "pin", "pocket", "necklace", "glasses", "headset"):
            assert keyword in names

    def test_modelled_band_matches_paper_claim_for_every_device(self):
        for row in survey_rows():
            assert row["matches_claim"], row["device"]

    def test_smart_ring_all_week(self):
        ring = next(d for d in WEARABLE_SURVEY if d.name == "smart ring")
        band = classify_battery_life(estimate_battery_life_seconds(ring))
        assert band is LifeBand.ALL_WEEK

    def test_smartphone_under_ten_hours(self):
        phone = next(d for d in WEARABLE_SURVEY if d.name == "smartphone")
        assert estimate_battery_life_seconds(phone) < units.hours(10.0)

    def test_mixed_reality_headset_three_to_five_hours(self):
        headset = next(d for d in WEARABLE_SURVEY if "headset" in d.name)
        life = estimate_battery_life_seconds(headset)
        assert units.hours(3.0) <= life <= units.hours(5.0)

    def test_every_ai_device_is_all_day_or_less(self):
        """Fig. 2's point: the 2024 AI wave is all-day class at best."""
        for device in devices_by_category(DeviceCategory.WEARABLE_AI_2024):
            band = classify_battery_life(estimate_battery_life_seconds(device))
            assert band in (LifeBand.SUB_DAY, LifeBand.ALL_DAY)

    def test_invalid_device_rejected(self):
        from repro.analysis.survey import WearableDevice

        with pytest.raises(SurveyError):
            WearableDevice("bad", DeviceCategory.PRE_2024, 0.0, 3.7, 1.0,
                           LifeBand.ALL_DAY)


class TestReporting:
    def test_format_quantity_styles(self):
        assert format_quantity(True) == "yes"
        assert format_quantity(False) == "no"
        assert format_quantity(0.0) == "0"
        assert format_quantity(float("inf")) == "inf"
        assert "e" in format_quantity(1.23e-7)
        assert format_quantity("text") == "text"

    def test_format_table_alignment_and_title(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        table = format_table(rows, title="demo")
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 2 + 1 + len(rows)

    def test_format_table_column_subset(self):
        rows = [{"a": 1, "b": 2}]
        table = format_table(rows, columns=["b"])
        assert "a" not in table.splitlines()[0]

    def test_markdown_table_shape(self):
        rows = [{"x": 1.0, "y": "foo"}]
        markdown = markdown_table(rows)
        lines = markdown.splitlines()
        assert lines[0].startswith("| x | y |")
        assert set(lines[1].replace("|", "").split()) == {"---"}

    def test_empty_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table([])
        with pytest.raises(ConfigurationError):
            markdown_table([])

    def test_experiment_rows_render(self):
        """Smoke test: real experiment rows pass through the formatter."""
        table = format_table(survey_rows())
        assert "smartphone" in table
