"""Tests for the synthetic signal generators (ECG, EMG, EEG, IMU, audio, video, PPG)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sensors.audio import AudioGenerator
from repro.sensors.biopotential import ECGGenerator, EEGGenerator, EMGGenerator
from repro.sensors.imu import ACTIVITY_PROFILES, IMUGenerator
from repro.sensors.ppg import PPGGenerator
from repro.sensors.video import VideoGenerator


class TestECGGenerator:
    def test_length_matches_duration(self, rng):
        generator = ECGGenerator(sample_rate_hz=250.0)
        signal = generator.generate(10.0, rng)
        assert signal.shape == (2500,)

    def test_r_peak_count_matches_heart_rate(self, rng):
        generator = ECGGenerator(heart_rate_bpm=60.0, heart_rate_variability=0.0)
        peaks = generator.r_peak_times(60.0, rng)
        assert 58 <= len(peaks) <= 61

    def test_r_peaks_dominate_amplitude(self, rng):
        generator = ECGGenerator(noise_mv=0.0, baseline_wander_mv=0.0)
        signal = generator.generate(10.0, rng)
        assert np.max(signal) == pytest.approx(1.0, abs=0.3)

    def test_deterministic_with_seed(self):
        generator = ECGGenerator()
        first = generator.generate(5.0, rng=42)
        second = generator.generate(5.0, rng=42)
        assert np.array_equal(first, second)

    def test_data_rate(self):
        assert ECGGenerator(sample_rate_hz=250.0).data_rate_bps(12) == pytest.approx(3000.0)

    def test_invalid_duration_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            ECGGenerator().generate(0.0, rng)

    def test_invalid_hrv_rejected(self):
        with pytest.raises(ConfigurationError):
            ECGGenerator(heart_rate_variability=0.9)


class TestEMGGenerator:
    def test_shape_channels_by_samples(self, rng):
        generator = EMGGenerator(channels=4, sample_rate_hz=1000.0)
        signal = generator.generate(2.0, rng)
        assert signal.shape == (4, 2000)

    def test_bursts_raise_signal_energy(self, rng):
        quiet = EMGGenerator(burst_rate_hz=1e-6).generate(5.0, rng)
        busy = EMGGenerator(burst_rate_hz=3.0).generate(5.0, np.random.default_rng(7))
        assert np.std(busy) > np.std(quiet)

    def test_data_rate_scales_with_channels(self):
        assert EMGGenerator(channels=8).data_rate_bps() == pytest.approx(
            2.0 * EMGGenerator(channels=4).data_rate_bps()
        )


class TestEEGGenerator:
    def test_shape(self, rng):
        signal = EEGGenerator(channels=8, sample_rate_hz=256.0).generate(4.0, rng)
        assert signal.shape == (8, 1024)

    def test_alpha_power_visible_in_spectrum(self, rng):
        generator = EEGGenerator(alpha_power=5.0, noise_uv=0.5)
        signal = generator.generate(8.0, rng)[0]
        spectrum = np.abs(np.fft.rfft(signal - signal.mean()))
        freqs = np.fft.rfftfreq(signal.size, 1.0 / generator.sample_rate_hz)
        alpha_band = spectrum[(freqs >= 8) & (freqs <= 12)].max()
        beta_band = spectrum[(freqs >= 25) & (freqs <= 35)].max()
        assert alpha_band > beta_band

    def test_invalid_channels_rejected(self):
        with pytest.raises(ConfigurationError):
            EEGGenerator(channels=0)


class TestIMUGenerator:
    def test_shape_six_axes(self, rng):
        trace = IMUGenerator(sample_rate_hz=100.0).generate(3.0, "walking", rng)
        assert trace.shape == (6, 300)

    def test_gravity_on_z_axis_at_rest(self, rng):
        trace = IMUGenerator().generate(5.0, "rest", rng)
        assert np.mean(trace[2]) == pytest.approx(9.81, abs=0.2)

    def test_running_more_energetic_than_walking(self, rng):
        generator = IMUGenerator()
        walking = generator.generate(5.0, "walking", rng)
        running = generator.generate(5.0, "running", np.random.default_rng(5))
        assert np.std(running[0]) > np.std(walking[0])

    def test_unknown_activity_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            IMUGenerator().generate(1.0, "flying", rng)

    def test_labelled_windows_cover_all_classes(self, rng):
        features, labels, names = IMUGenerator().generate_labelled_windows(
            1.0, windows_per_class=2, rng=rng
        )
        assert features.shape[0] == 2 * len(ACTIVITY_PROFILES)
        assert set(labels.tolist()) == set(range(len(names)))

    def test_data_rate(self):
        assert IMUGenerator(sample_rate_hz=100.0).data_rate_bps(16) == pytest.approx(9600.0)


class TestAudioGenerator:
    def test_output_in_unit_range(self, rng):
        signal = AudioGenerator().generate(2.0, rng)
        assert np.all(signal <= 1.0) and np.all(signal >= -1.0)

    def test_length(self, rng):
        signal = AudioGenerator(sample_rate_hz=16000.0).generate(1.5, rng)
        assert signal.shape == (24000,)

    def test_voice_activity_detects_utterances(self):
        generator = AudioGenerator(utterance_rate_hz=1.0, noise_level=0.001)
        signal = generator.generate(10.0, rng=3)
        activity = generator.voice_activity(signal)
        assert activity.any()
        assert not activity.all()

    def test_data_rate_is_256_kbps(self):
        assert AudioGenerator(sample_rate_hz=16000.0).data_rate_bps(16) \
            == pytest.approx(256_000.0)


class TestVideoGenerator:
    def test_frame_stack_shape_and_dtype(self, rng):
        generator = VideoGenerator(width=64, height=48, frame_rate_hz=10.0)
        frames = generator.generate(1.0, rng)
        assert frames.shape == (10, 48, 64)
        assert frames.dtype == np.uint8

    def test_consecutive_frames_differ(self, rng):
        frames = VideoGenerator(width=64, height=48).generate(1.0, rng)
        assert not np.array_equal(frames[0], frames[-1])

    def test_frame_bits(self):
        generator = VideoGenerator(width=160, height=120)
        assert generator.frame_bits(8) == pytest.approx(160 * 120 * 8)

    def test_data_rate(self):
        generator = VideoGenerator(width=320, height=240, frame_rate_hz=15.0)
        assert generator.data_rate_bps(8) == pytest.approx(320 * 240 * 8 * 15.0)


class TestPPGGenerator:
    def test_heart_rate_recovered_from_signal(self):
        generator = PPGGenerator(heart_rate_bpm=72.0, noise_level=0.005)
        signal = generator.generate(30.0, rng=11)
        estimate = generator.estimate_heart_rate_bpm(signal)
        assert estimate == pytest.approx(72.0, abs=4.0)

    def test_short_signal_rejected_for_estimation(self):
        generator = PPGGenerator()
        with pytest.raises(ConfigurationError):
            generator.estimate_heart_rate_bpm(np.zeros(10))

    def test_data_rate(self):
        assert PPGGenerator(sample_rate_hz=100.0).data_rate_bps(16, channels=2) \
            == pytest.approx(3200.0)
