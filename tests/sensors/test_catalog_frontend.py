"""Tests for repro.sensors.catalog and repro.sensors.frontend."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import units
from repro.errors import ConfigurationError
from repro.sensors.catalog import (
    MODALITY_CATALOG,
    SensorModality,
    modality_data_rate_bps,
    modality_spec,
)
from repro.sensors.frontend import (
    DEFAULT_SURVEY_POINTS,
    AFESurveyModel,
    AFESurveyPoint,
    sensing_power_watts,
)


class TestModalityCatalog:
    def test_every_modality_present(self):
        for modality in SensorModality:
            assert modality in MODALITY_CATALOG

    def test_raw_rate_formula(self):
        spec = modality_spec(SensorModality.ECG)
        assert spec.raw_data_rate_bps == pytest.approx(250.0 * 12 * 1)

    def test_compressed_rate_below_raw(self):
        for modality in SensorModality:
            spec = modality_spec(modality)
            assert spec.compressed_data_rate_bps <= spec.raw_data_rate_bps

    def test_rate_ordering_matches_physics(self):
        """Temperature << biopotential << audio << video."""
        temperature = modality_data_rate_bps(SensorModality.TEMPERATURE)
        ecg = modality_data_rate_bps(SensorModality.ECG)
        audio = modality_data_rate_bps(SensorModality.AUDIO)
        video = modality_data_rate_bps(SensorModality.VIDEO_720P)
        assert temperature < ecg < audio < video

    def test_audio_rate_is_256_kbps(self):
        assert modality_data_rate_bps(SensorModality.AUDIO) == pytest.approx(
            units.kilobit_per_second(256.0)
        )

    def test_video_720p_raw_rate_hundreds_of_mbps(self):
        rate = modality_data_rate_bps(SensorModality.VIDEO_720P)
        assert rate > units.megabit_per_second(100.0)

    def test_compressed_flag(self):
        raw = modality_data_rate_bps(SensorModality.VIDEO_QVGA)
        compressed = modality_data_rate_bps(SensorModality.VIDEO_QVGA, compressed=True)
        assert compressed == pytest.approx(raw * 0.1)


class TestAFESurveyModel:
    def test_default_fit_has_positive_exponent_below_one(self, survey_model):
        """Sensing power grows sublinearly with data rate (economies of scale)."""
        assert 0.3 < survey_model.exponent < 1.0

    def test_power_increases_with_rate(self, survey_model):
        assert survey_model.sensing_power_watts(1e6) > \
            survey_model.sensing_power_watts(1e3)

    def test_zero_rate_zero_power(self, survey_model):
        assert survey_model.sensing_power_watts(0.0) == 0.0

    def test_negative_rate_rejected(self, survey_model):
        with pytest.raises(ConfigurationError):
            survey_model.sensing_power_watts(-1.0)

    def test_biopotential_prediction_microwatt_class(self, survey_model):
        """Fig. 1: human-inspired sensors sit at 10s-to-100s of microwatts."""
        power = survey_model.sensing_power_watts(units.kilobit_per_second(3.0))
        assert units.microwatt(5.0) <= power <= units.microwatt(500.0)

    def test_video_prediction_tens_of_milliwatts_or_more(self, survey_model):
        power = survey_model.sensing_power_watts(units.megabit_per_second(10.0))
        assert power >= units.milliwatt(5.0)

    def test_residuals_bounded(self, survey_model):
        """The power-law fit stays within ~10 dB of every survey point."""
        description = survey_model.describe()
        assert description["max_abs_residual_db"] < 10.0

    def test_curve_matches_pointwise_prediction(self, survey_model):
        rates = [1e3, 1e4, 1e5]
        curve = survey_model.sensing_power_curve(rates)
        expected = [survey_model.sensing_power_watts(rate) for rate in rates]
        assert np.allclose(curve, expected)

    def test_subsystem_fit_above_afe_fit(self):
        """Complete sensing subsystems burn more than bare AFEs at any rate."""
        afe = AFESurveyModel(category="afe")
        subsystem = AFESurveyModel(category="subsystem")
        for rate in (1e4, 1e5, 1e6):
            assert subsystem.sensing_power_watts(rate) > afe.sensing_power_watts(rate)

    def test_needs_at_least_two_points(self):
        with pytest.raises(ConfigurationError):
            AFESurveyModel(points=DEFAULT_SURVEY_POINTS[:1])

    def test_invalid_survey_point_rejected(self):
        with pytest.raises(ConfigurationError):
            AFESurveyPoint("bad", data_rate_bps=0.0, sensing_power_watts=1.0)
        with pytest.raises(ConfigurationError):
            AFESurveyPoint("bad", data_rate_bps=1.0, sensing_power_watts=1.0,
                           category="imaginary")

    def test_module_level_helper_uses_default_model(self):
        assert sensing_power_watts(1e4) == pytest.approx(
            AFESurveyModel().sensing_power_watts(1e4)
        )

    @given(st.floats(min_value=1.0, max_value=1e9))
    def test_power_monotone_property(self, rate):
        model = AFESurveyModel()
        assert model.sensing_power_watts(rate * 2.0) >= model.sensing_power_watts(rate)
