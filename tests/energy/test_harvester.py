"""Tests for repro.energy.harvester."""

from __future__ import annotations

import pytest

from repro import units
from repro.energy.harvester import (
    EnergyHarvester,
    HarvesterSpec,
    HarvestingEnvironment,
    indoor_photovoltaic,
    kinetic_wrist,
    outdoor_photovoltaic,
    rf_ambient,
    thermoelectric_body,
    total_harvested_power,
)
from repro.errors import ConfigurationError


class TestPhotovoltaic:
    def test_indoor_office_power_in_paper_range(self):
        """The paper quotes 10--200 uW for indoor harvesting."""
        power = indoor_photovoltaic().power_watts(HarvestingEnvironment.INDOOR_OFFICE)
        assert units.microwatt(10.0) <= power <= units.microwatt(200.0)

    def test_brighter_environment_harvests_more(self):
        harvester = indoor_photovoltaic()
        dim = harvester.power_watts(HarvestingEnvironment.INDOOR_DIM)
        office = harvester.power_watts(HarvestingEnvironment.INDOOR_OFFICE)
        bright = harvester.power_watts(HarvestingEnvironment.INDOOR_BRIGHT)
        sun = harvester.power_watts(HarvestingEnvironment.OUTDOOR_SUN)
        assert dim < office < bright < sun

    def test_outdoor_sun_reaches_milliwatts(self):
        power = outdoor_photovoltaic().power_watts(HarvestingEnvironment.OUTDOOR_SUN)
        assert power > units.milliwatt(1.0)

    def test_power_scales_with_area(self):
        small = indoor_photovoltaic(area_cm2=2.0).power_watts()
        large = indoor_photovoltaic(area_cm2=8.0).power_watts()
        assert large == pytest.approx(4.0 * small)

    def test_power_scales_with_efficiency(self):
        low = indoor_photovoltaic(efficiency=0.10).power_watts()
        high = indoor_photovoltaic(efficiency=0.20).power_watts()
        assert high == pytest.approx(2.0 * low)


class TestOtherHarvesters:
    def test_thermoelectric_in_tens_of_microwatts(self):
        power = thermoelectric_body().power_watts()
        assert units.microwatt(10.0) <= power <= units.microwatt(200.0)

    def test_thermoelectric_scales_with_delta_t(self):
        cold = thermoelectric_body(delta_t_kelvin=1.0).power_watts()
        warm = thermoelectric_body(delta_t_kelvin=3.0).power_watts()
        assert warm == pytest.approx(3.0 * cold)

    def test_kinetic_scales_with_motion(self):
        resting = kinetic_wrist(motion_intensity=0.1).power_watts()
        active = kinetic_wrist(motion_intensity=0.9).power_watts()
        assert active > resting

    def test_kinetic_motion_saturates_at_one(self):
        capped = kinetic_wrist(motion_intensity=1.0).power_watts()
        over = EnergyHarvester(HarvesterSpec(
            name="over", kind="kinetic", motion_intensity=5.0,
            peak_power_watts=units.microwatt(100.0),
        )).power_watts()
        assert over == pytest.approx(capped)

    def test_rf_indoor_single_digit_microwatts(self):
        power = rf_ambient().power_watts(HarvestingEnvironment.INDOOR_OFFICE)
        assert power <= units.microwatt(10.0)

    def test_rf_weaker_outdoors(self):
        harvester = rf_ambient()
        indoor = harvester.power_watts(HarvestingEnvironment.INDOOR_OFFICE)
        outdoor = harvester.power_watts(HarvestingEnvironment.OUTDOOR_SUN)
        assert outdoor < indoor


class TestSpecValidation:
    def test_unknown_kind_rejected_on_use(self):
        harvester = EnergyHarvester(HarvesterSpec(name="x", kind="fusion"))
        with pytest.raises(ConfigurationError):
            harvester.power_watts()

    def test_negative_area_rejected(self):
        with pytest.raises(ConfigurationError):
            HarvesterSpec(name="x", kind="photovoltaic", area_cm2=-1.0)

    def test_efficiency_above_one_rejected(self):
        with pytest.raises(ConfigurationError):
            HarvesterSpec(name="x", kind="photovoltaic", efficiency=1.5)


class TestTotalHarvestedPower:
    def test_sums_harvesters(self):
        harvesters = [indoor_photovoltaic(), thermoelectric_body()]
        total = total_harvested_power(harvesters)
        parts = sum(h.power_watts() for h in harvesters)
        assert total == pytest.approx(parts)

    def test_combined_stack_supports_leaf_node(self):
        """PV + TEG indoors covers a sub-50 uW human-inspired leaf node."""
        total = total_harvested_power(
            [indoor_photovoltaic(), thermoelectric_body()],
            HarvestingEnvironment.INDOOR_OFFICE,
        )
        assert total > units.microwatt(50.0)

    def test_empty_list_is_zero(self):
        assert total_harvested_power([]) == 0.0


class TestEnvironmentTransitions:
    """Satellite coverage: the same harvester moved across environments."""

    def test_indoor_outdoor_pv_ratio_follows_illuminance_table(self):
        from repro.energy.harvester import ILLUMINANCE_LUX

        harvester = indoor_photovoltaic()
        for env_a in HarvestingEnvironment:
            for env_b in HarvestingEnvironment:
                ratio = (harvester.power_watts(env_a)
                         / harvester.power_watts(env_b))
                expected = ILLUMINANCE_LUX[env_a] / ILLUMINANCE_LUX[env_b]
                assert ratio == pytest.approx(expected)

    def test_stepping_outside_and_back_is_stateless(self):
        harvester = outdoor_photovoltaic()
        before = harvester.power_watts(HarvestingEnvironment.INDOOR_OFFICE)
        harvester.power_watts(HarvestingEnvironment.OUTDOOR_SUN)
        after = harvester.power_watts(HarvestingEnvironment.INDOOR_OFFICE)
        assert after == before

    def test_overcast_sits_between_indoor_bright_and_sun(self):
        harvester = outdoor_photovoltaic()
        bright = harvester.power_watts(HarvestingEnvironment.INDOOR_BRIGHT)
        overcast = harvester.power_watts(HarvestingEnvironment.OUTDOOR_OVERCAST)
        sun = harvester.power_watts(HarvestingEnvironment.OUTDOOR_SUN)
        assert bright < overcast < sun

    def test_kinetic_intensity_zero_harvests_nothing(self):
        assert kinetic_wrist(motion_intensity=0.0).power_watts() == 0.0

    def test_kinetic_ignores_environment(self):
        harvester = kinetic_wrist(motion_intensity=0.5)
        powers = {harvester.power_watts(environment)
                  for environment in HarvestingEnvironment}
        assert len(powers) == 1

    def test_thermoelectric_zero_gradient_harvests_nothing(self):
        assert thermoelectric_body(delta_t_kelvin=0.0).power_watts() == 0.0

    def test_rf_environment_transition_is_exactly_the_documented_scale(self):
        harvester = rf_ambient(peak_power_watts=units.microwatt(5.0))
        indoor = harvester.power_watts(HarvestingEnvironment.INDOOR_DIM)
        outdoor = harvester.power_watts(HarvestingEnvironment.OUTDOOR_OVERCAST)
        assert indoor == pytest.approx(units.microwatt(5.0))
        assert outdoor == pytest.approx(units.microwatt(1.0))


class TestTotalHarvestedPowerAcrossEnvironments:
    def test_total_tracks_environment_for_mixed_stack(self):
        stack = [indoor_photovoltaic(), thermoelectric_body(),
                 kinetic_wrist(), rf_ambient()]
        indoor = total_harvested_power(
            stack, HarvestingEnvironment.INDOOR_OFFICE)
        sun = total_harvested_power(stack, HarvestingEnvironment.OUTDOOR_SUN)
        # PV gains outdoors dominate the RF loss; TEG/kinetic unchanged.
        assert sun > indoor

    def test_total_is_order_independent(self):
        stack = [indoor_photovoltaic(), rf_ambient(), thermoelectric_body()]
        assert total_harvested_power(stack) == pytest.approx(
            total_harvested_power(list(reversed(stack))))

    def test_generator_input_accepted(self):
        total = total_harvested_power(
            harvester for harvester in [indoor_photovoltaic()])
        assert total == pytest.approx(indoor_photovoltaic().power_watts())
