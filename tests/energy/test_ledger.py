"""Tests for repro.energy.ledger."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.energy.ledger import EnergyLedger
from repro.errors import EnergyError


class TestEnergyLedger:
    def test_post_and_total(self):
        ledger = EnergyLedger()
        ledger.post("radio", 1.0)
        ledger.post("radio", 2.0)
        ledger.post("sensor", 0.5)
        assert ledger.total_energy() == pytest.approx(3.5)
        assert ledger.total_energy("radio") == pytest.approx(3.0)
        assert ledger.total_energy("sensor") == pytest.approx(0.5)

    def test_post_power_integrates_duration(self):
        ledger = EnergyLedger()
        ledger.post_power("cpu", power_watts=2.0, duration_seconds=3.0)
        assert ledger.total_energy("cpu") == pytest.approx(6.0)

    def test_breakdown(self):
        ledger = EnergyLedger()
        ledger.post("a", 1.0)
        ledger.post("b", 2.0)
        ledger.post("a", 3.0)
        assert ledger.breakdown() == {"a": 4.0, "b": 2.0}

    def test_components_preserve_first_seen_order(self):
        ledger = EnergyLedger()
        ledger.post("z", 1.0)
        ledger.post("a", 1.0)
        ledger.post("z", 1.0)
        assert ledger.components() == ["z", "a"]

    def test_average_power(self):
        ledger = EnergyLedger()
        ledger.post("x", 10.0)
        assert ledger.average_power(5.0) == pytest.approx(2.0)

    def test_average_power_requires_positive_horizon(self):
        ledger = EnergyLedger()
        ledger.post("x", 1.0)
        with pytest.raises(EnergyError):
            ledger.average_power(0.0)

    def test_negative_energy_rejected(self):
        with pytest.raises(EnergyError):
            EnergyLedger().post("x", -1.0)

    def test_negative_power_rejected(self):
        with pytest.raises(EnergyError):
            EnergyLedger().post_power("x", -1.0, 1.0)

    def test_merge_combines_entries(self):
        first = EnergyLedger()
        first.post("a", 1.0)
        second = EnergyLedger()
        second.post("b", 2.0)
        merged = first.merge(second)
        assert merged.total_energy() == pytest.approx(3.0)
        # Originals are untouched.
        assert first.total_energy() == pytest.approx(1.0)
        assert second.total_energy() == pytest.approx(2.0)

    def test_clear(self):
        ledger = EnergyLedger()
        ledger.post("a", 1.0)
        ledger.clear()
        assert ledger.total_energy() == 0.0
        assert ledger.components() == []

    def test_unknown_component_total_is_zero(self):
        ledger = EnergyLedger()
        ledger.post("a", 1.0)
        assert ledger.total_energy("missing") == 0.0

    @given(st.lists(
        st.tuples(st.sampled_from(["radio", "cpu", "sensor"]),
                  st.floats(min_value=0.0, max_value=100.0)),
        max_size=50,
    ))
    def test_total_equals_sum_of_breakdown(self, postings):
        ledger = EnergyLedger()
        for component, energy in postings:
            ledger.post(component, energy)
        assert ledger.total_energy() == pytest.approx(
            sum(ledger.breakdown().values())
        )
