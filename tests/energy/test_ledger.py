"""Tests for repro.energy.ledger."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.energy.ledger import EnergyLedger
from repro.errors import EnergyError


class TestEnergyLedger:
    def test_post_and_total(self):
        ledger = EnergyLedger()
        ledger.post("radio", 1.0)
        ledger.post("radio", 2.0)
        ledger.post("sensor", 0.5)
        assert ledger.total_energy() == pytest.approx(3.5)
        assert ledger.total_energy("radio") == pytest.approx(3.0)
        assert ledger.total_energy("sensor") == pytest.approx(0.5)

    def test_post_power_integrates_duration(self):
        ledger = EnergyLedger()
        ledger.post_power("cpu", power_watts=2.0, duration_seconds=3.0)
        assert ledger.total_energy("cpu") == pytest.approx(6.0)

    def test_breakdown(self):
        ledger = EnergyLedger()
        ledger.post("a", 1.0)
        ledger.post("b", 2.0)
        ledger.post("a", 3.0)
        assert ledger.breakdown() == {"a": 4.0, "b": 2.0}

    def test_components_preserve_first_seen_order(self):
        ledger = EnergyLedger()
        ledger.post("z", 1.0)
        ledger.post("a", 1.0)
        ledger.post("z", 1.0)
        assert ledger.components() == ["z", "a"]

    def test_average_power(self):
        ledger = EnergyLedger()
        ledger.post("x", 10.0)
        assert ledger.average_power(5.0) == pytest.approx(2.0)

    def test_average_power_requires_positive_horizon(self):
        ledger = EnergyLedger()
        ledger.post("x", 1.0)
        with pytest.raises(EnergyError):
            ledger.average_power(0.0)

    def test_negative_energy_rejected(self):
        with pytest.raises(EnergyError):
            EnergyLedger().post("x", -1.0)

    def test_negative_power_rejected(self):
        with pytest.raises(EnergyError):
            EnergyLedger().post_power("x", -1.0, 1.0)

    def test_merge_combines_entries(self):
        first = EnergyLedger()
        first.post("a", 1.0)
        second = EnergyLedger()
        second.post("b", 2.0)
        merged = first.merge(second)
        assert merged.total_energy() == pytest.approx(3.0)
        # Originals are untouched.
        assert first.total_energy() == pytest.approx(1.0)
        assert second.total_energy() == pytest.approx(2.0)

    def test_clear(self):
        ledger = EnergyLedger()
        ledger.post("a", 1.0)
        ledger.clear()
        assert ledger.total_energy() == 0.0
        assert ledger.components() == []

    def test_unknown_component_total_is_zero(self):
        ledger = EnergyLedger()
        ledger.post("a", 1.0)
        assert ledger.total_energy("missing") == 0.0

    @given(st.lists(
        st.tuples(st.sampled_from(["radio", "cpu", "sensor"]),
                  st.floats(min_value=0.0, max_value=100.0)),
        max_size=50,
    ))
    def test_total_equals_sum_of_breakdown(self, postings):
        ledger = EnergyLedger()
        for component, energy in postings:
            ledger.post(component, energy)
        assert ledger.total_energy() == pytest.approx(
            sum(ledger.breakdown().values())
        )


class TestStreamingMode:
    """The default ledger keeps no entries yet answers identically."""

    def test_default_ledger_retains_no_entries(self):
        ledger = EnergyLedger()
        for index in range(1000):
            ledger.post("radio", 0.001, timestamp_seconds=float(index))
        assert not ledger.keeps_entries
        assert ledger.entries is None
        assert ledger.retained_entries == 0
        assert ledger.posted_count == 1000

    def test_exact_mode_retains_entries(self):
        ledger = EnergyLedger(keep_entries=True)
        ledger.post("radio", 1.0)
        ledger.post("cpu", 2.0)
        assert ledger.keeps_entries
        assert len(ledger.entries) == 2
        assert ledger.retained_entries == 2

    def test_streaming_totals_bit_identical_to_exact(self):
        """Running totals add in posting order — the same float sequence
        the exact mode's entry re-scan would produce."""
        import random

        rng = random.Random(7)
        postings = [(rng.choice("abc"), rng.random()) for _ in range(500)]
        streaming = EnergyLedger()
        exact = EnergyLedger(keep_entries=True)
        for component, energy in postings:
            streaming.post(component, energy)
            exact.post(component, energy)
        assert streaming.total_energy() == exact.total_energy()
        assert streaming.breakdown() == exact.breakdown()
        assert streaming.components() == exact.components()
        # And the exact mode's totals equal re-summing its entries.
        resummed = 0.0
        for entry in exact.entries:
            resummed += entry.energy_joules
        assert exact.total_energy() == resummed

    def test_components_order_first_posted(self):
        ledger = EnergyLedger()
        ledger.post("z", 1.0)
        ledger.post("a", 1.0)
        ledger.post("z", 1.0)
        assert ledger.components() == ["z", "a"]


class TestPowerTrace:
    def test_energy_lands_in_time_buckets(self):
        ledger = EnergyLedger(trace_bucket_seconds=10.0, trace_buckets=4)
        ledger.post("x", 5.0, timestamp_seconds=0.0)
        ledger.post("x", 3.0, timestamp_seconds=15.0)
        trace = ledger.trace_energy_joules()
        assert trace.tolist() == [5.0, 3.0, 0.0, 0.0]
        assert ledger.power_trace_watts().tolist() == [0.5, 0.3, 0.0, 0.0]

    def test_overflow_lands_in_last_bucket(self):
        ledger = EnergyLedger(trace_bucket_seconds=1.0, trace_buckets=2)
        ledger.post("x", 7.0, timestamp_seconds=100.0)
        assert ledger.trace_energy_joules().tolist() == [0.0, 7.0]

    def test_invalid_trace_configuration_rejected(self):
        with pytest.raises(EnergyError):
            EnergyLedger(trace_bucket_seconds=0.0)
        with pytest.raises(EnergyError):
            EnergyLedger(trace_buckets=0)


class TestMergeExact:
    def test_merge_adds_totals_and_traces(self):
        first = EnergyLedger(trace_bucket_seconds=10.0, trace_buckets=4)
        second = EnergyLedger(trace_bucket_seconds=10.0, trace_buckets=4)
        first.post("a", 1.0, timestamp_seconds=5.0)
        second.post("a", 2.0, timestamp_seconds=5.0)
        second.post("b", 4.0, timestamp_seconds=25.0)
        merged = first.merge(second)
        assert merged.total_energy() == 7.0
        assert merged.breakdown() == {"a": 3.0, "b": 4.0}
        assert merged.components() == ["a", "b"]
        assert merged.posted_count == 3
        assert merged.trace_energy_joules().tolist() == [3.0, 0.0, 4.0, 0.0]

    def test_merge_mismatched_trace_config_rejected(self):
        with pytest.raises(EnergyError):
            EnergyLedger(trace_buckets=4).merge(EnergyLedger(trace_buckets=8))

    def test_merge_keeps_entries_only_when_both_sides_do(self):
        exact = EnergyLedger(keep_entries=True)
        exact.post("a", 1.0)
        streaming = EnergyLedger()
        streaming.post("b", 2.0)
        assert not exact.merge(streaming).keeps_entries
        both = exact.merge(exact)
        assert both.keeps_entries
        assert both.retained_entries == 2

    def test_clear_resets_streaming_state(self):
        ledger = EnergyLedger()
        ledger.post("a", 1.0, timestamp_seconds=10.0)
        ledger.clear()
        assert ledger.total_energy() == 0.0
        assert ledger.posted_count == 0
        assert float(ledger.trace_energy_joules().sum()) == 0.0


class TestPostInterval:
    def test_spreads_uniformly_across_buckets(self):
        ledger = EnergyLedger(trace_bucket_seconds=10.0, trace_buckets=4)
        ledger.post_interval("x", 6.0, 5.0, 35.0)
        # 30 s at 0.2 J/s: 5 s in bucket 0, 10 s in 1 and 2, 5 s in 3.
        assert ledger.trace_energy_joules().tolist() == \
            pytest.approx([1.0, 2.0, 2.0, 1.0])
        assert ledger.total_energy("x") == pytest.approx(6.0)

    def test_end_on_bucket_edge_does_not_smear(self):
        """An interval ending exactly on a bucket edge must leave the
        bucket that starts there untouched (half-open convention)."""
        ledger = EnergyLedger(trace_bucket_seconds=10.0, trace_buckets=4)
        ledger.post_interval("x", 4.0, 0.0, 20.0)
        assert ledger.trace_energy_joules().tolist() == \
            pytest.approx([2.0, 2.0, 0.0, 0.0])

    def test_overflow_clamps_to_last_bucket(self):
        ledger = EnergyLedger(trace_bucket_seconds=1.0, trace_buckets=2)
        ledger.post_interval("x", 9.0, 0.5, 3.5)
        trace = ledger.trace_energy_joules()
        assert trace.tolist() == pytest.approx([1.5, 7.5])

    def test_zero_length_degenerates_to_point_post(self):
        ledger = EnergyLedger(trace_bucket_seconds=10.0, trace_buckets=4)
        ledger.post_interval("x", 3.0, 15.0, 15.0)
        assert ledger.trace_energy_joules().tolist() == [0.0, 3.0, 0.0, 0.0]

    def test_exact_mode_retains_interval_entry(self):
        ledger = EnergyLedger(keep_entries=True)
        ledger.post_interval("x", 2.0, 1.0, 5.0, note="leap")
        (entry,) = ledger.entries
        assert entry.energy_joules == 2.0
        assert entry.timestamp_seconds == 1.0
        assert entry.duration_seconds == 4.0
        assert entry.note == "leap"

    def test_invalid_intervals_rejected(self):
        ledger = EnergyLedger()
        with pytest.raises(EnergyError):
            ledger.post_interval("x", -1.0, 0.0, 1.0)
        with pytest.raises(EnergyError):
            ledger.post_interval("x", 1.0, 2.0, 1.0)

    @given(st.floats(min_value=0.0, max_value=100.0),
           st.floats(min_value=0.0, max_value=200.0),
           st.floats(min_value=0.0, max_value=50.0))
    def test_trace_conserves_posted_energy(self, start, span, energy):
        ledger = EnergyLedger(trace_bucket_seconds=7.0, trace_buckets=6)
        ledger.post_interval("x", energy, start, start + span)
        assert float(ledger.trace_energy_joules().sum()) == \
            pytest.approx(energy)
        assert ledger.total_energy() == pytest.approx(energy)
