"""Tests for repro.energy.runtime (NodeEnergyState)."""

from __future__ import annotations

import math

import pytest

from repro import units
from repro.energy.battery import BatterySpec
from repro.energy.harvester import (
    HarvestingEnvironment,
    indoor_photovoltaic,
    rf_ambient,
)
from repro.energy.ledger import EnergyLedger
from repro.energy.runtime import NodeEnergyState
from repro.errors import EnergyError


def tiny_cell(capacity_mah: float = 1e-4) -> BatterySpec:
    """A cell small enough to die within a short test interval."""
    return BatterySpec(name="tiny", capacity_mah=capacity_mah,
                       self_discharge_per_year=0.0)


class TestUnconstrainedState:
    def test_no_battery_never_dies(self):
        state = NodeEnergyState()
        state.drain("tx", 1e9, timestamp_seconds=1.0)
        state.advance({"sensing": 1.0}, 1e6, 1e6)
        assert state.alive
        assert state.state_of_charge_fraction == 1.0
        assert state.death_seconds is None

    def test_consumption_still_posted(self):
        state = NodeEnergyState()
        state.drain("tx", 2.0, timestamp_seconds=0.5)
        state.advance({"sensing": 3.0}, 2.0, 2.5)
        assert state.ledger.total_energy("tx") == pytest.approx(2.0)
        assert state.ledger.total_energy("sensing") == pytest.approx(6.0)


class TestBatteryDrain:
    def test_impulse_drain_reduces_charge(self):
        state = NodeEnergyState.from_spec(battery=tiny_cell())
        usable = state.battery.spec.usable_energy_joules
        delivered = state.drain("tx", usable / 2.0, timestamp_seconds=1.0)
        assert delivered == pytest.approx(usable / 2.0)
        assert state.state_of_charge_fraction == pytest.approx(0.5)
        assert state.alive

    def test_impulse_overdrain_kills_at_timestamp(self):
        state = NodeEnergyState.from_spec(battery=tiny_cell())
        state.drain("tx", 1e9, timestamp_seconds=42.0)
        assert not state.alive
        assert state.death_seconds == 42.0

    def test_dead_state_consumes_and_posts_nothing(self):
        state = NodeEnergyState.from_spec(battery=tiny_cell())
        state.drain("tx", 1e9, timestamp_seconds=1.0)
        posted = state.ledger.total_energy()
        assert state.drain("tx", 1.0, timestamp_seconds=2.0) == 0.0
        assert state.advance({"sensing": 1.0}, 1.0, 3.0) == 0.0
        assert state.ledger.total_energy() == posted

    def test_interval_death_is_interpolated(self):
        # 1.08 J usable at a constant 0.1 W dies 10.8 s into an interval.
        state = NodeEnergyState.from_spec(battery=tiny_cell())
        usable = state.battery.spec.usable_energy_joules
        sustained = state.advance({"load": 0.1}, 100.0, 100.0)
        assert sustained == pytest.approx(usable / 0.1)
        assert state.death_seconds == pytest.approx(usable / 0.1)
        # Only the sustained fraction of demand was served and posted.
        assert state.ledger.total_energy("load") == pytest.approx(usable)

    def test_self_discharge_included_by_default(self):
        leaky = BatterySpec(name="leaky", capacity_mah=1e-4,
                            self_discharge_per_year=0.5)
        state = NodeEnergyState.from_spec(battery=leaky)
        assert state.leakage_power_watts > 0.0
        without = NodeEnergyState.from_spec(battery=leaky)
        without.include_self_discharge = False
        assert without.leakage_power_watts == 0.0

    def test_initial_charge_fraction(self):
        state = NodeEnergyState.from_spec(battery=tiny_cell(),
                                          initial_charge_fraction=0.25)
        assert state.state_of_charge_fraction == pytest.approx(0.25)
        with pytest.raises(EnergyError):
            NodeEnergyState.from_spec(battery=tiny_cell(),
                                      initial_charge_fraction=0.0)


class TestHarvesting:
    def test_surplus_harvest_recharges_up_to_full(self):
        state = NodeEnergyState.from_spec(
            battery=tiny_cell(),
            harvester=rf_ambient(peak_power_watts=units.microwatt(100.0)),
            initial_charge_fraction=0.5,
        )
        state.advance({"load": units.microwatt(10.0)}, 100.0, 100.0)
        assert state.state_of_charge_fraction > 0.5
        assert state.harvested_joules == pytest.approx(
            units.microwatt(100.0) * 100.0)

    def test_environment_scales_harvest_income(self):
        indoor = NodeEnergyState.from_spec(
            battery=tiny_cell(), harvester=indoor_photovoltaic(),
            environment=HarvestingEnvironment.INDOOR_DIM)
        sunny = NodeEnergyState.from_spec(
            battery=tiny_cell(), harvester=indoor_photovoltaic(),
            environment=HarvestingEnvironment.OUTDOOR_SUN)
        assert sunny.harvest_power_watts > indoor.harvest_power_watts

    def test_net_positive_node_never_dies(self):
        state = NodeEnergyState.from_spec(
            battery=tiny_cell(),
            harvester=rf_ambient(peak_power_watts=units.microwatt(50.0)))
        sustained = state.advance(
            {"load": units.microwatt(10.0)}, 1e5, 1e5)
        assert sustained == 1e5
        assert state.alive
        assert math.isinf(state.projected_life_seconds(
            units.microwatt(10.0)))


class TestLowBatterySignal:
    def test_threshold_crossing_reported(self):
        state = NodeEnergyState.from_spec(battery=tiny_cell(),
                                          low_battery_fraction=0.5)
        assert not state.is_low_battery()
        usable = state.battery.spec.usable_energy_joules
        state.drain("tx", usable * 0.6, timestamp_seconds=1.0)
        assert state.is_low_battery()

    def test_unarmed_state_never_reports_low(self):
        state = NodeEnergyState.from_spec(battery=tiny_cell())
        state.drain("tx", state.battery.spec.usable_energy_joules * 0.99,
                    timestamp_seconds=1.0)
        assert not state.is_low_battery()

    def test_invalid_threshold_rejected(self):
        with pytest.raises(EnergyError):
            NodeEnergyState.from_spec(battery=tiny_cell(),
                                      low_battery_fraction=1.5)


class TestValidation:
    def test_negative_interval_rejected(self):
        state = NodeEnergyState()
        with pytest.raises(EnergyError):
            state.advance({}, -1.0, 0.0)

    def test_negative_load_rejected(self):
        state = NodeEnergyState()
        with pytest.raises(EnergyError):
            state.advance({"x": -1.0}, 1.0, 1.0)

    def test_shared_ledger_is_used(self):
        ledger = EnergyLedger()
        state = NodeEnergyState.from_spec(battery=tiny_cell(), ledger=ledger)
        state.drain("tx", 1e-4, timestamp_seconds=0.0)
        assert ledger.total_energy("tx") == pytest.approx(1e-4)
