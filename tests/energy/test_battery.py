"""Tests for repro.energy.battery."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro import units
from repro.energy.battery import (
    Battery,
    BatteryChemistry,
    BatterySpec,
    battery_life_seconds,
    coin_cell_cr2032,
    coin_cell_high_capacity,
    lipo_headset,
    lipo_smartphone,
    lipo_smartwatch,
)
from repro.errors import ConfigurationError, EnergyError


class TestBatterySpec:
    def test_high_capacity_coin_cell_energy(self):
        spec = coin_cell_high_capacity()
        assert spec.capacity_mah == 1000.0
        assert spec.energy_joules == pytest.approx(10_800.0)

    def test_cr2032_energy(self):
        spec = coin_cell_cr2032()
        assert spec.energy_joules == pytest.approx(225e-3 * 3600 * 3.0)

    def test_nominal_voltage_defaults_by_chemistry(self):
        lipo = lipo_smartwatch()
        assert lipo.nominal_voltage == pytest.approx(3.7)
        coin = coin_cell_cr2032()
        assert coin.nominal_voltage == pytest.approx(3.0)

    def test_explicit_voltage_wins(self):
        spec = lipo_smartphone()
        assert spec.nominal_voltage == pytest.approx(3.85)

    def test_usable_fraction_derates_energy(self):
        spec = BatterySpec(name="derated", capacity_mah=100.0, usable_fraction=0.8)
        assert spec.usable_energy_joules == pytest.approx(0.8 * spec.energy_joules)

    def test_leakage_power_is_small(self):
        spec = coin_cell_high_capacity()
        # 1 %/year of 10.8 kJ is well under a microwatt.
        assert spec.leakage_power_watts < units.microwatt(5.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            BatterySpec(name="bad", capacity_mah=-1.0)

    def test_invalid_usable_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            BatterySpec(name="bad", capacity_mah=10.0, usable_fraction=0.0)

    def test_invalid_self_discharge_rejected(self):
        with pytest.raises(ConfigurationError):
            BatterySpec(name="bad", capacity_mah=10.0, self_discharge_per_year=1.5)

    def test_headset_pack_larger_than_watch(self):
        assert lipo_headset().energy_joules > lipo_smartwatch().energy_joules


class TestBatteryLifeProjection:
    def test_simple_division(self):
        spec = BatterySpec(name="ideal", capacity_mah=1000.0,
                           self_discharge_per_year=0.0)
        life = battery_life_seconds(spec, units.milliwatt(1.0))
        assert life == pytest.approx(10_800.0 / 1e-3)

    def test_zero_load_is_limited_by_self_discharge(self):
        spec = coin_cell_high_capacity()
        life = battery_life_seconds(spec, 0.0)
        assert math.isfinite(life)
        # Self-discharge of 1 %/year drains the cell in about a century.
        assert life > units.years(50.0)

    def test_zero_load_zero_leakage_is_infinite(self):
        spec = BatterySpec(name="ideal", capacity_mah=10.0,
                           self_discharge_per_year=0.0)
        assert battery_life_seconds(spec, 0.0) == math.inf

    def test_harvesting_extends_life(self):
        spec = coin_cell_high_capacity()
        base = battery_life_seconds(spec, units.microwatt(100.0))
        harvested = battery_life_seconds(
            spec, units.microwatt(100.0),
            harvested_power_watts=units.microwatt(50.0),
        )
        assert harvested > base

    def test_full_harvesting_gives_infinite_life(self):
        spec = coin_cell_high_capacity()
        life = battery_life_seconds(
            spec, units.microwatt(50.0),
            harvested_power_watts=units.microwatt(200.0),
        )
        assert life == math.inf

    def test_negative_load_rejected(self):
        with pytest.raises(EnergyError):
            battery_life_seconds(coin_cell_high_capacity(), -1.0)

    def test_negative_harvest_rejected(self):
        with pytest.raises(EnergyError):
            battery_life_seconds(coin_cell_high_capacity(), 1.0,
                                 harvested_power_watts=-1.0)

    def test_fig3_anchor_point(self):
        """A 30 uW node on the 1000 mAh cell exceeds the one-year threshold."""
        life = battery_life_seconds(coin_cell_high_capacity(), units.microwatt(30.0))
        assert life > units.years(1.0)

    @given(st.floats(min_value=1e-6, max_value=10.0))
    def test_life_monotonically_decreases_with_load(self, load):
        spec = coin_cell_high_capacity()
        heavier = battery_life_seconds(spec, load * 2.0)
        lighter = battery_life_seconds(spec, load)
        assert heavier < lighter


class TestStatefulBattery:
    def test_starts_full(self):
        cell = Battery(spec=coin_cell_cr2032())
        assert cell.state_of_charge_fraction == pytest.approx(1.0)
        assert not cell.is_empty

    def test_drain_reduces_charge(self):
        cell = Battery(spec=coin_cell_cr2032())
        delivered = cell.drain(100.0)
        assert delivered == 100.0
        assert cell.state_of_charge_joules == pytest.approx(
            cell.spec.usable_energy_joules - 100.0
        )

    def test_overdrain_raises_without_clip(self):
        cell = Battery(spec=BatterySpec(name="tiny", capacity_mah=1.0))
        with pytest.raises(EnergyError):
            cell.drain(1e9)

    def test_overdrain_clips_when_requested(self):
        cell = Battery(spec=BatterySpec(name="tiny", capacity_mah=1.0))
        delivered = cell.drain(1e9, clip=True)
        assert delivered == pytest.approx(cell.spec.usable_energy_joules)
        assert cell.is_empty

    def test_charge_clips_at_capacity(self):
        cell = Battery(spec=coin_cell_cr2032())
        stored = cell.charge(1e9)
        assert stored == pytest.approx(0.0)
        cell.drain(500.0)
        stored = cell.charge(1e9)
        assert stored == pytest.approx(500.0)

    def test_negative_operations_rejected(self):
        cell = Battery(spec=coin_cell_cr2032())
        with pytest.raises(EnergyError):
            cell.drain(-1.0)
        with pytest.raises(EnergyError):
            cell.charge(-1.0)

    def test_run_sustains_full_duration_when_charged(self):
        cell = Battery(spec=coin_cell_high_capacity())
        sustained = cell.run(units.milliwatt(1.0), 3600.0)
        assert sustained == pytest.approx(3600.0)

    def test_run_cuts_short_when_cell_empties(self):
        cell = Battery(spec=BatterySpec(name="tiny", capacity_mah=1.0))
        sustained = cell.run(1.0, 1e6)
        assert sustained < 1e6
        assert cell.is_empty

    def test_run_with_surplus_harvest_recharges(self):
        cell = Battery(spec=coin_cell_cr2032())
        cell.drain(100.0)
        sustained = cell.run(units.microwatt(10.0), 1000.0,
                             harvested_power_watts=units.milliwatt(1.0))
        assert sustained == pytest.approx(1000.0)
        assert cell.state_of_charge_joules > cell.spec.usable_energy_joules - 100.0

    def test_projected_life_matches_closed_form(self):
        cell = Battery(spec=coin_cell_high_capacity())
        projected = cell.projected_life_seconds(units.microwatt(100.0))
        closed_form = battery_life_seconds(
            coin_cell_high_capacity(), units.microwatt(100.0)
        )
        assert projected == pytest.approx(closed_form, rel=1e-6)

    def test_initial_charge_above_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            Battery(spec=coin_cell_cr2032(), state_of_charge_joules=1e9)

    @given(st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=1,
                    max_size=30))
    def test_drain_conservation_property(self, drains):
        """Total delivered energy never exceeds the usable capacity."""
        cell = Battery(spec=BatterySpec(name="prop", capacity_mah=1.0))
        delivered = sum(cell.drain(amount, clip=True) for amount in drains)
        assert delivered <= cell.spec.usable_energy_joules + 1e-9
        assert cell.state_of_charge_joules >= -1e-12


class TestChemistryTables:
    def test_all_chemistries_have_voltage_and_leakage(self):
        from repro.energy.battery import NOMINAL_VOLTAGE, SELF_DISCHARGE_PER_YEAR

        for chemistry in BatteryChemistry:
            assert chemistry in NOMINAL_VOLTAGE
            assert chemistry in SELF_DISCHARGE_PER_YEAR
            assert NOMINAL_VOLTAGE[chemistry] > 0
            assert 0 <= SELF_DISCHARGE_PER_YEAR[chemistry] < 1


class TestSocBoundaryRobustness:
    """Satellite: SoC clamps exactly at [0, capacity] and `is_empty`
    tolerates float residue at the empty boundary."""

    def test_charge_to_exactly_full_is_exact(self):
        cell = Battery(spec=coin_cell_cr2032())
        cell.drain(123.456789)
        cell.charge(1e9)
        assert cell.state_of_charge_joules == cell.spec.usable_energy_joules
        assert cell.state_of_charge_fraction == 1.0

    def test_is_empty_tolerates_ulp_residue(self):
        cell = Battery(spec=coin_cell_cr2032())
        usable = cell.spec.usable_energy_joules
        # Drain in three uneven chunks that mathematically sum to the
        # whole capacity; float rounding may leave ±1 ulp behind.
        cell.drain(usable * 0.3, clip=True)
        cell.drain(usable * 0.33, clip=True)
        cell.drain(usable - usable * 0.3 - usable * 0.33, clip=True)
        assert cell.state_of_charge_joules <= math.ulp(usable)
        assert cell.is_empty

    def test_fraction_clamped_even_with_manual_residue(self):
        cell = Battery(spec=coin_cell_cr2032())
        cell.state_of_charge_joules = -1e-18  # adversarial residue
        assert cell.state_of_charge_fraction == 0.0
        cell.state_of_charge_joules = cell.spec.usable_energy_joules * (1 + 1e-16)
        assert cell.state_of_charge_fraction == 1.0

    @given(st.lists(
        st.tuples(
            st.sampled_from(["drain", "charge", "run", "run_harvest"]),
            st.floats(min_value=0.0, max_value=100.0,
                      allow_nan=False, allow_infinity=False),
            st.floats(min_value=0.0, max_value=1e4,
                      allow_nan=False, allow_infinity=False),
        ),
        max_size=50,
    ))
    def test_soc_fraction_never_leaves_unit_interval(self, operations):
        """Property: arbitrary drain/charge/run sequences keep the state
        of charge inside [0, capacity] — the satellite's contract."""
        cell = Battery(spec=BatterySpec(name="prop", capacity_mah=1.0))
        usable = cell.spec.usable_energy_joules
        for kind, amount, duration in operations:
            if kind == "drain":
                cell.drain(amount, clip=True)
            elif kind == "charge":
                cell.charge(amount)
            elif kind == "run":
                cell.run(amount * 1e-3, duration)
            else:
                cell.run(amount * 1e-3, duration,
                         harvested_power_watts=amount * 2e-3)
            assert 0.0 <= cell.state_of_charge_fraction <= 1.0
            assert 0.0 <= cell.state_of_charge_joules <= usable
