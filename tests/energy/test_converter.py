"""Tests for repro.energy.converter."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.energy.converter import DCDCConverter, buck_converter, ldo_regulator
from repro.errors import ConfigurationError


class TestConverterModel:
    def test_input_exceeds_output(self):
        converter = buck_converter()
        load = 1e-3
        assert converter.input_power(load) > load

    def test_zero_load_draws_quiescent_only(self):
        converter = ldo_regulator()
        assert converter.input_power(0.0) == pytest.approx(
            converter.quiescent_power_watts
        )

    def test_light_load_regime_less_efficient(self):
        converter = buck_converter()
        light = converter.light_load_threshold_watts / 10.0
        heavy = converter.light_load_threshold_watts * 10.0
        light_efficiency = light / converter.input_power(light)
        heavy_efficiency = heavy / converter.input_power(heavy)
        assert light_efficiency < heavy_efficiency

    def test_loss_is_input_minus_output(self):
        converter = ldo_regulator()
        load = 5e-5
        assert converter.loss(load) == pytest.approx(
            converter.input_power(load) - load
        )

    def test_negative_load_rejected(self):
        with pytest.raises(ConfigurationError):
            ldo_regulator().input_power(-1.0)

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ConfigurationError):
            DCDCConverter(name="bad", efficiency=0.0, light_load_efficiency=0.5,
                          light_load_threshold_watts=1e-3)

    def test_efficiency_above_one_rejected(self):
        with pytest.raises(ConfigurationError):
            DCDCConverter(name="bad", efficiency=1.2, light_load_efficiency=0.5,
                          light_load_threshold_watts=1e-3)

    @given(st.floats(min_value=1e-9, max_value=10.0))
    def test_input_power_monotone_in_load(self, load):
        converter = buck_converter()
        assert converter.input_power(load * 2.0) > converter.input_power(load)

    @given(st.floats(min_value=1e-9, max_value=10.0))
    def test_loss_non_negative(self, load):
        assert ldo_regulator().loss(load) >= 0.0
