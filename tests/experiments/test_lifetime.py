"""E15 — closed-loop lifetime validation (DES vs closed form)."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments import lifetime
from repro.runner import resolve


class TestLifetimeExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return lifetime.run()

    def test_acceptance_every_point_within_five_percent(self, result):
        """The ISSUE acceptance bound: DES-vs-closed-form within ±5%
        for the Fig. 3 operating points."""
        assert result.all_within_tolerance()
        assert result.max_rel_error() <= 0.05

    def test_finite_points_actually_brown_out(self, result):
        finite = [point for point in result.points if not point.is_perpetual]
        assert len(finite) >= 4  # every validated device class + harvest
        for point in finite:
            assert math.isfinite(point.des_first_death_seconds)
            assert point.final_state_of_charge == pytest.approx(0.0)
            assert point.delivered_before_death > 0

    def test_energy_neutral_points_survive(self, result):
        perpetual = [point for point in result.points if point.is_perpetual]
        assert perpetual, "harvest sweep produced no energy-neutral point"
        for point in perpetual:
            assert math.isinf(point.des_first_death_seconds)
            assert point.final_state_of_charge == pytest.approx(1.0, abs=0.01)

    def test_harvest_extends_life_monotonically(self, result):
        patch = [point for point in result.points
                 if "biopotential" in point.device_class]
        finite = [point for point in patch if not point.is_perpetual]
        assert len(finite) >= 2
        for earlier, later in zip(finite, finite[1:]):
            assert later.harvest_watts > earlier.harvest_watts
            assert (later.des_first_death_seconds
                    > earlier.des_first_death_seconds)

    def test_rows_and_summary(self, result):
        rows = result.rows()
        assert rows
        for row in rows:
            assert {"device_class", "closed_form_s", "des_death_s",
                    "rel_error", "perpetual"} <= set(row)
        summary = lifetime._summary(result)
        assert any("closed" in line for line in summary)

    def test_registered_as_e15(self):
        spec = resolve("lifetime")
        assert spec is resolve("E15")
        assert spec.eid == "E15"

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            lifetime.run(target_life_seconds=0.0)
        with pytest.raises(ConfigurationError):
            lifetime.run(tolerance=0.0)

    def test_seed_invariance_for_periodic_workload(self):
        """Periodic sources draw nothing from the RNG: any seed lands on
        the same brownout times."""
        a = lifetime.run(target_life_seconds=60.0,
                         harvest_levels_watts=(0.0,), seed=0)
        b = lifetime.run(target_life_seconds=60.0,
                         harvest_levels_watts=(0.0,), seed=99)
        assert [p.des_first_death_seconds for p in a.points] == \
            [p.des_first_death_seconds for p in b.points]
