"""E18 crowd experiment: occupancy degradation, envelope, recovery."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments import crowd
from repro.runner.registry import resolve


@pytest.fixture(scope="module")
def static_sweep() -> crowd.CrowdResult:
    return crowd.run(bodies_per_room=(1, 8))


@pytest.fixture(scope="module")
def backoff_sweep() -> crowd.CrowdResult:
    return crowd.run(controller="per_backoff", bodies_per_room=(1, 8))


class TestRegistration:
    def test_registered_as_e18(self):
        spec = resolve("crowd")
        assert spec.eid == "E18"
        assert spec.module == "crowd"

    def test_sweep_defaults_cover_mac_and_controller(self):
        spec = resolve("crowd")
        assert set(spec.sweep_defaults) == {"mac_policy", "controller"}


class TestValidation:
    def test_rejects_unknown_mac(self):
        with pytest.raises(ConfigurationError, match="MAC"):
            crowd.run(mac_policy="aloha")

    def test_rejects_unknown_controller(self):
        with pytest.raises(ConfigurationError, match="controller"):
            crowd.run(controller="pid")

    def test_rejects_empty_sweep(self):
        with pytest.raises(ConfigurationError):
            crowd.run(bodies_per_room=())


class TestOccupancyDegradation:
    def test_delivered_fraction_degrades(self, static_sweep):
        assert static_sweep.delivered_degradation() > 0.02

    def test_projected_lifetime_degrades(self, static_sweep):
        assert static_sweep.lifetime_degradation_hours() > 0.0

    def test_retry_energy_grows_with_occupancy(self, static_sweep):
        first, last = static_sweep.points[0], static_sweep.points[-1]
        assert last.retransmission_energy_joules \
            > first.retransmission_energy_joules

    def test_rows_are_report_shaped(self, static_sweep):
        rows = static_sweep.rows()
        assert len(rows) == 2
        assert rows[0]["bodies"] == 1
        assert rows[1]["bodies"] == 8
        assert set(rows[0]) == set(rows[1])


class TestClosedForm:
    def test_static_sweep_within_gallery_envelope(self, static_sweep):
        assert static_sweep.max_delivered_abs_error() \
            <= crowd.DELIVERED_ENVELOPE
        assert static_sweep.within_envelope()

    def test_solo_room_matches_standalone_closed_form(self, static_sweep):
        solo = static_sweep.points[0]
        assert solo.delivered_abs_error <= 0.01


class TestControllerRecovery:
    def test_backoff_recovers_delivered_fraction(self, static_sweep,
                                                 backoff_sweep):
        packed_static = static_sweep.points[-1]
        packed_backoff = backoff_sweep.points[-1]
        assert packed_backoff.delivered_fraction \
            > packed_static.delivered_fraction + 0.01

    def test_backoff_actuates_at_high_occupancy(self, backoff_sweep):
        assert backoff_sweep.points[-1].controller_actions > 0

    def test_static_never_actuates_tx_power(self, static_sweep):
        for point in static_sweep.points:
            assert point.mean_tx_offset_db == 0.0

    def test_soc_throttle_extends_lifetime(self, static_sweep):
        throttled = crowd.run(controller="soc_throttle",
                              bodies_per_room=(8,))
        assert throttled.points[0].projected_lifetime_hours \
            > static_sweep.points[-1].projected_lifetime_hours
