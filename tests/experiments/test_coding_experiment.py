"""Tests for E17 (energy-optimal source-coding rate)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments import coding
from repro.runner import resolve


class TestRegistration:
    def test_registered_under_cli_and_paper_ids(self):
        assert resolve("coding").eid == "E17"
        assert resolve("E17").id == "coding"

    def test_sweep_defaults_cover_the_axes(self):
        spec = resolve("coding")
        assert set(spec.sweep_defaults) \
            == {"device_class", "channel", "mac_policy"}
        assert set(spec.sweep_defaults["channel"]) == set(coding.CHANNELS)


@pytest.fixture(scope="module")
def headband():
    return coding.run(device_class="eeg_headband", channel="noisy",
                      simulated_seconds=20.0)


class TestSweep:
    def test_rows_cover_baseline_plus_rates(self, headband):
        rows = headband.rows()
        assert len(rows) == len(coding.DEFAULT_RATES) + 1
        assert rows[0]["rate"] == "uncoded"
        for row in rows:
            assert 0.0 < row["effective_rate"] <= 1.0
            assert row["energy_nj_per_source_bit"] > 0.0

    def test_rates_below_the_floor_clamp(self, headband):
        # The default grid crosses the EEG floor, so the lowest rows
        # repeat the clamped effective rate.
        effective = [point.effective_rate
                     for point in headband.coded_points()]
        floors = [rate for rate in effective
                  if rate > min(coding.DEFAULT_RATES)]
        assert floors, "grid never hit the modality floor"

    def test_shorter_packets_lower_the_per(self, headband):
        points = sorted(headband.coded_points(),
                        key=lambda point: point.effective_rate)
        pers = [point.packet_error_rate for point in points]
        assert pers == sorted(pers)
        assert pers[0] < pers[-1]

    def test_interior_energy_optimum_for_the_ble_class(self, headband):
        # The acceptance claim: a non-trivial, strictly interior
        # energy-optimal coding rate under a lossy link.
        assert headband.optimal_is_interior()
        assert headband.savings_fraction() > 0.05
        best = headband.optimal()
        assert best.requested_rate is not None

    def test_des_and_closed_form_cross_validate(self, headband):
        assert headband.max_leaf_power_rel_error() < 0.02
        # Both sides locate the same optimum on the default grid.
        assert headband.predicted_optimal().effective_rate \
            == headband.optimal().effective_rate

    def test_encode_energy_share_grows_as_rate_drops(self, headband):
        points = sorted(headband.coded_points(),
                        key=lambda point: point.effective_rate)
        shares = [point.simulated.encode_energy_fraction
                  for point in points]
        assert shares[0] > shares[-1]


class TestValidation:
    def test_unknown_device_class_rejected(self):
        with pytest.raises(ConfigurationError, match="device class"):
            coding.run(device_class="toaster")

    def test_unknown_channel_rejected(self):
        with pytest.raises(ConfigurationError, match="channel"):
            coding.run(channel="underwater")

    def test_empty_rate_grid_rejected(self):
        with pytest.raises(ConfigurationError, match="rate"):
            coding.run(rates=())

    def test_bad_duration_rejected(self):
        with pytest.raises(ConfigurationError, match="duration"):
            coding.run(simulated_seconds=0.0)


class TestSummary:
    def test_summary_names_the_optimum(self, headband):
        lines = coding._summary(headband)
        joined = "\n".join(lines)
        assert "energy-optimal rate" in joined
        assert "interior" in joined
        assert "eeg_headband" in joined

    def test_wir_class_runs_and_cross_validates(self):
        result = coding.run(device_class="ecg_patch", channel="harsh",
                            simulated_seconds=10.0)
        assert result.max_leaf_power_rel_error() < 0.05
        assert len(result.rows()) == len(coding.DEFAULT_RATES) + 1
