"""Tests for the experiment drivers (E1-E8): the paper's figures and claims."""

from __future__ import annotations


import pytest

from repro import units
from repro.core.battery_life import LifeBand
from repro.core.partition import PartitionObjective
from repro.experiments import (
    claims,
    fig1_power_breakdown,
    fig2_battery_survey,
    fig3_battery_projection,
    isa_ablation,
    network_scaling,
    partitioned_inference,
    perpetual,
)


class TestE1PowerBreakdown:
    @pytest.fixture(scope="class")
    def result(self):
        return fig1_power_breakdown.run()

    def test_covers_three_representative_nodes(self, result):
        assert set(result.comparisons) == {"ECG patch", "audio AI pin",
                                           "camera glasses"}

    def test_uw_class_nodes_gain_50x_or_more(self, result):
        """Fig. 1's headline: removing the CPU+radio buys orders of magnitude."""
        reductions = result.reduction_factors()
        assert reductions["ECG patch"] >= 50.0
        assert reductions["audio AI pin"] >= 50.0

    def test_camera_node_limited_by_its_sensor(self, result):
        """For video nodes the camera dominates, so the gain is modest —
        consistent with Fig. 3 keeping video at all-day battery life."""
        assert 1.0 < result.reduction_factors()["camera glasses"] < 10.0

    def test_human_inspired_component_bands(self, result):
        comparison = result.comparisons["ECG patch"]
        budget = comparison.human_inspired
        assert budget.component_power("sensor") <= units.microwatt(50.0)
        assert budget.component_power("isa") <= units.microwatt(300.0)
        assert budget.component_power("wi-r") <= units.microwatt(300.0)

    def test_conventional_radio_is_tens_of_milliwatts(self, result):
        comparison = result.comparisons["ECG patch"]
        radio = comparison.conventional.component_power("radio")
        assert units.milliwatt(5.0) <= radio <= units.milliwatt(50.0)

    def test_rows_are_table_ready(self, result):
        rows = result.rows()
        assert any(row["component"] == "TOTAL" for row in rows)
        assert any(row["component"] == "power reduction factor" for row in rows)


class TestE2BatterySurvey:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2_battery_survey.run()

    def test_full_agreement_with_paper_bands(self, result):
        assert result.agreement_fraction == 1.0

    def test_survey_size(self, result):
        assert result.device_count >= 10

    def test_band_lookup(self, result):
        assert result.band_of("smart ring") is LifeBand.ALL_WEEK
        assert result.band_of("smartphone") is LifeBand.SUB_DAY

    def test_extremes(self):
        longest, shortest = fig2_battery_survey.longest_and_shortest_lived()
        assert longest in ("smart ring", "fitness tracker")
        assert shortest in ("mixed-reality headset", "smartphone")

    def test_band_histogram_totals(self):
        histogram = fig2_battery_survey.band_histogram()
        assert sum(histogram.values()) == fig2_battery_survey.run().device_count


class TestE3BatteryProjection:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3_battery_projection.run(n_points=31)

    def test_device_bands_match_paper(self, result):
        assert result.bands_match_paper()
        bands = fig3_battery_projection.summarize_bands(result)
        assert bands["biopotential sensor patch (ECG/ExG)"] == "perpetual"
        assert bands["wearable AI audio node (pin / pocket assistant)"] == "all_week"
        assert bands["wearable AI video node (camera glasses)"] == "all_day"

    def test_perpetual_region_extends_past_biopotential_rates(self, result):
        assert result.perpetual_rate_limit_bps() >= units.kilobit_per_second(10.0)

    def test_wir_life_advantage_grows_with_rate(self, result):
        low = result.wir_life_advantage_at(units.kilobit_per_second(1.0))
        high = result.wir_life_advantage_at(units.kilobit_per_second(300.0))
        assert high > low >= 1.0

    def test_curve_rows_have_expected_columns(self, result):
        row = result.curve_rows()[0]
        for key in ("data_rate_bps", "sensing_power_uw", "comm_power_uw",
                    "life_days", "band"):
            assert key in row


class TestE4Claims:
    @pytest.fixture(scope="class")
    def result(self):
        return claims.run()

    def test_every_claim_holds(self, result):
        failing = [check.claim for check in result.checks if not check.holds]
        assert not failing

    def test_wir_vs_ble_ratios(self, result):
        assert result.check("Wi-R data rate vs BLE").measured_value >= 10.0
        assert result.check("BLE energy per bit vs Wi-R").measured_value >= 50.0

    def test_rf_range_vs_body_channel(self, result):
        rf_range = result.check("RF radiation range").measured_value
        body_channel = result.check("On-body channel length").measured_value
        assert rf_range > 2.0 * body_channel

    def test_security_rows_mark_only_body_confined_links_secure(self, result):
        secure = {row["name"] for row in result.security_rows
                  if row["physically_secure"]}
        assert any("Wi-R" in name for name in secure)
        assert not any("BLE" in name for name in secure)

    def test_technology_rows_cover_six_links(self, result):
        assert len(result.technology_rows) == 6


class TestE5PartitionedInference:
    @pytest.fixture(scope="class")
    def result(self):
        return partitioned_inference.run()

    def test_every_workload_evaluated_on_both_links(self, result):
        workloads = {r.workload for r in result.results}
        links = {r.technology for r in result.results}
        assert workloads == {"keyword_spotting", "ecg_arrhythmia", "vision_tiny",
                             "imu_har"}
        assert len(links) == 2

    def test_wir_offloads_more_than_ble(self, result):
        for workload in ("keyword_spotting", "ecg_arrhythmia", "vision_tiny"):
            over_wir = result.for_workload(workload, "Wi-R (EQS-HBC)")
            over_ble = result.for_workload(workload, "BLE 1M PHY")
            assert over_wir.offload_fraction >= over_ble.offload_fraction

    def test_wir_leaf_energy_below_ble(self, result):
        for workload in ("keyword_spotting", "ecg_arrhythmia", "vision_tiny"):
            over_wir = result.for_workload(workload, "Wi-R (EQS-HBC)")
            over_ble = result.for_workload(workload, "BLE 1M PHY")
            assert over_wir.best_leaf_energy_joules < over_ble.best_leaf_energy_joules

    def test_leaf_energy_reduction_orders_of_magnitude_over_wir(self, result):
        """Hub offload over Wi-R cuts leaf energy >= 100x vs local MCU inference."""
        for workload in ("keyword_spotting", "ecg_arrhythmia"):
            assert result.for_workload(workload, "Wi-R (EQS-HBC)") \
                .leaf_energy_reduction >= 100.0

    def test_always_on_leaf_power_stays_microwatt_class_over_wir(self, result):
        for workload in ("keyword_spotting", "ecg_arrhythmia", "imu_har"):
            over_wir = result.for_workload(workload, "Wi-R (EQS-HBC)")
            assert over_wir.leaf_average_power_watts < units.microwatt(100.0)

    def test_latency_objective_run(self):
        latency_result = partitioned_inference.run(
            objective=PartitionObjective.LATENCY
        )
        assert len(latency_result.results) == len(partitioned_inference.WORKLOADS) * 2

    def test_rows_table_ready(self, result):
        rows = result.rows()
        assert len(rows) == len(result.results)
        assert {"workload", "link", "best_split", "leaf_energy_reduction"} \
            <= set(rows[0])


class TestE6Perpetual:
    @pytest.fixture(scope="class")
    def result(self):
        return perpetual.run()

    def test_paper_class_list_perpetual_at_100uw(self, result):
        """Section V: biopotential, rings, trackers perpetual with harvesting."""
        perpetual_classes = result.perpetual_classes(units.microwatt(100.0))
        joined = " ".join(perpetual_classes).lower()
        for keyword in ("biopotential", "ring", "fitness"):
            assert keyword in joined

    def test_video_node_never_perpetual_in_indoor_range(self, result):
        for level in result.harvest_levels_watts:
            assert not any("video" in name for name in result.perpetual_classes(level))

    def test_energy_neutral_subset_of_perpetual(self, result):
        for level in result.harvest_levels_watts:
            neutral = set(result.energy_neutral_classes(level))
            perpetual_set = set(result.perpetual_classes(level))
            assert neutral <= perpetual_set

    def test_more_harvest_never_fewer_perpetual_classes(self, result):
        counts = [len(result.perpetual_classes(level))
                  for level in result.harvest_levels_watts]
        assert counts == sorted(counts)

    def test_reference_harvester_stack_in_indoor_range(self, result):
        assert units.microwatt(10.0) <= result.reference_harvester_power_watts \
            <= units.microwatt(500.0)

    def test_rows_cover_sweep(self, result):
        rows = result.rows()
        assert len(rows) == len(result.reports) * len(result.harvest_levels_watts)


class TestE7ISAAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return isa_ablation.run()

    def test_isa_marginal_over_wir(self, result):
        """With 100 pJ/bit links, compression buys < 20 % battery life."""
        for node in ("ECG patch", "audio AI node"):
            assert result.isa_life_gain(node, "Wi-R (EQS-HBC)") < 1.2

    def test_isa_essential_over_ble(self, result):
        """With BLE, feature extraction/compression is a 2x+ lever."""
        for node in ("ECG patch", "audio AI node"):
            assert result.isa_life_gain(node, "BLE 1M PHY") > 2.0

    def test_ble_cannot_carry_raw_video(self, result):
        cell = result.cell("video node (QVGA)", "BLE 1M PHY", False)
        assert not cell.link_feasible

    def test_wir_carries_compressed_video(self, result):
        cell = result.cell("video node (QVGA)", "Wi-R (EQS-HBC)", True)
        assert cell.link_feasible

    def test_rows_have_2x2_design_per_node(self, result):
        rows = result.rows()
        assert len(rows) == 3 * 2 * 2


class TestE8NetworkScaling:
    @pytest.fixture(scope="class")
    def result(self):
        return network_scaling.run(node_counts=(1, 2, 4, 8, 16),
                                   simulated_seconds=1.0)

    def test_many_audio_class_leaves_supported(self, result):
        """One Wi-R hub sustains well over a dozen 64 kb/s leaves."""
        assert result.max_feasible_nodes() >= 16

    def test_utilization_increases_with_population(self, result):
        utilizations = [point.tdma_utilization for point in result.points]
        assert utilizations == sorted(utilizations)

    def test_latency_grows_with_population(self, result):
        latencies = [point.mean_latency_ms for point in result.points]
        assert latencies[-1] >= latencies[0]

    def test_delivery_fraction_high_while_feasible(self, result):
        for point in result.points:
            if point.tdma_feasible:
                assert point.delivered_fraction > 0.95

    def test_analytical_only_mode(self):
        quick = network_scaling.run(node_counts=(1, 2), simulate=False)
        assert all(point.simulated is None for point in quick.points)

    def test_saturation_detected_for_video_class_leaves(self):
        saturated = network_scaling.run(
            node_counts=(1, 2, 8),
            per_node_rate_bps=units.megabit_per_second(1.0),
            simulate=False,
        )
        assert not saturated.points[-1].tdma_feasible
        assert saturated.max_feasible_nodes() < 8
