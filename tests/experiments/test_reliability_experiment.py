"""Tests for E16 — link margin vs delivery and retransmission energy."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments import reliability
from repro.runner import resolve


class TestMarginSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return reliability.run()

    def test_delivery_monotone_in_margin(self, result):
        fractions = result.delivered_fractions()
        # Sampled, so allow a hair of slack between adjacent points.
        assert all(late >= early - 0.02
                   for early, late in zip(fractions, fractions[1:]))

    def test_zero_margin_link_closes_but_barely_delivers(self, result):
        lowest = result.points[0]
        assert lowest.margin_db == 0.0
        assert lowest.packet_error_rate > 0.9
        assert lowest.delivered_fraction < 0.3
        assert lowest.simulated.lost_packets > 0

    def test_comfortable_margin_delivers_everything(self, result):
        highest = result.points[-1]
        assert highest.delivered_fraction == 1.0
        assert highest.simulated.retransmissions == 0
        assert highest.simulated.retransmission_energy_joules == 0.0

    def test_sampled_delivery_tracks_closed_form(self, result):
        assert result.max_delivery_abs_error() < 0.05

    def test_attempts_track_closed_form_in_stable_regime(self, result):
        for point in result.points:
            if point.packet_error_rate > 0.6:
                continue  # saturated points legitimately undershoot
            assert point.attempts_per_offered == pytest.approx(
                point.predicted_attempts, rel=0.15, abs=0.05)

    def test_retransmission_energy_decreases_with_margin(self, result):
        energies = [point.simulated.retransmission_energy_joules
                    for point in result.points]
        assert all(late <= early
                   for early, late in zip(energies, energies[1:]))
        assert energies[0] > 0.0

    def test_margin_for_delivery(self, result):
        threshold = result.margin_for_delivery(0.999)
        assert 1.0 <= threshold <= 4.0
        assert math.isinf(result.margin_for_delivery(1.1))

    def test_rows_contract(self, result):
        rows = result.rows()
        assert len(rows) == len(reliability.DEFAULT_MARGINS_DB)
        for row in rows:
            assert 0.0 <= row["per"] <= 1.0
            assert row["mac"] == "fifo"


class TestPolicies:
    def test_runs_under_every_mac_policy(self):
        for policy in ("fifo", "tdma", "polling"):
            result = reliability.run(margins_db=(2.0,), mac_policy=policy,
                                     simulated_seconds=3.0)
            assert result.mac_policy == policy
            assert result.points[0].delivered_fraction > 0.9

    def test_no_arq_retry_limit_zero(self):
        result = reliability.run(margins_db=(1.0,), retry_limit=0,
                                 simulated_seconds=5.0)
        point = result.points[0]
        assert point.simulated.retransmissions == 0
        # One shot per packet: delivery equals (1 - PER) closed form.
        assert point.predicted_delivery == pytest.approx(
            1.0 - point.packet_error_rate)
        assert point.delivered_fraction == pytest.approx(
            point.predicted_delivery, abs=0.1)

    def test_reproducible_for_fixed_seed(self):
        first = reliability.run(margins_db=(1.0, 2.0), simulated_seconds=3.0)
        second = reliability.run(margins_db=(1.0, 2.0), simulated_seconds=3.0)
        assert first.rows() == second.rows()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            reliability.run(node_count=0)
        with pytest.raises(ConfigurationError):
            reliability.run(simulated_seconds=0.0)
        with pytest.raises(ConfigurationError):
            reliability.run(margins_db=())


class TestRegistration:
    def test_registered_as_e16(self):
        spec = resolve("reliability")
        assert spec is resolve("E16")
        assert spec.eid == "E16"
        assert spec.sweep_defaults["mac_policy"] == (
            "fifo", "tdma", "polling")
