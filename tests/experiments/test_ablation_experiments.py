"""Tests for the E9/E10 ablation experiments."""

from __future__ import annotations

import pytest

from repro import units
from repro.experiments import quantization_ablation, termination_ablation


class TestE9TerminationAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return termination_ablation.run()

    def test_sweep_covers_all_operating_points(self, result):
        assert len(result.points) == 4 * 3

    def test_high_impedance_always_wins(self, result):
        for point in result.points:
            assert point.penalty_db > 0.0

    def test_penalty_largest_at_low_frequency(self, result):
        """The 50-ohm termination forms a high-pass: worst at 100 kHz."""
        low_freq = result.at(units.kilohertz(100.0), 1.0)
        high_freq = result.at(units.megahertz(30.0), 1.0)
        assert low_freq.penalty_db > high_freq.penalty_db + 20.0

    def test_high_z_needs_only_cmos_swings(self, result):
        for point in result.points:
            assert point.required_swing_high_z_volts < 3.3

    def test_low_z_infeasible_at_low_frequencies(self, result):
        low_freq = result.at(units.kilohertz(100.0), 1.8)
        assert not low_freq.low_z_swing_feasible

    def test_whole_body_flatness_small(self, result):
        assert result.whole_body_flatness_db < 6.0

    def test_rows_table_ready(self, result):
        rows = result.rows()
        assert len(rows) == len(result.points)
        assert {"frequency_mhz", "penalty_db", "low_z_cmos_feasible"} <= set(rows[0])

    def test_penalty_extremes_ordered(self, result):
        assert result.max_penalty_db() > result.min_penalty_db() > 0.0


class TestE10QuantizationAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return quantization_ablation.run()

    def test_full_factorial_evaluated(self, result):
        expected = len(quantization_ablation.WORKLOADS) \
            * len(quantization_ablation.ACTIVATION_BITS) * 2
        assert len(result.points) == expected

    def test_leaf_energy_grows_with_activation_width_over_ble(self, result):
        for workload in ("keyword_spotting", "ecg_arrhythmia"):
            series = result.series(workload, "BLE 1M PHY")
            energies = [point.leaf_energy_joules for point in series]
            assert energies == sorted(energies)

    def test_wir_leaf_energy_below_ble_at_every_precision(self, result):
        for workload in ("keyword_spotting", "ecg_arrhythmia", "vision_tiny"):
            wir_series = result.series(workload, "Wi-R (EQS-HBC)")
            ble_series = result.series(workload, "BLE 1M PHY")
            for wir_point, ble_point in zip(wir_series, ble_series):
                assert wir_point.leaf_energy_joules < ble_point.leaf_energy_joules

    def test_ble_optimum_computes_locally_at_every_precision(self, result):
        for workload in ("keyword_spotting", "ecg_arrhythmia"):
            for point in result.series(workload, "BLE 1M PHY"):
                assert point.hub_mac_fraction < 0.5

    def test_wir_keeps_offloading_even_at_32_bits(self, result):
        series = result.series("keyword_spotting", "Wi-R (EQS-HBC)")
        widest = series[-1]
        assert widest.activation_bits == 32
        assert widest.hub_mac_fraction > 0.5

    def test_transfer_volume_scales_with_bits_when_split_fixed(self, result):
        series = result.series("ecg_arrhythmia", "Wi-R (EQS-HBC)")
        by_bits = {point.activation_bits: point for point in series}
        if by_bits[8].best_split == by_bits[16].best_split:
            assert by_bits[16].transfer_bits == pytest.approx(
                2.0 * by_bits[8].transfer_bits
            )

    def test_rows_table_ready(self, result):
        rows = result.rows()
        assert len(rows) == len(result.points)
        assert {"workload", "link", "activation_bits", "best_split"} <= set(rows[0])
