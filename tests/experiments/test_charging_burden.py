"""Tests for the E11 charging-burden experiment."""

from __future__ import annotations

import pytest

from repro.experiments import charging_burden


class TestChargingBurden:
    @pytest.fixture(scope="class")
    def result(self):
        return charging_burden.run()

    def test_sweep_covers_requested_counts(self, result):
        counts = [point.device_count for point in result.points]
        assert counts == list(range(1, 16))

    def test_conventional_burden_grows_linearly(self, result):
        one = result.at(1).conventional_events_per_week
        ten = result.at(10).conventional_events_per_week
        assert ten == pytest.approx(10.0 * one, rel=1e-9)

    def test_human_inspired_burden_nearly_flat(self, result):
        """Adding leaves barely changes the weekly charging routine."""
        one = result.at(1).human_inspired_events_per_week
        ten = result.at(10).human_inspired_events_per_week
        assert ten <= 2.0 * one

    def test_conventional_mean_life_matches_fig2_scale(self, result):
        """Today's wearables average hours-to-days of battery (Fig. 2)."""
        assert 0.5 <= result.conventional_mean_life_days <= 7.0

    def test_most_leaf_classes_perpetual(self, result):
        assert result.leaf_classes_perpetual >= 3
        assert result.leaf_classes_perpetual <= result.leaf_classes_total

    def test_incremental_burden_ratio_near_tenfold_at_full_constellation(self, result):
        """The paper's '10x-ing the wearables market' framing: the charging
        burden beyond the already-daily-charged hub is ~an order of
        magnitude lower with the human-inspired architecture."""
        assert result.incremental_burden_ratio_at(10) >= 5.0

    def test_total_burden_ratio_grows_with_device_count(self, result):
        ratios = [point.burden_ratio for point in result.points]
        assert ratios == sorted(ratios)

    def test_crossover_below_three_devices(self, result):
        """The new architecture wins outright once a few devices are worn."""
        crossover = next(
            point.device_count for point in result.points
            if point.conventional_events_per_week
            > point.human_inspired_events_per_week
        )
        assert crossover <= 3

    def test_rows_table_ready(self, result):
        rows = result.rows()
        assert len(rows) == len(result.points)
        assert {"wearables_worn", "burden_ratio", "incremental_burden_ratio"} \
            <= set(rows[0])

    def test_invalid_device_count_rejected(self):
        with pytest.raises(ValueError):
            charging_burden.run(max_devices=0)

    def test_unknown_lookup_raises(self, result):
        with pytest.raises(KeyError):
            result.at(999)
