"""Tests for the E12 implant-extension experiment."""

from __future__ import annotations

import pytest

from repro import units
from repro.comm.ble import ble_1m_phy
from repro.comm.mqs_hbc import mqs_implant_link
from repro.experiments import implant_extension


class TestImplantExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return implant_extension.run()

    def test_every_implant_evaluated_on_both_links(self, result):
        assert len(result.cases) == len(implant_extension.IMPLANT_CLASSES) * 2

    def test_mqs_links_close_at_implant_depths(self, result):
        for name, _rate, _sensing, _depth in implant_extension.IMPLANT_CLASSES:
            case = result.case(name, mqs_implant_link().name)
            assert case.link_closes

    def test_mqs_implants_last_years(self, result):
        """Body-assisted MQS communication keeps implants in the multi-year
        regime expected of implanted medical devices."""
        for name, _rate, _sensing, _depth in implant_extension.IMPLANT_CLASSES:
            case = result.case(name, mqs_implant_link().name)
            assert case.life_years > 3.0

    def test_mqs_beats_ble_for_every_implant(self, result):
        for name, _rate, _sensing, _depth in implant_extension.IMPLANT_CLASSES:
            assert result.life_advantage(name) > 1.5

    def test_relay_power_is_leaf_class(self, result):
        assert result.relay_to_hub_power_watts < units.microwatt(100.0)

    def test_communication_power_below_sensing_for_low_rate_implants(self, result):
        case = result.case("glucose sensing implant", mqs_implant_link().name)
        assert case.communication_power_watts < units.microwatt(1.0)

    def test_rows_table_ready(self, result):
        rows = result.rows()
        assert len(rows) == len(result.cases)
        assert {"implant", "link", "life_years", "link_closes"} <= set(rows[0])

    def test_unknown_case_lookup_raises(self, result):
        with pytest.raises(KeyError):
            result.case("pacemaker", ble_1m_phy().name)
