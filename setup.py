"""Legacy setuptools shim.

All metadata lives in ``pyproject.toml``; this file only enables
``pip install --no-use-pep517 -e .`` in minimal environments that lack
the ``wheel`` package (PEP-517 editable installs require it).
"""

from setuptools import setup

setup()
