"""E1 — Fig. 1: active-power breakdown, today's vs human-inspired IoB node.

The paper's Fig. 1 annotates a today's IoB node with sensor ~100s of uW,
CPU ~mW and radio ~10s of mW of active power, and the human-inspired node
with sensor 10--50 uW, ISA ~100 uW and Wi-R ~100 uW.  This experiment
builds both node types for three representative applications (an ECG
patch, an audio AI pin and a camera-glasses node) from the underlying
models and reports each component's active power and the total reduction
factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..body.landmarks import BodyLandmark
from ..comm.ble import ble_1m_phy
from ..comm.eqs_hbc import wir_commercial, wir_leaf_node
from ..core.architecture import ArchitectureComparison, compare_architectures
from ..core.node import ConventionalNodeSpec, LeafNodeSpec, SensorSuite
from ..sensors.catalog import SensorModality
from .. import units
from ..runner.registry import ExperimentSpec, register


@dataclass(frozen=True)
class Fig1Result:
    """All per-application architecture comparisons."""

    comparisons: dict[str, ArchitectureComparison]

    def reduction_factors(self) -> dict[str, float]:
        """Total node-power reduction per application."""
        return {
            name: comparison.power_reduction_factor
            for name, comparison in self.comparisons.items()
        }

    def rows(self) -> list[dict[str, object]]:
        """Flattened rows for the report table."""
        rows: list[dict[str, object]] = []
        for name, comparison in self.comparisons.items():
            for budget in (comparison.conventional, comparison.human_inspired):
                for component in budget.components:
                    rows.append({
                        "application": name,
                        "node": budget.node_name,
                        "component": component.name,
                        "active_power_uw": component.power_microwatts,
                    })
                rows.append({
                    "application": name,
                    "node": budget.node_name,
                    "component": "TOTAL",
                    "active_power_uw": budget.total_microwatts(),
                })
            rows.append({
                "application": name,
                "node": "(ratio)",
                "component": "power reduction factor",
                "active_power_uw": comparison.power_reduction_factor,
            })
        return rows


def _ecg_patch_pair() -> tuple[ConventionalNodeSpec, LeafNodeSpec]:
    conventional = ConventionalNodeSpec(
        name="ECG patch (today)",
        sensors=SensorSuite(
            modalities=(SensorModality.ECG,),
            sensing_power_watts=units.microwatt(150.0),
        ),
        placement=BodyLandmark.STERNUM,
        radio=ble_1m_phy(),
    )
    human = LeafNodeSpec(
        name="ECG patch (human-inspired)",
        sensors=SensorSuite(
            modalities=(SensorModality.ECG,),
            sensing_power_watts=units.microwatt(20.0),
        ),
        placement=BodyLandmark.STERNUM,
        link=wir_leaf_node(),
    )
    return conventional, human


def _audio_pin_pair() -> tuple[ConventionalNodeSpec, LeafNodeSpec]:
    conventional = ConventionalNodeSpec(
        name="audio AI pin (today)",
        sensors=SensorSuite(
            modalities=(SensorModality.AUDIO,),
            sensing_power_watts=units.microwatt(500.0),
        ),
        placement=BodyLandmark.CHEST,
        radio=ble_1m_phy(),
    )
    human = LeafNodeSpec(
        name="audio AI pin (human-inspired)",
        sensors=SensorSuite(
            modalities=(SensorModality.AUDIO,),
            sensing_power_watts=units.microwatt(50.0),
        ),
        placement=BodyLandmark.CHEST,
        link=wir_leaf_node(),
    )
    return conventional, human


def _video_glasses_pair() -> tuple[ConventionalNodeSpec, LeafNodeSpec]:
    conventional = ConventionalNodeSpec(
        name="camera glasses (today)",
        sensors=SensorSuite(
            modalities=(SensorModality.VIDEO_QVGA,),
            sensing_power_watts=units.milliwatt(40.0),
        ),
        placement=BodyLandmark.RIGHT_EYE,
        radio=ble_1m_phy(),
    )
    human = LeafNodeSpec(
        name="camera glasses (human-inspired)",
        sensors=SensorSuite(
            modalities=(SensorModality.VIDEO_QVGA,),
            sensing_power_watts=units.milliwatt(40.0),
        ),
        placement=BodyLandmark.RIGHT_EYE,
        link=wir_commercial(),
    )
    return conventional, human


def run(mode: str = "active") -> Fig1Result:
    """Build the Fig. 1 comparison for the three representative nodes."""
    pairs = {
        "ECG patch": _ecg_patch_pair(),
        "audio AI pin": _audio_pin_pair(),
        "camera glasses": _video_glasses_pair(),
    }
    comparisons = {
        name: compare_architectures(conventional, human, mode=mode)
        for name, (conventional, human) in pairs.items()
    }
    return Fig1Result(comparisons=comparisons)

def _registry_summary(result: Fig1Result) -> list[str]:
    factors = {name: round(value, 1)
               for name, value in result.reduction_factors().items()}
    return [f"power reduction factors: {factors}"]


register(ExperimentSpec(
    id="fig1",
    eid="E1",
    title="Fig. 1 — active-power breakdown of IoB node architectures",
    module="fig1_power_breakdown",
    run=run,
    summarize=_registry_summary,
    sweep_defaults={"mode": ("active", "average")},
))
