"""E12 (extension) — body-assisted communication for implantable devices.

Section IV-B's closing future-work sentence: "Future research in HBC is
focused on ... exploring body-assisted communication for implantable
devices in EQS regime and beyond using Magneto-Quasistatic Human Body
Communication leveraging the human body's transparency to magnetic
fields."  This extension experiment models that path with the
:mod:`repro.comm.mqs_hbc` substrate:

* an implanted leaf (e.g. a neural or cardiac implant) streams its data
  over an MQS link to an on-skin relay, which forwards it onto the Wi-R
  body bus toward the hub;
* the implant's battery life is projected for a realistic implant cell
  and compared against a conventional BLE implant radio;
* the MQS link budget is checked across implant depths.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..comm.ble import ble_1m_phy
from ..comm.eqs_hbc import wir_leaf_node
from ..comm.link import CommTechnology
from ..comm.mqs_hbc import MQSHBCTransceiver, mqs_implant_link
from ..energy.battery import BatterySpec, battery_life_seconds
from .. import units
from ..runner.registry import ExperimentSpec, register

#: Implant device classes: (name, data rate, sensing power, implant depth).
IMPLANT_CLASSES: tuple[tuple[str, float, float, float], ...] = (
    ("neural recording implant", units.kilobit_per_second(10.0),
     units.microwatt(5.0), 0.02),
    ("cardiac rhythm implant", units.kilobit_per_second(1.0),
     units.microwatt(2.0), 0.05),
    ("glucose sensing implant", units.bit_per_second(200.0),
     units.microwatt(3.0), 0.01),
)


def implant_battery() -> BatterySpec:
    """A small medical-implant primary cell (~120 mAh, lithium)."""
    return BatterySpec(name="implant cell", capacity_mah=120.0)


@dataclass(frozen=True)
class ImplantCase:
    """Battery-life outcome for one implant class over one link."""

    name: str
    technology: str
    data_rate_bps: float
    implant_depth_metres: float
    link_closes: bool
    communication_power_watts: float
    total_power_watts: float
    life_seconds: float

    @property
    def life_years(self) -> float:
        """Projected implant battery life in years."""
        return units.to_years(self.life_seconds)


@dataclass(frozen=True)
class ImplantExtensionResult:
    """All implant x link cases plus the relay hop budget."""

    cases: tuple[ImplantCase, ...]
    relay_to_hub_power_watts: float

    def case(self, name: str, technology: str) -> ImplantCase:
        """Look up one implant/link cell."""
        for case in self.cases:
            if case.name == name and case.technology == technology:
                return case
        raise KeyError((name, technology))

    def life_advantage(self, name: str) -> float:
        """MQS implant life divided by BLE implant life."""
        mqs = self.case(name, mqs_implant_link().name)
        ble = self.case(name, ble_1m_phy().name)
        if ble.life_seconds == 0:
            return float("inf")
        return mqs.life_seconds / ble.life_seconds

    def rows(self) -> list[dict[str, object]]:
        """Rows for the report table."""
        rows: list[dict[str, object]] = []
        for case in self.cases:
            rows.append({
                "implant": case.name,
                "link": case.technology,
                "rate_kbps": case.data_rate_bps / 1000.0,
                "depth_cm": case.implant_depth_metres * 100.0,
                "link_closes": case.link_closes,
                "comm_power_uw": units.to_microwatt(case.communication_power_watts),
                "total_power_uw": units.to_microwatt(case.total_power_watts),
                "life_years": case.life_years,
            })
        return rows


def _evaluate(name: str, rate_bps: float, sensing_power: float,
              depth_metres: float, technology: CommTechnology) -> ImplantCase:
    if isinstance(technology, MQSHBCTransceiver):
        closes = technology.link_closes(depth_metres + 0.01,
                                        tissue_depth_metres=depth_metres)
    else:
        closes = rate_bps <= technology.data_rate_bps()
    comm_power = technology.average_power_at_rate(
        min(rate_bps, technology.data_rate_bps())
    )
    total = sensing_power + comm_power
    life = battery_life_seconds(implant_battery(), total)
    return ImplantCase(
        name=name,
        technology=technology.name,
        data_rate_bps=rate_bps,
        implant_depth_metres=depth_metres,
        link_closes=closes,
        communication_power_watts=comm_power,
        total_power_watts=total,
        life_seconds=life,
    )


def run() -> ImplantExtensionResult:
    """Evaluate every implant class over the MQS link and a BLE baseline."""
    links: tuple[CommTechnology, ...] = (mqs_implant_link(), ble_1m_phy())
    cases = []
    for name, rate, sensing, depth in IMPLANT_CLASSES:
        for technology in links:
            cases.append(_evaluate(name, rate, sensing, depth, technology))

    # The on-skin relay aggregates all implant streams onto the Wi-R bus.
    aggregate_rate = sum(rate for _name, rate, _sensing, _depth in IMPLANT_CLASSES)
    relay_power = wir_leaf_node().average_power_at_rate(
        min(aggregate_rate, wir_leaf_node().data_rate_bps())
    )
    return ImplantExtensionResult(
        cases=tuple(cases),
        relay_to_hub_power_watts=relay_power,
    )

register(ExperimentSpec(
    id="implant",
    eid="E12",
    title="MQS-HBC implant extension (future-work direction)",
    module="implant_extension",
    run=run,
))
