"""E11 — the charging-burden argument behind "10x-ing the wearables market".

Section I closes with the market argument: making leaf nodes perpetual
"removes a key bottleneck of frequent charging of multiple wearables,
potentially expanding the wearable market by tenfold" (also ref [12]).
The underlying quantity is the *charging burden*: how many charge events
per week a user must perform as a function of how many wearables they
carry, under each architecture.

* Today's architecture: every device has its own CPU + radio and its own
  hours-to-week battery (the Fig. 2 survey), so charge events accumulate
  roughly linearly with the number of devices worn.
* Human-inspired architecture: leaf nodes are perpetual (or harvest-
  powered) and only the hub needs its daily charge, so the burden stays
  flat at ~7 events/week no matter how many leaves are added.

This experiment sweeps the number of wearables worn (1..15) and reports
the weekly charge events for both architectures, the crossover point and
the burden ratio at a "whole-body constellation" of 10 devices — the
paper's 10x framing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.survey import WEARABLE_SURVEY, estimate_battery_life_seconds
from ..core.battery_life import DEVICE_CLASS_PLACEMENTS, project_battery_life
from .. import units
from ..runner.registry import ExperimentSpec, register


@dataclass(frozen=True)
class ChargingPoint:
    """Charging burden at one wearable count."""

    device_count: int
    conventional_events_per_week: float
    human_inspired_events_per_week: float
    human_inspired_incremental_events_per_week: float

    @property
    def burden_ratio(self) -> float:
        """Conventional burden divided by total human-inspired burden."""
        if self.human_inspired_events_per_week == 0.0:
            return float("inf")
        return (self.conventional_events_per_week
                / self.human_inspired_events_per_week)

    @property
    def incremental_burden_ratio(self) -> float:
        """Burden ratio excluding the hub's daily charge.

        The hub is the smartphone/headset the user already charges daily,
        so the *additional* charging burden of wearing N devices is the
        quantity the paper's market argument rests on.
        """
        if self.human_inspired_incremental_events_per_week == 0.0:
            return float("inf")
        return (self.conventional_events_per_week
                / self.human_inspired_incremental_events_per_week)


@dataclass(frozen=True)
class ChargingBurdenResult:
    """The device-count sweep."""

    points: tuple[ChargingPoint, ...]
    conventional_mean_life_days: float
    leaf_classes_perpetual: int
    leaf_classes_total: int

    def at(self, device_count: int) -> ChargingPoint:
        """Charging burden at a specific wearable count."""
        for point in self.points:
            if point.device_count == device_count:
                return point
        raise KeyError(device_count)

    def burden_ratio_at(self, device_count: int) -> float:
        """Conventional / human-inspired charge events at *device_count*."""
        return self.at(device_count).burden_ratio

    def incremental_burden_ratio_at(self, device_count: int) -> float:
        """Burden ratio excluding the hub's daily charge."""
        return self.at(device_count).incremental_burden_ratio

    def rows(self) -> list[dict[str, object]]:
        """Rows for the report table."""
        rows: list[dict[str, object]] = []
        for point in self.points:
            rows.append({
                "wearables_worn": point.device_count,
                "conventional_charges_per_week": point.conventional_events_per_week,
                "human_inspired_charges_per_week":
                    point.human_inspired_events_per_week,
                "human_inspired_beyond_hub_per_week":
                    point.human_inspired_incremental_events_per_week,
                "burden_ratio": point.burden_ratio,
                "incremental_burden_ratio": point.incremental_burden_ratio,
            })
        return rows


def _conventional_mean_life_seconds() -> float:
    """Average battery life across the Fig. 2 survey (today's devices)."""
    lives = [estimate_battery_life_seconds(device) for device in WEARABLE_SURVEY]
    return sum(lives) / len(lives)


def _leaf_perpetual_fraction() -> tuple[int, int]:
    """How many Fig. 3 device classes are perpetual under the new architecture."""
    perpetual = 0
    for placement in DEVICE_CLASS_PLACEMENTS:
        point = project_battery_life(
            placement.data_rate_bps,
            sensing_power_watts=placement.sensing_power_watts,
        )
        if point.is_perpetual:
            perpetual += 1
    return perpetual, len(DEVICE_CLASS_PLACEMENTS)


def run(max_devices: int = 15,
        hub_charges_per_week: float = 7.0,
        non_perpetual_leaf_charges_per_week: float = 1.0,
        ) -> ChargingBurdenResult:
    """Sweep the number of wearables worn and compare charging burdens.

    Parameters
    ----------
    max_devices:
        Largest wearable count evaluated.
    hub_charges_per_week:
        The hub's charging cadence (daily, per the paper).
    non_perpetual_leaf_charges_per_week:
        Charge events contributed by the minority of human-inspired leaf
        classes (audio/video) that are not perpetual; they reach all-week
        life, i.e. about one charge per week each.
    """
    if max_devices <= 0:
        raise ValueError("max_devices must be positive")
    conventional_life = _conventional_mean_life_seconds()
    conventional_per_device = units.SECONDS_PER_WEEK / conventional_life

    perpetual_classes, total_classes = _leaf_perpetual_fraction()
    non_perpetual_fraction = 1.0 - perpetual_classes / total_classes

    points = []
    for count in range(1, max_devices + 1):
        conventional = count * conventional_per_device
        non_perpetual_leaves = count * non_perpetual_fraction
        incremental = non_perpetual_leaves * non_perpetual_leaf_charges_per_week
        points.append(ChargingPoint(
            device_count=count,
            conventional_events_per_week=conventional,
            human_inspired_events_per_week=hub_charges_per_week + incremental,
            human_inspired_incremental_events_per_week=incremental,
        ))
    return ChargingBurdenResult(
        points=tuple(points),
        conventional_mean_life_days=units.to_days(conventional_life),
        leaf_classes_perpetual=perpetual_classes,
        leaf_classes_total=total_classes,
    )

def _registry_summary(result: ChargingBurdenResult) -> list[str]:
    # Clamp to the largest swept population so small max_devices grids
    # (e.g. the default sweep's 5-device point) still summarise cleanly.
    count = min(10, max(point.device_count for point in result.points))
    return [f"incremental burden ratio at {count} wearables: "
            f"{result.incremental_burden_ratio_at(count):.1f}x"]


register(ExperimentSpec(
    id="charging",
    eid="E11",
    title="Charging burden vs number of wearables worn",
    module="charging_burden",
    run=run,
    summarize=_registry_summary,
    sweep_defaults={"max_devices": (5, 10, 15)},
))
