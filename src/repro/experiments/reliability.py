"""E16 — link margin vs delivered traffic and retransmission energy.

The paper's link-budget argument (Section III-B/IV) is static: a channel
either closes or it does not.  The reliability layer makes the question
quantitative — *how much* margin buys *how much* delivery — by sweeping
the operating SNR margin of a small Wi-R body, mapping each margin to a
per-packet erasure probability through the :class:`~repro.comm.budget`
waterfall, and running the lossy DES under stop-and-wait ARQ.  Each
operating point reports the sampled delivered fraction, attempt count
and retransmission energy next to the truncated-geometric closed forms
(:class:`~repro.netsim.reliability.ARQPolicy`), so the experiment doubles
as the standing cross-validation of the cohort fast path's reliability
correction.  The sweep runs under any MAC policy: retry storms interact
with slot schedules and polling rings, which is exactly what the default
sweep grid ablates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..comm.budget import LinkBudget
from ..comm.eqs_hbc import wir_commercial
from ..errors import ConfigurationError
from ..netsim.config import NodeConfig
from ..netsim.reliability import ARQPolicy, LinkReliability
from ..netsim.simulator import BodyNetworkSimulator, SimulationResult
from ..netsim.traffic import PeriodicSource
from ..runner.registry import ExperimentSpec, register
from .. import units

#: Detection threshold the margin is measured against.
REQUIRED_SNR_DB = 10.0

#: Default margins swept (dB above the required SNR).  0 dB is a link a
#: designer would call "just closes"; at 4096-bit packets it still
#: erases ~96 % of frames — the gap between "closes" and "delivers" is
#: the point of the experiment.
DEFAULT_MARGINS_DB = (0.0, 1.0, 2.0, 3.0, 4.0, 6.0)


@dataclass(frozen=True)
class ReliabilityPoint:
    """One operating point: sampled DES vs closed-form reliability."""

    margin_db: float
    packet_error_rate: float
    mac_policy: str
    predicted_delivery: float
    predicted_attempts: float
    simulated: SimulationResult

    @property
    def delivered_fraction(self) -> float:
        return self.simulated.delivered_fraction

    @property
    def attempts_per_delivered(self) -> float:
        return self.simulated.attempts_per_delivered

    @property
    def attempts_per_offered(self) -> float:
        """Sampled attempts per *offered* packet — the quantity the
        truncated-geometric closed form predicts.  Undershoots the
        prediction once retries saturate the medium (offered packets
        stuck in the backlog were never attempted), which is itself a
        finding of the sweep."""
        sim = self.simulated
        if sim.offered_packets == 0:
            return 1.0
        return (sim.delivered_packets + sim.erased_attempts) \
            / sim.offered_packets

    @property
    def delivery_abs_error(self) -> float:
        """|sampled − closed-form| delivered fraction."""
        return abs(self.delivered_fraction - self.predicted_delivery)

    def row(self) -> dict[str, object]:
        sim = self.simulated
        return {
            "margin_db": self.margin_db,
            "per": round(self.packet_error_rate, 4),
            "mac": self.mac_policy,
            "delivered_fraction": round(sim.delivered_fraction, 4),
            "predicted_delivery": round(self.predicted_delivery, 4),
            "attempts_per_offered": round(self.attempts_per_offered, 3),
            "predicted_attempts": round(self.predicted_attempts, 3),
            "lost": sim.lost_packets,
            "retx": sim.retransmissions,
            "retx_energy_uj": round(
                sim.retransmission_energy_joules * 1e6, 3),
            "mean_latency_ms": round(sim.mean_latency_seconds * 1e3, 3),
        }


@dataclass(frozen=True)
class ReliabilityResult:
    """E16 outcome: the margin sweep under one MAC policy."""

    mac_policy: str
    retry_limit: int | None
    bits_per_packet: float
    points: tuple[ReliabilityPoint, ...]

    def rows(self) -> list[dict[str, object]]:
        return [point.row() for point in self.points]

    def max_delivery_abs_error(self) -> float:
        """Worst sampled-vs-closed-form delivered-fraction gap."""
        return max(point.delivery_abs_error for point in self.points)

    def delivered_fractions(self) -> list[float]:
        """Delivered fraction per swept margin, in sweep order."""
        return [point.delivered_fraction for point in self.points]

    def margin_for_delivery(self, target: float = 0.999) -> float:
        """Smallest swept margin whose link delivers *target* traffic."""
        for point in self.points:
            if point.delivered_fraction >= target:
                return point.margin_db
        return math.inf


def run(margins_db: tuple[float, ...] = DEFAULT_MARGINS_DB,
        mac_policy: str = "fifo",
        retry_limit: int | None = 3,
        node_count: int = 4,
        per_node_rate_bps: float = units.kilobit_per_second(16.0),
        bits_per_packet: float = 4096.0,
        simulated_seconds: float = 20.0,
        seed: int = 0) -> ReliabilityResult:
    """Sweep the SNR margin of a lossy Wi-R body under ARQ.

    Every margin maps to one packet-erasure probability (shared by all
    leaves); the DES then samples delivery, retransmissions and energy
    at that operating point.  Keep ``per_node_rate_bps`` modest — retry
    storms multiply airtime, and the low-margin points are *meant* to
    approach saturation, not start there.
    """
    if node_count < 1:
        raise ConfigurationError("node count must be >= 1")
    if simulated_seconds <= 0:
        raise ConfigurationError("simulated duration must be positive")
    if not margins_db:
        raise ConfigurationError("sweep needs at least one margin")
    arq = ARQPolicy(retry_limit=retry_limit)
    technology = wir_commercial()
    points: list[ReliabilityPoint] = []
    for margin in margins_db:
        budget = LinkBudget.from_snr_db(REQUIRED_SNR_DB + margin,
                                        required_snr_db=REQUIRED_SNR_DB)
        error_rate = budget.packet_error_rate(bits_per_packet)
        reliability = LinkReliability(seed=seed, arq=arq)
        simulator = BodyNetworkSimulator(technology, rng=seed,
                                         arbitration=mac_policy,
                                         reliability=reliability)
        for index in range(node_count):
            simulator.attach(NodeConfig(
                f"leaf{index}",
                PeriodicSource.from_rate(per_node_rate_bps,
                                         bits_per_packet=bits_per_packet),
                sensing_power_watts=units.microwatt(30.0),
            ))
            reliability.set_error_rate(f"leaf{index}", error_rate)
        points.append(ReliabilityPoint(
            margin_db=margin,
            packet_error_rate=error_rate,
            mac_policy=mac_policy,
            predicted_delivery=arq.delivery_probability(error_rate),
            predicted_attempts=arq.expected_attempts(error_rate),
            simulated=simulator.run(simulated_seconds),
        ))
    return ReliabilityResult(
        mac_policy=mac_policy,
        retry_limit=retry_limit,
        bits_per_packet=bits_per_packet,
        points=tuple(points),
    )


def _summary(result: ReliabilityResult) -> list[str]:
    lowest = result.points[0]
    return [
        f"mac policy: {result.mac_policy}, "
        f"retry limit: {result.retry_limit}",
        f"margin for >=99.9% delivery: "
        f"{result.margin_for_delivery(0.999):g} dB "
        f"(at {lowest.margin_db:g} dB the link still erases "
        f"{lowest.packet_error_rate * 100.0:.0f}% of frames)",
        "worst closed-form delivery gap: "
        f"{result.max_delivery_abs_error():.3f}",
    ]


register(ExperimentSpec(
    id="reliability",
    eid="E16",
    title="Link margin vs delivered fraction and retransmission energy",
    module="reliability",
    run=run,
    rows=lambda result: result.rows(),
    summarize=_summary,
    sweep_defaults={"seed": (0, 1),
                    "mac_policy": ("fifo", "tdma", "polling")},
))
