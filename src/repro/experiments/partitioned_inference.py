"""E5 — partitioned DNN inference across the leaf-hub Wi-R link.

Section V's distributed IoB network lets "perpetually operating wearables
... use the computational resources of the hub to perform power hungry
tasks using ultra-low-power communication enabled by Wi-R".  This
experiment makes that quantitative for the model-zoo workloads:

* For every workload, sweep the DNN split point and find the optimum
  under the leaf-energy objective, over Wi-R and over BLE.
* Report the expected crossover behaviour: with Wi-R the optimum moves
  toward shipping data early (full or near-full offload) and the leaf's
  energy per inference drops by orders of magnitude compared with running
  the model on a conventional node's MCU; with BLE the communication
  penalty pushes the optimum toward local computation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..comm.ble import ble_1m_phy
from ..comm.eqs_hbc import wir_commercial
from ..comm.link import CommTechnology
from ..core.compute import ComputeDevice, hub_soc, isa_accelerator, leaf_mcu
from ..core.partition import (
    PartitionDecision,
    PartitionObjective,
    optimal_partition,
)
from ..nn.profile import ModelProfile, profile_model
from ..nn.zoo import build_model
from .. import units
from ..runner.registry import ExperimentSpec, register

#: Workloads evaluated by this experiment and their inference rates (Hz):
#: keyword spotting runs continuously on 1 s windows, ECG beats arrive at
#: ~1.2 Hz, vision runs at a 2 fps "ambient awareness" rate, HAR at 1 Hz.
WORKLOADS: tuple[tuple[str, dict[str, object], float], ...] = (
    ("keyword_spotting", {}, 1.0),
    ("ecg_arrhythmia", {}, 1.2),
    ("vision_tiny", {}, 2.0),
    ("imu_har", {}, 1.0),
)


@dataclass(frozen=True)
class WorkloadPartitionResult:
    """Partitioning outcome for one workload over one link."""

    workload: str
    technology: str
    inference_rate_hz: float
    decision: PartitionDecision
    local_leaf_energy_joules: float

    @property
    def best_leaf_energy_joules(self) -> float:
        """Leaf energy per inference at the optimal split."""
        return self.decision.best.leaf_energy_joules

    @property
    def leaf_energy_reduction(self) -> float:
        """Local-MCU energy divided by the optimal partitioned leaf energy."""
        if self.best_leaf_energy_joules == 0.0:
            return float("inf")
        return self.local_leaf_energy_joules / self.best_leaf_energy_joules

    @property
    def offload_fraction(self) -> float:
        """Fraction of the model's MACs executed on the hub at the optimum."""
        total = self.decision.best.leaf_macs + self.decision.best.hub_macs
        if total == 0:
            return 0.0
        return self.decision.best.hub_macs / total

    @property
    def leaf_average_power_watts(self) -> float:
        """Sustained leaf power for compute + transmit at the workload rate."""
        return self.best_leaf_energy_joules * self.inference_rate_hz


@dataclass(frozen=True)
class PartitionedInferenceResult:
    """All workload x link results."""

    results: tuple[WorkloadPartitionResult, ...]

    def for_workload(self, workload: str,
                     technology_name: str) -> WorkloadPartitionResult:
        """Look up one (workload, link) cell."""
        for result in self.results:
            if result.workload == workload and result.technology == technology_name:
                return result
        raise KeyError((workload, technology_name))

    def rows(self) -> list[dict[str, object]]:
        """Rows for the report table."""
        rows: list[dict[str, object]] = []
        for result in self.results:
            best = result.decision.best
            rows.append({
                "workload": result.workload,
                "link": result.technology,
                "best_split": best.split_index,
                "boundary_layer": best.boundary_layer,
                "hub_mac_fraction": result.offload_fraction,
                "transfer_kbits": best.transfer_bits / 1000.0,
                "leaf_energy_uj": best.leaf_energy_joules / units.MICRO,
                "local_energy_uj": result.local_leaf_energy_joules / units.MICRO,
                "leaf_energy_reduction": result.leaf_energy_reduction,
                "latency_ms": best.latency_seconds * 1000.0,
                "leaf_avg_power_uw": units.to_microwatt(result.leaf_average_power_watts),
            })
        return rows


def _evaluate(
    profile: ModelProfile,
    technology: CommTechnology,
    leaf_device: ComputeDevice,
    hub_device: ComputeDevice,
    local_device: ComputeDevice,
    workload: str,
    inference_rate_hz: float,
    objective: PartitionObjective,
) -> WorkloadPartitionResult:
    decision = optimal_partition(
        profile, leaf_device, hub_device, technology, objective=objective,
    )
    local_energy = local_device.compute_energy_joules(profile.total_macs)
    return WorkloadPartitionResult(
        workload=workload,
        technology=technology.name,
        inference_rate_hz=inference_rate_hz,
        decision=decision,
        local_leaf_energy_joules=local_energy,
    )


def run(objective: PartitionObjective = PartitionObjective.LEAF_ENERGY,
        ) -> PartitionedInferenceResult:
    """Partition every zoo workload over Wi-R and over BLE."""
    leaf = isa_accelerator()
    hub = hub_soc()
    mcu = leaf_mcu()
    links: tuple[CommTechnology, ...] = (wir_commercial(), ble_1m_phy())

    results: list[WorkloadPartitionResult] = []
    for workload, kwargs, rate_hz in WORKLOADS:
        model = build_model(workload, **kwargs)
        profile = profile_model(model)
        for technology in links:
            results.append(_evaluate(
                profile, technology, leaf, hub, mcu, workload, rate_hz, objective,
            ))
    return PartitionedInferenceResult(results=tuple(results))

register(ExperimentSpec(
    id="partition",
    eid="E5",
    title="Partitioned DNN inference across the body network",
    module="partitioned_inference",
    run=run,
    sweep_defaults={"objective": tuple(PartitionObjective)},
))
