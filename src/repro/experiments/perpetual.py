"""E6 — perpetual operation under indoor energy harvesting.

Section V: "With current energy harvesting modalities, 10-200 uW power
harvesting is possible in indoor conditions.  Using Wi-R to communicate
between leaf and edge nodes, it is projected that wearable devices like
biopotential sensors, smart rings and fitness trackers can be made
perpetually operable."  This experiment sweeps harvested power over the
10--200 uW range and reports which device classes become energy-neutral
(no battery needed) and which are battery-perpetual (>1 year on the
1000 mAh cell).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.battery_life import (
    DEVICE_CLASS_PLACEMENTS,
    PERPETUAL_THRESHOLD_SECONDS,
    project_battery_life,
)
from ..core.feasibility import FeasibilityReport
from ..energy.battery import battery_life_seconds, coin_cell_high_capacity
from ..energy.harvester import (
    HarvestingEnvironment,
    indoor_photovoltaic,
    thermoelectric_body,
    total_harvested_power,
)
from .. import units
from ..runner.registry import ExperimentSpec, register


@dataclass(frozen=True)
class PerpetualResult:
    """Feasibility of each device class across the harvesting sweep."""

    harvest_levels_watts: tuple[float, ...]
    reports: dict[str, tuple[FeasibilityReport, ...]]
    reference_harvester_power_watts: float

    def energy_neutral_classes(self, harvest_watts: float) -> list[str]:
        """Device classes that are energy-neutral at *harvest_watts*."""
        index = self._level_index(harvest_watts)
        return [
            name for name, reports in self.reports.items()
            if reports[index].is_energy_neutral
        ]

    def perpetual_classes(self, harvest_watts: float) -> list[str]:
        """Device classes that are perpetual (either route) at *harvest_watts*."""
        index = self._level_index(harvest_watts)
        return [
            name for name, reports in self.reports.items()
            if reports[index].is_perpetual
        ]

    def _level_index(self, harvest_watts: float) -> int:
        levels = np.asarray(self.harvest_levels_watts)
        return int(np.argmin(np.abs(levels - harvest_watts)))

    def rows(self) -> list[dict[str, object]]:
        """Rows for the report table (one per device class x harvest level)."""
        rows: list[dict[str, object]] = []
        for name, reports in self.reports.items():
            for level, report in zip(self.harvest_levels_watts, reports):
                rows.append({
                    "device_class": name,
                    "harvest_uw": units.to_microwatt(level),
                    "load_uw": units.to_microwatt(report.load_power_watts),
                    "life_days": report.battery_life_days,
                    "energy_neutral": report.is_energy_neutral,
                    "perpetual": report.is_perpetual,
                })
        return rows


def run(harvest_levels_watts: tuple[float, ...] | None = None) -> PerpetualResult:
    """Sweep harvested power over the paper's 10--200 uW indoor range."""
    if harvest_levels_watts is None:
        harvest_levels_watts = tuple(
            units.microwatt(level) for level in (0.0, 10.0, 50.0, 100.0, 200.0)
        )

    reports: dict[str, tuple[FeasibilityReport, ...]] = {}
    for placement in DEVICE_CLASS_PLACEMENTS:
        point = project_battery_life(
            placement.data_rate_bps,
            sensing_power_watts=placement.sensing_power_watts,
        )
        class_reports = []
        for harvest in harvest_levels_watts:
            # The sweep is over abstract harvested power levels (the paper's
            # 10-200 uW indoor range), not a specific harvester stack.
            life = battery_life_seconds(
                coin_cell_high_capacity(), point.total_power_watts,
                harvested_power_watts=harvest,
            )
            class_reports.append(FeasibilityReport(
                node_name=placement.name,
                load_power_watts=point.total_power_watts,
                harvested_power_watts=harvest,
                battery_life_seconds=life,
                is_energy_neutral=harvest >= point.total_power_watts,
                is_perpetual=(harvest >= point.total_power_watts
                              or life > PERPETUAL_THRESHOLD_SECONDS),
            ))
        reports[placement.name] = tuple(class_reports)

    reference = total_harvested_power(
        [indoor_photovoltaic(), thermoelectric_body()],
        HarvestingEnvironment.INDOOR_OFFICE,
    )
    return PerpetualResult(
        harvest_levels_watts=tuple(harvest_levels_watts),
        reports=reports,
        reference_harvester_power_watts=reference,
    )

register(ExperimentSpec(
    id="perpetual",
    eid="E6",
    title="Perpetual operation under indoor harvesting",
    module="perpetual",
    run=run,
))
