"""E14 (extension) — population-scale cohort study.

Where E13 runs six hand-written bodies, this experiment *samples* a whole
population of statistically varied wearers from a
:class:`~repro.cohort.spec.CohortSpec` and reports the cohort-level
distribution summaries (latency, delivered fraction, leaf/hub power and
energy percentiles across members).  The default sweep grid ablates
population size against the MAC-policy mix — the "how does the fleet
behave" counterpart of the per-body ablations.

``mac_policy="mixed"`` keeps the spec's default policy mix; naming a
policy pins every member to it.  ``fast_path`` selects the vectorised
steady-state approximation (default; cross-validated against the DES on
every ``validate_stride``-th member) or the full discrete-event run.
"""

from __future__ import annotations

from dataclasses import replace

from ..cohort import Categorical, CohortResult, CohortSpec, run_cohort
from ..errors import ScenarioError
from ..runner.registry import ExperimentSpec, register

#: Accepted mac_policy values ("mixed" keeps the default mix).
POLICY_CHOICES = ("mixed", "fifo", "tdma", "polling")


def run(population: int = 300,
        mac_policy: str = "mixed",
        fast_path: str = "analytic",
        member_duration_seconds: float = 30.0,
        shards: int = 4,
        validate_stride: int = 100,
        seed: int = 0) -> CohortResult:
    """Sample and execute one cohort configuration."""
    if mac_policy not in POLICY_CHOICES:
        raise ScenarioError(
            f"mac_policy must be one of {', '.join(POLICY_CHOICES)}; "
            f"got {mac_policy!r}")
    spec = CohortSpec(
        population=population,
        seed=seed,
        member_duration_seconds=member_duration_seconds,
    )
    if mac_policy != "mixed":
        spec = replace(spec, mac_policies=Categorical(choices=(mac_policy,)))
    return run_cohort(spec, fast_path=fast_path, shard_count=shards,
                      parallel=1, validate_stride=validate_stride)


def _summary(result: CohortResult) -> list[str]:
    return result.summary_lines()


register(ExperimentSpec(
    id="cohort",
    eid="E14",
    title="Population-scale cohort study (sampled wearers, streaming "
          "aggregation)",
    module="cohort_study",
    run=run,
    summarize=_summary,
    sweep_defaults={"population": (100, 300),
                    "mac_policy": ("mixed", "fifo", "tdma", "polling")},
))
