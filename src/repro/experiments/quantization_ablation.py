"""E10 (ablation) — activation precision and the leaf/hub partition point.

The partitioner's transfer term depends on how intermediate activations
are serialised on the link.  This ablation sweeps the activation width
(4/8/16/32 bits per element) for each model-zoo workload over Wi-R and
BLE and reports how the optimal split point, the transferred volume and
the leaf energy move.  The expected shape: over Wi-R the optimum stays at
(or near) full offload at every precision — the transfer term scales with
the activation width but remains microjoule-class, far below any local
compute alternative — while over BLE the optimum is pushed to local
computation regardless of precision because even 4-bit activations are
too expensive to ship at nanojoules per bit.  In other words, the cheap
body link removes quantisation from the critical path, whereas the RF
link cannot be rescued by it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..comm.ble import ble_1m_phy
from ..comm.eqs_hbc import wir_commercial
from ..comm.link import CommTechnology
from ..core.compute import hub_soc, isa_accelerator
from ..core.partition import PartitionObjective, optimal_partition
from ..nn.profile import profile_model
from ..nn.zoo import build_model
from .. import units
from ..runner.registry import ExperimentSpec, register

#: Workloads included in the ablation (name, builder kwargs).
WORKLOADS: tuple[tuple[str, dict[str, object]], ...] = (
    ("keyword_spotting", {}),
    ("ecg_arrhythmia", {}),
    ("vision_tiny", {}),
)

#: Activation widths swept (bits per element).
ACTIVATION_BITS: tuple[int, ...] = (4, 8, 16, 32)


@dataclass(frozen=True)
class QuantizationPoint:
    """Partition outcome for one (workload, link, activation width)."""

    workload: str
    technology: str
    activation_bits: int
    best_split: int
    hub_mac_fraction: float
    transfer_bits: float
    leaf_energy_joules: float
    latency_seconds: float


@dataclass(frozen=True)
class QuantizationAblationResult:
    """All swept points."""

    points: tuple[QuantizationPoint, ...]

    def series(self, workload: str, technology: str) -> list[QuantizationPoint]:
        """Points for one workload/link, ordered by activation width."""
        matched = [
            point for point in self.points
            if point.workload == workload and point.technology == technology
        ]
        return sorted(matched, key=lambda point: point.activation_bits)

    def leaf_energy_spread(self, workload: str, technology: str) -> float:
        """Max/min leaf energy across activation widths (sensitivity metric)."""
        series = self.series(workload, technology)
        energies = [point.leaf_energy_joules for point in series]
        if not energies or min(energies) == 0.0:
            return float("inf")
        return max(energies) / min(energies)

    def rows(self) -> list[dict[str, object]]:
        """Rows for the report table."""
        rows: list[dict[str, object]] = []
        for point in self.points:
            rows.append({
                "workload": point.workload,
                "link": point.technology,
                "activation_bits": point.activation_bits,
                "best_split": point.best_split,
                "hub_mac_fraction": point.hub_mac_fraction,
                "transfer_kbits": point.transfer_bits / 1000.0,
                "leaf_energy_uj": point.leaf_energy_joules / units.MICRO,
                "latency_ms": point.latency_seconds * 1000.0,
            })
        return rows


def run(objective: PartitionObjective = PartitionObjective.LEAF_ENERGY,
        ) -> QuantizationAblationResult:
    """Sweep activation precision for every workload and link."""
    leaf = isa_accelerator()
    hub = hub_soc()
    links: tuple[CommTechnology, ...] = (wir_commercial(), ble_1m_phy())

    points: list[QuantizationPoint] = []
    for workload, kwargs in WORKLOADS:
        model = build_model(workload, **kwargs)
        for bits in ACTIVATION_BITS:
            profile = profile_model(model, activation_bits_per_element=bits)
            for technology in links:
                decision = optimal_partition(profile, leaf, hub, technology,
                                             objective=objective)
                best = decision.best
                total_macs = best.leaf_macs + best.hub_macs
                points.append(QuantizationPoint(
                    workload=workload,
                    technology=technology.name,
                    activation_bits=bits,
                    best_split=best.split_index,
                    hub_mac_fraction=(best.hub_macs / total_macs) if total_macs else 0.0,
                    transfer_bits=best.transfer_bits,
                    leaf_energy_joules=best.leaf_energy_joules,
                    latency_seconds=best.latency_seconds,
                ))
    return QuantizationAblationResult(points=tuple(points))

register(ExperimentSpec(
    id="quantization",
    eid="E10",
    title="Activation-precision / partition ablation",
    module="quantization_ablation",
    run=run,
    sweep_defaults={"objective": tuple(PartitionObjective)},
))
