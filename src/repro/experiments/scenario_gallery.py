"""E13 (extension) — the scenario gallery as a regression surface.

Runs every registered scenario (see :mod:`repro.scenarios`) through the
discrete-event simulator and reports one row per scenario: delivered
traffic, latency, medium utilisation and leaf/hub power.  This is the
workload-diversity counterpart of the single-population scaling ablation
(E8): mixed link technologies, all three MAC arbitration policies and
duty-cycle events exercised in one table.

``duration_scale`` shrinks every scenario's representative duration so
the whole gallery runs in CI-smoke time; pass ``1.0`` for the full
durations (the DES benchmark does).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ScenarioError
from ..scenarios import ScenarioResult, get_scenario, scenario_names
from ..runner.registry import ExperimentSpec, register


@dataclass(frozen=True)
class ScenarioGalleryResult:
    """One run of the whole gallery."""

    duration_scale: float
    results: tuple[ScenarioResult, ...]

    def rows(self) -> list[dict[str, object]]:
        """One report row per scenario."""
        return [result.row() for result in self.results]

    def scenario(self, name: str) -> ScenarioResult:
        """Result of one named scenario in this gallery run."""
        for result in self.results:
            if result.scenario == name:
                return result
        raise ScenarioError(f"scenario {name!r} not part of this gallery run")


def run(scenarios: tuple[str, ...] | None = None,
        duration_scale: float = 1.0,
        seed: int = 0) -> ScenarioGalleryResult:
    """Run the named *scenarios* (default: all registered), scaled in time."""
    if duration_scale <= 0:
        raise ScenarioError("duration scale must be positive")
    names = list(scenarios) if scenarios is not None else scenario_names()
    results = []
    for name in names:
        spec = get_scenario(name)
        results.append(spec.run(
            seed=seed,
            duration_seconds=spec.duration_seconds * duration_scale,
        ))
    return ScenarioGalleryResult(duration_scale=duration_scale,
                                 results=tuple(results))


def _summary(result: ScenarioGalleryResult) -> list[str]:
    worst = max(result.results,
                key=lambda r: r.simulated.p99_latency_seconds)
    policies = sorted({r.arbitration for r in result.results})
    return [
        f"{len(result.results)} scenarios, arbitration policies: "
        + ", ".join(policies),
        f"worst p99 latency: {worst.simulated.p99_latency_seconds * 1e3:.1f} ms "
        f"({worst.scenario})",
    ]


register(ExperimentSpec(
    id="gallery",
    eid="E13",
    title="Scenario gallery across MAC policies and link mixes",
    module="scenario_gallery",
    run=run,
    defaults={"duration_scale": 0.02},
    summarize=_summary,
    sweep_defaults={"seed": (0, 1, 2), "duration_scale": (0.01,)},
))
