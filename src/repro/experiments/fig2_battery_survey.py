"""E2 — Fig. 2: battery life of currently available wearable devices.

The figure groups pre-2024 wearables and 2024 wearable-AI devices and
annotates each with a typical battery-life band.  The reproduction
recomputes every device's life from a representative battery capacity and
average platform power and checks the resulting band against the paper's
label.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.survey import (
    DeviceCategory,
    WEARABLE_SURVEY,
    estimate_battery_life_seconds,
    survey_rows,
)
from ..core.battery_life import LifeBand, classify_battery_life
from ..runner.registry import ExperimentSpec, register


@dataclass(frozen=True)
class Fig2Result:
    """The survey rows plus agreement statistics."""

    rows: list[dict[str, object]]

    @property
    def device_count(self) -> int:
        """Number of surveyed device classes."""
        return len(self.rows)

    @property
    def matching_bands(self) -> int:
        """Devices whose modelled band matches the paper's claim."""
        return sum(1 for row in self.rows if row["matches_claim"])

    @property
    def agreement_fraction(self) -> float:
        """Fraction of devices in the band the paper claims."""
        if not self.rows:
            return 0.0
        return self.matching_bands / self.device_count

    def band_of(self, device_name: str) -> LifeBand:
        """Modelled band for one device class."""
        for row in self.rows:
            if row["device"] == device_name:
                return LifeBand(row["band"])
        raise KeyError(device_name)

    def devices_in_category(self, category: DeviceCategory) -> list[str]:
        """Device names in one of Fig. 2's columns."""
        return [
            row["device"] for row in self.rows if row["category"] == category.value
        ]


def run() -> Fig2Result:
    """Recompute the Fig. 2 survey."""
    return Fig2Result(rows=survey_rows())


def longest_and_shortest_lived() -> tuple[str, str]:
    """Names of the longest- and shortest-lived surveyed devices."""
    lives = {
        device.name: estimate_battery_life_seconds(device)
        for device in WEARABLE_SURVEY
    }
    longest = max(lives, key=lives.get)
    shortest = min(lives, key=lives.get)
    return longest, shortest


def band_histogram() -> dict[str, int]:
    """Count of surveyed devices per modelled life band."""
    counts: dict[str, int] = {}
    for device in WEARABLE_SURVEY:
        band = classify_battery_life(estimate_battery_life_seconds(device))
        counts[band.value] = counts.get(band.value, 0) + 1
    return counts

def _registry_summary(result: Fig2Result) -> list[str]:
    return ["band agreement with the paper: "
            f"{result.agreement_fraction * 100.0:.0f} %"]


register(ExperimentSpec(
    id="fig2",
    eid="E2",
    title="Fig. 2 — battery life of commercial wearables",
    module="fig2_battery_survey",
    run=run,
    summarize=_registry_summary,
))
