"""E4 — the paper's quantitative claims about Wi-R, BLE and RF.

Collected from Sections I and III--IV and treated as a table:

* Wi-R is more than 10x faster than BLE (4 Mb/s vs ~1 Mb/s PHY with ~0.5
  goodput) and consumes less than 1/100 of BLE's communication power.
* EQS-HBC operating points: 415 nW at 10 kb/s, 6.3 pJ/bit at 30 Mb/s,
  ~100 pJ/bit at 4 Mb/s.
* RF radios burn 1--10 mW and radiate 5--10 m, while the body channel is
  only 1--2 m long — the physical-security argument.
* Target leaf-link spec: <=100 pJ/bit, <=100s of uW, >=1 Mb/s.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..comm.ble import ble_1m_phy
from ..comm.eqs_hbc import (
    eqs_hbc_bodywire,
    eqs_hbc_sub_uw,
    wir_commercial,
)
from ..comm.link import CommTechnology, compare_technologies
from ..comm.nfmi import nfmi_hearing_aid
from ..comm.security import interception_report
from ..comm.wifi import wifi_hub_uplink
from ..body.model import default_adult_body
from ..body.landmarks import BodyLandmark
from .. import units
from ..analysis.reporting import format_table
from ..runner.registry import ExperimentSpec, register


@dataclass(frozen=True)
class ClaimCheck:
    """One quantitative claim and what the models say about it."""

    claim: str
    paper_value: str
    measured_value: float
    unit: str
    holds: bool


@dataclass(frozen=True)
class ClaimsResult:
    """All claim checks plus the underlying comparison tables."""

    checks: tuple[ClaimCheck, ...]
    technology_rows: list[dict[str, object]]
    security_rows: list[dict[str, object]]

    @property
    def all_hold(self) -> bool:
        """Whether every checked claim holds in the models."""
        return all(check.holds for check in self.checks)

    def check(self, claim_prefix: str) -> ClaimCheck:
        """Look up a claim check by the start of its description."""
        for check in self.checks:
            if check.claim.startswith(claim_prefix):
                return check
        raise KeyError(claim_prefix)

    def rows(self) -> list[dict[str, object]]:
        """Claim rows for the report table."""
        return [
            {
                "claim": check.claim,
                "paper": check.paper_value,
                "measured": check.measured_value,
                "unit": check.unit,
                "holds": check.holds,
            }
            for check in self.checks
        ]


def technologies() -> list[CommTechnology]:
    """The links compared in the claims table."""
    return [
        wir_commercial(),
        eqs_hbc_bodywire(),
        eqs_hbc_sub_uw(),
        ble_1m_phy(),
        nfmi_hearing_aid(),
        wifi_hub_uplink(),
    ]


def run() -> ClaimsResult:
    """Evaluate every quantitative claim against the models."""
    wir = wir_commercial()
    ble = ble_1m_phy()
    bodywire = eqs_hbc_bodywire()
    sub_uw = eqs_hbc_sub_uw()
    body = default_adult_body()

    checks: list[ClaimCheck] = []

    rate_ratio = wir.data_rate_bps() / ble.data_rate_bps()
    checks.append(ClaimCheck(
        claim="Wi-R data rate vs BLE",
        paper_value="> 10x",
        measured_value=rate_ratio,
        unit="x",
        holds=rate_ratio >= 10.0,
    ))

    power_ratio = ble.tx_active_power() / wir.tx_active_power()
    checks.append(ClaimCheck(
        claim="BLE communication power vs Wi-R",
        paper_value="Wi-R < 1/100 of BLE",
        measured_value=power_ratio,
        unit="x",
        holds=power_ratio > 20.0,
    ))

    energy_ratio = ble.tx_energy_per_bit() / wir.tx_energy_per_bit()
    checks.append(ClaimCheck(
        claim="BLE energy per bit vs Wi-R",
        paper_value=">> 1 (orders of magnitude)",
        measured_value=energy_ratio,
        unit="x",
        holds=energy_ratio > 50.0,
    ))

    checks.append(ClaimCheck(
        claim="Wi-R commercial operating point energy efficiency",
        paper_value="~100 pJ/bit at 4 Mb/s",
        measured_value=units.to_picojoule_per_bit(wir.tx_energy_per_bit()),
        unit="pJ/bit",
        holds=abs(units.to_picojoule_per_bit(wir.tx_energy_per_bit()) - 100.0) < 1.0,
    ))

    checks.append(ClaimCheck(
        claim="BodyWire energy efficiency",
        paper_value="6.3 pJ/bit (sub-10 pJ/bit)",
        measured_value=units.to_picojoule_per_bit(bodywire.tx_energy_per_bit()),
        unit="pJ/bit",
        holds=units.to_picojoule_per_bit(bodywire.tx_energy_per_bit()) < 10.0,
    ))

    checks.append(ClaimCheck(
        claim="Sub-uWrComm transmit power",
        paper_value="~415 nW at 10 kb/s",
        measured_value=sub_uw.tx_active_power() / units.NANO,
        unit="nW",
        holds=abs(sub_uw.tx_active_power() - units.nanowatt(415.0)) < units.nanowatt(5.0),
    ))

    rf_power_mw = units.to_milliwatt(ble.tx_active_power())
    checks.append(ClaimCheck(
        claim="RF radio active power",
        paper_value="1-10 mW",
        measured_value=rf_power_mw,
        unit="mW",
        holds=1.0 <= rf_power_mw <= 20.0,
    ))

    ble_range = ble.radiation_range_metres()
    checks.append(ClaimCheck(
        claim="RF radiation range",
        paper_value="5-10 m (room scale)",
        measured_value=ble_range,
        unit="m",
        holds=ble_range >= 5.0,
    ))

    max_channel = body.max_channel_length()
    checks.append(ClaimCheck(
        claim="On-body channel length",
        paper_value="1-2 m",
        measured_value=max_channel,
        unit="m",
        holds=1.0 <= max_channel <= 2.5,
    ))

    leaf_power_uw = units.to_microwatt(wir.tx_active_power())
    checks.append(ClaimCheck(
        claim="Wi-R leaf link power",
        paper_value="<= 100s of uW",
        measured_value=leaf_power_uw,
        unit="uW",
        holds=leaf_power_uw <= 1000.0,
    ))

    checks.append(ClaimCheck(
        claim="Wi-R data rate meets BAN target",
        paper_value=">= 1 Mb/s",
        measured_value=units.to_megabit_per_second(wir.data_rate_bps()),
        unit="Mb/s",
        holds=wir.data_rate_bps() >= units.megabit_per_second(1.0),
    ))

    # Around-the-body channel length between representative placements
    # (wrist to pocket-hub) stays within the 1-2 m the paper quotes.
    wrist_to_hub = body.channel_length(
        BodyLandmark.RIGHT_WRIST, BodyLandmark.LEFT_POCKET
    )
    checks.append(ClaimCheck(
        claim="Wrist-to-hub channel length",
        paper_value="~1 m",
        measured_value=wrist_to_hub,
        unit="m",
        holds=0.5 <= wrist_to_hub <= 2.0,
    ))

    technology_rows = [
        dict(report.__dict__) for report in compare_technologies(technologies())
    ]
    security_rows = interception_report(technologies())
    return ClaimsResult(
        checks=tuple(checks),
        technology_rows=technology_rows,
        security_rows=security_rows,
    )

def _registry_summary(result: ClaimsResult) -> list[str]:
    return [format_table(result.security_rows, title="physical security")]


register(ExperimentSpec(
    id="claims",
    eid="E4",
    title="Quantitative Wi-R / BLE / RF claims table",
    module="claims",
    run=run,
    summarize=_registry_summary,
))
