"""E18 — crowded rooms: delivered fraction and lifetime vs occupancy.

Every experiment before this one runs a single body in an empty room.
E18 is the multi-body counterpart: N identical wearers share one room
through the :class:`~repro.netsim.environment.RFEnvironment` coupling
— each body's aggregate airtime raises every other body's co-channel
noise floor and coupled EQS voltage, so erasure probabilities climb
with occupancy, ARQ retries burn battery margin, and delivered
fraction and projected lifetime both degrade as the room fills.

The sweep crosses three axes: bodies-per-room (the primary curve), the
MAC arbitration policy, and the per-node controller
(:mod:`repro.control`).  Each body carries lossy Wi-R IMU nodes on a
scaled coin cell plus a BLE pulse-oximeter island, so both
interference paths (EQS leakage and RF co-channel) and the lifetime
projection are exercised at once:

* ``static`` — the neutral controller: no backoff, no low-battery
  throttle; the uncontrolled baseline, and the configuration the
  closed form models exactly;
* ``per_backoff`` — windowed-PER hysteresis on a tx-power boost:
  recovers delivered fraction at high occupancy at a measured energy
  premium;
* ``soc_throttle`` — the duty-cycle throttle on the low-battery
  crossing: trades offered packets for projected lifetime.

Every ``static`` operating point also runs through the cohort closed
form (:func:`~repro.cohort.evaluate_members` with the per-body
interference correction) and must agree with the DES inside the
gallery's delivered-fraction envelope — the multi-body extension of
the standing DES-vs-analytic cross-validation.  Controller-bearing
points report the analytic value as an uncontrolled reference only:
closed-loop adaptation is deliberately outside the steady-state model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cohort import evaluate_members
from ..control import ControllerSpec
from ..errors import ConfigurationError
from ..netsim.environment import RFEnvironment
from ..runner.registry import ExperimentSpec, register
from ..scenarios.environment import BodyPlacement, EnvironmentSpec
from ..scenarios.spec import ReliabilitySpec, ScenarioNodeSpec, ScenarioSpec
from ..sensors.catalog import SensorModality

#: DES-vs-closed-form delivered-fraction envelope (absolute), the same
#: bound the scenario-gallery cross-validation pins.
DELIVERED_ENVELOPE = 0.05

#: Occupancy sweep: bodies sharing the room.
DEFAULT_BODIES = (1, 2, 4, 8)

DEFAULT_DURATION_SECONDS = 120.0

#: Grid pitch between neighbouring bodies — a packed studio class.
DEFAULT_SPACING_METRES = 1.2

_MAC_POLICIES = ("fifo", "tdma", "polling")
_CONTROLLERS = ("static", "per_backoff", "soc_throttle")


def _body_spec(mac_policy: str, duration_seconds: float) -> ScenarioSpec:
    """One crowd member: lossy Wi-R IMUs on a coin cell + a BLE island.

    The IMU pair rides the EQS body channel with a noise margin thin
    enough that room-level leakage moves its erasure rate; the
    pulse-oximeter is a legacy BLE device whose 2.4 GHz floor sits on
    the graded part of the erfc waterfall, so co-channel interference
    from neighbouring bodies walks its erasure rate up with occupancy.
    The oximeter's scaled coin cell starts just above the low-battery
    threshold: with a ~27 nJ/bit radio, ARQ retries (and any
    controller boost premium) dominate its drain, so the projected
    lifetime degrades with the room and the ``soc_throttle`` crossing
    fires mid-run.
    """
    return ScenarioSpec(
        name="e18_member",
        description="E18 crowd member: Wi-R IMU pair + BLE pulse oximeter",
        duration_seconds=duration_seconds,
        arbitration=mac_policy,
        reliability=ReliabilitySpec(
            posture="standing_shoes",
            eqs_noise_rms_volts=4.5e-5,
            rf_noise_floor_dbm=-92.5,
            arq_retry_limit=3,
        ),
        nodes=(
            ScenarioNodeSpec(name="imu", modality=SensorModality.IMU,
                             count=2, bits_per_packet=4096.0,
                             sensing_power_watts=15e-6),
            ScenarioNodeSpec(name="spo2", modality=SensorModality.PPG,
                             technology="ble", bits_per_packet=2048.0,
                             sensing_power_watts=80e-6,
                             battery="cr2032", battery_scale=1e-4,
                             initial_charge_fraction=0.34,
                             low_battery_fraction=0.30),
        ),
    )


@dataclass(frozen=True)
class CrowdPoint:
    """One (bodies-per-room, MAC, controller) operating point."""

    bodies: int
    mac_policy: str
    controller: str
    #: Mean delivered fraction across the room's bodies (DES).
    delivered_fraction: float
    #: Closed-form delivered fraction under the same interference.
    analytic_delivered_fraction: float
    attempts_per_delivered: float
    #: Room-total ARQ retransmission energy (joules).
    retransmission_energy_joules: float
    mean_leaf_power_watts: float
    #: Projected battery lifetime (hours): per body, the weakest
    #: battery node's time-to-empty at its observed drain rate,
    #: averaged across bodies.
    projected_lifetime_hours: float
    #: Controller actions applied across the room (0 for ``static``).
    controller_actions: int
    #: Mean final tx-power offset across controlled nodes (dB).
    mean_tx_offset_db: float

    @property
    def delivered_abs_error(self) -> float:
        """|DES − closed form| delivered fraction (meaningful for
        ``static`` points; controllers are unmodelled analytically)."""
        return abs(self.delivered_fraction
                   - self.analytic_delivered_fraction)

    def row(self) -> dict[str, object]:
        return {
            "bodies": self.bodies,
            "mac": self.mac_policy,
            "controller": self.controller,
            "delivered": round(self.delivered_fraction, 4),
            "analytic": round(self.analytic_delivered_fraction, 4),
            "attempts": round(self.attempts_per_delivered, 3),
            "retx_mj": round(self.retransmission_energy_joules * 1e3, 3),
            "leaf_uw": round(self.mean_leaf_power_watts * 1e6, 1),
            "lifetime_h": round(self.projected_lifetime_hours, 2),
            "actions": self.controller_actions,
            "offset_db": round(self.mean_tx_offset_db, 2),
        }


@dataclass(frozen=True)
class CrowdResult:
    """The occupancy sweep for one (MAC, controller) configuration."""

    mac_policy: str
    controller: str
    duration_seconds: float
    points: tuple[CrowdPoint, ...]

    def rows(self) -> list[dict[str, object]]:
        return [point.row() for point in self.points]

    def max_delivered_abs_error(self) -> float:
        """Worst DES-vs-closed-form gap (the envelope the static
        configuration must stay inside)."""
        return max(point.delivered_abs_error for point in self.points)

    def within_envelope(self) -> bool:
        """Static sweeps assert the gallery envelope; controller sweeps
        have no closed-form counterpart to hold against."""
        if self.controller != "static":
            return True
        return self.max_delivered_abs_error() <= DELIVERED_ENVELOPE

    def delivered_degradation(self) -> float:
        """Delivered-fraction drop from the emptiest to fullest room."""
        return (self.points[0].delivered_fraction
                - self.points[-1].delivered_fraction)

    def lifetime_degradation_hours(self) -> float:
        """Projected-lifetime drop from the emptiest to fullest room."""
        return (self.points[0].projected_lifetime_hours
                - self.points[-1].projected_lifetime_hours)


def _projected_lifetime_hours(spec: ScenarioSpec,
                              duration_seconds: float,
                              state_of_charge: dict[str, float]) -> float:
    """Weakest battery node's time-to-empty at the observed drain."""
    worst = math.inf
    for node in spec.nodes:
        if node.battery is None:
            continue
        for concrete in node.expanded_names():
            end = state_of_charge.get(concrete)
            if end is None:
                continue
            drain = node.initial_charge_fraction - end
            if drain <= 0.0:
                continue
            seconds = duration_seconds * node.initial_charge_fraction / drain
            worst = min(worst, seconds / 3600.0)
    return worst


def _evaluate_point(environment: RFEnvironment, spec: ScenarioSpec,
                    bodies: int, mac_policy: str, controller: str,
                    duration_seconds: float) -> CrowdPoint:
    """Run one placed room through the DES and the closed form."""
    # The epoch schedule is cached, so inspecting it here does not
    # disturb the run's own replay onto the per-body queues.  E18 rooms
    # have full-run occupancy, so the single opening epoch *is* the
    # room's interference state.
    states = environment.interference_schedule()[0][1]
    result = environment.run()

    delivered = [body.delivered_fraction for body in result.body_results]
    attempts = [body.attempts_per_delivered for body in result.body_results]
    retx = sum(body.retransmission_energy_joules
               for body in result.body_results)
    leaf_power = [body.total_leaf_power_watts
                  for body in result.body_results]
    lifetimes = [
        _projected_lifetime_hours(spec, duration_seconds,
                                  body.per_node_state_of_charge)
        for body in result.body_results]
    runtimes = [runtime for body in environment.bodies
                for runtime in body.simulator.controllers.values()]
    offsets = [runtime.offset_db for runtime in runtimes]
    # Cadence actions are counted by the runtimes; crossing-triggered
    # throttles go through the kernel's low-battery dispatch and show
    # up as energy events instead.
    actions = sum(runtime.actions_applied for runtime in runtimes)
    actions += sum(
        1 for body in environment.bodies
        for event in body.simulator.energy_events
        if event.kind == "low_battery")

    analytic = evaluate_members(
        [spec] * bodies,
        interference=[None if state.neutral
                      else (state.rf_dbm, state.eqs_volts)
                      for state in states])

    return CrowdPoint(
        bodies=bodies,
        mac_policy=mac_policy,
        controller=controller,
        delivered_fraction=sum(delivered) / bodies,
        analytic_delivered_fraction=sum(
            metrics.delivered_fraction for metrics in analytic) / bodies,
        attempts_per_delivered=sum(attempts) / bodies,
        retransmission_energy_joules=retx,
        mean_leaf_power_watts=sum(leaf_power) / bodies,
        projected_lifetime_hours=sum(lifetimes) / bodies,
        controller_actions=actions,
        mean_tx_offset_db=(sum(offsets) / len(offsets)
                           if offsets else 0.0),
    )


def run(mac_policy: str = "fifo",
        controller: str = "static",
        bodies_per_room: tuple[int, ...] = DEFAULT_BODIES,
        simulated_seconds: float = DEFAULT_DURATION_SECONDS,
        spacing_metres: float = DEFAULT_SPACING_METRES,
        seed: int = 0) -> CrowdResult:
    """Sweep room occupancy for one MAC policy and controller.

    Each occupancy level places ``n`` copies of the crowd-member body
    on the environment grid (fixed-width layout: existing bodies never
    move as the room fills, so interference is monotone in occupancy),
    runs the coupled DES, and evaluates the closed form under the same
    per-body interference.
    """
    if mac_policy not in _MAC_POLICIES:
        raise ConfigurationError(
            f"unknown MAC policy {mac_policy!r} "
            f"(known: {', '.join(_MAC_POLICIES)})")
    if controller not in _CONTROLLERS:
        raise ConfigurationError(
            f"unknown controller {controller!r} "
            f"(known: {', '.join(_CONTROLLERS)})")
    counts = tuple(int(count) for count in bodies_per_room)
    if not counts or any(count < 1 for count in counts):
        raise ConfigurationError("bodies_per_room must be positive counts")
    if simulated_seconds <= 0:
        raise ConfigurationError("simulated_seconds must be positive")
    if spacing_metres <= 0:
        raise ConfigurationError("spacing_metres must be positive")

    spec = _body_spec(mac_policy, simulated_seconds)
    points: list[CrowdPoint] = []
    for count in counts:
        environment_spec = EnvironmentSpec(
            name=f"e18_room_{count}",
            description=f"E18 sweep room with {count} bodies",
            bodies=(BodyPlacement(
                scenario=spec, count=count, name="member",
                controller=ControllerSpec(kind=controller,
                                          cadence_seconds=5.0)),),
            spacing_metres=spacing_metres,
            # An open studio: line-of-sight 2.4 GHz between bodies
            # (square-law distance falloff, higher reference loss) and
            # mat-to-mat EQS coupling a notch above the gallery default
            # — calibrated so the occupancy sweep walks the BLE
            # waterfall's graded region instead of jumping it.
            rf_reference_loss_db=67.0,
            rf_path_loss_exponent=2.0,
            eqs_leakage_fraction=6e-4,
        )
        points.append(_evaluate_point(
            environment_spec.build(seed=seed), spec, count,
            mac_policy, controller, simulated_seconds))
    return CrowdResult(
        mac_policy=mac_policy,
        controller=controller,
        duration_seconds=simulated_seconds,
        points=tuple(points),
    )


def _summary(result: CrowdResult) -> list[str]:
    first, last = result.points[0], result.points[-1]
    lines = [
        f"mac={result.mac_policy} controller={result.controller}: "
        f"delivered {first.delivered_fraction:.3f} @ {first.bodies} "
        f"bodies -> {last.delivered_fraction:.3f} @ {last.bodies} bodies",
        f"projected lifetime {first.projected_lifetime_hours:.2f} h -> "
        f"{last.projected_lifetime_hours:.2f} h",
    ]
    if result.controller == "static":
        lines.append(
            f"DES vs closed form within "
            f"{result.max_delivered_abs_error():.4f} absolute "
            f"(envelope {DELIVERED_ENVELOPE:.2f})")
    else:
        lines.append(
            f"{last.controller_actions} controller actions at "
            f"{last.bodies} bodies, mean offset "
            f"{last.mean_tx_offset_db:.2f} dB")
    return lines


register(ExperimentSpec(
    id="crowd",
    eid="E18",
    title="Crowded-room occupancy sweep with per-node control",
    module="crowd",
    run=run,
    rows=lambda result: result.rows(),
    summarize=_summary,
    sweep_defaults={
        "mac_policy": ("fifo", "tdma", "polling"),
        "controller": ("static", "per_backoff", "soc_throttle"),
    },
))
