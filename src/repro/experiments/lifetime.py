"""E15 — closed-loop lifetime: the DES reproduces the closed-form projections.

Fig. 3 (E3) and the perpetual-operation sweep (E6) are *closed-form*
projections: battery life equals usable energy over net drain.  The
energy runtime (:mod:`repro.energy.runtime`) makes lifetime an emergent
property of the discrete-event simulator instead — batteries drain per
packet and per sleep interval, harvesters credit energy back, and nodes
brown out when their cell empties.  This experiment closes the loop: for
the Fig. 3 device-class operating points (and the paper's 10--200 uW
indoor harvesting levels on the biopotential patch) it runs a
battery-constrained DES node to brownout and checks the observed death
time against the closed-form projection within a stated tolerance.

Real lifetimes span months to years; simulating them packet by packet is
pointless.  Instead the 1000 mAh cell is *capacity-scaled* so the
closed-form projection lands at ``target_life_seconds`` of simulated
time.  Scaling capacity scales the projection linearly (self-discharge
scales with capacity too), so agreement at the compressed scale is
agreement at the real scale.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

from ..comm.eqs_hbc import wir_commercial
from ..core.battery_life import (
    DEVICE_CLASS_PLACEMENTS,
    project_battery_life,
)
from ..energy.battery import battery_life_seconds, coin_cell_high_capacity
from ..energy.harvester import rf_ambient
from ..netsim.config import NodeConfig
from ..netsim.simulator import BodyNetworkSimulator
from ..netsim.traffic import PeriodicSource
from ..runner.registry import ExperimentSpec, register
from ..errors import ConfigurationError
from .. import units

#: Agreement the experiment asserts between DES brownout and closed form.
DEFAULT_TOLERANCE = 0.05

#: Device classes validated against the DES.  The AI video node is
#: excluded: at 10 Mb/s it generates thousands of packets per simulated
#: second, which buys no additional coverage over the audio node.
VALIDATED_CLASSES = tuple(
    placement for placement in DEVICE_CLASS_PLACEMENTS
    if placement.data_rate_bps <= units.kilobit_per_second(256.0))

#: Harvesting levels applied to the biopotential patch (the paper's
#: indoor 10--200 uW range, plus the no-harvest reference).
DEFAULT_HARVEST_LEVELS_WATTS = tuple(
    units.microwatt(level) for level in (0.0, 10.0, 50.0, 100.0, 200.0))


@dataclass(frozen=True)
class LifetimePoint:
    """One operating point: closed-form projection vs DES brownout."""

    device_class: str
    data_rate_bps: float
    harvest_watts: float
    load_power_watts: float
    closed_form_life_seconds: float
    des_first_death_seconds: float
    final_state_of_charge: float
    delivered_before_death: int

    @property
    def is_perpetual(self) -> bool:
        """Whether the closed form projects no depletion at all."""
        return math.isinf(self.closed_form_life_seconds)

    @property
    def rel_error(self) -> float:
        """Relative DES-vs-closed-form deviation (0 for perpetual points
        that indeed never died)."""
        if self.is_perpetual:
            return 0.0 if math.isinf(self.des_first_death_seconds) else 1.0
        return abs(self.des_first_death_seconds
                   - self.closed_form_life_seconds) \
            / self.closed_form_life_seconds

    def row(self) -> dict[str, object]:
        return {
            "device_class": self.device_class,
            "rate_bps": self.data_rate_bps,
            "harvest_uw": units.to_microwatt(self.harvest_watts),
            "load_uw": units.to_microwatt(self.load_power_watts),
            "closed_form_s": self.closed_form_life_seconds,
            "des_death_s": self.des_first_death_seconds,
            "rel_error": round(self.rel_error, 4),
            "perpetual": self.is_perpetual,
            "final_soc": round(self.final_state_of_charge, 4),
        }


@dataclass(frozen=True)
class LifetimeResult:
    """E15 outcome: every operating point with its agreement error."""

    target_life_seconds: float
    tolerance: float
    points: tuple[LifetimePoint, ...]

    def rows(self) -> list[dict[str, object]]:
        return [point.row() for point in self.points]

    def max_rel_error(self) -> float:
        return max(point.rel_error for point in self.points)

    def all_within_tolerance(self) -> bool:
        """Whether every point agrees with the closed form."""
        return self.max_rel_error() <= self.tolerance


def _simulate_lifetime(data_rate_bps: float, sensing_power_watts: float,
                       battery_spec, harvest_watts: float,
                       duration_seconds: float, seed: int,
                       bits_per_packet: float,
                       fast_path: str | None = None):
    """One battery-constrained node run to (possible) brownout."""
    simulator = BodyNetworkSimulator(
        wir_commercial(), rng=seed,
        # ~0.2% death-time resolution even before the runtime's
        # within-interval interpolation.
        energy_update_interval_seconds=max(duration_seconds / 500.0, 1e-3),
    )
    simulator.attach(NodeConfig(
        "node",
        PeriodicSource.from_rate(data_rate_bps,
                                 bits_per_packet=bits_per_packet),
        sensing_power_watts=sensing_power_watts,
        battery=battery_spec,
        harvester=(rf_ambient(peak_power_watts=harvest_watts)
                   if harvest_watts > 0.0 else None),
    ))
    return simulator.run(duration_seconds, fast_path=fast_path)


def run(target_life_seconds: float = 240.0,
        harvest_levels_watts: tuple[float, ...] | None = None,
        bits_per_packet: float = 4096.0,
        seed: int = 0,
        tolerance: float = DEFAULT_TOLERANCE,
        fast_path: str | None = None) -> LifetimeResult:
    """Validate the closed-form lifetime numbers against the DES.

    Every Fig. 3 device class (up to the audio node) runs to brownout on
    a capacity-scaled 1000 mAh cell; the biopotential patch additionally
    sweeps the paper's indoor harvesting levels, covering both the
    finite-life and the energy-neutral ("perpetually operable") regimes
    of E6.
    """
    if target_life_seconds <= 0:
        raise ConfigurationError("target life must be positive")
    if tolerance <= 0:
        raise ConfigurationError("tolerance must be positive")
    if harvest_levels_watts is None:
        harvest_levels_watts = DEFAULT_HARVEST_LEVELS_WATTS

    full_cell = coin_cell_high_capacity()
    points: list[LifetimePoint] = []
    for placement in VALIDATED_CLASSES:
        projected = project_battery_life(
            placement.data_rate_bps,
            sensing_power_watts=placement.sensing_power_watts)
        # Compress the projection to the simulated timescale: capacity
        # scales the closed form linearly (leakage included).
        scale = target_life_seconds / projected.life_seconds
        scaled_cell = dataclasses.replace(
            full_cell, capacity_mah=full_cell.capacity_mah * scale)
        harvest_levels = (harvest_levels_watts
                          if placement is VALIDATED_CLASSES[0] else (0.0,))
        for harvest in harvest_levels:
            closed = battery_life_seconds(
                scaled_cell, projected.total_power_watts,
                harvested_power_watts=harvest)
            duration = (closed * 1.25 if math.isfinite(closed)
                        else target_life_seconds)
            result = _simulate_lifetime(
                placement.data_rate_bps, placement.sensing_power_watts,
                scaled_cell, harvest, duration, seed, bits_per_packet,
                fast_path)
            points.append(LifetimePoint(
                device_class=placement.name,
                data_rate_bps=placement.data_rate_bps,
                harvest_watts=harvest,
                load_power_watts=projected.total_power_watts,
                closed_form_life_seconds=closed,
                des_first_death_seconds=result.first_death_seconds,
                final_state_of_charge=(
                    result.per_node_state_of_charge.get("node", 0.0)),
                delivered_before_death=(
                    result.per_node_delivered_before_death.get(
                        "node", result.delivered_packets)),
            ))
    return LifetimeResult(
        target_life_seconds=target_life_seconds,
        tolerance=tolerance,
        points=tuple(points),
    )


def _summary(result: LifetimeResult) -> list[str]:
    finite = [point for point in result.points if not point.is_perpetual]
    perpetual = [point for point in result.points if point.is_perpetual]
    lines = [
        f"{len(finite)} finite operating points agree with the closed "
        f"form within {result.max_rel_error() * 100.0:.2f}% "
        f"(tolerance {result.tolerance * 100.0:.0f}%)",
    ]
    if perpetual:
        survived = sum(
            1 for point in perpetual
            if math.isinf(point.des_first_death_seconds))
        lines.append(
            f"{survived}/{len(perpetual)} energy-neutral points survived "
            "the whole run (perpetual operation reproduced in the DES)")
    return lines


register(ExperimentSpec(
    id="lifetime",
    eid="E15",
    title="Closed-loop lifetime: DES brownout vs closed-form projection",
    module="lifetime",
    run=run,
    rows=lambda result: result.rows(),
    summarize=_summary,
    sweep_defaults={"seed": (0, 1)},
))
