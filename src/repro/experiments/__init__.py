"""Experiment drivers: one module per reproduced figure/table.

Each module exposes a ``run(...)`` function returning a plain result
object and registers an :class:`repro.runner.ExperimentSpec` into the
central registry, so the CLI, the unit tests, the examples, the sweep
runner and the pytest-benchmark harness all execute exactly the same
code path.  Importing this package populates the registry; resolve
experiments with :func:`repro.runner.resolve` (by CLI name, module name
or paper id) instead of importing driver modules directly.

| id | paper artifact                                   | module                    |
|----|--------------------------------------------------|---------------------------|
| E1 | Fig. 1 power breakdown                           | ``fig1_power_breakdown``  |
| E2 | Fig. 2 battery-life survey                       | ``fig2_battery_survey``   |
| E3 | Fig. 3 battery life vs data rate                 | ``fig3_battery_projection``|
| E4 | Wi-R vs BLE / RF claims table                    | ``claims``                |
| E5 | Partitioned DNN inference across the body network| ``partitioned_inference`` |
| E6 | Perpetual operation with harvesting              | ``perpetual``             |
| E7 | ISA / compression ablation                       | ``isa_ablation``          |
| E8 | Body-bus scaling (number of leaf nodes)          | ``network_scaling``       |
| E9 | EQS receiver-termination ablation                | ``termination_ablation``  |
| E10| Activation-precision / partition ablation        | ``quantization_ablation`` |
| E11| Charging burden vs number of wearables           | ``charging_burden``       |
| E12| MQS-HBC implant extension (future work)          | ``implant_extension``     |
| E13| Scenario gallery (MAC policies, link mixes)      | ``scenario_gallery``      |
| E14| Population-scale cohort study                    | ``cohort_study``          |
| E15| Closed-loop lifetime (DES vs closed form)        | ``lifetime``              |
| E16| Link margin vs delivery / retransmission energy  | ``reliability``           |
| E17| Energy-optimal source-coding rate per device class| ``coding``               |
| E18| Crowded-room occupancy sweep with per-node control| ``crowd``                |
"""

from . import (
    charging_burden,
    coding,
    cohort_study,
    crowd,
    implant_extension,
    claims,
    fig1_power_breakdown,
    fig2_battery_survey,
    fig3_battery_projection,
    isa_ablation,
    lifetime,
    network_scaling,
    partitioned_inference,
    perpetual,
    quantization_ablation,
    reliability,
    scenario_gallery,
    termination_ablation,
)

__all__ = [
    "fig1_power_breakdown",
    "fig2_battery_survey",
    "fig3_battery_projection",
    "claims",
    "partitioned_inference",
    "perpetual",
    "isa_ablation",
    "network_scaling",
    "termination_ablation",
    "quantization_ablation",
    "charging_burden",
    "implant_extension",
    "scenario_gallery",
    "cohort_study",
    "lifetime",
    "reliability",
    "coding",
    "crowd",
]
