"""E3 — Fig. 3: projected battery life of Wi-R wearables vs data rate.

Reproduces the paper's headline quantitative figure under its stated
assumptions (1000 mAh battery, 100 pJ/bit Wi-R, survey-based sensing
power, negligible computation) and checks the three claimed bands:
biopotential patches / smart rings / fitness trackers are perpetually
operable (>1 year), audio-input wearable AI reaches all-week life, and AI
video nodes reach all-day life.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..comm.ble import ble_1m_phy
from ..comm.eqs_hbc import wir_commercial
from ..core.battery_life import (
    BatteryLifeProjection,
    LifeBand,
    battery_life_vs_data_rate,
)
from .. import units
from ..runner.registry import ExperimentSpec, register


@dataclass(frozen=True)
class Fig3Result:
    """Wi-R projection plus a BLE counterfactual at the same data rates."""

    wir: BatteryLifeProjection
    ble: BatteryLifeProjection

    def device_rows(self) -> list[dict[str, object]]:
        """The device-class rows of the figure (Wi-R column)."""
        return self.wir.as_rows()

    def curve_rows(self) -> list[dict[str, object]]:
        """The swept Wi-R curve (data rate, power, life, band)."""
        rows: list[dict[str, object]] = []
        for point in self.wir.curve:
            rows.append({
                "data_rate_bps": point.data_rate_bps,
                "sensing_power_uw": units.to_microwatt(point.sensing_power_watts),
                "comm_power_uw": units.to_microwatt(point.communication_power_watts),
                "life_days": point.life_days,
                "band": point.band.value,
            })
        return rows

    def bands_match_paper(self) -> bool:
        """Whether every annotated device class lands in its claimed band."""
        return all(row["matches_paper"] for row in self.wir.as_rows())

    def perpetual_rate_limit_bps(self) -> float:
        """Largest swept data rate that remains perpetually operable (Wi-R)."""
        return self.wir.perpetual_max_rate_bps()

    def wir_life_advantage_at(self, data_rate_bps: float) -> float:
        """Battery-life ratio Wi-R / BLE at the swept point nearest the rate.

        BLE's per-bit energy and sleep floor shorten life at every rate;
        the ratio grows with data rate and is the quantitative version of
        the paper's "<100x lower power than BLE" claim at the node level.
        """
        wir_point = min(self.wir.curve,
                        key=lambda p: abs(p.data_rate_bps - data_rate_bps))
        ble_point = min(self.ble.curve,
                        key=lambda p: abs(p.data_rate_bps - data_rate_bps))
        if ble_point.life_seconds == 0:
            return float("inf")
        return wir_point.life_seconds / ble_point.life_seconds


def run(n_points: int = 61) -> Fig3Result:
    """Sweep data rate for Wi-R and for the BLE counterfactual."""
    rates = np.logspace(2, 8, num=n_points)
    # BLE tops out below the high end of the sweep; cap the counterfactual
    # at its own goodput so the comparison stays physically meaningful.
    ble = ble_1m_phy()
    ble_rates = rates[rates <= ble.data_rate_bps()]
    return Fig3Result(
        wir=battery_life_vs_data_rate(rates, technology=wir_commercial()),
        ble=battery_life_vs_data_rate(ble_rates, technology=ble),
    )


def summarize_bands(result: Fig3Result) -> dict[str, str]:
    """Device class -> modelled band (for quick reporting)."""
    return {
        str(row["device_class"]): str(row["band"]) for row in result.device_rows()
    }


def expected_bands() -> dict[str, LifeBand]:
    """Device class -> band the paper claims (ground truth for tests)."""
    return {
        str(row["device_class"]): LifeBand(str(row["expected_band"]))
        for row in run(n_points=13).device_rows()
    }

def _registry_summary(result: Fig3Result) -> list[str]:
    return ["perpetual region extends to "
            f"{result.perpetual_rate_limit_bps() / 1000.0:.0f} kb/s"]


register(ExperimentSpec(
    id="fig3",
    eid="E3",
    title="Fig. 3 — battery life vs data rate with Wi-R",
    module="fig3_battery_projection",
    run=run,
    rows=lambda result: result.device_rows(),
    summarize=_registry_summary,
    sweep_defaults={"n_points": (31, 61, 121)},
))
