"""E9 (ablation) — receiver termination of the EQS body channel.

Section IV-A of the paper: "At EQS frequencies, a high impedance
termination voltage-mode communication provides a communication channel
which allows data transfer across the whole body at ultra-low
communication powers."  This ablation quantifies that design choice using
the circuit-level channel model: for a sweep of carrier frequencies and
on-body distances it compares the high-impedance (capacitive) termination
against a conventional 50-ohm termination, reporting the channel gain,
the gain penalty of the 50-ohm choice, the flatness across the body, and
the transmit swing a receiver of given sensitivity would require.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..comm.channel import EQSChannelModel
from .. import units
from ..runner.registry import ExperimentSpec, register


@dataclass(frozen=True)
class TerminationPoint:
    """Channel behaviour at one (frequency, distance) operating point."""

    frequency_hz: float
    distance_metres: float
    high_z_gain_db: float
    low_z_gain_db: float
    required_swing_high_z_volts: float
    required_swing_low_z_volts: float

    @property
    def penalty_db(self) -> float:
        """Gain penalty of the 50-ohm termination versus high impedance."""
        return self.high_z_gain_db - self.low_z_gain_db

    @property
    def low_z_swing_feasible(self) -> bool:
        """Whether a CMOS-level (<= 3.3 V) driver could close the 50-ohm link."""
        return self.required_swing_low_z_volts <= 3.3


@dataclass(frozen=True)
class TerminationAblationResult:
    """The full frequency x distance sweep."""

    points: tuple[TerminationPoint, ...]
    whole_body_flatness_db: float

    def at(self, frequency_hz: float, distance_metres: float) -> TerminationPoint:
        """Closest evaluated point to the requested operating point."""
        return min(
            self.points,
            key=lambda p: (abs(np.log10(p.frequency_hz / frequency_hz)),
                           abs(p.distance_metres - distance_metres)),
        )

    def max_penalty_db(self) -> float:
        """Worst-case gain penalty of the 50-ohm termination in the sweep."""
        return max(point.penalty_db for point in self.points)

    def min_penalty_db(self) -> float:
        """Best-case (smallest) penalty — at the top of the EQS band."""
        return min(point.penalty_db for point in self.points)

    def rows(self) -> list[dict[str, object]]:
        """Rows for the report table."""
        rows: list[dict[str, object]] = []
        for point in self.points:
            rows.append({
                "frequency_mhz": point.frequency_hz / 1e6,
                "distance_m": point.distance_metres,
                "high_z_gain_db": point.high_z_gain_db,
                "low_z_gain_db": point.low_z_gain_db,
                "penalty_db": point.penalty_db,
                "swing_high_z_v": point.required_swing_high_z_volts,
                "swing_low_z_v": point.required_swing_low_z_volts,
                "low_z_cmos_feasible": point.low_z_swing_feasible,
            })
        return rows


def run(
    frequencies_hz: tuple[float, ...] = (
        units.kilohertz(100.0),
        units.megahertz(1.0),
        units.megahertz(10.0),
        units.megahertz(30.0),
    ),
    distances_metres: tuple[float, ...] = (0.2, 1.0, 1.8),
    receiver_sensitivity_volts: float = 1e-4,
    channel: EQSChannelModel | None = None,
) -> TerminationAblationResult:
    """Sweep termination choice across the EQS band and the body."""
    channel = channel or EQSChannelModel()
    points: list[TerminationPoint] = []
    for frequency in frequencies_hz:
        for distance in distances_metres:
            high_z = channel.channel_gain_db(distance, frequency,
                                             termination="high_impedance")
            low_z = channel.channel_gain_db(distance, frequency,
                                            termination="low_impedance")
            swing_high = receiver_sensitivity_volts / (10.0 ** (high_z / 20.0))
            swing_low = receiver_sensitivity_volts / (10.0 ** (low_z / 20.0))
            points.append(TerminationPoint(
                frequency_hz=frequency,
                distance_metres=distance,
                high_z_gain_db=high_z,
                low_z_gain_db=low_z,
                required_swing_high_z_volts=swing_high,
                required_swing_low_z_volts=swing_low,
            ))
    flatness = channel.channel_flatness_db(min(distances_metres),
                                           max(distances_metres))
    return TerminationAblationResult(
        points=tuple(points),
        whole_body_flatness_db=flatness,
    )

def _registry_summary(result: TerminationAblationResult) -> list[str]:
    return [f"whole-body gain flatness: {result.whole_body_flatness_db:.1f} dB"]


register(ExperimentSpec(
    id="termination",
    eid="E9",
    title="EQS receiver-termination ablation",
    module="termination_ablation",
    run=run,
    summarize=_registry_summary,
    sweep_defaults={"receiver_sensitivity_volts": (5e-5, 1e-4, 2e-4)},
))
