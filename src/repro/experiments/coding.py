"""E17 — energy-optimal source-coding rate per device class.

E13–E16 treat every sensor bit as a bit the radio must carry.  The
coding layer (:mod:`repro.coding`) adds the missing knob: spend ISA
energy compressing the stream, save radio energy on the shorter
packets — and, on a lossy link, save it twice, because shorter packets
are erased less often and retransmit less.  This experiment locates the
energy-optimal coded-bits-per-source-bit for one *device class* (a
modality, link technology and encoder energy scale) by sweeping the
coding rate across channel qualities and MAC policies.

Every operating point runs the full scenario path twice: through the
DES (:meth:`~repro.scenarios.spec.ScenarioSpec.run`) and through the
cohort analytic fast path (:func:`~repro.cohort.evaluate_member`), so
the sweep doubles as the standing DES-vs-closed-form cross-validation
of the coding correction.  The figure of merit is total leaf energy
per *delivered source bit* — the sensor's real job — which exposes an
interior optimum whenever the encoder's exponential effort curve meets
the radio's (retry-amplified) per-bit cost.

Device classes deliberately span the two energy regimes: Wi-R classes
pair a ~100 pJ/bit radio with a sub-threshold ISA encoder (~10 pJ per
source bit), BLE classes pair a ~27 nJ/bit radio with an MCU-class
encoder (~1 nJ per source bit).  The optimum only moves inside the
feasible interval when the two scales are comparable — which they are,
per class, by construction of the hardware each class models.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..coding import CodingSpec
from ..cohort import evaluate_member
from ..errors import ConfigurationError
from ..netsim.simulator import SimulationResult
from ..runner.registry import ExperimentSpec, register
from ..scenarios.spec import ReliabilitySpec, ScenarioNodeSpec, ScenarioSpec
from ..sensors.catalog import SensorModality

#: Coding rates swept by default (coded bits per source bit); 1.0 is a
#: pass-through coder that still pays its base encode energy, and the
#: low end deliberately crosses each modality's achievable floor so the
#: clamp is visible in the rows.
DEFAULT_RATES = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4)

#: Channel-quality steps, worst first in neither direction: each device
#: class maps these labels onto its technology's noise knob (EQS
#: receiver noise for Wi-R, RF noise floor for BLE) so that "clean" is
#: an essentially lossless link, "noisy" erases a few percent of
#: full-size frames and "harsh" erases roughly a third of them.
CHANNELS = ("clean", "noisy", "harsh")


@dataclass(frozen=True)
class DeviceClass:
    """One hardware archetype the rate sweep optimises for."""

    modality: SensorModality
    technology: str
    bits_per_packet: float
    node_count: int
    sensing_power_watts: float
    #: Encoder energy scale at zero compression depth (J per source bit).
    encode_energy_per_source_bit_joules: float
    #: EQS receiver noise (Wi-R classes) per channel label.
    eqs_noise_rms_volts: dict[str, float] | None = None
    #: RF noise floor in dBm (BLE classes) per channel label.
    rf_noise_floor_dbm: dict[str, float] | None = None

    def reliability(self, channel: str) -> ReliabilitySpec:
        if self.eqs_noise_rms_volts is not None:
            return ReliabilitySpec(
                eqs_noise_rms_volts=self.eqs_noise_rms_volts[channel])
        return ReliabilitySpec(
            rf_noise_floor_dbm=self.rf_noise_floor_dbm[channel])


#: EQS noise steps for Wi-R classes: 1 µV is the nominal receiver; the
#: noisy/harsh steps sit on the PER waterfall of a 4096-bit frame
#: (~4 % and ~40 % erasures respectively).
_WIR_NOISE = {"clean": 1e-6, "noisy": 6e-5, "harsh": 7e-5}

#: RF noise-floor steps for BLE classes (dBm): the nominal −94 dBm
#: floor already erases ~2 % of 4096-bit frames at 1.5 m on-body range;
#: +2 dB of interference pushes past 50 %.
_BLE_FLOOR = {"clean": -98.0, "noisy": -94.0, "harsh": -92.0}

DEVICE_CLASSES: dict[str, DeviceClass] = {
    # Wi-R patches: ~100 pJ/bit radio against a sub-threshold ISA
    # encoder — radio energy is small, so the optimum is shallow and
    # sits near the middle of the feasible band.
    "ecg_patch": DeviceClass(
        modality=SensorModality.ECG, technology="wir",
        bits_per_packet=4096.0, node_count=4,
        sensing_power_watts=30e-6,
        encode_energy_per_source_bit_joules=10e-12,
        eqs_noise_rms_volts=_WIR_NOISE),
    "imu_band": DeviceClass(
        modality=SensorModality.IMU, technology="wir",
        bits_per_packet=4096.0, node_count=6,
        sensing_power_watts=30e-6,
        encode_energy_per_source_bit_joules=10e-12,
        eqs_noise_rms_volts=_WIR_NOISE),
    # BLE legacy devices: a ~27 nJ/bit radio against an MCU-class
    # encoder — the two scales meet mid-band and the optimum is deep.
    "eeg_headband": DeviceClass(
        modality=SensorModality.EEG, technology="ble",
        bits_per_packet=4096.0, node_count=2,
        sensing_power_watts=30e-6,
        encode_energy_per_source_bit_joules=1e-9,
        rf_noise_floor_dbm=_BLE_FLOOR),
    "audio_wearable": DeviceClass(
        modality=SensorModality.AUDIO, technology="ble",
        bits_per_packet=8192.0, node_count=1,
        sensing_power_watts=50e-6,
        encode_energy_per_source_bit_joules=1e-9,
        rf_noise_floor_dbm=_BLE_FLOOR),
}


@dataclass(frozen=True)
class CodingPoint:
    """One operating point: a coding rate run through DES and closed form."""

    requested_rate: float | None
    effective_rate: float
    packet_error_rate: float
    coding_power_watts: float
    analytic_leaf_power_watts: float
    simulated: SimulationResult

    @property
    def simulated_leaf_power_watts(self) -> float:
        return self.simulated.total_leaf_power_watts

    @property
    def source_bits_delivered(self) -> float:
        sim = self.simulated
        if sim.coding_enabled:
            return sim.source_bits_delivered
        return sim.delivered_bits

    @property
    def energy_per_source_bit_joules(self) -> float:
        """Total leaf energy per delivered source bit (the figure of
        merit of the sweep); infinite when nothing got through."""
        delivered = self.source_bits_delivered
        if delivered <= 0.0:
            return float("inf")
        sim = self.simulated
        return sim.total_leaf_power_watts * sim.duration_seconds / delivered

    @property
    def leaf_power_rel_error(self) -> float:
        """|DES − analytic| / DES leaf power (the cross-validation)."""
        if self.simulated_leaf_power_watts == 0.0:
            return 0.0
        return abs(self.simulated_leaf_power_watts
                   - self.analytic_leaf_power_watts) \
            / self.simulated_leaf_power_watts

    def row(self) -> dict[str, object]:
        sim = self.simulated
        return {
            "rate": ("uncoded" if self.requested_rate is None
                     else self.requested_rate),
            "effective_rate": round(self.effective_rate, 4),
            "per": round(self.packet_error_rate, 4),
            "delivered_fraction": round(sim.delivered_fraction, 4),
            "attempts_per_pkt": round(sim.attempts_per_delivered, 3),
            "leaf_power_uw": round(
                self.simulated_leaf_power_watts * 1e6, 3),
            "analytic_leaf_power_uw": round(
                self.analytic_leaf_power_watts * 1e6, 3),
            "energy_nj_per_source_bit": round(
                self.energy_per_source_bit_joules * 1e9, 4),
            "bit_reduction": round(sim.bit_reduction_factor, 4),
            "encode_energy_fraction": round(sim.encode_energy_fraction, 4),
            "encode_power_uw": round(self.coding_power_watts * 1e6, 3),
        }


@dataclass(frozen=True)
class CodingResult:
    """E17 outcome: a rate sweep for one device class and channel."""

    device_class: str
    channel: str
    mac_policy: str
    correlation: float
    points: tuple[CodingPoint, ...]

    def rows(self) -> list[dict[str, object]]:
        return [point.row() for point in self.points]

    def coded_points(self) -> tuple[CodingPoint, ...]:
        return tuple(point for point in self.points
                     if point.requested_rate is not None)

    def optimal(self) -> CodingPoint:
        """The swept point with the least energy per delivered source
        bit, judged by the DES."""
        return min(self.points,
                   key=lambda point: point.energy_per_source_bit_joules)

    def predicted_optimal(self) -> CodingPoint:
        """The optimum the closed form picks (leaf power; the cadence —
        and with it delivered source bits — is rate-invariant)."""
        return min(self.points,
                   key=lambda point: point.analytic_leaf_power_watts)

    def optimal_is_interior(self) -> bool:
        """Whether the DES optimum sits strictly inside the swept
        effective-rate interval — the non-trivial case where neither
        "never compress" nor "compress to the floor" wins."""
        rates = sorted({point.effective_rate for point in self.points})
        best = self.optimal().effective_rate
        return rates[0] < best < rates[-1]

    def max_leaf_power_rel_error(self) -> float:
        """Worst DES-vs-closed-form leaf-power gap across the sweep."""
        return max(point.leaf_power_rel_error for point in self.points)

    def savings_fraction(self) -> float:
        """Leaf-energy saving of the optimum vs the uncoded baseline."""
        baseline = next(point for point in self.points
                        if point.requested_rate is None)
        if baseline.energy_per_source_bit_joules == 0.0:
            return 0.0
        return 1.0 - (self.optimal().energy_per_source_bit_joules
                      / baseline.energy_per_source_bit_joules)


def _scenario(device: DeviceClass, coding: CodingSpec | None,
              channel: str, mac_policy: str,
              duration_seconds: float) -> ScenarioSpec:
    return ScenarioSpec(
        name="e17_point",
        description="E17 coding-rate operating point",
        duration_seconds=duration_seconds,
        arbitration=mac_policy,
        hub_technology=device.technology,
        nodes=(ScenarioNodeSpec(
            name="leaf",
            modality=device.modality,
            technology=device.technology,
            bits_per_packet=device.bits_per_packet,
            count=device.node_count,
            sensing_power_watts=device.sensing_power_watts,
            coding=coding,
        ),),
        reliability=device.reliability(channel),
    )


def run(device_class: str = "eeg_headband",
        channel: str = "noisy",
        mac_policy: str = "fifo",
        rates: tuple[float, ...] = DEFAULT_RATES,
        correlation: float = 0.5,
        effort_exponent: float = 3.0,
        simulated_seconds: float = 30.0,
        seed: int = 0) -> CodingResult:
    """Sweep the coding rate of one device class on one channel.

    The uncoded baseline (``coding=None``) runs first, then every rate
    in *rates*; each point is sampled by the DES and predicted by the
    cohort analytic fast path.  Rates below the modality's
    correlation-adjusted floor clamp to it (visible as repeated
    ``effective_rate`` values in the rows).
    """
    try:
        device = DEVICE_CLASSES[device_class]
    except KeyError:
        known = ", ".join(sorted(DEVICE_CLASSES))
        raise ConfigurationError(
            f"unknown device class {device_class!r} "
            f"(known: {known})") from None
    if channel not in CHANNELS:
        known = ", ".join(CHANNELS)
        raise ConfigurationError(
            f"unknown channel {channel!r} (known: {known})")
    if not rates:
        raise ConfigurationError("sweep needs at least one coding rate")
    if simulated_seconds <= 0:
        raise ConfigurationError("simulated duration must be positive")
    points: list[CodingPoint] = []
    for requested in (None, *rates):
        coding = None if requested is None else CodingSpec(
            rate=requested,
            correlation=correlation,
            energy_per_source_bit_joules=(
                device.encode_energy_per_source_bit_joules),
            effort_exponent=effort_exponent,
        )
        spec = _scenario(device, coding, channel, mac_policy,
                         simulated_seconds)
        node = spec.nodes[0]
        points.append(CodingPoint(
            requested_rate=requested,
            effective_rate=node.effective_coding_rate(),
            packet_error_rate=spec.reliability.node_error_rate(node),
            coding_power_watts=node.coding_power_watts(),
            analytic_leaf_power_watts=evaluate_member(spec).leaf_power_watts,
            simulated=spec.run(seed=seed).simulated,
        ))
    return CodingResult(
        device_class=device_class,
        channel=channel,
        mac_policy=mac_policy,
        correlation=correlation,
        points=tuple(points),
    )


def _summary(result: CodingResult) -> list[str]:
    best = result.optimal()
    predicted = result.predicted_optimal()
    return [
        f"device class: {result.device_class}, channel: {result.channel}, "
        f"mac policy: {result.mac_policy}",
        f"energy-optimal rate: {best.effective_rate:g} coded bits per "
        f"source bit ({'interior' if result.optimal_is_interior() else 'boundary'}; "
        f"closed form picks {predicted.effective_rate:g})",
        f"saving vs uncoded: {result.savings_fraction() * 100.0:.1f}% "
        f"of leaf energy per delivered source bit",
        "worst DES-vs-analytic leaf-power gap: "
        f"{result.max_leaf_power_rel_error() * 100.0:.2f}%",
    ]


register(ExperimentSpec(
    id="coding",
    eid="E17",
    title="Energy-optimal source-coding rate per device class",
    module="coding",
    run=run,
    rows=lambda result: result.rows(),
    summarize=_summary,
    sweep_defaults={
        "device_class": ("ecg_patch", "imu_band",
                         "eeg_headband", "audio_wearable"),
        "channel": ("clean", "noisy", "harsh"),
        "mac_policy": ("fifo", "tdma", "polling"),
    },
))
