"""E8 (ablation) — how many leaf nodes can share one Wi-R hub?

The paper's vision ("10x-ing the wearables market") implies one hub
serving many featherweight leaves.  This ablation sweeps the number of
leaves on the shared body bus using both the analytical TDMA model and the
discrete-event simulator, and reports per-node goodput, delivery latency
and leaf power as the population grows — including where the bus saturates.
The simulator side can run under any arbitration policy (``mac_policy`` =
``fifo`` / ``tdma`` / ``polling``), and the default sweep grid ablates all
three.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..comm.eqs_hbc import wir_commercial
from ..comm.link import CommTechnology
from ..comm.mac import TDMASchedule
from ..netsim.config import NodeConfig
from ..netsim.simulator import BodyNetworkSimulator, SimulationResult
from ..netsim.traffic import PeriodicSource
from .. import units
from ..runner.registry import ExperimentSpec, register


@dataclass(frozen=True)
class ScalingPoint:
    """Network behaviour at one leaf-node population."""

    node_count: int
    per_node_rate_bps: float
    tdma_feasible: bool
    tdma_utilization: float
    simulated: SimulationResult | None

    @property
    def mean_latency_ms(self) -> float:
        """Mean packet latency from the simulator (0 if not simulated)."""
        if self.simulated is None:
            return 0.0
        return self.simulated.mean_latency_seconds * 1000.0

    @property
    def delivered_fraction(self) -> float:
        """Delivered / offered packets from the simulator (1 if not simulated)."""
        if self.simulated is None:
            return 1.0
        offered = self.simulated.delivered_packets + self.simulated.dropped_packets
        if offered == 0:
            return 1.0
        return self.simulated.delivered_packets / offered


@dataclass(frozen=True)
class NetworkScalingResult:
    """The population sweep."""

    technology: str
    per_node_rate_bps: float
    points: tuple[ScalingPoint, ...]
    mac_policy: str = "fifo"

    def max_feasible_nodes(self) -> int:
        """Largest swept population with a feasible TDMA schedule."""
        feasible = [p.node_count for p in self.points if p.tdma_feasible]
        return max(feasible) if feasible else 0

    def rows(self) -> list[dict[str, object]]:
        """Rows for the report table."""
        rows: list[dict[str, object]] = []
        for point in self.points:
            rows.append({
                "nodes": point.node_count,
                "per_node_rate_kbps": point.per_node_rate_bps / 1000.0,
                "tdma_feasible": point.tdma_feasible,
                "tdma_utilization": point.tdma_utilization,
                "mean_latency_ms": point.mean_latency_ms,
                "delivered_fraction": point.delivered_fraction,
            })
        return rows


def run(
    node_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    per_node_rate_bps: float = units.kilobit_per_second(64.0),
    technology: CommTechnology | None = None,
    simulate: bool = True,
    simulated_seconds: float = 2.0,
    seed: int = 0,
    mac_policy: str = "fifo",
) -> NetworkScalingResult:
    """Sweep the leaf population sharing one hub.

    ``per_node_rate_bps`` defaults to 64 kb/s — an audio-feature-class
    stream, the kind of traffic the hub would see from several always-on
    AI leaves.  ``mac_policy`` selects the simulator's arbitration
    (``fifo``, ``tdma`` or ``polling``); the analytical TDMA feasibility
    columns are policy-independent.
    """
    technology = technology or wir_commercial()
    points: list[ScalingPoint] = []
    for count in node_counts:
        schedule = TDMASchedule(link_rate_bps=technology.data_rate_bps())
        for index in range(count):
            schedule.add_node(f"leaf{index}", per_node_rate_bps)
        feasible = schedule.is_feasible()

        simulated: SimulationResult | None = None
        if simulate:
            simulator = BodyNetworkSimulator(technology, rng=seed,
                                             arbitration=mac_policy)
            for index in range(count):
                simulator.attach(NodeConfig(
                    f"leaf{index}",
                    PeriodicSource.from_rate(per_node_rate_bps),
                    sensing_power_watts=units.microwatt(30.0),
                ))
            simulated = simulator.run(simulated_seconds)

        points.append(ScalingPoint(
            node_count=count,
            per_node_rate_bps=per_node_rate_bps,
            tdma_feasible=feasible,
            tdma_utilization=schedule.utilization(),
            simulated=simulated,
        ))
    return NetworkScalingResult(
        technology=technology.name,
        per_node_rate_bps=per_node_rate_bps,
        points=tuple(points),
        mac_policy=mac_policy,
    )

def _registry_summary(result: NetworkScalingResult) -> list[str]:
    return [f"mac policy: {result.mac_policy}",
            "max feasible 64 kb/s leaves on one hub: "
            f"{result.max_feasible_nodes()}"]


register(ExperimentSpec(
    id="scaling",
    eid="E8",
    title="Body-bus scaling with the number of leaf nodes",
    module="network_scaling",
    run=run,
    defaults={"simulated_seconds": 1.0},
    summarize=_registry_summary,
    sweep_defaults={"seed": (0, 1, 2), "simulated_seconds": (0.5,),
                    "mac_policy": ("fifo", "tdma", "polling")},
))
