"""E7 (ablation) — does in-sensor analytics matter once the link is Wi-R?

The paper mentions ISA almost in passing ("the ULP nodes in some cases may
use low power in-sensor analytics (ISA) or data compression (example MJPEG
compression for video)") and then neglects its power in the Fig. 3
projection.  This ablation evaluates a 2x2 design for each node class —
{Wi-R, BLE} x {raw stream, ISA-reduced stream} — and reports node power
and battery life for each cell.  The expected shape: with BLE, ISA (or
local computation) is mandatory because the radio dominates; with Wi-R the
communication term is so small that ISA changes battery life only
marginally, which is exactly why the paper can treat ISA power as
negligible and still ship data to the hub.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..comm.ble import ble_1m_phy
from ..comm.eqs_hbc import wir_commercial
from ..comm.link import CommTechnology
from ..core.battery_life import LifeBand, classify_battery_life
from ..energy.battery import battery_life_seconds, coin_cell_high_capacity
from ..isa.pipeline import (
    ISAPipeline,
    audio_feature_pipeline,
    biopotential_delta_pipeline,
    mjpeg_video_pipeline,
)
from ..sensors.catalog import SensorModality, modality_spec
from .. import units
from ..runner.registry import ExperimentSpec, register


@dataclass(frozen=True)
class ISAConfiguration:
    """One cell of the 2x2 (link x ISA) design."""

    node: str
    technology: str
    uses_isa: bool
    link_rate_bps: float
    link_feasible: bool
    isa_power_watts: float
    communication_power_watts: float
    total_power_watts: float
    life_seconds: float

    @property
    def life_days(self) -> float:
        """Projected battery life in days."""
        if math.isinf(self.life_seconds):
            return math.inf
        return units.to_days(self.life_seconds)

    @property
    def band(self) -> LifeBand:
        """Battery-life band of this configuration."""
        return classify_battery_life(self.life_seconds)


@dataclass(frozen=True)
class ISAAblationResult:
    """All evaluated configurations."""

    configurations: tuple[ISAConfiguration, ...]

    def cell(self, node: str, technology: str, uses_isa: bool) -> ISAConfiguration:
        """Look up one cell of the design."""
        for config in self.configurations:
            if (config.node == node and config.technology == technology
                    and config.uses_isa is uses_isa):
                return config
        raise KeyError((node, technology, uses_isa))

    def isa_life_gain(self, node: str, technology: str) -> float:
        """Battery-life ratio (with ISA / without ISA) for one node and link."""
        with_isa = self.cell(node, technology, True)
        without = self.cell(node, technology, False)
        if without.life_seconds == 0:
            return float("inf")
        return with_isa.life_seconds / without.life_seconds

    def rows(self) -> list[dict[str, object]]:
        """Rows for the report table."""
        rows: list[dict[str, object]] = []
        for config in self.configurations:
            rows.append({
                "node": config.node,
                "link": config.technology,
                "isa": config.uses_isa,
                "stream_kbps": config.link_rate_bps / 1000.0,
                "link_feasible": config.link_feasible,
                "isa_power_uw": units.to_microwatt(config.isa_power_watts),
                "comm_power_uw": units.to_microwatt(config.communication_power_watts),
                "total_power_uw": units.to_microwatt(config.total_power_watts),
                "life_days": config.life_days,
                "band": config.band.value,
            })
        return rows


#: Node classes evaluated by the ablation: (name, modality, sensing power,
#: ISA pipeline builder).
_CASES: tuple[tuple[str, SensorModality, float, ISAPipeline], ...] = (
    ("ECG patch", SensorModality.ECG, units.microwatt(30.0),
     biopotential_delta_pipeline()),
    ("audio AI node", SensorModality.AUDIO, units.milliwatt(2.0),
     audio_feature_pipeline()),
    ("video node (QVGA)", SensorModality.VIDEO_QVGA, units.milliwatt(60.0),
     mjpeg_video_pipeline()),
)


def _evaluate_cell(node: str, modality: SensorModality,
                   sensing_power_watts: float, pipeline: ISAPipeline,
                   technology: CommTechnology,
                   uses_isa: bool) -> ISAConfiguration:
    raw_rate = modality_spec(modality).raw_data_rate_bps
    if uses_isa:
        stream_rate = pipeline.output_rate_bps(raw_rate)
        isa_power = pipeline.compute_power_watts(raw_rate)
    else:
        stream_rate = raw_rate
        isa_power = 0.0

    feasible = stream_rate <= technology.data_rate_bps()
    if feasible:
        comm_power = technology.average_power_at_rate(stream_rate)
    else:
        # The link saturates: it stays active continuously and still cannot
        # carry the stream; report the active power as a lower bound.
        comm_power = technology.tx_active_power()

    total = sensing_power_watts + isa_power + comm_power
    life = battery_life_seconds(coin_cell_high_capacity(), total)
    return ISAConfiguration(
        node=node,
        technology=technology.name,
        uses_isa=uses_isa,
        link_rate_bps=stream_rate,
        link_feasible=feasible,
        isa_power_watts=isa_power,
        communication_power_watts=comm_power,
        total_power_watts=total,
        life_seconds=life,
    )


def run() -> ISAAblationResult:
    """Evaluate the 2x2 (link x ISA) ablation for each node class."""
    technologies: tuple[CommTechnology, ...] = (wir_commercial(), ble_1m_phy())
    configurations: list[ISAConfiguration] = []
    for node, modality, sensing_power, pipeline in _CASES:
        for technology in technologies:
            for uses_isa in (False, True):
                configurations.append(_evaluate_cell(
                    node, modality, sensing_power, pipeline, technology, uses_isa,
                ))
    return ISAAblationResult(configurations=tuple(configurations))

register(ExperimentSpec(
    id="isa",
    eid="E7",
    title="ISA ablation: {Wi-R, BLE} x {raw, ISA}",
    module="isa_ablation",
    run=run,
))
