"""Closed-form macro-tick engine for steady-state DES segments.

The batched kernel in :mod:`repro.netsim.simulator` replays millions of
identical periodic generation -> grant -> completion cycles during the
long stationary stretches of multi-hour runs.  This module leaps over
such a stretch in one vectorized step instead: per-node delivered /
erased / retransmitted packet counts come from the truncated-geometric
ARQ process (the same math the cohort analytic path uses), energy lands
in the streaming :class:`~repro.energy.ledger.EnergyLedger` as one
interval post per component, and latency is ingested through the
weighted batch-add API on :class:`~repro.netsim.stats.LatencyAccumulator`.

The engine is a *fast path*, not a new model: the hybrid driver in
``BodyNetworkSimulator._run_hybrid`` alternates exact kernel chunks with
leaps, and the leap refuses whenever the closed forms would not be
trustworthy.  A leap is only attempted when

* every node's traffic source is strictly periodic (no Poisson sources),
* no user-registered delivery/attempt/loss callbacks exist beyond the
  simulator's own accounting hooks,
* the bus is idle (no in-flight transfer chain, no queued packets),
* all per-node erasure rates yield a finite expected attempt count,
* the offered utilization (including TDMA guard and polling overhead)
  stays below :data:`VALIDITY_UTILIZATION`, matching the cohort
  analytic validity cutoff, and
* no battery is projected (with margin :data:`BATTERY_MARGIN`) to die
  or cross its low-battery threshold before the leap ends.

Re-sync contract at the leap boundary: generation counters, per-node
byte/packet counters, bus statistics, ledgers and battery charge are all
advanced to their closed-form values; erasure RNG streams are advanced
by exactly the number of geometric draws the leap consumed (the 256-draw
prefetch buffers are discarded, so the post-leap stream diverges from
the exact kernel's — outcomes stay distributionally identical and are
validated by the analytic envelope); generation phase restarts at the
boundary, and packets that would still be in flight at the boundary are
counted as delivered.  These approximations are why the hybrid path is
envelope-validated rather than bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from .arbitration import (FIFOArbitration, HubPollingArbitration,
                          TDMAArbitration)
from .packet import Packet
from .traffic import PeriodicSource

#: Relative tolerance on leaf/hub average power, hybrid vs exact.
POWER_REL_TOL = 0.05

#: Absolute tolerance on the delivered fraction, hybrid vs exact.
DELIVERED_ABS_TOL = 0.05

#: Mean latency must agree within this multiplicative factor.
MEAN_LATENCY_FACTOR = 2.5

#: p99 latency must agree within this multiplicative factor.
P99_LATENCY_FACTOR = 3.0

#: Absolute tolerance on bus utilization, hybrid vs exact.
UTILIZATION_ABS_TOL = 0.02

#: Utilization cutoff above which the closed forms are not trusted and
#: the engine refuses to leap.  Kept equal to
#: ``repro.cohort.analytic.VALIDITY_UTILIZATION`` (a test pins the two
#: together; duplicating the constant avoids a netsim -> cohort import).
VALIDITY_UTILIZATION = 0.9

#: A leap may cover at most this fraction of a battery's projected time
#: to death / to its low-battery threshold, so threshold crossings are
#: always handled by the exact kernel.
BATTERY_MARGIN = 0.9

#: Lower bound on the exact-settle chunk length (seconds).
MIN_LEAP_FLOOR_SECONDS = 0.25


@dataclass
class _Row:
    """Compiled per-node constants for the leap closed forms."""

    node: object
    name: str
    period: float
    bits: float
    service: float
    tx_epb: float
    rx_epb: float


class MacroTickEngine:
    """Steady-state segment detector + closed-form leap executor.

    Parameters
    ----------
    simulator:
        The :class:`~repro.netsim.simulator.BodyNetworkSimulator` to
        accelerate.  The engine compiles static eligibility once at
        construction (source types, service times, callback hooks) and
        re-checks the dynamic conditions (bus idle, PER table, battery
        slope) on every :meth:`try_leap` call.
    """

    def __init__(self, simulator) -> None:
        self.sim = simulator
        self.bus = simulator.bus
        self.policy = simulator.bus.policy
        self.queue = simulator.queue
        self.reliability = simulator.reliability
        self.arq = getattr(simulator.reliability, "arq", None)
        policy = self.policy
        self.fifo = type(policy) is FIFOArbitration
        self.tdma = type(policy) is TDMAArbitration
        self.polling = type(policy) is HubPollingArbitration
        self.eligible = self.fifo or self.tdma or self.polling

        # Any user-registered callback beyond the simulator's own three
        # accounting hooks could observe per-packet state the leap never
        # materializes, so its presence disables the fast path outright.
        own = {simulator._account_delivery, simulator._account_attempt,
               simulator._account_loss}
        hooks = (list(getattr(self.bus, "_delivery_callbacks", ()))
                 + list(getattr(self.bus, "_attempt_callbacks", ()))
                 + list(getattr(self.bus, "_loss_callbacks", ())))
        if any(hook not in own for hook in hooks):
            self.eligible = False

        self.rows: list[_Row] = []
        max_period = 0.0
        min_period = math.inf
        max_service = 0.0
        for node in simulator.nodes.values():
            source = node.source
            if type(source) is not PeriodicSource:
                self.eligible = False
                break
            probe = Packet(source=node.name, destination="hub",
                           bits=source.bits_per_packet, created_at=0.0)
            service = self.bus.service_time_seconds(probe)
            self.rows.append(_Row(
                node=node,
                name=node.name,
                period=source.period_seconds,
                bits=float(source.bits_per_packet),
                service=service,
                tx_epb=node.technology.tx_energy_per_bit(),
                rx_epb=node.technology.rx_energy_per_bit(),
            ))
            max_period = max(max_period, source.period_seconds)
            min_period = min(min_period, source.period_seconds)
            max_service = max(max_service, service)
        if len(simulator.nodes) >= self.bus.max_queue_packets:
            # The exact kernel would be dropping packets on queue
            # pressure; the closed forms assume no drops.
            self.eligible = False

        arq = self.arq
        self.ack_bits = float(arq.ack_bits) if arq is not None else 0.0
        self.ack_posting = (self.reliability is not None
                            and self.ack_bits != 0.0)
        self.hub_tx_epb = simulator.technology.tx_energy_per_bit()
        if self.tdma:
            self.superframe = policy.superframe_seconds
            self.guard = policy.guard_seconds
        else:
            self.superframe = 0.0
            self.guard = 0.0
        self._poll_cost: float | None = None

        # Exact-settle chunk: long enough that queue transients from the
        # phase reset at a leap boundary wash out before the next leap.
        self.settle_seconds = max(2.0 * max_period, MIN_LEAP_FLOOR_SECONDS)
        self.min_leap_seconds = max(4.0 * max_period, 2.0 * self.settle_seconds)
        # Flush chunk: when a settle chunk happens to end with a packet
        # in flight (its boundary coinciding with a generation instant),
        # this short kernel run lets the transfer complete without
        # burning a full settle chunk.  Shorter than any period, so no
        # new generation lands inside it; long enough for the in-flight
        # packet (and any ARQ retries) to drain.
        if min_period is math.inf:
            self.flush_seconds = self.settle_seconds
        else:
            self.flush_seconds = max(min_period / 2.0, 8.0 * max_service)
        # Set by a battery-endgame refusal in ``try_leap``: the driver
        # should run the exact kernel through this instant in one chunk.
        self.exact_until: float | None = None
        # Doubled on every consecutive endgame refusal, reset by a
        # successful leap: each exact chunk's generation-phase reset
        # drains slightly less than the continuous rate, which pushes
        # the projected crossing past the chunk end — without backoff
        # the driver would crawl to the threshold in O(life / settle)
        # chunks instead of O(log) ones.
        self._endgame_backoff = 1.0

    def transient_blocked(self) -> bool:
        """Whether only in-flight bus state is holding up a leap."""
        return (self.bus._chain is not None or self.bus._busy
                or self.policy.pending_count() != 0)

    # -- segment detection -------------------------------------------------

    def try_leap(self, start: float, horizon: float) -> float | None:
        """Attempt one closed-form leap from *start* toward *horizon*.

        Returns the leap end time when a leap was executed (all state
        already re-synced to that instant), or ``None`` when the engine
        refuses — the caller then runs an exact kernel chunk instead.
        """
        self.exact_until = None
        if not self.eligible:
            return None
        bus = self.bus
        if bus._chain is not None or bus._busy:
            return None
        if self.policy.pending_count() != 0:
            return None

        reliability = self.reliability
        arq = self.arq
        poll_cost = 0.0
        if self.polling:
            if self._poll_cost is None:
                self._poll_cost = self.policy.poll_cost_seconds()
            poll_cost = self._poll_cost
        windows: dict[str, tuple[float, float]] | None = None
        if self.tdma:
            try:
                windows = self.policy._slot_table()
            except SimulationError:
                return None

        active: list[tuple[_Row, float, float, float, float]] = []
        rho = 0.0
        total_rate = 0.0
        for row in self.rows:
            if not row.node.active:
                continue
            per = reliability.error_rate(row.name) if reliability else 0.0
            if arq is not None:
                mean_att = arq.expected_attempts(per)
                if not math.isfinite(mean_att):
                    return None
                max_att = arq.max_attempts
            else:
                mean_att = 1.0
                max_att = 1.0
            if windows is not None and row.name not in windows:
                return None
            rate = 1.0 / row.period
            rho += rate * row.service * mean_att
            if self.polling:
                rho += rate * mean_att * poll_cost
            total_rate += rate
            active.append((row, per, mean_att, max_att, rate))
        if self.tdma and active:
            rho += len(active) * self.guard / self.superframe
        if rho >= VALIDITY_UTILIZATION:
            return None

        leap_end = self._clamp_batteries(start, horizon, active)
        if leap_end - start < self.min_leap_seconds:
            if leap_end < horizon:
                # A battery endgame, not a crowded horizon: some cell is
                # within ``min_leap_seconds`` of a threshold.  Repeated
                # settle chunks would crawl to the crossing while each
                # chunk's generation-phase reset under-drains the cell
                # and pushes the projection further out (a Zeno loop).
                # Instead, tell the driver to run ONE exact chunk
                # through the projected crossing; past it the node is
                # dead (or re-strided) and leaping resumes.
                span = ((leap_end - start) / BATTERY_MARGIN
                        + self.settle_seconds)
                self.exact_until = start + span * self._endgame_backoff
                self._endgame_backoff *= 2.0
            return None
        self._endgame_backoff = 1.0
        self._leap(start, leap_end, active, rho, total_rate,
                   poll_cost, windows)
        return leap_end

    def _clamp_batteries(self, start: float, horizon: float,
                         active: list) -> float:
        """Shrink the leap so no battery crosses a threshold inside it.

        Inactive nodes still drain static power and can brown out while
        sleeping, so every alive battery is projected — but only active
        nodes carry traffic load.
        """
        traffic: dict[str, float] = {}
        for row, per, mean_att, _max_att, rate in active:
            load = rate * mean_att * row.bits * row.tx_epb
            if self.ack_posting:
                load += (rate * self.arq.delivery_probability(per)
                         * self.ack_bits * row.rx_epb)
            traffic[row.name] = load
        leap_end = horizon
        for row in self.rows:
            node = row.node
            state = node.energy
            if state is None or not state.alive or state.battery is None:
                continue
            load = (node.sensing_power_watts + node.isa_power_watts
                    + node.coding_power_watts
                    + node.technology.sleep_power())
            load += traffic.get(row.name, 0.0)
            life = state.projected_life_seconds(load)
            if math.isfinite(life):
                leap_end = min(leap_end, start + BATTERY_MARGIN * life)
            low = state.low_battery_fraction
            if (low is not None and node.tx_stride == 1
                    and not state.is_low_battery()):
                net = (load + state.leakage_power_watts
                       - state.harvest_power_watts)
                if net > 0.0:
                    charge = state.battery.state_of_charge_joules
                    floor = low * state.battery.spec.usable_energy_joules
                    to_low = (charge - floor) / net
                    leap_end = min(leap_end,
                                   start + BATTERY_MARGIN * max(to_low, 0.0))
        return leap_end

    # -- leap execution ----------------------------------------------------

    def _leap(self, start: float, end: float, active: list, rho: float,
              total_rate: float, poll_cost: float,
              windows: dict[str, tuple[float, float]] | None) -> None:
        span = end - start
        sim = self.sim
        stats = self.bus.stats
        reliability = self.reliability
        arq = self.arq

        if total_rate > 0.0:
            mean_service = sum(rate * row.service * mean_att
                               for row, _per, mean_att, _ma, rate in active)
            mean_service /= total_rate
        else:
            mean_service = 0.0
        wait = rho / (2.0 * max(1.0 - rho, 1e-12)) * mean_service

        slot_span = 0.0
        if windows is not None:
            slot_span = sum(windows[row.name][1]
                            for row, *_rest in active)

        # Equal-period peers generate simultaneously and drain in node
        # order, so each node waits behind the cumulative drain of the
        # peers ranked before it.
        batch_wait: dict[str, float] = {}
        drain_cursor: dict[float, float] = {}
        for row, per, mean_att, _max_att, _rate in active:
            eff_service = row.service * mean_att
            drain = eff_service
            if self.polling:
                drain += poll_cost
            elif self.tdma and eff_service > 0.0:
                drain = max(eff_service,
                            self.superframe / max(1.0, slot_span / eff_service))
            batch_wait[row.name] = drain_cursor.get(row.period, 0.0)
            drain_cursor[row.period] = (drain_cursor.get(row.period, 0.0)
                                        + drain)

        lat_values: list[float] = []
        lat_counts: list[int] = []
        hub_rx_energy = 0.0
        hub_ack_energy = 0.0

        for row, per, mean_att, max_att, _rate in active:
            node = row.node
            cycles = int(math.floor(span / row.period * (1.0 + 1e-12)))
            base = node.generated_count
            node.generated_count = base + cycles
            if cycles <= 0:
                continue
            stride = node.tx_stride
            offered = ((base + cycles - 1) // stride) - ((base - 1) // stride)
            if offered <= 0:
                continue
            # A generation landing exactly on the leap end is submitted
            # (counted sent, like the exact kernel does) but cannot be
            # served before the boundary: it contends for nothing and
            # delivers nothing within this segment.
            boundary = (abs(span - cycles * row.period)
                        <= 1e-9 * max(span, 1.0))
            undeliverable = (1 if boundary
                             and (base + cycles - 1) % stride == 0 else 0)
            deliverable = offered - undeliverable

            if deliverable <= 0:
                delivered = 0
                total_attempts = 0
                attempt_hist: tuple[tuple[int, int], ...] = ()
            elif reliability is None or per <= 0.0:
                delivered = deliverable
                total_attempts = deliverable
                attempt_hist = ((1, deliverable),)
            elif per >= 1.0:
                delivered = 0
                total_attempts = (deliverable * int(max_att)
                                  if arq is not None else deliverable)
                attempt_hist = ()
            else:
                draws = reliability.rng_for(row.name).geometric(
                    1.0 - per, size=deliverable)
                reliability._draws.pop(row.name, None)
                if arq is None:
                    delivered = int(np.count_nonzero(draws == 1))
                    total_attempts = deliverable
                    attempt_hist = ((1, delivered),) if delivered else ()
                else:
                    attempts = np.minimum(draws, max_att)
                    total_attempts = int(attempts.sum())
                    mask = draws <= max_att
                    delivered = int(np.count_nonzero(mask))
                    if delivered:
                        counts = np.bincount(
                            attempts[mask].astype(np.int64))
                        attempt_hist = tuple(
                            (a, int(c)) for a, c in enumerate(counts) if c)
                    else:
                        attempt_hist = ()

            erased = total_attempts - delivered
            lost = deliverable - delivered

            node.packets_sent += offered
            node.bits_sent += offered * row.bits
            node.packets_delivered += delivered
            node.retx_bits += (erased - lost) * row.bits
            node.lost_bits += lost * row.bits
            stats.delivered_packets += delivered
            stats.delivered_bits += delivered * row.bits
            stats.busy_seconds += total_attempts * row.service
            stats.erased_attempts += erased
            stats.retransmissions += erased - lost
            stats.lost_packets += lost

            tx_energy = delivered * row.bits * row.tx_epb
            retx_energy = erased * row.bits * row.tx_epb
            ack_energy = (delivered * self.ack_bits * row.rx_epb
                          if self.ack_posting else 0.0)
            state = node.energy
            if state is None:
                ledger = node.ledger
                if tx_energy:
                    ledger.post_interval("wir_tx", tx_energy, start, end)
                if retx_energy:
                    ledger.post_interval("wir_retx", retx_energy, start, end)
                if ack_energy:
                    ledger.post_interval("arq_ack", ack_energy, start, end)
            else:
                was_alive = state.alive
                if tx_energy:
                    state.drain("wir_tx", tx_energy, end)
                if retx_energy:
                    state.drain("wir_retx", retx_energy, end)
                if ack_energy:
                    state.drain("arq_ack", ack_energy, end)
                if was_alive and not state.alive:
                    sim._record_death(node)

            hub_rx_energy += (delivered + erased) * row.bits * row.rx_epb
            hub_ack_energy += delivered * self.ack_bits * self.hub_tx_epb

            if windows is not None:
                offset = windows[row.name][0]
                cyc = row.period / self.superframe
                if abs(cyc - round(cyc)) < 1e-9:
                    access = offset
                else:
                    access = self.superframe / 2.0
            elif self.polling:
                access = poll_cost * (len(active) / 2.0 + 1.0)
            else:
                access = 0.0
            base_latency = wait + access + batch_wait[row.name]
            for attempt_count, n in attempt_hist:
                lat_values.append(base_latency + attempt_count * row.service)
                lat_counts.append(n)

        if lat_values:
            stats.latency.add_batch(lat_values, lat_counts)
        if not self.ack_posting:
            hub_ack_energy = 0.0
        hub_ledger = sim.hub_ledger
        if hub_rx_energy:
            hub_ledger.post_interval("wir_rx", hub_rx_energy, start, end)
        if hub_ack_energy:
            hub_ledger.post_interval("ack_tx", hub_ack_energy, start, end)

        # Settle static/sleep/harvest energy and threshold checks for
        # every battery node (the leap's stand-in for the per-minute
        # energy ticks it skipped).  Counters were updated first so the
        # sleep/tx time split comes out right.
        for row in self.rows:
            state = row.node.energy
            if state is not None and state.alive:
                sim._settle_energy(row.node, end)
