"""Packets exchanged on the body network."""

from __future__ import annotations

from ..errors import SimulationError


class Packet:
    """One data unit travelling from a leaf node to the hub (or back).

    A plain ``__slots__`` class rather than a dataclass: the simulator
    kernel creates one per generated packet, and on the dense hot path
    the dataclass machinery (``__post_init__`` dispatch, a metadata dict
    per instance) measurably dominated creation cost.  The ``metadata``
    dict is materialised lazily on first access.
    """

    __slots__ = ("source", "destination", "bits", "created_at",
                 "delivered_at", "queued_at", "attempts", "_metadata",
                 "_service", "_node")

    def __init__(self, source: str, destination: str, bits: float,
                 created_at: float, delivered_at: float | None = None,
                 queued_at: float | None = None, attempts: int = 0,
                 metadata: dict[str, object] | None = None) -> None:
        if bits < 0:
            raise SimulationError("packet size must be non-negative")
        if created_at < 0:
            raise SimulationError("creation time must be non-negative")
        self.source = source
        self.destination = destination
        self.bits = bits
        self.created_at = created_at
        self.delivered_at = delivered_at
        self.queued_at = queued_at
        #: Completed transmission attempts.  Only counted on a medium with
        #: a reliability model attached; the lossless path never touches
        #: it, so there it stays 0.
        self.attempts = attempts
        self._metadata = metadata
        #: Serialisation time pre-resolved by the simulator kernel for
        #: fixed-size sources; ``None`` means look it up on the medium.
        self._service: float | None = None
        #: Source node's index in the kernel's per-node tables; ``None``
        #: outside the kernel's periodic fast path.
        self._node: int | None = None

    @property
    def metadata(self) -> dict[str, object]:
        """Free-form per-packet annotations (created on first access)."""
        if self._metadata is None:
            self._metadata = {}
        return self._metadata

    def __repr__(self) -> str:
        return (f"Packet(source={self.source!r}, "
                f"destination={self.destination!r}, bits={self.bits!r}, "
                f"created_at={self.created_at!r}, "
                f"delivered_at={self.delivered_at!r})")

    @property
    def delivered(self) -> bool:
        """Whether the packet has reached its destination."""
        return self.delivered_at is not None

    @property
    def latency_seconds(self) -> float:
        """End-to-end latency; raises if the packet has not been delivered."""
        if self.delivered_at is None:
            raise SimulationError("packet has not been delivered yet")
        return self.delivered_at - self.created_at

    @property
    def queueing_delay_seconds(self) -> float:
        """Time spent waiting before transmission started."""
        if self.queued_at is None:
            return 0.0
        return self.queued_at - self.created_at
