"""Packets exchanged on the body network."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError


@dataclass
class Packet:
    """One data unit travelling from a leaf node to the hub (or back)."""

    source: str
    destination: str
    bits: float
    created_at: float
    delivered_at: float | None = None
    queued_at: float | None = None
    #: Completed transmission attempts.  Only counted on a medium with a
    #: reliability model attached; the lossless path never touches it,
    #: so there it stays 0.
    attempts: int = 0
    metadata: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.bits < 0:
            raise SimulationError("packet size must be non-negative")
        if self.created_at < 0:
            raise SimulationError("creation time must be non-negative")

    @property
    def delivered(self) -> bool:
        """Whether the packet has reached its destination."""
        return self.delivered_at is not None

    @property
    def latency_seconds(self) -> float:
        """End-to-end latency; raises if the packet has not been delivered."""
        if self.delivered_at is None:
            raise SimulationError("packet has not been delivered yet")
        return self.delivered_at - self.created_at

    @property
    def queueing_delay_seconds(self) -> float:
        """Time spent waiting before transmission started."""
        if self.queued_at is None:
            return 0.0
        return self.queued_at - self.created_at
