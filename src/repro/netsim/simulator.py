"""End-to-end body-network simulation: leaves, hub, shared body medium.

A :class:`BodyNetworkSimulator` wires together traffic sources (one per
leaf node), a shared :class:`~repro.netsim.bus.Medium` with a pluggable
arbitration policy (FIFO, TDMA slots, hub polling), per-node link
technologies (mixed Wi-R / MQS implant / BLE legacy populations on one
body) and per-node energy ledgers, then runs the event queue for a
simulated duration.  The result reports per-node average power, per-node
goodput and latency statistics — the dynamic counterpart of the
closed-form budgets in :mod:`repro.core`, and the engine behind the
network-scaling ablation and the scenario gallery.

Nodes may carry a finite battery and an energy harvester (see
:mod:`repro.energy.runtime`): the simulator then drains the battery on
every transmission and, through periodic energy-update events on the
same :class:`~repro.netsim.events.EventQueue`, on every sensing/ISA/
sleep interval, credits harvested energy back, and reacts to the two
state-of-charge thresholds — a *low-battery* crossing throttles the
node's traffic (duty-cycle adaptation), an empty cell *browns the node
out* (it stops generating and consuming for the rest of the run).
Nodes without a battery behave exactly as before; a simulation with no
battery- or harvester-carrying node is bit-identical to the historical
kernel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError
from ..comm.link import CommTechnology
from ..energy.battery import BatterySpec
from ..energy.harvester import EnergyHarvester, HarvestingEnvironment
from ..energy.ledger import EnergyLedger
from ..energy.runtime import NodeEnergyState
from .. import units
from .arbitration import ArbitrationPolicy
from .bus import Medium
from .events import EventQueue
from .packet import Packet
from .reliability import LinkReliability
from .traffic import TrafficSource

#: Default spacing of the periodic energy-update events (simulated
#: seconds).  Only scheduled when at least one node carries a battery or
#: harvester; brownout times are interpolated inside the interval, so
#: the default resolves death times far finer than the tick itself.
DEFAULT_ENERGY_UPDATE_INTERVAL_SECONDS = 1.0

#: Traffic throttle applied on a low-battery crossing: the node emits
#: one packet out of this many until the end of the run.
DEFAULT_LOW_BATTERY_STRIDE = 2


@dataclass(frozen=True)
class EnergyEvent:
    """One energy-state transition observed during a run."""

    kind: str  # "brownout" or "low_battery"
    node: str
    time_seconds: float
    state_of_charge_fraction: float


@dataclass
class SimulatedNode:
    """One leaf node attached to the body network."""

    name: str
    source: TrafficSource
    technology: CommTechnology
    sensing_power_watts: float = 0.0
    isa_power_watts: float = 0.0
    active: bool = True
    ledger: EnergyLedger = field(default_factory=EnergyLedger)
    packets_sent: int = 0
    bits_sent: float = 0.0
    energy: NodeEnergyState | None = None
    packets_delivered: int = 0
    tx_stride: int = 1
    low_battery_stride: int = DEFAULT_LOW_BATTERY_STRIDE
    generated_count: int = 0
    accounted_bits: float = 0.0
    energy_settled_seconds: float = 0.0
    #: Extra bits serialised beyond one frame per accepted packet
    #: (retransmission overhead).  Corrupted attempts add their frame; a
    #: packet declared lost gives one frame back, because its first
    #: serialisation is already counted in ``bits_sent``.
    retx_bits: float = 0.0
    #: Bits of packets the lossy link ultimately failed to deliver.
    lost_bits: float = 0.0

    def __post_init__(self) -> None:
        if self.sensing_power_watts < 0 or self.isa_power_watts < 0:
            raise SimulationError("node powers must be non-negative")


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    duration_seconds: float
    delivered_packets: int
    dropped_packets: int
    delivered_bits: float
    mean_latency_seconds: float
    p99_latency_seconds: float
    bus_utilization: float
    per_node_average_power_watts: dict[str, float]
    per_node_goodput_bps: dict[str, float]
    hub_rx_energy_joules: float
    arbitration: str = "fifo"
    hub_energy_joules: float = 0.0
    hub_average_power_watts: float = 0.0
    offered_packets: int = 0
    #: Final state of charge of every battery-carrying node (fraction).
    per_node_state_of_charge: dict[str, float] = field(default_factory=dict)
    #: Brownout time of every node that died during the run.
    per_node_first_death_seconds: dict[str, float] = field(default_factory=dict)
    #: Packets each dead node delivered before its brownout.
    per_node_delivered_before_death: dict[str, int] = field(default_factory=dict)
    #: Chronological brownout / low-battery transitions.
    energy_events: tuple[EnergyEvent, ...] = ()
    #: Total energy credited by harvesters across all nodes.
    harvested_joules: float = 0.0
    #: Whether a lossy-link reliability model was attached to the run.
    reliability_enabled: bool = False
    #: Transmission attempts corrupted by the lossy link.
    erased_attempts: int = 0
    #: Corrupted attempts the ARQ policy retransmitted.
    retransmissions: int = 0
    #: Packets lost after exhausting their retries (or erased, no ARQ).
    lost_packets: int = 0
    #: Leaf energy wasted serialising corrupted attempts.
    retransmission_energy_joules: float = 0.0
    #: Leaf energy spent receiving ARQ acks.
    ack_energy_joules: float = 0.0

    @property
    def total_leaf_power_watts(self) -> float:
        """Sum of all leaf nodes' average power."""
        return sum(self.per_node_average_power_watts.values())

    @property
    def delivered_fraction(self) -> float:
        """Delivered / offered packets (1.0 when nothing was offered).

        Offered counts every generated packet — dropped ones and those
        still queued or in flight at the horizon — so a saturated medium
        that merely backlogs traffic reads below 1.0 even before its
        buffer bound starts dropping.
        """
        if self.offered_packets == 0:
            return 1.0
        return self.delivered_packets / self.offered_packets

    @property
    def attempts_per_delivered(self) -> float:
        """Mean transmission attempts per delivered packet (1.0 lossless).

        Counts every serialisation the medium performed — delivered
        packets plus corrupted attempts — against the deliveries; the
        retransmission overhead factor the reliability experiment sweeps.
        A run that erased every attempt delivered nothing at infinite
        cost, and reports exactly that.
        """
        if self.delivered_packets == 0:
            return math.inf if self.erased_attempts > 0 else 1.0
        return (self.delivered_packets + self.erased_attempts) \
            / self.delivered_packets

    @property
    def first_death_seconds(self) -> float:
        """Earliest brownout time (``inf`` when every node survived)."""
        if not self.per_node_first_death_seconds:
            return math.inf
        return min(self.per_node_first_death_seconds.values())

    @property
    def dead_node_count(self) -> int:
        """Number of nodes that browned out during the run."""
        return len(self.per_node_first_death_seconds)

    @property
    def alive_fraction(self) -> float:
        """Fraction of leaf nodes still alive at the horizon."""
        total = len(self.per_node_average_power_watts)
        if total == 0:
            return 1.0
        return 1.0 - self.dead_node_count / total


class BodyNetworkSimulator:
    """Discrete-event simulation of leaves streaming to one hub.

    Parameters
    ----------
    technology:
        Default link technology (sets the medium rate and, for nodes that
        do not override it, energy/bit and sleep power).
    rng:
        Random generator (or seed) driving stochastic traffic sources.
    per_packet_overhead_seconds:
        MAC guard time per packet on the shared medium.
    arbitration:
        Arbitration policy instance or short name (``"fifo"``, ``"tdma"``,
        ``"polling"``).  Defaults to FIFO, which reproduces the historical
        shared-bus behaviour bit-identically.
    latency_exact_capacity:
        Exact-sample capacity of the latency statistics; beyond it the
        accumulator streams with bounded memory (multi-hour runs).
    energy_update_interval_seconds:
        Spacing of the periodic energy-update events (harvest credit,
        static-power drain, threshold checks).  Only used when a node
        carries a battery or harvester.
    harvest_environment:
        Environment every node's harvester operates in.
    reliability:
        Optional :class:`~repro.netsim.reliability.LinkReliability`
        driving per-packet erasures (and, via its ARQ policy,
        retransmissions) on the shared medium.  ``None`` — the default —
        keeps the exact historical lossless behaviour.
    """

    def __init__(self, technology: CommTechnology,
                 rng: np.random.Generator | int | None = 0,
                 per_packet_overhead_seconds: float = 100e-6,
                 arbitration: ArbitrationPolicy | str | None = None,
                 latency_exact_capacity: int | None = None,
                 energy_update_interval_seconds: float =
                 DEFAULT_ENERGY_UPDATE_INTERVAL_SECONDS,
                 harvest_environment: HarvestingEnvironment =
                 HarvestingEnvironment.INDOOR_OFFICE,
                 reliability: LinkReliability | None = None) -> None:
        if energy_update_interval_seconds <= 0:
            raise SimulationError("energy update interval must be positive")
        self.technology = technology
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self.rng = rng
        self.queue = EventQueue()
        self.reliability = reliability
        self.bus = Medium(
            self.queue,
            link_rate_bps=technology.data_rate_bps(),
            per_packet_overhead_seconds=per_packet_overhead_seconds,
            policy=arbitration,
            latency_exact_capacity=latency_exact_capacity,
            reliability=reliability,
        )
        self.nodes: dict[str, SimulatedNode] = {}
        self.hub_ledger = EnergyLedger()
        self.energy_update_interval_seconds = energy_update_interval_seconds
        self.harvest_environment = harvest_environment
        self.energy_events: list[EnergyEvent] = []
        self._death_records: dict[str, tuple[float, int]] = {}
        self.bus.on_delivery(self._account_delivery)
        if reliability is not None:
            self.bus.on_attempt(self._account_attempt)
            self.bus.on_loss(self._account_loss)

    def add_node(self, name: str, source: TrafficSource,
                 sensing_power_watts: float = 0.0,
                 isa_power_watts: float = 0.0,
                 technology: CommTechnology | None = None,
                 battery: BatterySpec | None = None,
                 harvester: EnergyHarvester | None = None,
                 initial_charge_fraction: float = 1.0,
                 low_battery_fraction: float | None = None,
                 low_battery_stride: int = DEFAULT_LOW_BATTERY_STRIDE
                 ) -> SimulatedNode:
        """Attach a leaf node with its traffic source and static powers.

        ``technology`` overrides the simulator default for this node only:
        its packets serialise at that technology's rate and its energy is
        accounted at that technology's per-bit costs (mixed link layers on
        one body).  ``battery`` gives the node a finite cell (it can brown
        out mid-run), ``harvester`` credits energy back continuously, and
        ``low_battery_fraction`` arms duty-cycle adaptation: below that
        state of charge the node emits only one packet per
        ``low_battery_stride`` generation opportunities.
        """
        if name in self.nodes:
            raise SimulationError(f"node {name!r} already exists")
        if low_battery_stride < 1:
            raise SimulationError("low-battery stride must be >= 1")
        node = SimulatedNode(
            name=name,
            source=source,
            technology=technology if technology is not None else self.technology,
            sensing_power_watts=sensing_power_watts,
            isa_power_watts=isa_power_watts,
            low_battery_stride=low_battery_stride,
        )
        if battery is not None or harvester is not None:
            node.energy = NodeEnergyState.from_spec(
                battery=battery,
                harvester=harvester,
                environment=self.harvest_environment,
                initial_charge_fraction=initial_charge_fraction,
                ledger=node.ledger,
                low_battery_fraction=low_battery_fraction,
            )
        self.nodes[name] = node
        self.bus.register_node(
            name, source.average_rate_bps(),
            link_rate_bps=(technology.data_rate_bps()
                           if technology is not None else None),
        )
        return node

    def set_node_active(self, name: str, active: bool) -> None:
        """Gate a node's traffic generation (duty-cycle / posture events).

        A browned-out node cannot be woken: death is terminal for the
        remainder of the run.
        """
        try:
            node = self.nodes[name]
        except KeyError:
            raise SimulationError(f"unknown node {name!r}") from None
        if active and node.energy is not None and not node.energy.alive:
            return
        node.active = active

    def set_node_error_rate(self, name: str, error_rate: float) -> None:
        """Update one node's packet-erasure probability mid-run.

        Scenario posture events call this when the active body channel
        (and with it the link budget) changes.
        """
        if self.reliability is None:
            raise SimulationError(
                "no reliability model attached to this simulator")
        if name not in self.nodes:
            raise SimulationError(f"unknown node {name!r}")
        self.reliability.set_error_rate(name, error_rate)

    def _account_delivery(self, packet: Packet) -> None:
        node = self.nodes[packet.source]
        tx_energy = packet.bits * node.technology.tx_energy_per_bit()
        rx_energy = packet.bits * node.technology.rx_energy_per_bit()
        if node.energy is None:
            node.ledger.post("wir_tx", tx_energy,
                             timestamp_seconds=self.queue.now)
            node.packets_delivered += 1
        else:
            was_alive = node.energy.alive
            node.energy.drain("wir_tx", tx_energy, self.queue.now)
            if was_alive:
                node.packets_delivered += 1
            if not node.energy.alive:
                self._record_death(node)
        self.hub_ledger.post("wir_rx", rx_energy, timestamp_seconds=self.queue.now)

    def _account_attempt(self, packet: Packet, success: bool) -> None:
        """Energy of one transmission attempt on a lossy medium.

        A successful attempt's frame energy flows through
        :meth:`_account_delivery`; here it only pays for its ack (leaf
        receives, hub transmits).  A corrupted attempt pays the full
        wasted frame — leaf transmit under ``wir_retx``, hub receive —
        and gets no ack (the leaf times out).
        """
        node = self.nodes[packet.source]
        now = self.queue.now
        arq = self.reliability.arq if self.reliability is not None else None
        if success:
            if arq is None or arq.ack_bits == 0.0:
                return
            ack_energy = arq.ack_bits * node.technology.rx_energy_per_bit()
            if node.energy is None:
                node.ledger.post("arq_ack", ack_energy, timestamp_seconds=now)
            else:
                node.energy.drain("arq_ack", ack_energy, now)
                if not node.energy.alive:
                    self._record_death(node)
            self.hub_ledger.post(
                "ack_tx", arq.ack_bits * self.technology.tx_energy_per_bit(),
                timestamp_seconds=now)
            return
        node.retx_bits += packet.bits
        tx_energy = packet.bits * node.technology.tx_energy_per_bit()
        if node.energy is None:
            node.ledger.post("wir_retx", tx_energy, timestamp_seconds=now)
        else:
            node.energy.drain("wir_retx", tx_energy, now)
            if not node.energy.alive:
                self._record_death(node)
        # The hub listened to the corrupted frame for its full length.
        self.hub_ledger.post(
            "wir_rx", packet.bits * node.technology.rx_energy_per_bit(),
            timestamp_seconds=now)

    def _account_loss(self, packet: Packet) -> None:
        """A packet the link gave up on: goodput and airtime bookkeeping.

        The attempt-level energy is already correct (every one of its
        failed serialisations posted ``wir_retx``); here the per-node
        counters reconcile: the frame ``bits_sent`` charged at submit
        never serialised *in addition to* the failed attempts, and the
        payload never became goodput.
        """
        node = self.nodes[packet.source]
        node.retx_bits -= packet.bits
        node.lost_bits += packet.bits

    def _record_death(self, node: SimulatedNode) -> None:
        """Mark a brownout once: stop traffic, freeze the node's counters.

        The dead node's queued packets are purged from the medium — a
        browned-out transmitter cannot serialise its backlog.  At most
        one already-granted transmission may still complete (it was in
        flight when the cell emptied).
        """
        if node.name in self._death_records:
            return
        assert node.energy is not None and node.energy.death_seconds is not None
        self._death_records[node.name] = (node.energy.death_seconds,
                                          node.packets_delivered)
        node.active = False
        self.bus.purge_node(node.name)
        self.energy_events.append(EnergyEvent(
            kind="brownout", node=node.name,
            time_seconds=node.energy.death_seconds,
            state_of_charge_fraction=0.0))

    def _settle_energy(self, node: SimulatedNode, now: float) -> None:
        """Serve a node's static loads since its last settlement."""
        state = node.energy
        assert state is not None
        elapsed = now - node.energy_settled_seconds
        node.energy_settled_seconds = now
        if elapsed <= 0.0 or not state.alive:
            return
        # Transceiver sleep power covers whatever the interval did not
        # spend serialising (corrupted attempts serialise too) — the same
        # split the batteryless path applies to the whole run at once.
        serialised_bits = node.bits_sent + node.retx_bits
        delta_bits = serialised_bits - node.accounted_bits
        node.accounted_bits = serialised_bits
        tx_time = delta_bits / node.technology.data_rate_bps()
        sleep_time = max(elapsed - tx_time, 0.0)
        loads = {
            "sensing": node.sensing_power_watts,
            "isa": node.isa_power_watts,
            "wir_sleep": (node.technology.sleep_power()
                          * sleep_time / elapsed),
        }
        state.advance(loads, elapsed, now)
        if not state.alive:
            self._record_death(node)
        elif state.is_low_battery() and node.tx_stride == 1:
            node.tx_stride = node.low_battery_stride
            if node.tx_stride > 1:
                self.energy_events.append(EnergyEvent(
                    kind="low_battery", node=node.name, time_seconds=now,
                    state_of_charge_fraction=state.state_of_charge_fraction))

    def _schedule_energy_updates(self, end_time: float) -> None:
        energy_nodes = [node for node in self.nodes.values()
                        if node.energy is not None]
        if not energy_nodes:
            return
        interval = self.energy_update_interval_seconds

        def update() -> None:
            now = self.queue.now
            for node in energy_nodes:
                self._settle_energy(node, now)
            next_time = now + interval
            if next_time <= end_time:
                self.queue.schedule_at(next_time, update)

        if interval <= end_time:
            self.queue.schedule_at(interval, update)

    def _schedule_generation(self, node: SimulatedNode, end_time: float) -> None:
        delay = node.source.next_interarrival_seconds(self.rng)
        next_time = self.queue.now + delay

        def generate() -> None:
            if node.active:
                opportunity = node.generated_count
                node.generated_count += 1
                if opportunity % node.tx_stride == 0:
                    bits = node.source.packet_bits(self.rng)
                    packet = Packet(
                        source=node.name,
                        destination="hub",
                        bits=bits,
                        created_at=self.queue.now,
                    )
                    accepted = self.bus.submit(packet)
                    if accepted:
                        node.packets_sent += 1
                        node.bits_sent += bits
            self._schedule_generation(node, end_time)

        if next_time <= end_time:
            self.queue.schedule_at(next_time, generate)

    def run(self, duration_seconds: float) -> SimulationResult:
        """Run the network for *duration_seconds* of simulated time."""
        if duration_seconds <= 0 or not np.isfinite(duration_seconds):
            raise SimulationError("duration must be positive and finite")
        if not self.nodes:
            raise SimulationError("no nodes attached to the simulator")

        for node in self.nodes.values():
            self._schedule_generation(node, duration_seconds)
        self._schedule_energy_updates(duration_seconds)
        self.queue.run_until(duration_seconds)

        per_node_power: dict[str, float] = {}
        per_node_goodput: dict[str, float] = {}
        state_of_charge: dict[str, float] = {}
        harvested = 0.0
        for name, node in self.nodes.items():
            if node.energy is None:
                # Static sensing / ISA power accrues for the whole run.
                node.ledger.post_power("sensing", node.sensing_power_watts,
                                       duration_seconds)
                node.ledger.post_power("isa", node.isa_power_watts,
                                       duration_seconds)
                # Sleep power of the transceiver when not transmitting.
                tx_time = (node.bits_sent + node.retx_bits) \
                    / node.technology.data_rate_bps()
                sleep_time = max(duration_seconds - tx_time, 0.0)
                node.ledger.post_power("wir_sleep",
                                       node.technology.sleep_power(),
                                       sleep_time)
            else:
                # Settle the residual interval since the last energy tick.
                self._settle_energy(node, duration_seconds)
                harvested += node.energy.harvested_joules
                if node.energy.battery is not None:
                    state_of_charge[name] = \
                        node.energy.state_of_charge_fraction
            per_node_power[name] = node.ledger.average_power(duration_seconds)
            # Accepted minus lost: bits the link actually carried to the
            # hub (plus at most the final in-flight frame, as before).
            per_node_goodput[name] = \
                (node.bits_sent - node.lost_bits) / duration_seconds

        stats = self.bus.stats
        # The hub receiver is awake while the medium carries traffic and
        # sleeps otherwise; without this the hub ledger undercounts every
        # idle second of a duty-cycled day.
        rx_busy = min(stats.busy_seconds, duration_seconds)
        self.hub_ledger.post_power("wir_sleep", self.technology.sleep_power(),
                                   max(duration_seconds - rx_busy, 0.0),
                                   timestamp_seconds=duration_seconds)
        if stats.latency.count:
            mean_latency = stats.mean_latency_seconds
            p99_latency = stats.latency_percentile(99.0)
        else:
            mean_latency = 0.0
            p99_latency = 0.0
        return SimulationResult(
            duration_seconds=duration_seconds,
            delivered_packets=stats.delivered_packets,
            dropped_packets=stats.dropped_packets,
            delivered_bits=stats.delivered_bits,
            mean_latency_seconds=mean_latency,
            p99_latency_seconds=p99_latency,
            bus_utilization=stats.utilization(duration_seconds),
            per_node_average_power_watts=per_node_power,
            per_node_goodput_bps=per_node_goodput,
            hub_rx_energy_joules=self.hub_ledger.total_energy("wir_rx"),
            arbitration=self.bus.policy.name,
            hub_energy_joules=self.hub_ledger.total_energy(),
            hub_average_power_watts=self.hub_ledger.average_power(
                duration_seconds),
            offered_packets=(sum(node.packets_sent
                                 for node in self.nodes.values())
                             + stats.dropped_packets),
            per_node_state_of_charge=state_of_charge,
            per_node_first_death_seconds={
                name: death for name, (death, _)
                in self._death_records.items()},
            per_node_delivered_before_death={
                name: delivered for name, (_, delivered)
                in self._death_records.items()},
            # Detection order can lag an interpolated brownout time by up
            # to one tick; sort (stably) so the tuple is chronological as
            # documented.
            energy_events=tuple(sorted(
                self.energy_events, key=lambda event: event.time_seconds)),
            harvested_joules=harvested,
            reliability_enabled=self.reliability is not None,
            erased_attempts=stats.erased_attempts,
            retransmissions=stats.retransmissions,
            lost_packets=stats.lost_packets,
            retransmission_energy_joules=sum(
                node.ledger.total_energy("wir_retx")
                for node in self.nodes.values()),
            ack_energy_joules=sum(
                node.ledger.total_energy("arq_ack")
                for node in self.nodes.values()),
        )

    def describe(self) -> dict[str, object]:
        """Summary of the configured network (for reports)."""
        technologies = sorted({node.technology.name
                               for node in self.nodes.values()})
        return {
            "technology": self.technology.name,
            "link_rate_mbps": units.to_megabit_per_second(self.technology.data_rate_bps()),
            "node_count": len(self.nodes),
            "offered_rate_bps": sum(
                node.source.average_rate_bps() for node in self.nodes.values()
            ),
            "arbitration": self.bus.policy.name,
            "node_technologies": technologies,
            "battery_nodes": sum(
                1 for node in self.nodes.values()
                if node.energy is not None
                and node.energy.battery is not None),
        }
