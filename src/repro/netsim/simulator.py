"""End-to-end body-network simulation: leaves, hub, shared body medium.

A :class:`BodyNetworkSimulator` wires together traffic sources (one per
leaf node), a shared :class:`~repro.netsim.bus.Medium` with a pluggable
arbitration policy (FIFO, TDMA slots, hub polling), per-node link
technologies (mixed Wi-R / MQS implant / BLE legacy populations on one
body) and per-node energy ledgers, then runs the event queue for a
simulated duration.  The result reports per-node average power, per-node
goodput and latency statistics — the dynamic counterpart of the
closed-form budgets in :mod:`repro.core`, and the engine behind the
network-scaling ablation and the scenario gallery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError
from ..comm.link import CommTechnology
from ..energy.ledger import EnergyLedger
from .. import units
from .arbitration import ArbitrationPolicy
from .bus import Medium
from .events import EventQueue
from .packet import Packet
from .traffic import TrafficSource


@dataclass
class SimulatedNode:
    """One leaf node attached to the body network."""

    name: str
    source: TrafficSource
    technology: CommTechnology
    sensing_power_watts: float = 0.0
    isa_power_watts: float = 0.0
    active: bool = True
    ledger: EnergyLedger = field(default_factory=EnergyLedger)
    packets_sent: int = 0
    bits_sent: float = 0.0

    def __post_init__(self) -> None:
        if self.sensing_power_watts < 0 or self.isa_power_watts < 0:
            raise SimulationError("node powers must be non-negative")


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    duration_seconds: float
    delivered_packets: int
    dropped_packets: int
    delivered_bits: float
    mean_latency_seconds: float
    p99_latency_seconds: float
    bus_utilization: float
    per_node_average_power_watts: dict[str, float]
    per_node_goodput_bps: dict[str, float]
    hub_rx_energy_joules: float
    arbitration: str = "fifo"
    hub_energy_joules: float = 0.0
    hub_average_power_watts: float = 0.0
    offered_packets: int = 0

    @property
    def total_leaf_power_watts(self) -> float:
        """Sum of all leaf nodes' average power."""
        return sum(self.per_node_average_power_watts.values())

    @property
    def delivered_fraction(self) -> float:
        """Delivered / offered packets (1.0 when nothing was offered).

        Offered counts every generated packet — dropped ones and those
        still queued or in flight at the horizon — so a saturated medium
        that merely backlogs traffic reads below 1.0 even before its
        buffer bound starts dropping.
        """
        if self.offered_packets == 0:
            return 1.0
        return self.delivered_packets / self.offered_packets


class BodyNetworkSimulator:
    """Discrete-event simulation of leaves streaming to one hub.

    Parameters
    ----------
    technology:
        Default link technology (sets the medium rate and, for nodes that
        do not override it, energy/bit and sleep power).
    rng:
        Random generator (or seed) driving stochastic traffic sources.
    per_packet_overhead_seconds:
        MAC guard time per packet on the shared medium.
    arbitration:
        Arbitration policy instance or short name (``"fifo"``, ``"tdma"``,
        ``"polling"``).  Defaults to FIFO, which reproduces the historical
        shared-bus behaviour bit-identically.
    latency_exact_capacity:
        Exact-sample capacity of the latency statistics; beyond it the
        accumulator streams with bounded memory (multi-hour runs).
    """

    def __init__(self, technology: CommTechnology,
                 rng: np.random.Generator | int | None = 0,
                 per_packet_overhead_seconds: float = 100e-6,
                 arbitration: ArbitrationPolicy | str | None = None,
                 latency_exact_capacity: int | None = None) -> None:
        self.technology = technology
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self.rng = rng
        self.queue = EventQueue()
        self.bus = Medium(
            self.queue,
            link_rate_bps=technology.data_rate_bps(),
            per_packet_overhead_seconds=per_packet_overhead_seconds,
            policy=arbitration,
            latency_exact_capacity=latency_exact_capacity,
        )
        self.nodes: dict[str, SimulatedNode] = {}
        self.hub_ledger = EnergyLedger()
        self.bus.on_delivery(self._account_delivery)

    def add_node(self, name: str, source: TrafficSource,
                 sensing_power_watts: float = 0.0,
                 isa_power_watts: float = 0.0,
                 technology: CommTechnology | None = None) -> SimulatedNode:
        """Attach a leaf node with its traffic source and static powers.

        ``technology`` overrides the simulator default for this node only:
        its packets serialise at that technology's rate and its energy is
        accounted at that technology's per-bit costs (mixed link layers on
        one body).
        """
        if name in self.nodes:
            raise SimulationError(f"node {name!r} already exists")
        node = SimulatedNode(
            name=name,
            source=source,
            technology=technology if technology is not None else self.technology,
            sensing_power_watts=sensing_power_watts,
            isa_power_watts=isa_power_watts,
        )
        self.nodes[name] = node
        self.bus.register_node(
            name, source.average_rate_bps(),
            link_rate_bps=(technology.data_rate_bps()
                           if technology is not None else None),
        )
        return node

    def set_node_active(self, name: str, active: bool) -> None:
        """Gate a node's traffic generation (duty-cycle / posture events)."""
        try:
            self.nodes[name].active = active
        except KeyError:
            raise SimulationError(f"unknown node {name!r}") from None

    def _account_delivery(self, packet: Packet) -> None:
        node = self.nodes[packet.source]
        tx_energy = packet.bits * node.technology.tx_energy_per_bit()
        rx_energy = packet.bits * node.technology.rx_energy_per_bit()
        node.ledger.post("wir_tx", tx_energy, timestamp_seconds=self.queue.now)
        self.hub_ledger.post("wir_rx", rx_energy, timestamp_seconds=self.queue.now)

    def _schedule_generation(self, node: SimulatedNode, end_time: float) -> None:
        delay = node.source.next_interarrival_seconds(self.rng)
        next_time = self.queue.now + delay

        def generate() -> None:
            if node.active:
                bits = node.source.packet_bits(self.rng)
                packet = Packet(
                    source=node.name,
                    destination="hub",
                    bits=bits,
                    created_at=self.queue.now,
                )
                accepted = self.bus.submit(packet)
                if accepted:
                    node.packets_sent += 1
                    node.bits_sent += bits
            self._schedule_generation(node, end_time)

        if next_time <= end_time:
            self.queue.schedule_at(next_time, generate)

    def run(self, duration_seconds: float) -> SimulationResult:
        """Run the network for *duration_seconds* of simulated time."""
        if duration_seconds <= 0 or not np.isfinite(duration_seconds):
            raise SimulationError("duration must be positive and finite")
        if not self.nodes:
            raise SimulationError("no nodes attached to the simulator")

        for node in self.nodes.values():
            self._schedule_generation(node, duration_seconds)
        self.queue.run_until(duration_seconds)

        per_node_power: dict[str, float] = {}
        per_node_goodput: dict[str, float] = {}
        for name, node in self.nodes.items():
            # Static sensing / ISA power accrues for the whole run.
            node.ledger.post_power("sensing", node.sensing_power_watts,
                                   duration_seconds)
            node.ledger.post_power("isa", node.isa_power_watts, duration_seconds)
            # Sleep power of the transceiver when not transmitting.
            tx_time = node.bits_sent / node.technology.data_rate_bps()
            sleep_time = max(duration_seconds - tx_time, 0.0)
            node.ledger.post_power("wir_sleep", node.technology.sleep_power(),
                                   sleep_time)
            per_node_power[name] = node.ledger.average_power(duration_seconds)
            per_node_goodput[name] = node.bits_sent / duration_seconds

        stats = self.bus.stats
        # The hub receiver is awake while the medium carries traffic and
        # sleeps otherwise; without this the hub ledger undercounts every
        # idle second of a duty-cycled day.
        rx_busy = min(stats.busy_seconds, duration_seconds)
        self.hub_ledger.post_power("wir_sleep", self.technology.sleep_power(),
                                   max(duration_seconds - rx_busy, 0.0),
                                   timestamp_seconds=duration_seconds)
        if stats.latency.count:
            mean_latency = stats.mean_latency_seconds
            p99_latency = stats.latency_percentile(99.0)
        else:
            mean_latency = 0.0
            p99_latency = 0.0
        return SimulationResult(
            duration_seconds=duration_seconds,
            delivered_packets=stats.delivered_packets,
            dropped_packets=stats.dropped_packets,
            delivered_bits=stats.delivered_bits,
            mean_latency_seconds=mean_latency,
            p99_latency_seconds=p99_latency,
            bus_utilization=stats.utilization(duration_seconds),
            per_node_average_power_watts=per_node_power,
            per_node_goodput_bps=per_node_goodput,
            hub_rx_energy_joules=self.hub_ledger.total_energy("wir_rx"),
            arbitration=self.bus.policy.name,
            hub_energy_joules=self.hub_ledger.total_energy(),
            hub_average_power_watts=self.hub_ledger.average_power(
                duration_seconds),
            offered_packets=(sum(node.packets_sent
                                 for node in self.nodes.values())
                             + stats.dropped_packets),
        )

    def describe(self) -> dict[str, object]:
        """Summary of the configured network (for reports)."""
        technologies = sorted({node.technology.name
                               for node in self.nodes.values()})
        return {
            "technology": self.technology.name,
            "link_rate_mbps": units.to_megabit_per_second(self.technology.data_rate_bps()),
            "node_count": len(self.nodes),
            "offered_rate_bps": sum(
                node.source.average_rate_bps() for node in self.nodes.values()
            ),
            "arbitration": self.bus.policy.name,
            "node_technologies": technologies,
        }
