"""End-to-end body-network simulation: leaves, hub, shared body medium.

A :class:`BodyNetworkSimulator` wires together traffic sources (one per
leaf node), a shared :class:`~repro.netsim.bus.Medium` with a pluggable
arbitration policy (FIFO, TDMA slots, hub polling), per-node link
technologies (mixed Wi-R / MQS implant / BLE legacy populations on one
body) and per-node energy ledgers, then runs the event queue for a
simulated duration.  The result reports per-node average power, per-node
goodput and latency statistics — the dynamic counterpart of the
closed-form budgets in :mod:`repro.core`, and the engine behind the
network-scaling ablation and the scenario gallery.

Nodes may carry a finite battery and an energy harvester (see
:mod:`repro.energy.runtime`): the simulator then drains the battery on
every transmission and, through periodic energy-update events on the
same :class:`~repro.netsim.events.EventQueue`, on every sensing/ISA/
sleep interval, credits harvested energy back, and reacts to the two
state-of-charge thresholds — a *low-battery* crossing throttles the
node's traffic (duty-cycle adaptation), an empty cell *browns the node
out* (it stops generating and consuming for the rest of the run).
Nodes without a battery behave exactly as before; a simulation with no
battery- or harvester-carrying node is bit-identical to the historical
kernel.
"""

from __future__ import annotations

import dataclasses
import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Mapping
from heapq import heapify, heappop, heappush

import numpy as np

from ..errors import SimulationError
from ..comm.link import CommTechnology
from ..control import (Controller, ControllerRuntime, Observation,
                       SoCThrottleController, make_controller)
from ..energy.harvester import HarvestingEnvironment
from ..energy.ledger import EnergyLedger
from ..energy.runtime import NodeEnergyState
from .. import units
from .arbitration import (ArbitrationPolicy, FIFOArbitration,
                          HubPollingArbitration, TDMAArbitration)
from .bus import Medium
from .events import EventQueue
from .packet import Packet
from .reliability import LinkReliability
from .config import DEFAULT_LOW_BATTERY_STRIDE, NodeConfig
from .stats import PENDING_FLUSH_THRESHOLD
from .traffic import PeriodicSource, TrafficSource

#: Default spacing of the periodic energy-update events (simulated
#: seconds).  Only scheduled when at least one node carries a battery or
#: harvester; brownout times are interpolated inside the interval, so
#: the default resolves death times far finer than the tick itself.
DEFAULT_ENERGY_UPDATE_INTERVAL_SECONDS = 1.0

#: The implicit low-battery policy of every energy node that has no
#: controller attached: the historical 1-in-``low_battery_stride``
#: throttle, now expressed as the default
#: :class:`~repro.control.SoCThrottleController` configuration.  The
#: instance is stateless, so one shared object serves every node.
_DEFAULT_SOC_THROTTLE = SoCThrottleController()

#: Bump when :meth:`SimulationResult.to_dict`'s layout changes
#: incompatibly.  Serialised results embed this version so artifacts
#: written by an older layout are rejected loudly instead of being
#: misread field-by-field.
RESULT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class EnergyEvent:
    """One energy-state transition observed during a run."""

    kind: str  # "brownout" or "low_battery"
    node: str
    time_seconds: float
    state_of_charge_fraction: float


@dataclass
class SimulatedNode:
    """One leaf node attached to the body network."""

    name: str
    source: TrafficSource
    technology: CommTechnology
    sensing_power_watts: float = 0.0
    isa_power_watts: float = 0.0
    active: bool = True
    ledger: EnergyLedger = field(default_factory=EnergyLedger)
    packets_sent: int = 0
    bits_sent: float = 0.0
    energy: NodeEnergyState | None = None
    packets_delivered: int = 0
    tx_stride: int = 1
    low_battery_stride: int = DEFAULT_LOW_BATTERY_STRIDE
    generated_count: int = 0
    accounted_bits: float = 0.0
    energy_settled_seconds: float = 0.0
    #: Extra bits serialised beyond one frame per accepted packet
    #: (retransmission overhead).  Corrupted attempts add their frame; a
    #: packet declared lost gives one frame back, because its first
    #: serialisation is already counted in ``bits_sent``.
    retx_bits: float = 0.0
    #: Bits of packets the lossy link ultimately failed to deliver.
    lost_bits: float = 0.0
    #: Transmission attempts the lossy link erased (monotone counter;
    #: controllers difference it into windowed PER observations).
    erased_attempts: int = 0
    #: Closed-loop policy attached to this node (``None`` → the default
    #: low-battery throttle; see :meth:`BodyNetworkSimulator.
    #: attach_controller`).
    controller: Controller | None = None
    #: Constant source-coder draw (0.0 = no coder; see repro.coding).
    coding_power_watts: float = 0.0
    #: Coded bits per source bit the attached source already reflects;
    #: bookkeeping only (source-bit totals), never rescales packets.
    coding_rate: float = 1.0

    def __post_init__(self) -> None:
        if self.sensing_power_watts < 0 or self.isa_power_watts < 0:
            raise SimulationError("node powers must be non-negative")
        if self.coding_power_watts < 0:
            raise SimulationError("coding power must be non-negative")
        if not 0.0 < self.coding_rate <= 1.0:
            raise SimulationError("coding rate must be in (0, 1]")


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    duration_seconds: float
    delivered_packets: int
    dropped_packets: int
    delivered_bits: float
    mean_latency_seconds: float
    p99_latency_seconds: float
    bus_utilization: float
    per_node_average_power_watts: dict[str, float]
    per_node_goodput_bps: dict[str, float]
    hub_rx_energy_joules: float
    arbitration: str = "fifo"
    hub_energy_joules: float = 0.0
    hub_average_power_watts: float = 0.0
    offered_packets: int = 0
    #: Final state of charge of every battery-carrying node (fraction).
    per_node_state_of_charge: dict[str, float] = field(default_factory=dict)
    #: Brownout time of every node that died during the run.
    per_node_first_death_seconds: dict[str, float] = field(default_factory=dict)
    #: Packets each dead node delivered before its brownout.
    per_node_delivered_before_death: dict[str, int] = field(default_factory=dict)
    #: Chronological brownout / low-battery transitions.
    energy_events: tuple[EnergyEvent, ...] = ()
    #: Total energy credited by harvesters across all nodes.
    harvested_joules: float = 0.0
    #: Whether a lossy-link reliability model was attached to the run.
    reliability_enabled: bool = False
    #: Transmission attempts corrupted by the lossy link.
    erased_attempts: int = 0
    #: Corrupted attempts the ARQ policy retransmitted.
    retransmissions: int = 0
    #: Packets lost after exhausting their retries (or erased, no ARQ).
    lost_packets: int = 0
    #: Leaf energy wasted serialising corrupted attempts.
    retransmission_energy_joules: float = 0.0
    #: Leaf energy spent receiving ARQ acks.
    ack_energy_joules: float = 0.0
    #: Whether any leaf ran a source coder (see :mod:`repro.coding`).
    coding_enabled: bool = False
    #: Total leaf energy spent in source-coder encoders.
    coding_energy_joules: float = 0.0
    #: Delivered payload re-expanded to pre-coder source bits.
    source_bits_delivered: float = 0.0

    @property
    def bit_reduction_factor(self) -> float:
        """Source bits per coded bit over the delivered traffic.

        1.0 when no coder ran (delivered bits *are* source bits); a
        coder compressing 2:1 across the board reads 2.0.
        """
        if not self.coding_enabled or self.delivered_bits <= 0.0:
            return 1.0
        return self.source_bits_delivered / self.delivered_bits

    @property
    def encode_energy_fraction(self) -> float:
        """Share of total leaf energy spent encoding (0.0 uncoded)."""
        total = self.total_leaf_power_watts * self.duration_seconds
        if total <= 0.0:
            return 0.0
        return self.coding_energy_joules / total

    @property
    def total_leaf_power_watts(self) -> float:
        """Sum of all leaf nodes' average power."""
        return sum(self.per_node_average_power_watts.values())

    @property
    def delivered_fraction(self) -> float:
        """Delivered / offered packets (1.0 when nothing was offered).

        Offered counts every generated packet — dropped ones and those
        still queued or in flight at the horizon — so a saturated medium
        that merely backlogs traffic reads below 1.0 even before its
        buffer bound starts dropping.
        """
        if self.offered_packets == 0:
            return 1.0
        return self.delivered_packets / self.offered_packets

    @property
    def attempts_per_delivered(self) -> float:
        """Mean transmission attempts per delivered packet (1.0 lossless).

        Counts every serialisation the medium performed — delivered
        packets plus corrupted attempts — against the deliveries; the
        retransmission overhead factor the reliability experiment sweeps.
        A run that erased every attempt delivered nothing at infinite
        cost, and reports exactly that.
        """
        if self.delivered_packets == 0:
            return math.inf if self.erased_attempts > 0 else 1.0
        return (self.delivered_packets + self.erased_attempts) \
            / self.delivered_packets

    @property
    def first_death_seconds(self) -> float:
        """Earliest brownout time (``inf`` when every node survived)."""
        if not self.per_node_first_death_seconds:
            return math.inf
        return min(self.per_node_first_death_seconds.values())

    @property
    def dead_node_count(self) -> int:
        """Number of nodes that browned out during the run."""
        return len(self.per_node_first_death_seconds)

    @property
    def alive_fraction(self) -> float:
        """Fraction of leaf nodes still alive at the horizon."""
        total = len(self.per_node_average_power_watts)
        if total == 0:
            return 1.0
        return 1.0 - self.dead_node_count / total

    def to_dict(self) -> dict[str, object]:
        """Schema-versioned plain-dict form of this result.

        Every field is reduced to JSON-friendly types (energy events
        become a list of dicts); derived properties are not included —
        :meth:`from_dict` reconstructs an object that recomputes them.
        The artifact layer's ``sanitize`` may further spell non-finite
        floats as ``"nan"``/``"inf"`` strings; :meth:`from_dict` accepts
        those spellings back.
        """
        data: dict[str, object] = {
            "result_schema_version": RESULT_SCHEMA_VERSION,
        }
        for spec in dataclasses.fields(self):
            data[spec.name] = getattr(self, spec.name)
        data["per_node_average_power_watts"] = dict(
            self.per_node_average_power_watts)
        data["per_node_goodput_bps"] = dict(self.per_node_goodput_bps)
        data["per_node_state_of_charge"] = dict(self.per_node_state_of_charge)
        data["per_node_first_death_seconds"] = dict(
            self.per_node_first_death_seconds)
        data["per_node_delivered_before_death"] = dict(
            self.per_node_delivered_before_death)
        data["energy_events"] = [dataclasses.asdict(event)
                                 for event in self.energy_events]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output.

        Tolerates the JSON/sanitize round-trip: non-finite floats spelt
        as strings are parsed back, lists come back as tuples where the
        field wants one.  A missing or different schema version raises
        :class:`~repro.errors.SimulationError`.
        """
        version = data.get("result_schema_version")
        if version != RESULT_SCHEMA_VERSION:
            raise SimulationError(
                f"result document has schema version {version!r}, "
                f"expected {RESULT_SCHEMA_VERSION}")
        _float = float  # parses "nan"/"inf"/"-inf" string spellings too

        def float_map(value: object) -> dict[str, float]:
            return {str(key): _float(item)
                    for key, item in dict(value).items()}

        kwargs: dict[str, object] = {}
        for spec in dataclasses.fields(cls):
            if spec.name not in data:
                continue  # field left to its dataclass default
            value = data[spec.name]
            if spec.name in ("delivered_packets", "dropped_packets",
                             "offered_packets", "erased_attempts",
                             "retransmissions", "lost_packets"):
                kwargs[spec.name] = int(value)
            elif spec.name == "arbitration":
                kwargs[spec.name] = str(value)
            elif spec.name in ("reliability_enabled", "coding_enabled"):
                kwargs[spec.name] = bool(value)
            elif spec.name == "per_node_delivered_before_death":
                kwargs[spec.name] = {str(key): int(item)
                                     for key, item in dict(value).items()}
            elif spec.name in ("per_node_average_power_watts",
                               "per_node_goodput_bps",
                               "per_node_state_of_charge",
                               "per_node_first_death_seconds"):
                kwargs[spec.name] = float_map(value)
            elif spec.name == "energy_events":
                kwargs[spec.name] = tuple(
                    EnergyEvent(
                        kind=str(event["kind"]),
                        node=str(event["node"]),
                        time_seconds=_float(event["time_seconds"]),
                        state_of_charge_fraction=_float(
                            event["state_of_charge_fraction"]),
                    )
                    for event in value)
            else:
                kwargs[spec.name] = _float(value)
        return cls(**kwargs)


class BodyNetworkSimulator:
    """Discrete-event simulation of leaves streaming to one hub.

    Parameters
    ----------
    technology:
        Default link technology (sets the medium rate and, for nodes that
        do not override it, energy/bit and sleep power).
    rng:
        Random generator (or seed) driving stochastic traffic sources.
    per_packet_overhead_seconds:
        MAC guard time per packet on the shared medium.
    arbitration:
        Arbitration policy instance or short name (``"fifo"``, ``"tdma"``,
        ``"polling"``).  Defaults to FIFO, which reproduces the historical
        shared-bus behaviour bit-identically.
    latency_exact_capacity:
        Exact-sample capacity of the latency statistics; beyond it the
        accumulator streams with bounded memory (multi-hour runs).
    energy_update_interval_seconds:
        Spacing of the periodic energy-update events (harvest credit,
        static-power drain, threshold checks).  Only used when a node
        carries a battery or harvester.
    harvest_environment:
        Environment every node's harvester operates in.
    reliability:
        Optional :class:`~repro.netsim.reliability.LinkReliability`
        driving per-packet erasures (and, via its ARQ policy,
        retransmissions) on the shared medium.  ``None`` — the default —
        keeps the exact historical lossless behaviour.
    """

    def __init__(self, technology: CommTechnology,
                 rng: np.random.Generator | int | None = 0,
                 per_packet_overhead_seconds: float = 100e-6,
                 arbitration: ArbitrationPolicy | str | None = None,
                 latency_exact_capacity: int | None = None,
                 energy_update_interval_seconds: float =
                 DEFAULT_ENERGY_UPDATE_INTERVAL_SECONDS,
                 harvest_environment: HarvestingEnvironment =
                 HarvestingEnvironment.INDOOR_OFFICE,
                 reliability: LinkReliability | None = None) -> None:
        if energy_update_interval_seconds <= 0:
            raise SimulationError("energy update interval must be positive")
        self.technology = technology
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self.rng = rng
        self.queue = EventQueue()
        self.reliability = reliability
        self.bus = Medium(
            self.queue,
            link_rate_bps=technology.data_rate_bps(),
            per_packet_overhead_seconds=per_packet_overhead_seconds,
            policy=arbitration,
            latency_exact_capacity=latency_exact_capacity,
            reliability=reliability,
        )
        self.nodes: dict[str, SimulatedNode] = {}
        self.hub_ledger = EnergyLedger()
        self.energy_update_interval_seconds = energy_update_interval_seconds
        self.harvest_environment = harvest_environment
        self.energy_events: list[EnergyEvent] = []
        self._death_records: dict[str, tuple[float, int]] = {}
        #: Per-node controller runtimes, keyed by node name.
        self.controllers: dict[str, ControllerRuntime] = {}
        #: Callables ``hook(duration_seconds)`` run by :meth:`run` after
        #: the kernel's ledger write-back and before the static-power
        #: accounting — the only safe point for post-hoc ledger posts
        #: against fast-path nodes (the kernel write-back would clobber
        #: anything posted mid-run).
        self._pre_account_hooks: list[Callable[[float], None]] = []
        self.bus.on_delivery(self._account_delivery)
        if reliability is not None:
            self.bus.on_attempt(self._account_attempt)
            self.bus.on_loss(self._account_loss)
        # The simulator always drains its medium through the batched
        # kernel loop in :meth:`run`; the bus records its transmission
        # chain as data instead of scheduling per-packet callbacks.
        self.bus._kernel = True

    def attach(self, config: NodeConfig) -> SimulatedNode:
        """Attach a leaf node described by a :class:`NodeConfig`.

        See :class:`~repro.netsim.config.NodeConfig` for the meaning of
        each field.  Raises :class:`~repro.errors.SimulationError` on a
        duplicate node name or an invalid low-battery stride.
        """
        if config.name in self.nodes:
            raise SimulationError(f"node {config.name!r} already exists")
        if config.low_battery_stride < 1:
            raise SimulationError("low-battery stride must be >= 1")
        node = SimulatedNode(
            name=config.name,
            source=config.source,
            technology=(config.technology if config.technology is not None
                        else self.technology),
            sensing_power_watts=config.sensing_power_watts,
            isa_power_watts=config.isa_power_watts,
            low_battery_stride=config.low_battery_stride,
            coding_power_watts=config.coding_power_watts,
            coding_rate=config.coding_rate,
        )
        if config.battery is not None or config.harvester is not None:
            node.energy = NodeEnergyState.from_spec(
                battery=config.battery,
                harvester=config.harvester,
                environment=self.harvest_environment,
                initial_charge_fraction=config.initial_charge_fraction,
                ledger=node.ledger,
                low_battery_fraction=config.low_battery_fraction,
            )
        self.nodes[config.name] = node
        self.bus.register_node(
            config.name, config.source.average_rate_bps(),
            link_rate_bps=(config.technology.data_rate_bps()
                           if config.technology is not None else None),
        )
        return node

    def attach_controller(self, name: str,
                          controller: Controller | str | None = None,
                          error_rate_fn: Callable[[float], float]
                          | None = None) -> ControllerRuntime:
        """Bind a closed-loop controller to one attached node.

        *controller* may be a live :class:`~repro.control.Controller`,
        a :class:`~repro.control.ControllerSpec`, a bare kind name
        (``"static"``, ``"per_backoff"``, ``"soc_throttle"``) or
        ``None`` for the neutral static policy.  *error_rate_fn* maps a
        tx-power offset (dB) to the node's re-derived per-packet
        erasure probability; without it, tx-power actions settle their
        energy premium but cannot move the link.

        A controller with a cadence schedules its evaluation ticks on
        the simulator's control stream immediately (deterministically
        interleaved with energy ticks and scenario events); a
        cadence-free controller perturbs nothing until a low-battery
        crossing observes it.
        """
        try:
            node = self.nodes[name]
        except KeyError:
            raise SimulationError(f"unknown node {name!r}") from None
        if name in self.controllers:
            raise SimulationError(
                f"node {name!r} already has a controller")
        if not isinstance(controller, Controller):
            # None, a bare kind name, or a ControllerSpec: instantiate.
            controller = make_controller(controller)
        runtime = ControllerRuntime(self, node, controller,
                                    error_rate_fn=error_rate_fn)
        node.controller = controller
        self.controllers[name] = runtime
        self._pre_account_hooks.append(runtime.finalize)
        runtime.schedule()
        return runtime

    def set_node_active(self, name: str, active: bool) -> None:
        """Gate a node's traffic generation (duty-cycle / posture events).

        A browned-out node cannot be woken: death is terminal for the
        remainder of the run.
        """
        try:
            node = self.nodes[name]
        except KeyError:
            raise SimulationError(f"unknown node {name!r}") from None
        if active and node.energy is not None and not node.energy.alive:
            return
        node.active = active

    def set_node_error_rate(self, name: str, error_rate: float) -> None:
        """Update one node's packet-erasure probability mid-run.

        Scenario posture events call this when the active body channel
        (and with it the link budget) changes.
        """
        if self.reliability is None:
            raise SimulationError(
                "no reliability model attached to this simulator")
        if name not in self.nodes:
            raise SimulationError(f"unknown node {name!r}")
        self.reliability.set_error_rate(name, error_rate)

    def _account_delivery(self, packet: Packet) -> None:
        node = self.nodes[packet.source]
        tx_energy = packet.bits * node.technology.tx_energy_per_bit()
        rx_energy = packet.bits * node.technology.rx_energy_per_bit()
        if node.energy is None:
            node.ledger.post("wir_tx", tx_energy,
                             timestamp_seconds=self.queue.now)
            node.packets_delivered += 1
        else:
            was_alive = node.energy.alive
            node.energy.drain("wir_tx", tx_energy, self.queue.now)
            if was_alive:
                node.packets_delivered += 1
            if not node.energy.alive:
                self._record_death(node)
        self.hub_ledger.post("wir_rx", rx_energy, timestamp_seconds=self.queue.now)

    def _account_attempt(self, packet: Packet, success: bool) -> None:
        """Energy of one transmission attempt on a lossy medium.

        A successful attempt's frame energy flows through
        :meth:`_account_delivery`; here it only pays for its ack (leaf
        receives, hub transmits).  A corrupted attempt pays the full
        wasted frame — leaf transmit under ``wir_retx``, hub receive —
        and gets no ack (the leaf times out).
        """
        node = self.nodes[packet.source]
        now = self.queue.now
        arq = self.reliability.arq if self.reliability is not None else None
        if success:
            if arq is None or arq.ack_bits == 0.0:
                return
            ack_energy = arq.ack_bits * node.technology.rx_energy_per_bit()
            if node.energy is None:
                node.ledger.post_fast("arq_ack", ack_energy, now)
            else:
                node.energy.drain("arq_ack", ack_energy, now)
                if not node.energy.alive:
                    self._record_death(node)
            self.hub_ledger.post_fast(
                "ack_tx", arq.ack_bits * self.technology.tx_energy_per_bit(),
                now)
            return
        node.retx_bits += packet.bits
        tx_energy = packet.bits * node.technology.tx_energy_per_bit()
        if node.energy is None:
            node.ledger.post_fast("wir_retx", tx_energy, now)
        else:
            node.energy.drain("wir_retx", tx_energy, now)
            if not node.energy.alive:
                self._record_death(node)
        # The hub listened to the corrupted frame for its full length.
        self.hub_ledger.post_fast(
            "wir_rx", packet.bits * node.technology.rx_energy_per_bit(), now)

    def _account_loss(self, packet: Packet) -> None:
        """A packet the link gave up on: goodput and airtime bookkeeping.

        The attempt-level energy is already correct (every one of its
        failed serialisations posted ``wir_retx``); here the per-node
        counters reconcile: the frame ``bits_sent`` charged at submit
        never serialised *in addition to* the failed attempts, and the
        payload never became goodput.
        """
        node = self.nodes[packet.source]
        node.retx_bits -= packet.bits
        node.lost_bits += packet.bits

    def _record_death(self, node: SimulatedNode) -> None:
        """Mark a brownout once: stop traffic, freeze the node's counters.

        The dead node's queued packets are purged from the medium — a
        browned-out transmitter cannot serialise its backlog.  At most
        one already-granted transmission may still complete (it was in
        flight when the cell emptied).
        """
        if node.name in self._death_records:
            return
        assert node.energy is not None and node.energy.death_seconds is not None
        self._death_records[node.name] = (node.energy.death_seconds,
                                          node.packets_delivered)
        node.active = False
        self.bus.purge_node(node.name)
        self.energy_events.append(EnergyEvent(
            kind="brownout", node=node.name,
            time_seconds=node.energy.death_seconds,
            state_of_charge_fraction=0.0))

    def _settle_energy(self, node: SimulatedNode, now: float) -> None:
        """Serve a node's static loads since its last settlement."""
        state = node.energy
        assert state is not None
        elapsed = now - node.energy_settled_seconds
        node.energy_settled_seconds = now
        if elapsed <= 0.0 or not state.alive:
            return
        # Transceiver sleep power covers whatever the interval did not
        # spend serialising (corrupted attempts serialise too) — the same
        # split the batteryless path applies to the whole run at once.
        serialised_bits = node.bits_sent + node.retx_bits
        delta_bits = serialised_bits - node.accounted_bits
        node.accounted_bits = serialised_bits
        tx_time = delta_bits / node.technology.data_rate_bps()
        sleep_time = max(elapsed - tx_time, 0.0)
        loads = {
            "sensing": node.sensing_power_watts,
            "isa": node.isa_power_watts,
            "wir_sleep": (node.technology.sleep_power()
                          * sleep_time / elapsed),
        }
        if node.coding_power_watts > 0.0:
            loads["coding"] = node.coding_power_watts
        state.advance(loads, elapsed, now)
        if not state.alive:
            self._record_death(node)
        elif state.is_low_battery() and node.tx_stride == 1:
            # The threshold crossing is a controller observation: the
            # node's policy (default: the legacy 1-in-stride throttle,
            # bit-identically) decides the throttled stride.
            controller = node.controller
            if controller is None:
                controller = _DEFAULT_SOC_THROTTLE
            action = controller.evaluate(Observation(
                kind="low_battery", time_seconds=now,
                state_of_charge=state.state_of_charge_fraction,
                low_battery=True, tx_stride=node.tx_stride,
                low_battery_stride=node.low_battery_stride))
            if action is not None and action.tx_stride is not None:
                node.tx_stride = action.tx_stride
                if node.tx_stride > 1:
                    self.energy_events.append(EnergyEvent(
                        kind="low_battery", node=node.name, time_seconds=now,
                        state_of_charge_fraction=state.
                        state_of_charge_fraction))

    def _schedule_energy_updates(self, end_time: float) -> None:
        energy_nodes = [node for node in self.nodes.values()
                        if node.energy is not None]
        if not energy_nodes:
            return
        interval = self.energy_update_interval_seconds

        def update() -> None:
            now = self.queue.now
            for node in energy_nodes:
                self._settle_energy(node, now)
            next_time = now + interval
            if next_time <= end_time:
                self.queue.schedule_at(next_time, update)

        # Anchor the first tick one interval past the *current* clock,
        # not at the absolute ``interval``: the hybrid driver re-enters
        # the kernel at arbitrary times, where an absolute first tick
        # would be in the past.  At a cold start ``now`` is 0.0 and
        # ``0.0 + interval == interval`` exactly, so the exact path's
        # tick schedule is bit-identical.
        first = self.queue.now + interval
        if first <= end_time:
            self.queue.schedule_at(first, update)

    def _run_kernel(self, end_time: float) -> None:
        """Drain the simulation with the batched three-stream merge loop.

        The kernel merges three event streams by ``(time, sequence)``:

        * **generation** — one heap entry per node holding its next
          packet-generation instant;
        * **transmission chain** — the medium's single in-flight begin or
          completion (the medium serialises, so at most one exists),
          carried in plain locals while the loop runs;
        * **control** — the :class:`EventQueue` proper: energy-update
          ticks, posture events, anything callers scheduled directly.

        All three claim sequence numbers from the queue's shared counter
        at exactly the points the callback-per-event implementation
        scheduled its events, so the merged total order — and therefore
        every RNG draw, float addition and statistic — is bit-identical
        to running the same workload through ``queue.run_until``.  A
        begin event whose instant nothing else can reach (no generation,
        control or horizon crossing before it) is folded into the grant
        that created it: the begin and completion claim the same counter
        values the two-dispatch schedule would have claimed, so the
        merge order is unchanged while the loop runs one iteration per
        packet instead of two.

        While the loop runs, shared state lives in locals and flat
        per-node tables: the aggregate counters (delivered packets and
        bits, medium busy time), the latency accumulator's buffers (its
        extrema are folded in batch at spill/flush boundaries — min/max
        are order-independent), the sequence counter, the chain, and
        each node's traffic counters and fast-path ledger totals.
        Everything is written back when the loop exits, with every
        addition replayed in the legacy order.  Control-stream events
        observe consistent per-node traffic counters and queue state
        (synced around ``queue.step()``); registered extra callbacks get
        the full shared state synced around them; aggregate statistics
        and fast-path ledger totals otherwise sync lazily.
        """
        queue = self.queue
        bus = self.bus
        policy = bus.policy
        stats = bus.stats
        latency = stats.latency
        reliability = bus.reliability
        arq = reliability.arq if reliability is not None else None
        rng = self.rng
        nodes = self.nodes
        hub_ledger = self.hub_ledger
        claim = queue.claim_sequence
        max_queue = bus.max_queue_packets
        pending_count = policy.pending_count
        enqueue = policy.enqueue
        next_grant = policy.next_grant
        service_cache = bus._service_cache
        purged = bus._purged_nodes
        inf_ = math.inf

        # Callbacks beyond the simulator's own accounting (tests or
        # embedding code may register extras); the simulator's were
        # registered first, so running the inline accounting before the
        # extras preserves the legacy invocation order.
        delivery_extras = [callback for callback in bus._delivery_callbacks
                           if callback != self._account_delivery]
        attempt_extras = [callback for callback in bus._attempt_callbacks
                          if callback != self._account_attempt]
        loss_extras = [callback for callback in bus._loss_callbacks
                       if callback != self._account_loss]
        extra_hooks = bool(delivery_extras or attempt_extras or loss_extras)

        # The stock arbiters get their admission path inlined (exact type
        # checks — subclasses keep the method-call path).  FIFO admission
        # reads the deque fresh each time because a brownout purge
        # replaces it; the slotted arbiters clear per-node deques in
        # place, so those aliases stay valid for the whole run.
        policy_type = type(policy)
        fifo_fast = policy_type is FIFOArbitration
        slotted_fast = policy_type in (TDMAArbitration, HubPollingArbitration)
        # The TDMA slot-ring grant is additionally inlined at the
        # completion site (the dense-body hour grants once per packet).
        # The ring and its validity flags are re-read per grant, so a
        # mid-run slot-table rebuild falls back to the method safely.
        tdma_fast = policy_type is TDMAArbitration
        superframe = policy.superframe_seconds if tdma_fast else 0.0
        floor_ = math.floor
        bisect_ = bisect_right
        new_packet = Packet.__new__
        int_ = int
        len_ = len
        max_ = max
        heappop_ = heappop
        heappush_ = heappush

        # Per-node state, flattened into index-addressed tables (the
        # delivery path resolves the index from ``packet._node``).  The
        # traffic counters start from the node attributes and replay
        # their additions in the legacy order, so the written-back floats
        # are bit-identical.
        node_list = list(nodes.values())
        n_nodes = len(node_list)
        node_index = {node.name: i for i, node in enumerate(node_list)}
        # (period, bits, service, name) for plain periodic sources —
        # their draws consume no randomness and every packet serialises
        # in the same time, so both lookups can be skipped outright.
        periodic: list[tuple[float, float, float, str] | None] = []
        gen_heap: list[tuple[float, int, int]] = []
        node_queues: list = []
        tx_e: list[float] = []
        rx_e: list[float] = []
        # A "fast" node's only mid-run ledger traffic is its own posts
        # (``wir_tx`` deliveries, and on a lossy medium ``wir_retx``
        # frames and ``arq_ack`` receptions), so they can accrue in
        # plain table slots and land on the (still fresh) ledger in one
        # write-back.  ``grand_acc`` replays every post in event order,
        # so the grand total keeps the per-post float associativity.
        fast_flags: list[bool] = []
        wir_acc: list[float] = []
        retx_acc: list[float] = []
        ack_acc: list[float] = []
        grand_acc: list[float] = []
        tx_posts_l: list[int] = []
        retx_posts_l: list[int] = []
        ack_posts_l: list[int] = []
        ack_e_l: list[float] = []
        trace_l: list = []
        trace_w_l: list[float] = []
        trace_last_l: list[int] = []
        gen_counts: list[int] = []
        sent_counts: list[int] = []
        bits_l: list[float] = []
        deliv_counts: list[int] = []
        stride_l: list[int] = []
        # Ack energies are fixed products, precomputed once (the same
        # two floats the per-attempt multiplication would produce).
        arq_ack_bits = arq.ack_bits if arq is not None else 0.0
        ack_posting = reliability is not None and arq_ack_bits != 0.0
        hub_ack_e = (arq_ack_bits * self.technology.tx_energy_per_bit()
                     if ack_posting else 0.0)
        for index, node in enumerate(node_list):
            source = node.source
            tx_e.append(node.technology.tx_energy_per_bit())
            rx_val = node.technology.rx_energy_per_bit()
            rx_e.append(rx_val)
            ack_e_l.append(arq_ack_bits * rx_val)
            ledger = node.ledger
            fast_flags.append(not extra_hooks
                              and node.energy is None
                              and ledger.entries is None
                              and ledger._posted_count == 0)
            wir_acc.append(0.0)
            retx_acc.append(0.0)
            ack_acc.append(0.0)
            grand_acc.append(0.0)
            tx_posts_l.append(0)
            retx_posts_l.append(0)
            ack_posts_l.append(0)
            trace_l.append(ledger._trace)
            trace_w_l.append(ledger.trace_bucket_seconds)
            trace_last_l.append(ledger.trace_buckets - 1)
            gen_counts.append(node.generated_count)
            sent_counts.append(node.packets_sent)
            bits_l.append(node.bits_sent)
            deliv_counts.append(node.packets_delivered)
            stride_l.append(node.tx_stride)
            if type(source) is PeriodicSource:
                bits = source.bits_per_packet
                probe = Packet(node.name, "hub", bits, 0.0)
                periodic.append((source.period_seconds, bits,
                                 bus.service_time_seconds(probe),
                                 node.name))
            else:
                periodic.append(None)
            node_queues.append(policy._queues.get(node.name)
                               if slotted_fast else None)
            next_time = queue._now + source.next_interarrival_seconds(rng)
            if next_time <= end_time:
                gen_heap.append((next_time, claim(), index))
        heapify(gen_heap)
        if slotted_fast and any(entry is None for entry in node_queues):
            slotted_fast = False
        # The slotted arbiters' backlog counter and the TDMA slot ring
        # are hoisted into locals; every call that can mutate them (a
        # method grant, a purge, foreign code) is bracketed by a sync
        # and re-hoist.  The ring is built up front so the first grant
        # already takes the inline path (a missing link rate surfaces
        # identically on that first grant instead).
        slot_pending = policy._pending if slotted_fast else 0
        ring = None
        ring_starts = None
        ring_ok = False
        # Per-index (offset, width) windows back the idle-bus grant
        # shortcut; ``win_src`` tracks the dict they were read from, so
        # a slot-table rebuild (always a fresh dict) is detected by
        # identity instead of rebuilding the table on every re-hoist.
        win_l: list[tuple[float, float] | None] = [None] * n_nodes
        win_src = None
        if tdma_fast and slotted_fast:
            try:
                policy._slot_table()
            except SimulationError:
                pass
            ring_ok = policy._windows is not None and policy._ring_fast
            if ring_ok:
                ring = policy._ring
                ring_starts = policy._ring_starts
                win_src = policy._windows
                for i in range(n_nodes):
                    win_l[i] = win_src.get(node_list[i].name)
        self._schedule_energy_updates(end_time)

        # On a lossy medium the attempt accounting posts to the hub too
        # (wasted frames, ack transmissions); the hub can only go fast
        # if every node does, otherwise a method-path attempt would
        # interleave hub posts with the accumulated ones.
        hub_fast = (not extra_hooks
                    and hub_ledger.entries is None
                    and hub_ledger._posted_count == 0
                    and (reliability is None or all(fast_flags)))
        hub_rx_acc = 0.0
        hub_ack_acc = 0.0
        hub_grand = 0.0
        hub_posts = 0
        hub_ack_posts = 0
        hub_trace = hub_ledger._trace
        hub_w = hub_ledger.trace_bucket_seconds
        hub_last = hub_ledger.trace_buckets - 1
        # Delivery times are nondecreasing, so the hub's trace bucket
        # only ever moves forward: cache it and recompute only when the
        # time crosses the cached bucket's upper edge.
        hub_bucket = 0
        hub_limit = 0.0

        delivered_cnt = stats.delivered_packets
        delivered_bits_sum = stats.delivered_bits
        busy_s = stats.busy_seconds
        cnt = latency.count
        lat_min = latency._min
        lat_max = latency._max
        lat_list = latency._samples
        lat_pending = latency._pending
        lat_cap = latency.exact_capacity
        lat_flush = PENDING_FLUSH_THRESHOLD
        # Samples already in the window are covered by the hoisted
        # ``lat_min``/``lat_max`` (every add path maintains them), so
        # min/max syncs only need to scan entries appended since the
        # last sync — an index, not a copy.
        lat_scan = len(lat_list) if lat_list is not None else 0

        sentinel = (inf_, inf_)
        # The in-flight transmission, as loop locals; a previous run may
        # hand a chain over across the horizon.
        chain_key = sentinel
        chain_kind = 0
        chain_packet = None
        chain_service = 0.0
        handoff = bus._chain
        if handoff is not None:
            bus._chain = None
            chain_key = (handoff[0], handoff[1])
            chain_kind = handoff[2]
            chain_packet = handoff[3]
            chain_service = handoff[4]
        ctrl_key = queue.peek_key() or sentinel
        # Hoisted after the setup claims above — every in-loop claim is
        # an inline increment, written back around foreign code.
        seq = queue._seq

        def _publish_nodes() -> None:
            for i in range(n_nodes):
                nd = node_list[i]
                nd.generated_count = gen_counts[i]
                nd.packets_sent = sent_counts[i]
                nd.bits_sent = bits_l[i]
                if fast_flags[i]:
                    nd.packets_delivered = deliv_counts[i]

        def _reload_nodes() -> None:
            for i in range(n_nodes):
                nd = node_list[i]
                gen_counts[i] = nd.generated_count
                sent_counts[i] = nd.packets_sent
                bits_l[i] = nd.bits_sent
                stride_l[i] = nd.tx_stride
                if fast_flags[i]:
                    deliv_counts[i] = nd.packets_delivered

        def _rehoist_ring() -> None:
            nonlocal ring, ring_starts, ring_ok, win_src
            ring_ok = (slotted_fast and tdma_fast
                       and policy._windows is not None and policy._ring_fast)
            if ring_ok:
                ring = policy._ring
                ring_starts = policy._ring_starts
                if policy._windows is not win_src:
                    win_src = policy._windows
                    for i in range(n_nodes):
                        win_l[i] = win_src.get(node_list[i].name)

        def _sync_shared(now: float) -> None:
            """Publish the hoisted state before foreign code runs."""
            nonlocal lat_min, lat_max, lat_scan
            queue._now = now
            queue._seq = seq
            if slotted_fast:
                policy._pending = slot_pending
            stats.delivered_packets = delivered_cnt
            stats.delivered_bits = delivered_bits_sum
            stats.busy_seconds = busy_s
            latency.count = cnt
            if lat_list is not None:
                buffered = lat_list[lat_scan:] if lat_scan else lat_list
                lat_scan = len(lat_list)
            else:
                buffered = lat_pending
            if buffered:
                low = min(buffered)
                if low < lat_min:
                    lat_min = low
                high = max(buffered)
                if high > lat_max:
                    lat_max = high
            latency._min = lat_min
            latency._max = lat_max
            _publish_nodes()

        def _reload_shared() -> None:
            """Re-hoist after foreign code may have moved shared state."""
            nonlocal seq, delivered_cnt, delivered_bits_sum, busy_s
            nonlocal cnt, lat_min, lat_max, lat_list, lat_pending, lat_scan
            nonlocal ctrl_key, chain_key, chain_kind, chain_packet
            nonlocal chain_service, slot_pending
            seq = queue._seq
            if slotted_fast:
                slot_pending = policy._pending
            _rehoist_ring()
            delivered_cnt = stats.delivered_packets
            delivered_bits_sum = stats.delivered_bits
            busy_s = stats.busy_seconds
            cnt = latency.count
            lat_min = latency._min
            lat_max = latency._max
            lat_list = latency._samples
            lat_pending = latency._pending
            # Foreign adds maintain the accumulator's min/max, so the
            # re-hoisted window is fully covered again.
            lat_scan = len(lat_list) if lat_list is not None else 0
            _reload_nodes()
            ctrl_key = queue.peek_key() or sentinel
            foreign = bus._chain
            if foreign is not None:
                bus._chain = None
                chain_key = (foreign[0], foreign[1])
                chain_kind = foreign[2]
                chain_packet = foreign[3]
                chain_service = foreign[4]

        # Empty streams are represented by the (inf, inf) sentinel rather
        # than None so head selection is two plain comparisons.  The
        # sentinel never wins while an event remains at or before
        # ``end_time``, and once every stream is the sentinel the loop
        # exits on the time bound before any identity check runs.
        while True:
            # Generations below the chain/control barrier dispatch in a
            # tight inner loop: nothing a generation does can move the
            # control stream, and a grant — the only way it arms the
            # chain — recomputes the barrier in place.  Sequence numbers
            # are globally unique, so tuple comparison never reaches the
            # streams' differing trailing elements, and a generation
            # wins the three-way merge exactly when it sorts below the
            # minimum of the other two heads.  Generation times never
            # exceed the horizon (scheduling is gated), so the drain
            # needs no horizon check.
            barrier = chain_key if chain_key < ctrl_key else ctrl_key
            while gen_heap:
                head = gen_heap[0]
                if head >= barrier:
                    break
                t = head[0]
                heappop_(gen_heap)
                index = head[2]
                node = node_list[index]
                fast = periodic[index]
                packet = None
                if node.active:
                    opportunity = gen_counts[index]
                    gen_counts[index] = opportunity + 1
                    if opportunity % stride_l[index] == 0:
                        if fast is not None:
                            # Periodic fast path: build the packet by
                            # direct slot assignment — ``__init__``'s
                            # guards are vacuous here (bits and t are
                            # validated / non-negative by construction).
                            bits = fast[1]
                            packet = new_packet(Packet)
                            packet.source = fast[3]
                            packet.destination = "hub"
                            packet.bits = bits
                            packet.created_at = t
                            packet.delivered_at = None
                            packet.queued_at = None
                            packet.attempts = 0
                            packet._metadata = None
                            packet._service = fast[2]
                            packet._node = index
                        else:
                            bits = node.source.packet_bits(rng)
                            packet = Packet(node.name, "hub", bits, t)
                            packet._node = index
                # The interarrival draw moves ahead of admission relative
                # to the legacy callback, but no other draw sits between
                # them, so the rng stream is consumed identically; the
                # grant below needs the next generation instant for its
                # begin-fusion check.
                next_time = t + (fast[0] if fast is not None
                                 else node.source.next_interarrival_seconds(
                                     rng))
                fused = False
                if packet is not None:
                    if fifo_fast:
                        fifo_queue = policy._pending
                        if len_(fifo_queue) < max_queue:
                            fifo_queue.append(packet)
                            accepted = True
                        else:
                            accepted = False
                    elif slotted_fast:
                        if slot_pending < max_queue:
                            node_queues[index].append(packet)
                            slot_pending += 1
                            accepted = True
                        else:
                            accepted = False
                    elif pending_count() < max_queue:
                        enqueue(packet)
                        accepted = True
                    else:
                        accepted = False
                    if accepted:
                        if not bus._busy:
                            bus._busy = True
                            if (ring_ok and slot_pending == 1
                                    and win_l[index] is not None):
                                # The bus was idle, so nothing else is
                                # backlogged: the packet just queued is
                                # the only one the slot-ring walk could
                                # grant.  Grant it directly from its own
                                # window (the access arithmetic mirrors
                                # the ring walk's expressions exactly).
                                node_queues[index].popleft()
                                slot_pending = 0
                                offset, width = win_l[index]
                                frame_start = (floor_(t / superframe)
                                               * superframe)
                                start = frame_start + offset
                                if t < start + width:
                                    access = t if t > start else start
                                else:
                                    start = (frame_start + superframe
                                             + offset)
                                    if t < start + width:
                                        access = t if t > start else start
                                    else:
                                        access = (frame_start
                                                  + 2.0 * superframe
                                                  + offset)
                                grant = (packet, access - t)
                            else:
                                if slotted_fast:
                                    policy._pending = slot_pending
                                grant = next_grant(t)
                                if slotted_fast:
                                    slot_pending = policy._pending
                                    _rehoist_ring()
                            if grant is None:
                                bus._busy = False
                            else:
                                packet2, access_delay = grant
                                service = packet2._service
                                if service is None:
                                    service = service_cache.get(
                                        (packet2.source, packet2.bits))
                                    if service is None:
                                        service = \
                                            bus.service_time_seconds(packet2)
                                busy_s += service
                                chain_packet = packet2
                                chain_service = service
                                if access_delay == 0.0:
                                    packet2.queued_at = t
                                    chain_key = (t + service, seq)
                                    chain_kind = 1
                                    seq += 1
                                else:
                                    begin_t = t + access_delay
                                    # Begin fusion, with one extra claim
                                    # to account for: this node's own
                                    # reschedule (pushed below) claims
                                    # before the begin would dispatch.
                                    if (begin_t <= end_time
                                            and ctrl_key[0] > begin_t
                                            and (gen_heap[0][0] if gen_heap
                                                 else inf_) > begin_t
                                            and (next_time > begin_t
                                                 or next_time > end_time)):
                                        packet2.queued_at = begin_t
                                        chain_key = (
                                            begin_t + service,
                                            seq + (2 if next_time <= end_time
                                                   else 1))
                                        chain_kind = 1
                                        seq += 1
                                        fused = True
                                    else:
                                        chain_key = (begin_t, seq)
                                        chain_kind = 0
                                        seq += 1
                                barrier = (chain_key
                                           if chain_key < ctrl_key
                                           else ctrl_key)
                        sent_counts[index] += 1
                        bits_l[index] += bits
                    else:
                        stats.dropped_packets += 1
                if next_time <= end_time:
                    heappush_(gen_heap, (next_time, seq, index))
                    seq += 1
                if fused:
                    seq += 1  # the fused completion's claim
            t = barrier[0]
            if t > end_time:
                break
            if barrier is chain_key:
                chain_key = sentinel
                if chain_kind:
                    # Transmission completes.
                    packet = chain_packet
                    if reliability is not None:
                        packet.attempts += 1
                        ridx = packet._node
                        if ridx is None:
                            ridx = node_index[packet.source]
                        if reliability.draw_erasure(packet.source):
                            stats.erased_attempts += 1
                            node_list[ridx].erased_attempts += 1
                            if fast_flags[ridx]:
                                # Inline failed-attempt accounting
                                # (mirrors ``_account_attempt``): a
                                # batteryless node has no drain/brownout
                                # branch, so the wasted frame is exactly
                                # two posts, accumulated like the
                                # delivery path's.
                                rbits = packet.bits
                                node_list[ridx].retx_bits += rbits
                                value = rbits * tx_e[ridx]
                                retx_acc[ridx] += value
                                grand_acc[ridx] += value
                                retx_posts_l[ridx] += 1
                                bucket = int_(t / trace_w_l[ridx])
                                last = trace_last_l[ridx]
                                trace_l[ridx][bucket if bucket < last
                                              else last] += value
                                value = rbits * rx_e[ridx]
                                if hub_fast:
                                    hub_rx_acc += value
                                    hub_grand += value
                                    hub_posts += 1
                                    q = t / hub_w
                                    if q >= hub_limit:
                                        hub_bucket = int_(q)
                                        if hub_bucket >= hub_last:
                                            hub_bucket = hub_last
                                            hub_limit = inf_
                                        else:
                                            hub_limit = hub_bucket + 1.0
                                    hub_trace[hub_bucket] += value
                                else:
                                    hub_ledger.post_fast("wir_rx", value,
                                                         t)
                            else:
                                queue._now = t  # the accounting reads it
                                if slotted_fast:  # the drain may purge
                                    policy._pending = slot_pending
                                self._account_attempt(packet, False)
                                if slotted_fast:
                                    slot_pending = policy._pending
                            if attempt_extras:
                                _sync_shared(t)
                                for callback in attempt_extras:
                                    callback(packet, False)
                                _reload_shared()
                            if (arq is not None
                                    and arq.may_retry(packet.attempts)
                                    and packet.source not in purged):
                                stats.retransmissions += 1
                                if slotted_fast:
                                    # The source is a known node, so
                                    # ``enqueue`` reduces to an append
                                    # and a pending bump.
                                    node_queues[ridx].append(packet)
                                    slot_pending += 1
                                else:
                                    enqueue(packet)
                            else:
                                stats.lost_packets += 1
                                self._account_loss(packet)
                                if loss_extras:
                                    _sync_shared(t)
                                    for callback in loss_extras:
                                        callback(packet)
                                    _reload_shared()
                            # Grant the next transmission — the same
                            # inline slot-ring walk as the delivery
                            # site.
                            packet2 = None
                            if ring_ok:
                                if slot_pending == 0:
                                    bus._busy = False
                                else:
                                    frame_start = (floor_(t / superframe)
                                                   * superframe)
                                    anchor = bisect_(ring_starts,
                                                     t - frame_start) - 1
                                    if anchor >= 0:
                                        offset, width, nq = ring[anchor]
                                        if nq and t < (frame_start
                                                       + offset + width):
                                            slot_pending -= 1
                                            packet2 = nq.popleft()
                                            access_delay = \
                                                max_(t, frame_start
                                                     + offset) - t
                                    if packet2 is None:
                                        count = len_(ring)
                                        for step in range(1, count + 1):
                                            offset, width, nq = \
                                                ring[(anchor + step)
                                                     % count]
                                            if nq:
                                                start = (frame_start
                                                         + offset)
                                                if t < start + width:
                                                    access = (t
                                                              if t > start
                                                              else start)
                                                else:
                                                    start = (frame_start
                                                             + superframe
                                                             + offset)
                                                    if t < start + width:
                                                        access = (
                                                            t if t > start
                                                            else start)
                                                    else:
                                                        access = (
                                                            frame_start
                                                            + 2.0
                                                            * superframe
                                                            + offset)
                                                slot_pending -= 1
                                                packet2 = nq.popleft()
                                                access_delay = access - t
                                                break
                                        else:
                                            raise SimulationError(
                                                "pending count out of "
                                                "sync with queues")
                            else:
                                if slotted_fast:
                                    policy._pending = slot_pending
                                grant = next_grant(t)
                                if slotted_fast:
                                    slot_pending = policy._pending
                                    _rehoist_ring()
                                if grant is None:
                                    bus._busy = False
                                else:
                                    packet2, access_delay = grant
                            if packet2 is not None:
                                service = packet2._service
                                if service is None:
                                    service = service_cache.get(
                                        (packet2.source, packet2.bits))
                                    if service is None:
                                        service = \
                                            bus.service_time_seconds(packet2)
                                busy_s += service
                                chain_packet = packet2
                                chain_service = service
                                if access_delay == 0.0:
                                    packet2.queued_at = t
                                    chain_key = (t + service, seq)
                                    chain_kind = 1
                                    seq += 1
                                else:
                                    begin_t = t + access_delay
                                    if (begin_t <= end_time
                                            and ctrl_key[0] > begin_t
                                            and (gen_heap[0][0] if gen_heap
                                                 else inf_) > begin_t):
                                        packet2.queued_at = begin_t
                                        chain_key = (begin_t + service,
                                                     seq + 1)
                                        chain_kind = 1
                                        seq += 2
                                    else:
                                        chain_key = (begin_t, seq)
                                        chain_kind = 0
                                        seq += 1
                            continue
                        if fast_flags[ridx]:
                            if ack_posting:
                                # Inline successful-attempt accounting:
                                # the frame energy flows through the
                                # delivery path below; only the ack pair
                                # posts here.
                                value = ack_e_l[ridx]
                                ack_acc[ridx] += value
                                grand_acc[ridx] += value
                                ack_posts_l[ridx] += 1
                                bucket = int_(t / trace_w_l[ridx])
                                last = trace_last_l[ridx]
                                trace_l[ridx][bucket if bucket < last
                                              else last] += value
                                if hub_fast:
                                    hub_ack_acc += hub_ack_e
                                    hub_grand += hub_ack_e
                                    hub_posts += 1
                                    hub_ack_posts += 1
                                    q = t / hub_w
                                    if q >= hub_limit:
                                        hub_bucket = int_(q)
                                        if hub_bucket >= hub_last:
                                            hub_bucket = hub_last
                                            hub_limit = inf_
                                        else:
                                            hub_limit = hub_bucket + 1.0
                                    hub_trace[hub_bucket] += hub_ack_e
                                else:
                                    hub_ledger.post_fast("ack_tx",
                                                         hub_ack_e, t)
                        else:
                            queue._now = t  # the accounting reads it
                            if slotted_fast:  # the ack drain may purge
                                policy._pending = slot_pending
                            self._account_attempt(packet, True)
                            if slotted_fast:
                                slot_pending = policy._pending
                        if attempt_extras:
                            _sync_shared(t)
                            for callback in attempt_extras:
                                callback(packet, True)
                            _reload_shared()
                    packet.delivered_at = t
                    bits = packet.bits
                    delivered_cnt += 1
                    delivered_bits_sum += bits
                    cnt += 1
                    value = t - packet.created_at
                    if lat_list is not None:
                        lat_list.append(value)
                        if len_(lat_list) > lat_cap:
                            # The spill reads the shared extrema; fold the
                            # window's (min/max are order-independent) and
                            # sync first.
                            low = min(lat_list)
                            if low < lat_min:
                                lat_min = low
                            high = max(lat_list)
                            if high > lat_max:
                                lat_max = high
                            latency.count = cnt
                            latency._min = lat_min
                            latency._max = lat_max
                            latency._spill()
                            lat_list = None
                    else:
                        lat_pending.append(value)
                        if len_(lat_pending) >= lat_flush:
                            # The flush clears the buffer; fold its
                            # extrema before they are gone.
                            low = min(lat_pending)
                            if low < lat_min:
                                lat_min = low
                            high = max(lat_pending)
                            if high > lat_max:
                                lat_max = high
                            latency._flush_pending()
                    idx = packet._node
                    if idx is None:
                        idx = node_index[packet.source]
                    tx_energy = bits * tx_e[idx]
                    if fast_flags[idx]:
                        wir_acc[idx] += tx_energy
                        grand_acc[idx] += tx_energy
                        tx_posts_l[idx] += 1
                        bucket = int_(t / trace_w_l[idx])
                        last = trace_last_l[idx]
                        trace_l[idx][bucket if bucket < last else last] \
                            += tx_energy
                        deliv_counts[idx] += 1
                    else:
                        node = node_list[idx]
                        if node.energy is None:
                            node.ledger.post_fast("wir_tx", tx_energy, t)
                            node.packets_delivered += 1
                        else:
                            was_alive = node.energy.alive
                            node.energy.drain("wir_tx", tx_energy, t)
                            if was_alive:
                                node.packets_delivered += 1
                            if not node.energy.alive:
                                if slotted_fast:  # the death purges
                                    policy._pending = slot_pending
                                self._record_death(node)
                                if slotted_fast:
                                    slot_pending = policy._pending
                    if hub_fast:
                        rx_energy = bits * rx_e[idx]
                        hub_rx_acc += rx_energy
                        hub_grand += rx_energy
                        hub_posts += 1
                        q = t / hub_w
                        if q >= hub_limit:
                            hub_bucket = int_(q)
                            if hub_bucket >= hub_last:
                                hub_bucket = hub_last
                                hub_limit = inf_
                            else:
                                hub_limit = hub_bucket + 1.0
                        hub_trace[hub_bucket] += rx_energy
                    else:
                        hub_ledger.post_fast("wir_rx", bits * rx_e[idx], t)
                    if delivery_extras:
                        _sync_shared(t)
                        for callback in delivery_extras:
                            callback(packet)
                        _reload_shared()
                    # Grant the next transmission.  The TDMA slot-ring
                    # walk is replicated inline (same expressions, same
                    # association order as ``TDMAArbitration.next_grant``);
                    # anything else — including a TDMA whose slot table
                    # was invalidated or failed the disjoint-windows
                    # check — takes the method call.
                    packet2 = None
                    if ring_ok:
                        if slot_pending == 0:
                            bus._busy = False
                        else:
                            frame_start = floor_(t / superframe) * superframe
                            anchor = bisect_(ring_starts,
                                             t - frame_start) - 1
                            if anchor >= 0:
                                offset, width, nq = ring[anchor]
                                if nq and t < frame_start + offset + width:
                                    slot_pending -= 1
                                    packet2 = nq.popleft()
                                    access_delay = \
                                        max_(t, frame_start + offset) - t
                            if packet2 is None:
                                count = len_(ring)
                                for step in range(1, count + 1):
                                    offset, width, nq = \
                                        ring[(anchor + step) % count]
                                    if nq:
                                        start = frame_start + offset
                                        if t < start + width:
                                            access = t if t > start else start
                                        else:
                                            start = (frame_start + superframe
                                                     + offset)
                                            if t < start + width:
                                                access = (t if t > start
                                                          else start)
                                            else:
                                                access = (frame_start
                                                          + 2.0 * superframe
                                                          + offset)
                                        slot_pending -= 1
                                        packet2 = nq.popleft()
                                        access_delay = access - t
                                        break
                                else:
                                    raise SimulationError(
                                        "pending count out of sync "
                                        "with queues")
                    else:
                        if slotted_fast:
                            policy._pending = slot_pending
                        grant = next_grant(t)
                        if slotted_fast:
                            slot_pending = policy._pending
                            _rehoist_ring()
                        if grant is None:
                            bus._busy = False
                        else:
                            packet2, access_delay = grant
                    if packet2 is not None:
                        service = packet2._service
                        if service is None:
                            service = service_cache.get(
                                (packet2.source, packet2.bits))
                            if service is None:
                                service = bus.service_time_seconds(packet2)
                        busy_s += service
                        chain_packet = packet2
                        chain_service = service
                        if access_delay == 0.0:
                            packet2.queued_at = t
                            chain_key = (t + service, seq)
                            chain_kind = 1
                            seq += 1
                        else:
                            begin_t = t + access_delay
                            # Begin fusion: if no generation or control
                            # event can dispatch at or before the begin
                            # instant (and the horizon does not cross
                            # it), nothing can claim a sequence between
                            # the grant and the begin dispatch — the
                            # begin claims now and the completion claims
                            # the very next number, exactly the values
                            # the two-dispatch schedule yields.
                            if (begin_t <= end_time
                                    and ctrl_key[0] > begin_t
                                    and (gen_heap[0][0] if gen_heap
                                         else inf_) > begin_t):
                                packet2.queued_at = begin_t
                                chain_key = (begin_t + service, seq + 1)
                                chain_kind = 1
                                seq += 2
                            else:
                                chain_key = (begin_t, seq)
                                chain_kind = 0
                                seq += 1
                else:
                    # Transmission begins: re-arm as its own completion.
                    chain_packet.queued_at = t
                    chain_key = (t + chain_service, seq)
                    chain_kind = 1
                    seq += 1
            else:
                # Control callbacks (energy ticks, posture events) see
                # consistent per-node traffic counters and may schedule
                # or claim; sync the counters around the dispatch.
                queue._seq = seq
                if slotted_fast:
                    policy._pending = slot_pending
                _publish_nodes()
                queue.step()
                seq = queue._seq
                if slotted_fast:
                    slot_pending = policy._pending
                _rehoist_ring()
                _reload_nodes()
                ctrl_key = queue.peek_key() or sentinel
                foreign = bus._chain
                if foreign is not None:
                    bus._chain = None
                    chain_key = (foreign[0], foreign[1])
                    chain_kind = foreign[2]
                    chain_packet = foreign[3]
                    chain_service = foreign[4]

        stats.delivered_packets = delivered_cnt
        stats.delivered_bits = delivered_bits_sum
        stats.busy_seconds = busy_s
        latency.count = cnt
        if lat_list is not None:
            buffered = lat_list[lat_scan:] if lat_scan else lat_list
        else:
            buffered = lat_pending
        if buffered:
            low = min(buffered)
            if low < lat_min:
                lat_min = low
            high = max(buffered)
            if high > lat_max:
                lat_max = high
        latency._min = lat_min
        latency._max = lat_max
        # Fast-path ledgers were fresh at loop entry, so the write-back
        # totals equal the posts replayed from zero in arrival order —
        # the same floats the per-post path would have produced.
        for i in range(n_nodes):
            nd = node_list[i]
            nd.generated_count = gen_counts[i]
            nd.packets_sent = sent_counts[i]
            nd.bits_sent = bits_l[i]
            if fast_flags[i]:
                nd.packets_delivered = deliv_counts[i]
                posts = tx_posts_l[i] + retx_posts_l[i] + ack_posts_l[i]
                if posts:
                    ledger = nd.ledger
                    if tx_posts_l[i]:
                        ledger._totals["wir_tx"] = wir_acc[i]
                    if retx_posts_l[i]:
                        ledger._totals["wir_retx"] = retx_acc[i]
                    if ack_posts_l[i]:
                        ledger._totals["arq_ack"] = ack_acc[i]
                    ledger._grand_total = grand_acc[i]
                    ledger._posted_count = posts
        if hub_fast and hub_posts:
            if hub_posts - hub_ack_posts:
                hub_ledger._totals["wir_rx"] = hub_rx_acc
            if hub_ack_posts:
                hub_ledger._totals["ack_tx"] = hub_ack_acc
            hub_ledger._grand_total = hub_grand
            hub_ledger._posted_count = hub_posts
        if slotted_fast:
            policy._pending = slot_pending
        bus._chain = (None if chain_key is sentinel else
                      (chain_key[0], chain_key[1], chain_kind, chain_packet,
                       chain_service))
        queue._seq = seq
        queue._now = end_time

    def _run_hybrid(self, end_time: float) -> None:
        """Alternate exact kernel chunks with closed-form macro-tick leaps.

        Builds a :class:`~repro.netsim.macrotick.MacroTickEngine` and, at
        every point where the bus is quiescent, asks it to leap toward
        the next control event (``EventQueue.peek_time``) or the run end,
        whichever is nearer.  When the engine refuses — transient queue
        state, non-stationary PER, a battery approaching a threshold —
        the exact kernel runs a short settle chunk and the detector tries
        again.  A statically ineligible workload (Poisson sources, user
        callbacks) degenerates to a single exact kernel call, which is
        bit-identical to ``fast_path`` off.
        """
        from .macrotick import MacroTickEngine

        engine = MacroTickEngine(self)
        queue = self.queue
        if not engine.eligible:
            self._run_kernel(end_time)
            return
        while queue._now < end_time:
            now = queue._now
            if end_time - now < engine.min_leap_seconds:
                # No leap fits in what remains; one exact call to the
                # end (bit-identical to the pure kernel from here on).
                self._run_kernel(end_time)
                break
            ctrl = queue.peek_time()
            horizon = end_time if ctrl is None or ctrl > end_time else ctrl
            if horizon - now >= engine.min_leap_seconds:
                leap_end = engine.try_leap(now, horizon)
                if leap_end is not None:
                    # Same direct clock advance the kernel performs at
                    # exit; all per-node state was re-synced in the leap.
                    queue._now = leap_end
                    continue
                if engine.exact_until is not None:
                    # Battery endgame: one exact chunk straight through
                    # the projected threshold crossing, after which the
                    # node is dead (or re-strided) and leaps resume.
                    self._run_kernel(
                        min(end_time, max(engine.exact_until,
                                          now + engine.settle_seconds)))
                    continue
                # A refusal caused only by an in-flight transfer left
                # over from the previous chunk needs just a short
                # flush, not a full settle chunk.
                chunk = (engine.flush_seconds if engine.transient_blocked()
                         else engine.settle_seconds)
                self._run_kernel(min(end_time, now + chunk))
                continue
            # The next control event is too close for a leap: run the
            # exact kernel straight through it and re-evaluate beyond.
            self._run_kernel(
                min(end_time, max(horizon, now + engine.settle_seconds)))

    def run(self, duration_seconds: float,
            fast_path: str | None = None) -> SimulationResult:
        """Run the network for *duration_seconds* of simulated time.

        Parameters
        ----------
        duration_seconds:
            Simulated time to cover.
        fast_path:
            ``None`` or ``"exact"`` replay every event through the
            batched kernel (bit-identical, the default).  ``"hybrid"``
            lets the macro-tick engine leap over steady-state segments
            in closed form — results then agree with the exact kernel
            only within the analytic envelope (see
            :mod:`repro.netsim.macrotick`), not bit-for-bit.
        """
        if duration_seconds <= 0 or not np.isfinite(duration_seconds):
            raise SimulationError("duration must be positive and finite")
        if not self.nodes:
            raise SimulationError("no nodes attached to the simulator")
        if fast_path not in (None, "exact", "hybrid"):
            raise SimulationError(
                f"unknown fast_path {fast_path!r}; "
                "expected None, 'exact' or 'hybrid'")

        if fast_path == "hybrid":
            self._run_hybrid(duration_seconds)
        else:
            self._run_kernel(duration_seconds)

        # Post-kernel, pre-accounting: controller premiums and other
        # deferred ledger posts land here, after the kernel's fast-path
        # write-back and before the averages read the totals.
        for hook in self._pre_account_hooks:
            hook(duration_seconds)

        per_node_power: dict[str, float] = {}
        per_node_goodput: dict[str, float] = {}
        state_of_charge: dict[str, float] = {}
        harvested = 0.0
        for name, node in self.nodes.items():
            if node.energy is None:
                # Static sensing / ISA power accrues for the whole run.
                node.ledger.post_power("sensing", node.sensing_power_watts,
                                       duration_seconds)
                node.ledger.post_power("isa", node.isa_power_watts,
                                       duration_seconds)
                if node.coding_power_watts > 0.0:
                    # Source-coder draw; gated so uncoded nodes post the
                    # exact same ledger sequence as before coding existed.
                    node.ledger.post_power("coding",
                                           node.coding_power_watts,
                                           duration_seconds)
                # Sleep power of the transceiver when not transmitting.
                tx_time = (node.bits_sent + node.retx_bits) \
                    / node.technology.data_rate_bps()
                sleep_time = max(duration_seconds - tx_time, 0.0)
                node.ledger.post_power("wir_sleep",
                                       node.technology.sleep_power(),
                                       sleep_time)
            else:
                # Settle the residual interval since the last energy tick.
                self._settle_energy(node, duration_seconds)
                harvested += node.energy.harvested_joules
                if node.energy.battery is not None:
                    state_of_charge[name] = \
                        node.energy.state_of_charge_fraction
            per_node_power[name] = node.ledger.average_power(duration_seconds)
            # Accepted minus lost: bits the link actually carried to the
            # hub (plus at most the final in-flight frame, as before).
            per_node_goodput[name] = \
                (node.bits_sent - node.lost_bits) / duration_seconds

        stats = self.bus.stats
        # The hub receiver is awake while the medium carries traffic and
        # sleeps otherwise; without this the hub ledger undercounts every
        # idle second of a duty-cycled day.
        rx_busy = min(stats.busy_seconds, duration_seconds)
        self.hub_ledger.post_power("wir_sleep", self.technology.sleep_power(),
                                   max(duration_seconds - rx_busy, 0.0),
                                   timestamp_seconds=duration_seconds)
        if stats.latency.count:
            mean_latency = stats.mean_latency_seconds
            p99_latency = stats.latency_percentile(99.0)
        else:
            mean_latency = 0.0
            p99_latency = 0.0
        coding_enabled = any(
            node.coding_power_watts > 0.0 or node.coding_rate != 1.0
            for node in self.nodes.values())
        return SimulationResult(
            duration_seconds=duration_seconds,
            delivered_packets=stats.delivered_packets,
            dropped_packets=stats.dropped_packets,
            delivered_bits=stats.delivered_bits,
            mean_latency_seconds=mean_latency,
            p99_latency_seconds=p99_latency,
            bus_utilization=stats.utilization(duration_seconds),
            per_node_average_power_watts=per_node_power,
            per_node_goodput_bps=per_node_goodput,
            hub_rx_energy_joules=self.hub_ledger.total_energy("wir_rx"),
            arbitration=self.bus.policy.name,
            hub_energy_joules=self.hub_ledger.total_energy(),
            hub_average_power_watts=self.hub_ledger.average_power(
                duration_seconds),
            offered_packets=(sum(node.packets_sent
                                 for node in self.nodes.values())
                             + stats.dropped_packets),
            per_node_state_of_charge=state_of_charge,
            per_node_first_death_seconds={
                name: death for name, (death, _)
                in self._death_records.items()},
            per_node_delivered_before_death={
                name: delivered for name, (_, delivered)
                in self._death_records.items()},
            # Detection order can lag an interpolated brownout time by up
            # to one tick; sort (stably) so the tuple is chronological as
            # documented.
            energy_events=tuple(sorted(
                self.energy_events, key=lambda event: event.time_seconds)),
            harvested_joules=harvested,
            reliability_enabled=self.reliability is not None,
            erased_attempts=stats.erased_attempts,
            retransmissions=stats.retransmissions,
            lost_packets=stats.lost_packets,
            retransmission_energy_joules=sum(
                node.ledger.total_energy("wir_retx")
                for node in self.nodes.values()),
            ack_energy_joules=sum(
                node.ledger.total_energy("arq_ack")
                for node in self.nodes.values()),
            coding_enabled=coding_enabled,
            coding_energy_joules=(sum(
                node.ledger.total_energy("coding")
                for node in self.nodes.values())
                if coding_enabled else 0.0),
            source_bits_delivered=(sum(
                (node.bits_sent - node.lost_bits) / node.coding_rate
                for node in self.nodes.values())
                if coding_enabled else 0.0),
        )

    def describe(self) -> dict[str, object]:
        """Summary of the configured network (for reports)."""
        technologies = sorted({node.technology.name
                               for node in self.nodes.values()})
        return {
            "technology": self.technology.name,
            "link_rate_mbps": units.to_megabit_per_second(self.technology.data_rate_bps()),
            "node_count": len(self.nodes),
            "offered_rate_bps": sum(
                node.source.average_rate_bps() for node in self.nodes.values()
            ),
            "arbitration": self.bus.policy.name,
            "node_technologies": technologies,
            "battery_nodes": sum(
                1 for node in self.nodes.values()
                if node.energy is not None
                and node.energy.battery is not None),
        }
