"""The shared body 'bus': serialising packets from many leaves to the hub.

In the EQS regime the whole body is effectively one electrical node, so
all Wi-R leaves share one broadcast medium coordinated by the hub.  The
bus model is a single server with a FIFO queue (optionally weighted by a
per-node guard overhead), which is the right abstraction for both a
hub-polled and a TDMA-coordinated network at the time scales the
experiments care about.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError
from .events import EventQueue
from .packet import Packet


@dataclass
class BusStats:
    """Aggregate statistics collected by the bus."""

    delivered_packets: int = 0
    delivered_bits: float = 0.0
    dropped_packets: int = 0
    busy_seconds: float = 0.0
    latencies: list[float] = field(default_factory=list)

    def latency_percentile(self, percentile: float) -> float:
        """Latency percentile over delivered packets (seconds)."""
        if not self.latencies:
            raise SimulationError("no packets delivered yet")
        if not 0.0 <= percentile <= 100.0:
            raise SimulationError("percentile must be in [0, 100]")
        return float(np.percentile(self.latencies, percentile))

    @property
    def mean_latency_seconds(self) -> float:
        """Mean delivery latency (seconds)."""
        if not self.latencies:
            raise SimulationError("no packets delivered yet")
        return float(np.mean(self.latencies))

    def throughput_bps(self, horizon_seconds: float) -> float:
        """Delivered goodput over *horizon_seconds*."""
        if horizon_seconds <= 0:
            raise SimulationError("horizon must be positive")
        return self.delivered_bits / horizon_seconds

    def utilization(self, horizon_seconds: float) -> float:
        """Fraction of time the bus was busy."""
        if horizon_seconds <= 0:
            raise SimulationError("horizon must be positive")
        return min(self.busy_seconds / horizon_seconds, 1.0)


class SharedBus:
    """Single shared link serving packets in FIFO order.

    Parameters
    ----------
    queue:
        The simulator's event queue.
    link_rate_bps:
        Serialisation rate of the medium.
    per_packet_overhead_seconds:
        Guard/turnaround charged per packet (MAC overhead).
    max_queue_packets:
        Packets beyond this bound are dropped (models a bounded leaf buffer).
    """

    def __init__(self, queue: EventQueue, link_rate_bps: float,
                 per_packet_overhead_seconds: float = 100e-6,
                 max_queue_packets: int = 10_000) -> None:
        if link_rate_bps <= 0:
            raise SimulationError("link rate must be positive")
        if per_packet_overhead_seconds < 0:
            raise SimulationError("per-packet overhead must be non-negative")
        if max_queue_packets <= 0:
            raise SimulationError("queue bound must be positive")
        self._queue = queue
        self.link_rate_bps = link_rate_bps
        self.per_packet_overhead_seconds = per_packet_overhead_seconds
        self.max_queue_packets = max_queue_packets
        self.stats = BusStats()
        self._pending: list[Packet] = []
        self._busy = False
        self._delivery_callbacks: list = []

    def on_delivery(self, callback) -> None:
        """Register a callback invoked with each delivered packet."""
        self._delivery_callbacks.append(callback)

    def submit(self, packet: Packet) -> bool:
        """Enqueue a packet for transmission.  Returns False if dropped."""
        if len(self._pending) >= self.max_queue_packets:
            self.stats.dropped_packets += 1
            return False
        self._pending.append(packet)
        if not self._busy:
            self._start_next()
        return True

    def service_time_seconds(self, packet: Packet) -> float:
        """Time to serialise one packet including MAC overhead."""
        return packet.bits / self.link_rate_bps + self.per_packet_overhead_seconds

    def _start_next(self) -> None:
        if not self._pending:
            self._busy = False
            return
        self._busy = True
        packet = self._pending.pop(0)
        packet.queued_at = self._queue.now
        service = self.service_time_seconds(packet)
        self.stats.busy_seconds += service
        self._queue.schedule_in(service, lambda p=packet: self._complete(p))

    def _complete(self, packet: Packet) -> None:
        packet.delivered_at = self._queue.now
        self.stats.delivered_packets += 1
        self.stats.delivered_bits += packet.bits
        self.stats.latencies.append(packet.latency_seconds)
        for callback in self._delivery_callbacks:
            callback(packet)
        self._start_next()
