"""The shared body medium: serialising packets from many leaves to the hub.

In the EQS regime the whole body is effectively one electrical node, so
all leaves share one broadcast medium coordinated by the hub.  The model
is split in two layers:

* :class:`Medium` — the physical serialisation resource: one transmission
  at a time, per-node serialisation rates (mixed link technologies on one
  body), a bounded pending buffer and streaming statistics.
* an :class:`~repro.netsim.arbitration.ArbitrationPolicy` — decides *who*
  transmits next and after what access delay (FIFO, TDMA slots, hub
  polling).

:class:`SharedBus` remains as the FIFO-arbitrated medium under its
historical name and constructor signature; existing seed configurations
reproduce bit-identically through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from .arbitration import ArbitrationPolicy, FIFOArbitration, make_policy
from .events import EventQueue
from .packet import Packet
from .reliability import LinkReliability
from .stats import LatencyAccumulator


@dataclass
class BusStats:
    """Aggregate statistics collected by the medium.

    Latencies are held in a :class:`LatencyAccumulator`: exact (and
    bit-identical to the historical list-based implementation) up to its
    capacity, streaming with bounded memory beyond it.
    """

    delivered_packets: int = 0
    delivered_bits: float = 0.0
    dropped_packets: int = 0
    busy_seconds: float = 0.0
    #: Transmission attempts corrupted by the lossy link (0 on a
    #: lossless medium).
    erased_attempts: int = 0
    #: Erased attempts the ARQ policy retransmitted.
    retransmissions: int = 0
    #: Packets abandoned after exhausting their retries (or erased with
    #: no ARQ attached).
    lost_packets: int = 0
    latency: LatencyAccumulator = field(default_factory=LatencyAccumulator)

    def record_delivery(self, packet: Packet) -> None:
        """Account one delivered packet."""
        self.delivered_packets += 1
        self.delivered_bits += packet.bits
        self.latency.add(packet.latency_seconds)

    def latency_percentile(self, percentile: float) -> float:
        """Latency percentile over delivered packets (seconds)."""
        if self.latency.count == 0:
            raise SimulationError("no packets delivered yet")
        if not 0.0 <= percentile <= 100.0:
            raise SimulationError("percentile must be in [0, 100]")
        return self.latency.percentile(percentile)

    @property
    def mean_latency_seconds(self) -> float:
        """Mean delivery latency (seconds)."""
        if self.latency.count == 0:
            raise SimulationError("no packets delivered yet")
        return self.latency.mean

    def throughput_bps(self, horizon_seconds: float) -> float:
        """Delivered goodput over *horizon_seconds*."""
        if horizon_seconds <= 0:
            raise SimulationError("horizon must be positive")
        return self.delivered_bits / horizon_seconds

    def utilization(self, horizon_seconds: float) -> float:
        """Fraction of time the medium was busy."""
        if horizon_seconds <= 0:
            raise SimulationError("horizon must be positive")
        return min(self.busy_seconds / horizon_seconds, 1.0)


class Medium:
    """Single shared serialisation resource with pluggable arbitration.

    Parameters
    ----------
    queue:
        The simulator's event queue.
    link_rate_bps:
        Default serialisation rate of the medium (used for nodes without
        a per-node rate, and by slot/poll overhead math).
    per_packet_overhead_seconds:
        Guard/turnaround charged per packet (MAC overhead).
    max_queue_packets:
        Packets beyond this bound (summed over all nodes) are dropped
        (models a bounded leaf buffer).
    policy:
        Arbitration policy instance or short name (``"fifo"``, ``"tdma"``,
        ``"polling"``).  Defaults to FIFO.
    latency_exact_capacity:
        Exact-sample capacity of the latency accumulator; beyond it the
        statistics stream with bounded memory.
    reliability:
        Optional :class:`~repro.netsim.reliability.LinkReliability`: each
        completed transmission attempt draws an erasure from the source
        node's seeded generator, and the attached ARQ policy (if any)
        retransmits corrupted attempts and charges an ack per attempt.
        ``None`` keeps the exact historical lossless code path.
    """

    def __init__(self, queue: EventQueue, link_rate_bps: float,
                 per_packet_overhead_seconds: float = 100e-6,
                 max_queue_packets: int = 10_000,
                 policy: ArbitrationPolicy | str | None = None,
                 latency_exact_capacity: int | None = None,
                 reliability: LinkReliability | None = None) -> None:
        if link_rate_bps <= 0:
            raise SimulationError("link rate must be positive")
        if per_packet_overhead_seconds < 0:
            raise SimulationError("per-packet overhead must be non-negative")
        if max_queue_packets <= 0:
            raise SimulationError("queue bound must be positive")
        self._queue = queue
        self.link_rate_bps = link_rate_bps
        self.per_packet_overhead_seconds = per_packet_overhead_seconds
        self.max_queue_packets = max_queue_packets
        if policy is None:
            policy = FIFOArbitration()
        elif isinstance(policy, str):
            policy = make_policy(policy)
        self.policy: ArbitrationPolicy = policy
        # Slot sizing and poll overheads need the medium rate; attach it
        # when the policy exposes the knob and the caller left it unset.
        if getattr(policy, "link_rate_bps", False) is None:
            policy.link_rate_bps = link_rate_bps  # type: ignore[attr-defined]
        if latency_exact_capacity is None:
            self.stats = BusStats()
        else:
            self.stats = BusStats(
                latency=LatencyAccumulator(exact_capacity=latency_exact_capacity))
        self.reliability = reliability
        self._node_rates: dict[str, float] = {}
        self._busy = False
        self._delivery_callbacks: list = []
        self._attempt_callbacks: list = []
        self._loss_callbacks: list = []
        self._purged_nodes: set[str] = set()
        #: Memoised service times keyed by ``(source, bits)`` — the rate,
        #: MAC overhead and ack terms are all fixed for the duration of a
        #: run, so the serialisation math is computed once per distinct
        #: packet shape instead of once per packet.
        self._service_cache: dict[tuple[str, float], float] = {}
        #: Kernel mode (set by the simulator's batched drain loop): when
        #: on, :meth:`_grant_next` records the next medium event as a
        #: ``(time, sequence, kind, packet, service)`` tuple in
        #: ``_chain`` instead of scheduling a queue callback.  ``kind``
        #: is 0 for a transmission begin, 1 for a completion.  At most
        #: one chain event exists at a time — the medium serialises.
        self._kernel = False
        self._chain: tuple[float, int, int, Packet, float] | None = None

    # -- configuration -----------------------------------------------------

    def register_node(self, name: str, offered_rate_bps: float,
                      link_rate_bps: float | None = None) -> None:
        """Announce a node: offered rate for the policy, optional own rate."""
        self.policy.register_node(name, offered_rate_bps)
        if link_rate_bps is not None:
            if link_rate_bps <= 0:
                raise SimulationError("per-node link rate must be positive")
            self._node_rates[name] = link_rate_bps
        self._service_cache.clear()

    def on_delivery(self, callback) -> None:
        """Register a callback invoked with each delivered packet."""
        self._delivery_callbacks.append(callback)

    def on_attempt(self, callback) -> None:
        """Register a callback invoked as ``callback(packet, success)``
        for every completed transmission attempt (lossy media only —
        without a reliability model no attempts are reported)."""
        self._attempt_callbacks.append(callback)

    def on_loss(self, callback) -> None:
        """Register a callback invoked with each packet declared lost
        (erased with no ARQ, or after exhausting its retries)."""
        self._loss_callbacks.append(callback)

    def purge_node(self, name: str) -> int:
        """Drop one node's queued packets (brownout).  Returns how many
        were discarded.  A transmission already granted or in flight is
        not recalled — it is already on the medium — but a purged node's
        in-flight packet is never retransmitted."""
        self._purged_nodes.add(name)
        return self.policy.purge_node(name)

    # -- data path ---------------------------------------------------------

    def submit(self, packet: Packet) -> bool:
        """Enqueue a packet for transmission.  Returns False if dropped."""
        if self.policy.pending_count() >= self.max_queue_packets:
            self.stats.dropped_packets += 1
            return False
        self.policy.enqueue(packet)
        if not self._busy:
            self._grant_next()
        return True

    def service_time_seconds(self, packet: Packet) -> float:
        """Time to serialise one packet including MAC overhead.

        Serialisation runs at the transmitting node's own link rate when
        one was registered (mixed technologies on one body), else at the
        medium's default rate.  When an ARQ policy is attached, every
        attempt additionally occupies the medium for the hub's ack frame
        (serialised at the medium rate) plus the turnaround.
        """
        key = (packet.source, packet.bits)
        cached = self._service_cache.get(key)
        if cached is not None:
            return cached
        rate = self._node_rates.get(packet.source, self.link_rate_bps)
        service = packet.bits / rate + self.per_packet_overhead_seconds
        arq = self.reliability.arq if self.reliability is not None else None
        if arq is not None:
            service += (arq.ack_bits / self.link_rate_bps
                        + arq.ack_turnaround_seconds)
        # Bound the memo against pathological size-jittered sources that
        # never repeat a packet length.
        if len(self._service_cache) >= 4096:
            self._service_cache.clear()
        self._service_cache[key] = service
        return service

    def _grant_next(self) -> None:
        grant = self.policy.next_grant(self._queue.now)
        if grant is None:
            self._busy = False
            return
        self._busy = True
        packet, access_delay = grant
        service = self._service_cache.get((packet.source, packet.bits))
        if service is None:
            service = self.service_time_seconds(packet)
        self.stats.busy_seconds += service
        if self._kernel:
            # Mirror the event-queue schedule exactly, including *when*
            # sequence numbers are claimed: a zero access delay begins
            # transmission synchronously (only the completion claims a
            # sequence, now); a positive delay claims a sequence for the
            # begin event, and the begin dispatch claims the completion's.
            queue = self._queue
            now = queue._now
            if access_delay == 0.0:
                packet.queued_at = now
                self._chain = (now + service, queue.claim_sequence(), 1,
                               packet, service)
            else:
                self._chain = (now + access_delay, queue.claim_sequence(), 0,
                               packet, service)
            return
        if access_delay == 0.0:
            self._begin_transmission(packet, service)
        else:
            self._queue.schedule_in(
                access_delay,
                lambda p=packet, s=service: self._begin_transmission(p, s))

    def _begin_transmission(self, packet: Packet, service: float) -> None:
        packet.queued_at = self._queue.now
        self._queue.schedule_in(service, lambda p=packet: self._complete(p))

    def _complete(self, packet: Packet) -> None:
        if self.reliability is not None:
            packet.attempts += 1
            if self.reliability.draw_erasure(packet.source):
                self._complete_erased(packet)
                return
            for callback in self._attempt_callbacks:
                callback(packet, True)
        packet.delivered_at = self._queue.now
        self.stats.record_delivery(packet)
        for callback in self._delivery_callbacks:
            callback(packet)
        self._grant_next()

    def _complete_erased(self, packet: Packet) -> None:
        """One corrupted attempt: account it, then retransmit or lose."""
        self.stats.erased_attempts += 1
        for callback in self._attempt_callbacks:
            callback(packet, False)
        arq = self.reliability.arq if self.reliability is not None else None
        # An attempt callback may have browned the node out (the wasted
        # transmission drained its cell): its backlog was purged, so the
        # in-flight packet must not resurrect as a retransmission.
        if (arq is not None and arq.may_retry(packet.attempts)
                and packet.source not in self._purged_nodes):
            self.stats.retransmissions += 1
            # Retransmissions re-enter the node's queue (stop-and-wait
            # re-offer) and bypass the admission bound: the packet was
            # already admitted once and owns its buffer slot.
            self.policy.enqueue(packet)
        else:
            self.stats.lost_packets += 1
            for callback in self._loss_callbacks:
                callback(packet)
        self._grant_next()


class SharedBus(Medium):
    """FIFO-arbitrated medium under its historical name and signature."""

    def __init__(self, queue: EventQueue, link_rate_bps: float,
                 per_packet_overhead_seconds: float = 100e-6,
                 max_queue_packets: int = 10_000) -> None:
        super().__init__(queue, link_rate_bps,
                         per_packet_overhead_seconds=per_packet_overhead_seconds,
                         max_queue_packets=max_queue_packets,
                         policy=FIFOArbitration())
