"""Per-packet erasures and ARQ for the shared body medium.

The historical simulator delivered every serialised packet perfectly;
this module makes delivery probabilistic.  A :class:`LinkReliability`
holds one packet-erasure probability per node — typically derived from a
:class:`~repro.comm.budget.LinkBudget` at the node's packet length, and
updated mid-run when a posture event swaps the active channel — plus an
optional :class:`ARQPolicy` that turns erasures into retransmissions.

Determinism: every node owns a dedicated ``numpy`` generator seeded from
``(base seed, crc32(node name))``, so erasure draws are reproducible for
a fixed seed, independent of node-registration order, and completely
decoupled from the traffic RNG — a lossy run offers bit-identical
traffic to its lossless twin.  Nodes with a zero error rate draw
nothing, which keeps the lossless configuration on the exact historical
code path (golden-hex pinned in ``tests/netsim/test_fifo_regression.py``).
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError

#: Ack frame length used when an :class:`ARQPolicy` does not override it
#: (mirrors the polling MAC's poll frame).
DEFAULT_ACK_BITS = 64.0

#: Hub→leaf turnaround charged per ack.
DEFAULT_ACK_TURNAROUND_SECONDS = 100e-6


@dataclass(frozen=True)
class ARQPolicy:
    """Stop-and-wait automatic repeat request.

    Every transmission attempt is acknowledged by the hub: the ack frame
    (``ack_bits`` at the medium rate, plus a turnaround) is charged as
    medium time on each attempt, and as hub-transmit / leaf-receive
    energy by the simulator.  A corrupted attempt is retransmitted up to
    ``retry_limit`` times (``None`` = unbounded); a packet that exhausts
    its retries is lost.
    """

    retry_limit: int | None = 3
    ack_bits: float = DEFAULT_ACK_BITS
    ack_turnaround_seconds: float = DEFAULT_ACK_TURNAROUND_SECONDS

    def __post_init__(self) -> None:
        if self.retry_limit is not None and self.retry_limit < 0:
            raise SimulationError("retry limit must be >= 0 (or None)")
        if self.ack_bits < 0:
            raise SimulationError("ack length must be non-negative")
        if self.ack_turnaround_seconds < 0:
            raise SimulationError("ack turnaround must be non-negative")

    @property
    def max_attempts(self) -> float:
        """Transmission attempts before a packet is declared lost."""
        if self.retry_limit is None:
            return math.inf
        return self.retry_limit + 1

    def may_retry(self, attempts: int) -> bool:
        """Whether a packet that failed its *attempts*-th attempt retries."""
        return attempts < self.max_attempts

    def delivery_probability(self, error_rate: float) -> float:
        """Probability a packet is eventually delivered at *error_rate*."""
        _check_error_rate(error_rate)
        if error_rate == 0.0:
            return 1.0
        if self.retry_limit is None:
            return 1.0 if error_rate < 1.0 else 0.0
        return 1.0 - error_rate ** (self.retry_limit + 1)

    def expected_attempts(self, error_rate: float) -> float:
        """Mean transmission attempts per offered packet.

        Truncated-geometric mean: ``(1 - PER^N) / (1 - PER)`` with
        ``N = retry_limit + 1`` attempts — the closed form the cohort
        analytic fast path applies per node.
        """
        _check_error_rate(error_rate)
        if error_rate == 0.0:
            return 1.0
        if error_rate == 1.0:
            return float(self.max_attempts) if self.retry_limit is not None \
                else math.inf
        if self.retry_limit is None:
            return 1.0 / (1.0 - error_rate)
        return (1.0 - error_rate ** (self.retry_limit + 1)) \
            / (1.0 - error_rate)


def _check_error_rate(error_rate: float) -> None:
    if not 0.0 <= error_rate <= 1.0:
        raise SimulationError(
            f"packet error rate must be in [0, 1], got {error_rate}")


class LinkReliability:
    """Per-node packet-erasure process attached to a Medium.

    Parameters
    ----------
    seed:
        Base seed of the per-node erasure generators.
    arq:
        Retransmission policy, or ``None`` for a pure erasure channel
        (a corrupted packet is simply lost).
    default_error_rate:
        Erasure probability of nodes without an explicit rate.
    """

    #: Uniform draws prefetched per node and batch.  A numpy generator
    #: produces the identical stream whether asked for one value at a
    #: time or a block (verified by ``test_reliability``), so batching
    #: only amortises the per-call generator overhead — it never
    #: perturbs which attempt is erased.
    DRAW_BATCH = 256

    def __init__(self, seed: int = 0, arq: ARQPolicy | None = None,
                 default_error_rate: float = 0.0) -> None:
        _check_error_rate(default_error_rate)
        self.seed = seed
        self.arq = arq
        self.default_error_rate = default_error_rate
        self._error_rates: dict[str, float] = {}
        self._rngs: dict[str, np.random.Generator] = {}
        # node -> [next index, prefetched uniforms]
        self._draws: dict[str, list] = {}

    def set_error_rate(self, node_name: str, error_rate: float) -> None:
        """Set one node's per-packet erasure probability (posture swaps
        call this mid-run)."""
        _check_error_rate(error_rate)
        self._error_rates[node_name] = error_rate

    def error_rate(self, node_name: str) -> float:
        """The node's current per-packet erasure probability."""
        return self._error_rates.get(node_name, self.default_error_rate)

    def error_rates(self) -> dict[str, float]:
        """Snapshot of every explicitly configured node rate."""
        return dict(self._error_rates)

    def rng_for(self, node_name: str) -> np.random.Generator:
        """The node's dedicated erasure generator (created on first use).

        Seeded from ``(seed, crc32(name))`` so the stream depends only on
        the base seed and the node's name — stable across processes and
        registration orders.
        """
        rng = self._rngs.get(node_name)
        if rng is None:
            rng = np.random.default_rng(
                (self.seed, zlib.crc32(node_name.encode("utf-8"))))
            self._rngs[node_name] = rng
        return rng

    def draw_erasure(self, node_name: str) -> bool:
        """Whether the node's next transmission attempt is corrupted.

        A zero-rate node draws nothing, so attaching a reliability model
        with all-zero rates perturbs no random stream.  Draws are
        prefetched in blocks of :data:`DRAW_BATCH` per node (bit-identical
        to scalar draws — see the class attribute note); a node whose
        rate drops to zero mid-run simply stops consuming its block and
        resumes from the same stream position when the rate returns.
        """
        error_rate = self._error_rates.get(node_name, self.default_error_rate)
        if error_rate <= 0.0:
            return False
        if error_rate >= 1.0:
            return True
        buffer = self._draws.get(node_name)
        if buffer is None:
            buffer = [0, ()]
            self._draws[node_name] = buffer
        position = buffer[0]
        if position >= len(buffer[1]):
            buffer[1] = self.rng_for(node_name).random(self.DRAW_BATCH).tolist()
            position = 0
        buffer[0] = position + 1
        return buffer[1][position] < error_rate
