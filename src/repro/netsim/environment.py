"""Shared RF environment: N bodies, one room, one interference budget.

A :class:`RFEnvironment` breaks the simulator's one-body assumption: it
co-schedules N :class:`~repro.netsim.simulator.BodyNetworkSimulator`
bodies against one calendar queue of *environment epochs* — the
occupancy boundaries (arrivals, departures) at which the room's
interference geometry changes — and couples the bodies through a
shared noise budget: each body's aggregate airtime radiates a
co-channel level that, distance-attenuated, raises every other body's
effective noise floor and therefore its per-packet erasure probability
through the existing :class:`~repro.comm.budget.LinkBudget` path.

The coupling is deliberately *epoch-quasi-static*, not per-packet: PER
is re-derived only when the environment changes (a body arrives or
leaves), exactly as posture events already re-derive it mid-run.  That
keeps the determinism contract intact:

* Within an epoch every body runs the unmodified batched kernel — the
  environment pre-schedules its interference swaps as ordinary control
  events on each body's own queue before the body runs, so the event
  stream, sequence numbering and RNG draw order are exactly those of a
  standalone run with the same control events.
* A **one-body environment schedules nothing**: with no co-located
  bodies every interference state is neutral, no swap or occupancy
  event is created, and the run is bit-identical to
  ``simulator.run(duration)`` (pinned golden-hex).
* Interference contributions add in power (:func:`~repro.comm.budget.
  power_sum_db`), so the adjusted noise floor — and through the
  monotone BER/PER waterfall, the erasure probability — is monotone
  non-decreasing in the number of bodies in the room (a Hypothesis
  property test).

The environment stays agnostic of scenario specs: each body carries an
``apply_interference`` closure (built by the scenario layer) that knows
how to re-derive and install its own nodes' erasure rates for a given
:class:`InterferenceState`.  See ``docs/multi-body-control.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Sequence

from ..comm.budget import power_sum_db
from ..errors import SimulationError
from .events import EventQueue
from .simulator import BodyNetworkSimulator, SimulationResult

#: Reference distance (metres) at which a body's radiated/coupled
#: interference levels are quoted.
REFERENCE_DISTANCE_METRES = 1.0

#: Default inter-body RF path loss at the reference distance.  Body
#: shadowing makes on-body transmitters poor interferers: most of the
#: frame's energy creeps along the wearer, and what escapes is absorbed
#: by both torsos, so the loss at one metre is far above free space.
DEFAULT_RF_REFERENCE_LOSS_DB = 40.0

#: Default inter-body path-loss exponent (indoor, body-obstructed).
DEFAULT_RF_PATH_LOSS_EXPONENT = 3.0

#: Default inter-body EQS coupling decay exponent: quasi-static fields
#: fall off like a near-field dipole, ~1/d^3.
DEFAULT_EQS_COUPLING_EXPONENT = 3.0

#: Bodies cannot overlap; distances are clamped to this floor.
MINIMUM_BODY_DISTANCE_METRES = 0.25


@dataclass(frozen=True)
class InterferenceState:
    """Aggregate interference arriving at one body during one epoch.

    ``rf_dbm`` is the co-channel power other bodies put into this
    body's RF receivers (``-inf`` = an empty room); ``eqs_volts`` the
    receiver-referred voltage their EQS activity couples onto this
    body's skin (0.0 = none).  :data:`NO_INTERFERENCE` is the neutral
    state a standalone body sees.
    """

    rf_dbm: float = -math.inf
    eqs_volts: float = 0.0

    @property
    def neutral(self) -> bool:
        """Whether this state leaves every link budget untouched."""
        return self.rf_dbm == -math.inf and self.eqs_volts == 0.0


#: The empty-room state (shared instance; the class is frozen).
NO_INTERFERENCE = InterferenceState()


@dataclass
class EnvironmentBody:
    """One body placed in a shared environment.

    ``airtime_fraction`` is the share of wall-clock the body's network
    keeps its medium busy (its duty factor as an interferer);
    ``rf_level_dbm`` / ``eqs_level_volts`` are the co-channel level and
    coupled swing the body presents at
    :data:`REFERENCE_DISTANCE_METRES` *while transmitting*.  The
    occupancy window ``[arrival_fraction, departure_fraction)`` gates
    both directions: an absent body neither interferes nor generates
    (its nodes sleep outside the window).

    ``apply_interference`` re-derives and installs this body's per-node
    erasure rates for a given :class:`InterferenceState`; ``None``
    (e.g. a lossless body) means interference cannot touch it.
    """

    name: str
    simulator: BodyNetworkSimulator
    duration_seconds: float
    airtime_fraction: float = 0.0
    rf_level_dbm: float = -math.inf
    eqs_level_volts: float = 0.0
    position_metres: tuple[float, float] = (0.0, 0.0)
    arrival_fraction: float = 0.0
    departure_fraction: float = 1.0
    apply_interference: Callable[[InterferenceState], None] | None = None
    #: Interference currently applied to this body — shared mutable
    #: state a controller's ``error_rate_fn`` reads at evaluation time
    #: (so a tx-power re-derivation composes with the room).
    current_interference: InterferenceState = \
        field(default_factory=InterferenceState)

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0:
            raise SimulationError("body duration must be positive")
        if not 0.0 <= self.airtime_fraction:
            raise SimulationError("airtime fraction must be non-negative")
        if not (0.0 <= self.arrival_fraction
                <= self.departure_fraction <= 1.0):
            raise SimulationError(
                "occupancy window must satisfy 0 <= arrival <= departure "
                "<= 1")

    def present(self, fraction: float) -> bool:
        """Whether the body is in the room at *fraction* of the run."""
        return self.arrival_fraction <= fraction < self.departure_fraction \
            or (self.departure_fraction == 1.0 and fraction >= 1.0)

    @property
    def duty_fraction(self) -> float:
        """Transmit duty factor as an interferer (airtime, clamped)."""
        return min(self.airtime_fraction, 1.0)


@dataclass
class EnvironmentResult:
    """Outcome of one multi-body environment run."""

    duration_seconds: float
    body_names: tuple[str, ...]
    body_results: tuple[SimulationResult, ...]
    #: ``(time_seconds, per-body InterferenceState)`` per epoch, in
    #: chronological order — the interference schedule the run applied.
    epochs: tuple[tuple[float, tuple[InterferenceState, ...]], ...]

    def result_for(self, name: str) -> SimulationResult:
        """The per-body result by body name."""
        try:
            return self.body_results[self.body_names.index(name)]
        except ValueError:
            raise SimulationError(f"unknown body {name!r}") from None

    def __iter__(self) -> Iterator[tuple[str, SimulationResult]]:
        return iter(zip(self.body_names, self.body_results))

    @property
    def delivered_packets(self) -> int:
        return sum(result.delivered_packets for result in self.body_results)

    @property
    def mean_delivered_fraction(self) -> float:
        """Unweighted mean of per-body delivered fractions."""
        if not self.body_results:
            return 0.0
        return sum(result.delivered_fraction
                   for result in self.body_results) / len(self.body_results)

    @property
    def mean_leaf_power_watts(self) -> float:
        """Mean per-node leaf power across every body."""
        total = 0.0
        count = 0
        for result in self.body_results:
            total += sum(result.per_node_average_power_watts.values())
            count += len(result.per_node_average_power_watts)
        return total / count if count else 0.0


class RFEnvironment:
    """N bodies co-scheduled against one shared interference budget.

    Parameters
    ----------
    bodies:
        The placed bodies.  All must share one duration (the
        environment's epoch timeline is a single clock).
    rf_reference_loss_db, rf_path_loss_exponent:
        Inter-body RF propagation: loss at the reference metre and the
        log-distance exponent beyond it.
    eqs_coupling_exponent:
        Near-field decay exponent of inter-body EQS coupling.
    """

    def __init__(self, bodies: Sequence[EnvironmentBody],
                 rf_reference_loss_db: float = DEFAULT_RF_REFERENCE_LOSS_DB,
                 rf_path_loss_exponent: float =
                 DEFAULT_RF_PATH_LOSS_EXPONENT,
                 eqs_coupling_exponent: float =
                 DEFAULT_EQS_COUPLING_EXPONENT) -> None:
        if not bodies:
            raise SimulationError("an environment needs at least one body")
        names = [body.name for body in bodies]
        if len(set(names)) != len(names):
            raise SimulationError("body names must be unique")
        durations = {body.duration_seconds for body in bodies}
        if len(durations) != 1:
            raise SimulationError(
                "all bodies must share one duration; got "
                f"{sorted(durations)}")
        if rf_path_loss_exponent <= 0 or eqs_coupling_exponent <= 0:
            raise SimulationError("decay exponents must be positive")
        self.bodies = list(bodies)
        self.duration_seconds = next(iter(durations))
        self.rf_reference_loss_db = rf_reference_loss_db
        self.rf_path_loss_exponent = rf_path_loss_exponent
        self.eqs_coupling_exponent = eqs_coupling_exponent
        #: The environment's own calendar queue: the cross-body epoch
        #: timeline (occupancy boundaries) is scheduled and drained
        #: here, ordered by the same ``(time, sequence)`` discipline as
        #: every per-body queue.
        self.queue = EventQueue()
        self._schedule: list[tuple[float,
                                   tuple[InterferenceState, ...]]] | None = \
            None

    # -- geometry ----------------------------------------------------------

    def distance_metres(self, first: EnvironmentBody,
                        second: EnvironmentBody) -> float:
        """Inter-body distance, clamped away from zero."""
        dx = first.position_metres[0] - second.position_metres[0]
        dy = first.position_metres[1] - second.position_metres[1]
        return max(math.hypot(dx, dy), MINIMUM_BODY_DISTANCE_METRES)

    def _rf_contribution_dbm(self, victim: EnvironmentBody,
                             interferer: EnvironmentBody) -> float:
        """Co-channel power *interferer* lands on *victim*, duty-weighted."""
        duty = interferer.duty_fraction
        if interferer.rf_level_dbm == -math.inf or duty <= 0.0:
            return -math.inf
        distance = self.distance_metres(victim, interferer)
        path_loss = (self.rf_reference_loss_db
                     + 10.0 * self.rf_path_loss_exponent
                     * math.log10(distance / REFERENCE_DISTANCE_METRES))
        return (interferer.rf_level_dbm + 10.0 * math.log10(duty)
                - path_loss)

    def _eqs_contribution_volts(self, victim: EnvironmentBody,
                                interferer: EnvironmentBody) -> float:
        """RMS voltage *interferer* couples onto *victim*'s receivers."""
        duty = interferer.duty_fraction
        if interferer.eqs_level_volts <= 0.0 or duty <= 0.0:
            return 0.0
        distance = self.distance_metres(victim, interferer)
        decay = (REFERENCE_DISTANCE_METRES
                 / distance) ** self.eqs_coupling_exponent
        # RMS of a duty-cycled waveform scales with sqrt(duty).
        return interferer.eqs_level_volts * decay * math.sqrt(duty)

    def interference_at(self, index: int,
                        present: Sequence[bool]) -> InterferenceState:
        """Aggregate interference at body *index* for one occupancy map."""
        victim = self.bodies[index]
        if not present[index]:
            return NO_INTERFERENCE
        rf_levels: list[float] = []
        eqs_square_sum = 0.0
        for other_index, interferer in enumerate(self.bodies):
            if other_index == index or not present[other_index]:
                continue
            rf = self._rf_contribution_dbm(victim, interferer)
            if rf != -math.inf:
                rf_levels.append(rf)
            eqs = self._eqs_contribution_volts(victim, interferer)
            if eqs > 0.0:
                eqs_square_sum += eqs * eqs
        if not rf_levels and eqs_square_sum == 0.0:
            return NO_INTERFERENCE
        return InterferenceState(
            rf_dbm=power_sum_db(rf_levels),
            eqs_volts=math.sqrt(eqs_square_sum))

    # -- epoch timeline ----------------------------------------------------

    def epoch_fractions(self) -> list[float]:
        """Occupancy-change boundaries, as sorted run fractions."""
        boundaries = {0.0}
        for body in self.bodies:
            if 0.0 < body.arrival_fraction < 1.0:
                boundaries.add(body.arrival_fraction)
            if 0.0 < body.departure_fraction < 1.0:
                boundaries.add(body.departure_fraction)
        return sorted(boundaries)

    def interference_schedule(self
                              ) -> list[tuple[float,
                                              tuple[InterferenceState, ...]]]:
        """Drain the epoch timeline into the full interference schedule.

        Each occupancy boundary is scheduled on the environment queue
        and drained in calendar order; the resulting list gives, for
        each epoch start time, every body's aggregate interference.
        The schedule is computed once and cached: the environment queue
        can only be drained a single time, but callers (experiments,
        the closed-form comparison) may inspect the schedule before
        :meth:`run` replays it onto the per-body queues.
        """
        if self._schedule is not None:
            return self._schedule
        schedule: list[tuple[float, tuple[InterferenceState, ...]]] = []
        duration = self.duration_seconds

        def snapshot() -> None:
            now = self.queue.now
            fraction = now / duration
            present = [body.present(fraction) for body in self.bodies]
            schedule.append((now, tuple(
                self.interference_at(index, present)
                for index in range(len(self.bodies)))))

        for fraction in self.epoch_fractions():
            if fraction == 0.0:
                # The queue's clock starts at zero; take the opening
                # snapshot directly instead of scheduling in the past.
                snapshot()
            else:
                self.queue.schedule_at(fraction * duration, snapshot)
        self.queue.run_until(duration)
        self._schedule = schedule
        return schedule

    # -- execution ---------------------------------------------------------

    def _schedule_body(self, index: int,
                       schedule: Sequence[tuple[float,
                                                tuple[InterferenceState,
                                                      ...]]]) -> None:
        """Pre-schedule one body's swaps and occupancy on its own queue.

        Only *changes* become events: a body whose interference stays
        neutral for the whole run (every one-body environment) gets no
        event at all, which is the bit-identity contract.
        """
        body = self.bodies[index]
        simulator = body.simulator
        duration = body.duration_seconds

        def install(state: InterferenceState) -> None:
            body.current_interference = state
            if body.apply_interference is not None:
                body.apply_interference(state)

        applied = body.current_interference
        for time_seconds, states in schedule:
            state = states[index]
            if state == applied:
                continue
            applied = state
            if time_seconds == 0.0:
                install(state)  # initial condition, not an event
            else:
                simulator.queue.schedule_at(
                    time_seconds,
                    lambda state=state: install(state))
        if body.arrival_fraction > 0.0:
            for name in simulator.nodes:
                simulator.set_node_active(name, False)
            simulator.queue.schedule_at(
                body.arrival_fraction * duration,
                lambda names=tuple(simulator.nodes): [
                    simulator.set_node_active(name, True)
                    for name in names])
        if body.departure_fraction < 1.0:
            simulator.queue.schedule_at(
                body.departure_fraction * duration,
                lambda names=tuple(simulator.nodes): [
                    simulator.set_node_active(name, False)
                    for name in names])

    def run(self, fast_path: str | None = None) -> EnvironmentResult:
        """Execute every body under the shared interference schedule.

        Bodies run in placement order, each through one uninterrupted
        kernel invocation with its swaps pre-scheduled — re-entering
        the kernel mid-run would re-anchor interarrival draws and
        energy ticks, breaking bit-identity; pre-scheduling keeps each
        body's event stream exactly what a standalone run with the same
        control events would see.
        """
        schedule = self.interference_schedule()
        for index in range(len(self.bodies)):
            self._schedule_body(index, schedule)
        results = tuple(
            body.simulator.run(body.duration_seconds, fast_path=fast_path)
            for body in self.bodies)
        return EnvironmentResult(
            duration_seconds=self.duration_seconds,
            body_names=tuple(body.name for body in self.bodies),
            body_results=results,
            epochs=tuple(schedule),
        )

    def describe(self) -> Mapping[str, object]:
        """Summary of the placed environment (for reports)."""
        return {
            "bodies": len(self.bodies),
            "duration_seconds": self.duration_seconds,
            "epochs": len(self.epoch_fractions()),
            "rf_path_loss_exponent": self.rf_path_loss_exponent,
            "eqs_coupling_exponent": self.eqs_coupling_exponent,
        }
