"""Traffic sources: how leaf nodes generate data.

Two arrival processes cover the paper's workloads: periodic sources for
streaming sensors (ECG samples batched into packets, audio frames, video
frames) and Poisson sources for event-driven traffic (gesture detections,
voice-activity triggered uploads).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError


class TrafficSource(abc.ABC):
    """Generates the next inter-arrival time and packet size."""

    @abc.abstractmethod
    def next_interarrival_seconds(self, rng: np.random.Generator) -> float:
        """Time until the next packet is produced."""

    @abc.abstractmethod
    def packet_bits(self, rng: np.random.Generator) -> float:
        """Size of the next packet in bits."""

    @abc.abstractmethod
    def average_rate_bps(self) -> float:
        """Long-run average offered data rate."""


@dataclass
class PeriodicSource(TrafficSource):
    """Fixed-size packets at a fixed period (streaming sensors)."""

    period_seconds: float
    bits_per_packet: float

    def __post_init__(self) -> None:
        if self.period_seconds <= 0:
            raise SimulationError("period must be positive")
        if self.bits_per_packet <= 0:
            raise SimulationError("packet size must be positive")

    def next_interarrival_seconds(self, rng: np.random.Generator) -> float:
        return self.period_seconds

    def packet_bits(self, rng: np.random.Generator) -> float:
        return self.bits_per_packet

    def average_rate_bps(self) -> float:
        return self.bits_per_packet / self.period_seconds

    @classmethod
    def from_rate(cls, rate_bps: float,
                  bits_per_packet: float = 8192.0) -> "PeriodicSource":
        """Build a periodic source that offers *rate_bps* on average."""
        if rate_bps <= 0:
            raise SimulationError("rate must be positive")
        if bits_per_packet <= 0:
            raise SimulationError("packet size must be positive")
        return cls(period_seconds=bits_per_packet / rate_bps,
                   bits_per_packet=bits_per_packet)


@dataclass
class PoissonSource(TrafficSource):
    """Exponential inter-arrivals with geometric-ish packet size jitter."""

    mean_interarrival_seconds: float
    mean_bits_per_packet: float
    size_jitter_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.mean_interarrival_seconds <= 0:
            raise SimulationError("mean inter-arrival must be positive")
        if self.mean_bits_per_packet <= 0:
            raise SimulationError("mean packet size must be positive")
        if not 0.0 <= self.size_jitter_fraction < 1.0:
            raise SimulationError("size jitter must be in [0, 1)")

    def next_interarrival_seconds(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean_interarrival_seconds))

    def packet_bits(self, rng: np.random.Generator) -> float:
        jitter = 1.0 + self.size_jitter_fraction * float(rng.standard_normal())
        return max(self.mean_bits_per_packet * jitter, 8.0)

    def average_rate_bps(self) -> float:
        return self.mean_bits_per_packet / self.mean_interarrival_seconds
