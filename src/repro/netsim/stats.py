"""Bounded-memory latency statistics for long simulations.

The bus used to keep every delivered packet's latency in a Python list and
run ``np.percentile`` over the whole history on demand — O(n) memory and
O(n log n) per query, which makes multi-hour scenario runs slow and
unbounded.  :class:`LatencyAccumulator` keeps the exact sample window up
to a fixed capacity (so short runs report *bit-identical* statistics to
the old list-based code), then spills into one of two bounded streaming
backends and answers percentile queries from it from then on:

* ``backend="histogram"`` (the default) — a fixed-size log-spaced
  histogram plus running moments; resolution is frozen at the value
  range observed at spill time.
* ``backend="sketch"`` — a mergeable KLL-style
  :class:`~repro.cohort.sketch.QuantileSketch`, whose rank error is
  independent of the value range and survives merges; the cohort engine
  uses this so per-member p50/p99 outlive a 10^6-member merge without
  retaining members.

Memory is bounded by ``exact_capacity`` samples plus the backend's fixed
state regardless of how long the simulation runs.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from ..errors import SimulationError

#: Samples kept exactly before spilling to the histogram.  Large enough
#: that every seed experiment config stays in exact mode (bit-identical
#: to the pre-streaming implementation), small enough to bound memory.
DEFAULT_EXACT_CAPACITY = 65_536

#: Histogram resolution after the spill.
DEFAULT_BINS = 512

#: Post-spill samples buffered before being folded into the histogram in
#: one vectorised pass.  The fold replays the buffered values in arrival
#: order (sequential float adds for the running total), so buffering is
#: invisible in the results — it only amortises the per-sample
#: ``np.searchsorted`` cost the dense-body hour used to pay.
PENDING_FLUSH_THRESHOLD = 4096

#: Recognised post-spill streaming backends.
BACKENDS = ("histogram", "sketch")


class LatencyAccumulator:
    """Streaming mean / percentile estimator with an exact warm-up window.

    Parameters
    ----------
    exact_capacity:
        Number of samples retained exactly.  While under this bound the
        accumulator behaves identically to keeping a list (``mean`` uses
        ``np.mean``, ``percentile`` uses ``np.percentile``).  Beyond it,
        the samples are folded into the streaming backend.
    bins:
        Number of histogram bins used after the spill (histogram backend).
    backend:
        Post-spill percentile machinery: ``"histogram"`` (log-spaced
        bins, the long-simulation default) or ``"sketch"`` (mergeable
        KLL quantile sketch, the cohort default).  The two backends are
        indistinguishable while the accumulator is exact; they merge
        into each other when mixed (the sketch absorbs histogram bins at
        their merge representatives and vice versa).
    """

    def __init__(self, exact_capacity: int = DEFAULT_EXACT_CAPACITY,
                 bins: int = DEFAULT_BINS,
                 backend: str = "histogram") -> None:
        if exact_capacity < 1:
            raise SimulationError("exact capacity must be positive")
        if bins < 2:
            raise SimulationError("histogram needs at least two bins")
        if backend not in BACKENDS:
            raise SimulationError(
                f"unknown accumulator backend {backend!r} "
                f"(known: {', '.join(BACKENDS)})")
        self.exact_capacity = exact_capacity
        self.bins = bins
        self.backend = backend
        self.count = 0
        self._samples: list[float] | None = []
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._edges: np.ndarray | None = None
        self._counts: np.ndarray | None = None
        #: Post-spill quantile sketch (``backend="sketch"`` only).
        self._sketch = None
        #: Post-spill samples awaiting their vectorised backend fold.
        self._pending: list[float] = []

    # -- recording ---------------------------------------------------------

    def add(self, value: float) -> None:
        """Record one latency sample (seconds)."""
        if value < 0:
            raise SimulationError(f"latency must be non-negative: {value}")
        self.count += 1
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if self._samples is not None:
            self._samples.append(value)
            if len(self._samples) > self.exact_capacity:
                self._spill()
            return
        self._pending.append(value)
        if len(self._pending) >= PENDING_FLUSH_THRESHOLD:
            self._flush_pending()

    def add_batch(self, values, counts) -> None:
        """Record ``values[i]`` repeated ``counts[i]`` times, in order.

        Rank queries afterwards return what the equivalent loop of
        :meth:`add` calls would have produced: the exact window fills —
        and spills at the same sample index, with the same observed
        extrema — before any remaining weight folds into the streaming
        backend with weighted inserts (``QuantileSketch.add_repeated``,
        or one vectorised histogram update), costing O(distinct values)
        instead of O(total weight).  The macro-tick fast path ingests a
        whole steady-state segment's latencies this way.
        """
        if len(values) != len(counts):
            raise SimulationError(
                "add_batch needs equally many values and counts")
        for value, count in zip(values, counts):
            if value < 0:
                raise SimulationError(
                    f"latency must be non-negative: {value}")
            if count < 0:
                raise SimulationError(
                    f"count must be non-negative: {count}")
        spilled: list[tuple[float, int]] = []
        for value, count in zip(values, counts):
            count = int(count)
            if count == 0:
                continue
            value = float(value)
            self.count += count
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if self._samples is not None:
                # Mirror add()'s trigger: the window spills on the
                # sample that pushes it past capacity, seeing exactly
                # the extrema observed up to that point.
                space = self.exact_capacity + 1 - len(self._samples)
                if count < space:
                    self._samples.extend([value] * count)
                    continue
                self._samples.extend([value] * space)
                self._spill()
                count -= space
                if count == 0:
                    continue
            spilled.append((value, count))
        if not spilled:
            return
        self._flush_pending()
        for value, count in spilled:
            self._total += value * count
        if self._sketch is not None:
            for value, count in spilled:
                self._sketch.add_repeated(value, count)
        else:
            indices = np.searchsorted(
                self._edges, [value for value, _ in spilled], side="right")
            np.add.at(self._counts, indices,
                      np.asarray([count for _, count in spilled],
                                 dtype=np.int64))

    def _flush_pending(self) -> None:
        """Fold buffered post-spill samples into the backend.

        The running total replays the buffered values in arrival order —
        the same sequence of float additions the unbuffered code
        performed — and the bin counts (histogram) or inserts (sketch)
        are applied afterwards.
        """
        pending = self._pending
        if not pending:
            return
        total = self._total
        for value in pending:
            total += value
        self._total = total
        if self._sketch is not None:
            for value in pending:
                self._sketch.add(value)
        else:
            indices = np.searchsorted(self._edges, pending, side="right")
            np.add.at(self._counts, indices, 1)
        # Cleared in place: the simulator kernel holds an alias to this
        # list, which must survive the flush.
        pending.clear()

    def _spill(self) -> None:
        """Fold the exact window into the streaming backend and drop it."""
        samples = self._samples
        assert samples is not None
        self._total = math.fsum(samples)
        if self.backend == "sketch":
            from ..cohort.sketch import QuantileSketch
            self._sketch = QuantileSketch()
            for value in samples:
                self._sketch.add(value)
            self._samples = None
            return
        # A log-spaced grid cannot include zero, so exact-zero samples
        # (and anything below 1 ns) deliberately land in the bottom
        # open-ended bin, whose bounds and merge representative clamp to
        # the exactly tracked ``_min`` — zeros stay zeros in queries
        # instead of being silently promoted to the 1 ns floor.
        low = max(self._min, 1e-9)
        high = max(self._max, low * (1.0 + 1e-9))
        # Log-spaced interior edges; the outermost bins are open-ended so
        # later samples outside the observed range still land somewhere.
        self._edges = np.logspace(math.log10(low), math.log10(high),
                                  self.bins - 1)
        self._counts = np.zeros(self.bins, dtype=np.int64)
        indices = np.searchsorted(self._edges, np.asarray(samples),
                                  side="right")
        np.add.at(self._counts, indices, 1)
        assert int(self._counts.sum()) == len(samples)
        self._samples = None

    def _bin_index(self, value: float) -> int:
        return int(np.searchsorted(self._edges, value, side="right"))

    # -- merging -----------------------------------------------------------

    def merge(self, other: "LatencyAccumulator") -> None:
        """Fold *other*'s samples into this accumulator, in order.

        While both sides are exact and the union fits the exact window,
        the merge is a plain concatenation — bit-identical to having
        added the samples sequentially, which is what makes shard-merged
        cohort statistics reproduce a serial run exactly.  Once either
        side has spilled (or the union would), the merge folds into this
        accumulator's backend.  Histogram backend: exact samples land in
        their true bins, foreign interior bins are re-binned at their
        geometric midpoint (the natural representative under log
        spacing), and the foreign *open-ended* outer bins — which have
        no finite midpoint — at the observed ``_min``/``_max`` (see
        :meth:`_merge_representative`).  Sketch backend: exact samples
        stream in, a foreign sketch merges losslessly level-by-level,
        and a foreign histogram folds in as weighted merge
        representatives.
        """
        if other.count == 0:
            return
        # Bring both sides' histograms up to date before reading or
        # combining totals; a flush replays buffered adds in order, so
        # flushing here preserves the documented addition order.
        self._flush_pending()
        other._flush_pending()
        if (self._samples is not None and other._samples is not None
                and self.count + other.count <= self.exact_capacity):
            self._samples.extend(other._samples)
            self.count += other.count
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)
            return
        # Merge min/max before spilling so the open-ended outer bins are
        # bounded by the true combined range.
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        if self.count == 0:
            # Nothing locally yet: seed the window from other, then retry
            # (possible spill happens against other's own range).
            if other._samples is not None:
                self._samples = []
                for value in other._samples:
                    self.add(value)
                return
            self._samples = None
            self.backend = other.backend
            self.bins = other.bins
            self._edges = (None if other._edges is None
                           else other._edges.copy())
            self._counts = (None if other._counts is None
                            else other._counts.copy())
            if other._sketch is not None:
                from ..cohort.sketch import QuantileSketch
                self._sketch = QuantileSketch.from_state(
                    other._sketch.to_state())
            self._total = other._total
            self.count = other.count
            return
        if self._samples is not None:
            self._spill()
        self.count += other.count
        if other._samples is not None:
            self._total += math.fsum(other._samples)
            if self._sketch is not None:
                for value in other._samples:
                    self._sketch.add(value)
            else:
                indices = np.searchsorted(self._edges,
                                          np.asarray(other._samples),
                                          side="right")
                np.add.at(self._counts, indices, 1)
            return
        self._total += other._total
        if self._sketch is not None:
            if other._sketch is not None:
                self._sketch.merge(other._sketch)
            else:
                # Foreign histogram: fold each bin at its merge
                # representative, weighted by its count.
                for index in range(other.bins):
                    weight = int(other._counts[index])
                    if weight:
                        self._sketch.add_repeated(
                            other._merge_representative(index), weight)
            return
        if other._sketch is not None:
            # Foreign sketch into a local histogram: every retained value
            # lands in its true bin, carrying its compaction weight.
            values, weights = [], []
            for value, weight in other._sketch.weighted_items():
                values.append(value)
                weights.append(weight)
            if values:
                indices = np.searchsorted(self._edges, np.asarray(values),
                                          side="right")
                np.add.at(self._counts, indices,
                          np.asarray(weights, dtype=np.int64))
            return
        midpoints = np.array([other._merge_representative(index)
                              for index in range(other.bins)])
        assert np.isfinite(midpoints).all()
        indices = np.searchsorted(self._edges, midpoints, side="right")
        np.add.at(self._counts, indices, other._counts)

    # -- queries -----------------------------------------------------------

    @property
    def is_exact(self) -> bool:
        """Whether every sample is still held exactly."""
        return self._samples is not None

    @property
    def retained_samples(self) -> int:
        """Number of raw samples currently held in memory."""
        return len(self._samples) if self._samples is not None else 0

    @property
    def min_seconds(self) -> float:
        self._require_data()
        return self._min

    @property
    def max_seconds(self) -> float:
        self._require_data()
        return self._max

    @property
    def mean(self) -> float:
        """Mean latency (exact in the warm-up window, running sum after)."""
        self._require_data()
        if self._samples is not None:
            return float(np.mean(self._samples))
        self._flush_pending()
        return self._total / self.count

    def percentile(self, percentile: float) -> float:
        """Latency percentile; exact before the spill, backend after."""
        self._require_data()
        if not 0.0 <= percentile <= 100.0:
            raise SimulationError("percentile must be in [0, 100]")
        if self._samples is not None:
            return float(np.percentile(self._samples, percentile))
        self._flush_pending()
        if self._sketch is not None:
            estimate = self._sketch.percentile(percentile)
            return float(min(max(estimate, self._min), self._max))
        target = percentile / 100.0 * self.count
        cumulative = np.cumsum(self._counts)
        index = int(np.searchsorted(cumulative, target, side="left"))
        index = min(index, self.bins - 1)
        below = float(cumulative[index - 1]) if index > 0 else 0.0
        in_bin = float(self._counts[index])
        fraction = 0.5
        if in_bin > 0.0:
            fraction = min(max((target - below) / in_bin, 0.0), 1.0)
        low, high = self._bin_bounds(index)
        # Geometric rank interpolation matches the log spacing of the
        # edges; fall back to linear if a bound ever touches zero.
        if low > 0.0 and high > 0.0:
            estimate = low * (high / low) ** fraction
        else:
            estimate = low + fraction * (high - low)
        return float(min(max(estimate, self._min), self._max))

    def _merge_representative(self, index: int) -> float:
        """The single value standing in for one bin during a merge.

        Interior bins use their geometric midpoint (the natural
        representative under log spacing).  The outermost bins are
        open-ended — they collect whatever fell outside the spill-time
        range and have no meaningful midpoint — so their samples merge
        at the *observed* extremes: the exactly tracked ``_min`` for the
        bottom bin and ``_max`` for the top bin.  A post-spill outlier
        therefore stays in the merged tail instead of being dragged
        toward the frozen edges.
        """
        edges = self._edges
        assert edges is not None
        if index == 0:
            return min(self._min, float(edges[0]))
        if index >= len(edges):
            return max(self._max, float(edges[-1]))
        low, high = float(edges[index - 1]), float(edges[index])
        if low > 0.0 and high > 0.0:
            return math.sqrt(low * high)
        return 0.5 * (low + high)

    def _bin_bounds(self, index: int) -> tuple[float, float]:
        """The value range of one bin.

        The outermost bins are open-ended and collect samples outside the
        warm-up range; they are bounded by the exactly tracked min/max so
        a tail that grows after the spill is not capped at the frozen
        edges (congestion onset after warm-up).
        """
        edges = self._edges
        assert edges is not None
        if index == 0:
            return min(self._min, float(edges[0])), float(edges[0])
        if index >= len(edges):
            return float(edges[-1]), max(self._max, float(edges[-1]))
        return float(edges[index - 1]), float(edges[index])

    def _require_data(self) -> None:
        if self.count == 0:
            raise SimulationError("no packets delivered yet")

    # -- serialisation -----------------------------------------------------

    def to_state(self) -> dict[str, object]:
        """Faithful plain-data snapshot of this accumulator.

        Everything the binary shard codec needs to reconstruct the
        accumulator *bit-exactly* on the other side of a process or file
        boundary: the exact window while exact, the histogram or sketch
        state after the spill.  Pending post-spill samples are flushed
        first (the flush replays them in arrival order, so it is
        invisible in the results).
        """
        self._flush_pending()
        state: dict[str, object] = {
            "exact_capacity": self.exact_capacity,
            "bins": self.bins,
            "backend": self.backend,
            "count": self.count,
            "min": self._min,
            "max": self._max,
        }
        if self._samples is not None:
            state["mode"] = "exact"
            state["samples"] = list(self._samples)
            return state
        state["total"] = self._total
        if self._sketch is not None:
            state["mode"] = "sketch"
            state["sketch"] = self._sketch.to_state()
            return state
        state["mode"] = "histogram"
        state["edges"] = self._edges.tolist()
        state["counts"] = self._counts.tolist()
        return state

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "LatencyAccumulator":
        """Rebuild an accumulator exactly from :meth:`to_state` output."""
        accumulator = cls(exact_capacity=int(state["exact_capacity"]),
                          bins=int(state["bins"]),
                          backend=str(state["backend"]))
        accumulator.count = int(state["count"])
        accumulator._min = float(state["min"])
        accumulator._max = float(state["max"])
        mode = state["mode"]
        if mode == "exact":
            accumulator._samples = list(map(float, state["samples"]))
            if len(accumulator._samples) != accumulator.count:
                raise SimulationError(
                    "accumulator state sample count mismatch")
            return accumulator
        accumulator._samples = None
        accumulator._total = float(state["total"])
        if mode == "sketch":
            from ..cohort.sketch import QuantileSketch
            accumulator._sketch = QuantileSketch.from_state(state["sketch"])
            return accumulator
        if mode != "histogram":
            raise SimulationError(f"unknown accumulator state mode {mode!r}")
        accumulator._edges = np.asarray(state["edges"], dtype=np.float64)
        accumulator._counts = np.asarray(state["counts"], dtype=np.int64)
        return accumulator
