"""Discrete-event simulator for the on-body network.

The closed-form budgets in :mod:`repro.core` answer "what is the average
power"; the simulator answers the dynamic questions: what latency does a
leaf node see when many leaves share the body medium, how bursty traffic
interacts with TDMA slots or hub polling, and how the per-node energy
ledger evolves over a simulated day.  The kernel is layered:

* :mod:`repro.netsim.events` — the event queue (lazy compaction of
  cancelled events, O(1) length).
* :mod:`repro.netsim.stats` — bounded/streaming latency statistics.
* :mod:`repro.netsim.bus` — the :class:`Medium` serialisation resource
  (per-node link rates, bounded buffer, statistics).
* :mod:`repro.netsim.arbitration` — pluggable MAC arbitration policies
  (FIFO, TDMA slots, hub polling) reusing :mod:`repro.comm.mac` math.
* :mod:`repro.netsim.simulator` — nodes, traffic, energy accounting.

It is intentionally small, but it is a real simulator: packets are
individually generated, queued, granted, serialised and delivered.
"""

from .events import Event, EventQueue
from .packet import Packet
from .traffic import PeriodicSource, PoissonSource, TrafficSource
from .stats import LatencyAccumulator
from .reliability import ARQPolicy, LinkReliability
from .arbitration import (
    ArbitrationPolicy,
    FIFOArbitration,
    HubPollingArbitration,
    TDMAArbitration,
    make_policy,
)
from .bus import Medium, SharedBus, BusStats
from .config import NodeConfig
from .simulator import (
    RESULT_SCHEMA_VERSION,
    BodyNetworkSimulator,
    SimulationResult,
    SimulatedNode,
)

__all__ = [
    "NodeConfig",
    "RESULT_SCHEMA_VERSION",
    "Event",
    "EventQueue",
    "Packet",
    "TrafficSource",
    "PeriodicSource",
    "PoissonSource",
    "LatencyAccumulator",
    "ARQPolicy",
    "LinkReliability",
    "ArbitrationPolicy",
    "FIFOArbitration",
    "TDMAArbitration",
    "HubPollingArbitration",
    "make_policy",
    "Medium",
    "SharedBus",
    "BusStats",
    "BodyNetworkSimulator",
    "SimulationResult",
    "SimulatedNode",
]
