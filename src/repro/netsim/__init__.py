"""Discrete-event simulator for the on-body Wi-R network.

The closed-form budgets in :mod:`repro.core` answer "what is the average
power"; the simulator answers the dynamic questions: what latency does a
leaf node see when many leaves share the body bus, how bursty traffic
interacts with TDMA slots, and how the per-node energy ledger evolves over
a simulated day.  It is intentionally small — an event queue, periodic
traffic sources, a shared bus with a FIFO or TDMA service discipline, and
per-node energy accounting — but it is a real simulator: packets are
individually generated, queued, serialised and delivered.
"""

from .events import Event, EventQueue
from .packet import Packet
from .traffic import PeriodicSource, PoissonSource, TrafficSource
from .bus import SharedBus, BusStats
from .simulator import BodyNetworkSimulator, SimulationResult, SimulatedNode

__all__ = [
    "Event",
    "EventQueue",
    "Packet",
    "TrafficSource",
    "PeriodicSource",
    "PoissonSource",
    "SharedBus",
    "BusStats",
    "BodyNetworkSimulator",
    "SimulationResult",
    "SimulatedNode",
]
