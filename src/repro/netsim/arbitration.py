"""Medium-access arbitration policies for the shared body medium.

The discrete-event :class:`~repro.netsim.bus.Medium` owns serialisation
and statistics; *who may transmit next, and after what access delay* is
delegated to an :class:`ArbitrationPolicy`.  Three policies are provided:

* :class:`FIFOArbitration` — a single first-come-first-served queue, the
  behaviour of the original ``SharedBus`` (and still the default, so
  existing seed configurations reproduce bit-identically).
* :class:`TDMAArbitration` — a fixed superframe with per-node slots sized
  by :class:`repro.comm.mac.TDMASchedule` from each node's offered rate; a
  packet may start only inside its node's slot window.
* :class:`HubPollingArbitration` — the hub polls leaves round-robin with
  :class:`repro.comm.mac.PollingMAC` per-poll overhead; polls of idle
  leaves between the cursor and the next backlogged leaf are charged as
  access delay.

Policies are deterministic (no randomness) and non-preemptive: a grant is
committed when the medium asks for it, even if a better-placed packet
arrives before the granted transmission starts.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections import deque
from typing import Protocol, runtime_checkable

from ..comm.mac import PollingMAC, TDMASchedule
from ..errors import SchedulingError, SimulationError
from .packet import Packet

#: A transmission grant: the packet to serialise next and the access
#: delay (seconds from "medium idle" until its transmission may start).
Grant = tuple[Packet, float]

#: Default MAC timing parameters.  The analytic cohort fast path
#: (:mod:`repro.cohort.analytic`) mirrors the DES policies with these
#: same constants — change them here, never in two places.
DEFAULT_TDMA_SUPERFRAME_SECONDS = 0.010
DEFAULT_TDMA_GUARD_SECONDS = 50e-6
DEFAULT_POLL_OVERHEAD_BITS = 64.0
DEFAULT_POLL_TURNAROUND_SECONDS = 100e-6


@runtime_checkable
class ArbitrationPolicy(Protocol):
    """Decides which pending packet transmits next on a shared medium."""

    name: str

    def register_node(self, node_name: str, offered_rate_bps: float) -> None:
        """Announce a node and its long-run offered rate (slot sizing)."""

    def enqueue(self, packet: Packet) -> None:
        """Accept a packet into the policy's pending state."""

    def next_grant(self, now: float) -> Grant | None:
        """Next transmission grant, or None when nothing is pending."""

    def pending_count(self) -> int:
        """Number of packets waiting for a grant."""

    def purge_node(self, node_name: str) -> int:
        """Drop every pending packet of one node (brownout); returns the
        number of packets discarded."""


class FIFOArbitration:
    """First-come-first-served single queue (the legacy bus behaviour)."""

    name = "fifo"

    def __init__(self) -> None:
        self._pending: deque[Packet] = deque()

    def register_node(self, node_name: str, offered_rate_bps: float) -> None:
        pass  # FIFO needs no per-node state

    def enqueue(self, packet: Packet) -> None:
        self._pending.append(packet)

    def next_grant(self, now: float) -> Grant | None:
        if not self._pending:
            return None
        return self._pending.popleft(), 0.0

    def pending_count(self) -> int:
        return len(self._pending)

    def purge_node(self, node_name: str) -> int:
        kept = deque(packet for packet in self._pending
                     if packet.source != node_name)
        removed = len(self._pending) - len(kept)
        self._pending = kept
        return removed


class TDMAArbitration:
    """Slotted access: each node owns a window of a fixed superframe.

    Slot widths come from :class:`repro.comm.mac.TDMASchedule` (payload
    time proportional to offered rate, plus a guard per slot).  When the
    registered demand exceeds the superframe the slots degrade gracefully
    to rate-proportional shares so a saturated bus still simulates instead
    of raising.  A node with pending traffic is granted the medium at the
    earliest instant inside one of its windows; ties go to the earlier
    window.
    """

    name = "tdma"

    def __init__(self, link_rate_bps: float | None = None,
                 superframe_seconds: float = DEFAULT_TDMA_SUPERFRAME_SECONDS,
                 guard_seconds: float = DEFAULT_TDMA_GUARD_SECONDS) -> None:
        if superframe_seconds <= 0:
            raise SimulationError("superframe must be positive")
        if guard_seconds < 0:
            raise SimulationError("guard time must be non-negative")
        self.link_rate_bps = link_rate_bps
        self.superframe_seconds = superframe_seconds
        self.guard_seconds = guard_seconds
        self._demands: dict[str, float] = {}
        self._queues: dict[str, deque[Packet]] = {}
        self._windows: dict[str, tuple[float, float]] | None = None
        self._pending = 0
        #: Slot ring for the fast grant path: per-window ``(offset,
        #: width, queue)`` sorted by offset, plus the parallel offset
        #: list ``bisect`` searches.  Only valid (``_ring_fast``) when
        #: the windows are disjoint and fit one superframe; degenerate
        #: tables (oversubscription bumping ``minimum_width`` into the
        #: next slot) fall back to the exhaustive scan.
        self._ring: list[tuple[float, float, deque[Packet]]] = []
        self._ring_starts: list[float] = []
        self._ring_fast = False

    def register_node(self, node_name: str, offered_rate_bps: float) -> None:
        if offered_rate_bps < 0:
            raise SimulationError("offered rate must be non-negative")
        self._demands[node_name] = offered_rate_bps
        self._queues.setdefault(node_name, deque())
        self._windows = None  # re-derive the slot table lazily

    def enqueue(self, packet: Packet) -> None:
        if packet.source not in self._queues:
            # Unregistered sources get a zero-rate (guard-only) slot.
            self.register_node(packet.source, 0.0)
        self._queues[packet.source].append(packet)
        self._pending += 1

    def pending_count(self) -> int:
        return self._pending

    def purge_node(self, node_name: str) -> int:
        queue = self._queues.get(node_name)
        if queue is None:
            return 0
        removed = len(queue)
        queue.clear()
        self._pending -= removed
        return removed

    def _slot_table(self) -> dict[str, tuple[float, float]]:
        """Per-node ``(offset, width)`` transmit windows in the superframe."""
        if self._windows is not None:
            return self._windows
        if self.link_rate_bps is None:
            raise SimulationError(
                "TDMA arbitration needs a link rate; attach it to a Medium "
                "or pass link_rate_bps explicitly"
            )
        schedule = TDMASchedule(link_rate_bps=self.link_rate_bps,
                                superframe_seconds=self.superframe_seconds,
                                guard_seconds=self.guard_seconds)
        for name, rate in self._demands.items():
            schedule.add_node(name, rate)
        windows: dict[str, tuple[float, float]] = {}
        minimum_width = self.superframe_seconds / 1000.0
        try:
            assignments = schedule.build()
            offset = 0.0
            for assignment in assignments:
                width = max(assignment.slot_seconds - self.guard_seconds,
                            minimum_width)
                windows[assignment.node_name] = (offset, width)
                offset += assignment.slot_seconds
        except SchedulingError:
            # Oversubscribed: fall back to rate-proportional shares so the
            # saturated regime is still simulable (queues grow, drops
            # happen at the medium's buffer bound — the behaviour the
            # scaling ablation wants to observe).
            total = sum(self._demands.values())
            offset = 0.0
            for name, rate in self._demands.items():
                share = rate / total if total > 0 else 1.0 / len(self._demands)
                width = max(share * self.superframe_seconds, minimum_width)
                windows[name] = (offset, width)
                offset += width
        self._windows = windows
        self._build_ring(windows)
        return windows

    def _build_ring(self, windows: dict[str, tuple[float, float]]) -> None:
        """Derive the sorted slot ring driving the O(log n) grant path."""
        ring = sorted(
            (offset, width, self._queues[name])
            for name, (offset, width) in windows.items()
            if name in self._queues)
        fast = len(ring) == len(self._queues)
        for index, (offset, width, _) in enumerate(ring):
            end = (ring[index + 1][0] if index + 1 < len(ring)
                   else self.superframe_seconds)
            if offset + width > end:
                fast = False  # overlapping or frame-spilling windows
                break
        self._ring = ring
        self._ring_starts = [offset for offset, _, _ in ring]
        self._ring_fast = fast

    def _next_access(self, offset: float, width: float, now: float) -> float:
        """Earliest time >= *now* inside the node's window."""
        superframe = self.superframe_seconds
        frame_start = math.floor(now / superframe) * superframe
        for start in (frame_start + offset,
                      frame_start + superframe + offset):
            if now < start + width:
                return max(now, start)
        return frame_start + 2.0 * superframe + offset

    def next_grant(self, now: float) -> Grant | None:
        if self._pending == 0:
            return None
        windows = self._windows
        if windows is None:
            windows = self._slot_table()
        if self._ring_fast:
            # Slot-ring grant: O(log n) window lookup instead of scanning
            # every backlogged node.  With disjoint windows, walking the
            # ring circularly from the window containing ``now`` visits
            # nodes in non-decreasing next-access order, so the first
            # backlogged node visited is the exhaustive scan's minimum.
            # The access arithmetic mirrors :meth:`_next_access` exactly
            # (inlined: this runs once per granted packet).
            superframe = self.superframe_seconds
            frame_start = math.floor(now / superframe) * superframe
            ring = self._ring
            count = len(ring)
            anchor = bisect_right(self._ring_starts, now - frame_start) - 1
            if anchor >= 0:
                offset, width, queue = ring[anchor]
                if queue and now < frame_start + offset + width:
                    # Inside (or still ahead of the end of) the anchor's
                    # window: it transmits immediately.
                    self._pending -= 1
                    return (queue.popleft(),
                            max(now, frame_start + offset) - now)
            for step in range(1, count + 1):
                offset, width, queue = ring[(anchor + step) % count]
                if queue:
                    start = frame_start + offset
                    if now < start + width:
                        access = now if now > start else start
                    else:
                        start = frame_start + superframe + offset
                        if now < start + width:
                            access = now if now > start else start
                        else:
                            access = frame_start + 2.0 * superframe + offset
                    self._pending -= 1
                    return queue.popleft(), access - now
            raise SimulationError("pending count out of sync with queues")
        best: tuple[float, str] | None = None
        for name, queue in self._queues.items():
            if not queue:
                continue
            offset, width = windows.get(name, (0.0, self.superframe_seconds))
            access = self._next_access(offset, width, now)
            if best is None or access < best[0]:
                best = (access, name)
        assert best is not None
        access, name = best
        self._pending -= 1
        return self._queues[name].popleft(), access - now


class HubPollingArbitration:
    """Hub-driven round-robin polling with per-poll overhead.

    The hub walks the leaf ring; each poll costs
    ``poll_overhead_bits / link_rate + turnaround`` (the
    :class:`repro.comm.mac.PollingMAC` cycle-time math).  Idle leaves
    between the cursor and the next backlogged leaf are still polled, and
    those empty polls are charged as access delay on the granted packet —
    the hallmark cost of polling very bursty populations.
    """

    name = "polling"

    def __init__(self, link_rate_bps: float | None = None,
                 poll_overhead_bits: float = DEFAULT_POLL_OVERHEAD_BITS,
                 turnaround_seconds: float = DEFAULT_POLL_TURNAROUND_SECONDS
                 ) -> None:
        if poll_overhead_bits < 0:
            raise SimulationError("poll overhead must be non-negative")
        if turnaround_seconds < 0:
            raise SimulationError("turnaround must be non-negative")
        self.link_rate_bps = link_rate_bps
        self.poll_overhead_bits = poll_overhead_bits
        self.turnaround_seconds = turnaround_seconds
        self._ring: list[str] = []
        self._queues: dict[str, deque[Packet]] = {}
        self._cursor = 0
        self._pending = 0
        self._poll_cost: float | None = None

    def register_node(self, node_name: str, offered_rate_bps: float) -> None:
        if node_name not in self._queues:
            self._ring.append(node_name)
            self._queues[node_name] = deque()

    def enqueue(self, packet: Packet) -> None:
        if packet.source not in self._queues:
            self.register_node(packet.source, 0.0)
        self._queues[packet.source].append(packet)
        self._pending += 1

    def pending_count(self) -> int:
        return self._pending

    def purge_node(self, node_name: str) -> int:
        queue = self._queues.get(node_name)
        if queue is None:
            return 0
        removed = len(queue)
        queue.clear()
        self._pending -= removed
        return removed

    def poll_cost_seconds(self) -> float:
        """Cost of one poll (downlink overhead + turnaround)."""
        if self.link_rate_bps is None:
            raise SimulationError(
                "polling arbitration needs a link rate; attach it to a "
                "Medium or pass link_rate_bps explicitly"
            )
        # One-node PollingMAC cycle minus the payload burst: the pure
        # per-poll overhead, kept in one place with the closed-form model.
        mac = PollingMAC(link_rate_bps=self.link_rate_bps,
                         poll_overhead_bits=self.poll_overhead_bits,
                         turnaround_seconds=self.turnaround_seconds)
        return mac.cycle_time_seconds(1, 0.0)

    def next_grant(self, now: float) -> Grant | None:
        if self._pending == 0:
            return None
        if self._poll_cost is None:
            # Poll parameters are fixed for the lifetime of a run; compute
            # the per-poll cost once, after the Medium attached its rate.
            self._poll_cost = self.poll_cost_seconds()
        poll_cost = self._poll_cost
        ring_size = len(self._ring)
        for skipped in range(ring_size):
            name = self._ring[(self._cursor + skipped) % ring_size]
            if self._queues[name]:
                self._cursor = (self._cursor + skipped + 1) % ring_size
                self._pending -= 1
                delay = (skipped + 1) * poll_cost
                return self._queues[name].popleft(), delay
        raise SimulationError("pending count out of sync with queues")


#: Registry of policy constructors for string-based selection (CLI,
#: experiment grids, scenario specs).
POLICY_FACTORIES = {
    "fifo": FIFOArbitration,
    "tdma": TDMAArbitration,
    "polling": HubPollingArbitration,
}


def make_policy(name: str, **kwargs: object) -> ArbitrationPolicy:
    """Build an arbitration policy from its short name."""
    try:
        factory = POLICY_FACTORIES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(POLICY_FACTORIES))
        raise SimulationError(
            f"unknown arbitration policy {name!r} (known: {known})"
        ) from None
    return factory(**kwargs)  # type: ignore[arg-type]
