"""Event queue for the discrete-event simulator.

Cancelled events are skipped lazily when popped, but the queue keeps a
live count of them and compacts the heap (filter + re-heapify) as soon as
cancelled entries outnumber live ones, so a workload that schedules and
cancels aggressively (e.g. duty-cycled scenario events) cannot grow the
heap without bound.  ``len(queue)`` is O(1).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events are ordered by time, then by insertion sequence so simultaneous
    events fire in the order they were scheduled (deterministic runs).
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    _queue: "EventQueue | None" = field(default=None, compare=False,
                                        repr=False)
    _in_heap: bool = field(default=False, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._in_heap and self._queue is not None:
            self._queue._note_cancelled()


class EventQueue:
    """A priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._cancelled_count = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap) - self._cancelled_count

    def _note_cancelled(self) -> None:
        """Track a cancellation and compact once the heap is mostly dead."""
        self._cancelled_count += 1
        if self._cancelled_count > len(self._heap) // 2:
            self._compact()

    def _compact(self) -> None:
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        self._cancelled_count = 0

    def _pop(self) -> Event:
        event = heapq.heappop(self._heap)
        event._in_heap = False
        if event.cancelled:
            self._cancelled_count -= 1
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule *callback* at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now {self._now}"
            )
        event = Event(time=time, sequence=next(self._counter),
                      callback=callback, _queue=self, _in_heap=True)
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule *callback* after a relative delay."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def step(self) -> bool:
        """Pop and run the next event.  Returns False when the queue is empty."""
        while self._heap:
            event = self._pop()
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            return True
        return False

    def run_until(self, end_time: float) -> float:
        """Run events until *end_time* (exclusive of later events).

        Returns the final simulation time, which is *end_time* even when
        the queue drains earlier.
        """
        if end_time < self._now:
            raise SimulationError(
                f"end time {end_time} is before current time {self._now}"
            )
        while self._heap:
            next_event = self._heap[0]
            if next_event.cancelled:
                self._pop()
                continue
            if next_event.time > end_time:
                break
            self.step()
        self._now = end_time
        return self._now
