"""Event queue for the discrete-event simulator.

:class:`EventQueue` is a calendar queue (Brown 1988): events hash into
time-width buckets, each kept sorted, and the queue walks the calendar
cursor forward to pop in ``(time, sequence)`` order.  Insert and pop are
O(1) amortised under the steady-state workloads the simulator produces
(periodic generation, one in-flight transmission chain, energy ticks),
where a binary heap pays O(log n) comparisons per operation through a
Python-level ``__lt__``.  The bucket count and width re-size themselves
from the observed event spacing as the population grows or shrinks.

Cancelled events are skipped lazily when popped, but the queue keeps a
live count of them and compacts the calendar (filter + redistribute) as
soon as cancelled entries outnumber live ones, so a workload that
schedules and cancels aggressively (e.g. duty-cycled scenario events)
cannot grow the store without bound.  ``len(queue)`` is O(1).

:class:`HeapEventQueue` preserves the historical binary-heap
implementation.  It is the differential-testing reference: a Hypothesis
property in ``tests/netsim/test_calendar_queue.py`` drives both queues
with the same operation sequence and asserts identical pop order.

The batched simulator kernel (:meth:`BodyNetworkSimulator.run`) merges
this queue with its generation and transmission streams by ``(time,
sequence)`` key; :meth:`EventQueue.peek_key` and
:meth:`EventQueue.claim_sequence` exist for that merge.  All streams
draw sequence numbers from this queue's counter, so the total order is
identical to scheduling every event here.
"""

from __future__ import annotations

import heapq
import itertools
import math
from bisect import insort
from dataclasses import dataclass, field
from typing import Callable

from ..errors import SimulationError

#: Initial calendar geometry; resizes kick in once the store grows.
_INITIAL_BUCKETS = 8
_INITIAL_WIDTH = 1.0

#: Events sampled (from the sorted store) to estimate the bucket width
#: at each resize.
_WIDTH_SAMPLE = 128


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events are ordered by time, then by insertion sequence so simultaneous
    events fire in the order they were scheduled (deterministic runs).
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    _queue: "EventQueue | HeapEventQueue | None" = field(
        default=None, compare=False, repr=False)
    _in_heap: bool = field(default=False, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._in_heap and self._queue is not None:
            self._queue._note_cancelled(self)


class EventQueue:
    """A calendar-queue priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        # A plain int rather than itertools.count: the simulator kernel
        # hoists this into a local and writes it back, which a generator
        # object would not allow.
        self._seq = 0
        self._now = 0.0
        self._cancelled_count = 0
        self._stored = 0  # physical entries, including cancelled ones
        self._head: Event | None = None  # cached current minimum, if known
        self._width = _INITIAL_WIDTH
        self._bucket_count = _INITIAL_BUCKETS
        self._buckets: list[list[Event]] = [[] for _ in range(_INITIAL_BUCKETS)]
        self._cursor = 0  # absolute bucket index: floor(time / width)

    # -- bookkeeping -------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def __len__(self) -> int:
        return self._stored - self._cancelled_count

    @property
    def stored_events(self) -> int:
        """Physical entries currently held, including cancelled ones.

        The compaction bound keeps this below twice the live count.
        """
        return self._stored

    def claim_sequence(self) -> int:
        """Take the next event sequence number without scheduling.

        The simulator kernel orders its generation and transmission
        streams with sequences claimed here, so they interleave with
        queued events exactly as if they had been scheduled.
        """
        sequence = self._seq
        self._seq = sequence + 1
        return sequence

    def _note_cancelled(self, event: Event) -> None:
        """Track a cancellation and compact once the store is mostly dead."""
        if event is self._head:
            self._head = None
        self._cancelled_count += 1
        if self._cancelled_count > self._stored // 2:
            self._compact()

    def _compact(self) -> None:
        live = [event for bucket in self._buckets for event in bucket
                if not event.cancelled]
        self._rebuild(live)

    def _rebuild(self, live: list[Event]) -> None:
        """Re-distribute *live* events into a freshly sized calendar."""
        live.sort()
        count = self._ideal_bucket_count(len(live))
        self._width = self._estimate_width(live)
        self._bucket_count = count
        self._buckets = [[] for _ in range(count)]
        width = self._width
        for event in live:
            # Already sorted, so appends keep each bucket ordered.
            self._buckets[int(event.time / width) % count].append(event)
        self._stored = len(live)
        self._cancelled_count = 0
        first = live[0].time if live else self._now
        self._cursor = int(first / width)
        self._head = live[0] if live else None

    @staticmethod
    def _ideal_bucket_count(population: int) -> int:
        count = _INITIAL_BUCKETS
        while count < population:
            count *= 2
        return count

    def _estimate_width(self, live: list[Event]) -> float:
        """Bucket width from the spacing of the earliest stored events."""
        if len(live) < 2:
            return self._width
        sample = live[:_WIDTH_SAMPLE]
        span = sample[-1].time - sample[0].time
        if span <= 0.0 or not math.isfinite(span):
            return self._width
        # Three average gaps per bucket: a few events per bucket in the
        # steady state, the classic calendar-queue operating point.
        return 3.0 * span / (len(sample) - 1)

    def _maybe_resize(self) -> None:
        if self._stored > 2 * self._bucket_count or (
                self._bucket_count > _INITIAL_BUCKETS
                and self._stored < self._bucket_count // 8):
            self._compact()

    # -- scheduling --------------------------------------------------------

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule *callback* at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now {self._now}"
            )
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time}")
        sequence = self._seq
        self._seq = sequence + 1
        event = Event(time=time, sequence=sequence,
                      callback=callback, _queue=self, _in_heap=True)
        index = int(time / self._width)
        bucket = self._buckets[index % self._bucket_count]
        if bucket and bucket[-1] < event:
            bucket.append(event)
        else:
            insort(bucket, event)
        self._stored += 1
        if index < self._cursor:
            self._cursor = index
        head = self._head
        if head is not None and event < head:
            self._head = event
        elif head is None and self._stored == 1:
            self._head = event
        self._maybe_resize()
        return event

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule *callback* after a relative delay."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    # -- ordered access ----------------------------------------------------

    def _peek(self) -> Event | None:
        """The earliest live event, without removing it."""
        head = self._head
        if head is not None and not head.cancelled:
            return head
        if self._stored - self._cancelled_count == 0:
            return None
        buckets = self._buckets
        count = self._bucket_count
        width = self._width
        cursor = self._cursor
        scanned = 0
        while True:
            bucket = buckets[cursor % count]
            # Lazily drop cancelled entries blocking the bucket head.
            while bucket and bucket[0].cancelled:
                bucket.pop(0)._in_heap = False
                self._stored -= 1
                self._cancelled_count -= 1
            if bucket and bucket[0].time < (cursor + 1) * width:
                self._cursor = cursor
                self._head = bucket[0]
                return bucket[0]
            cursor += 1
            scanned += 1
            if scanned >= count:
                # A sparse year: jump the cursor straight to the minimum
                # bucket head instead of walking empty buckets.
                candidates = [bucket[0] for bucket in buckets if bucket]
                if not candidates:
                    return None
                earliest = min(candidates)
                cursor = int(earliest.time / width)
                scanned = 0

    def _pop_head(self, head: Event) -> None:
        """Remove *head* (the event `_peek` just returned) from its bucket."""
        bucket = self._buckets[int(head.time / self._width)
                               % self._bucket_count]
        # _peek leaves the head at the front of its (sorted) bucket.
        bucket.pop(0)
        head._in_heap = False
        self._stored -= 1
        self._head = None

    def peek_key(self) -> tuple[float, int] | None:
        """``(time, sequence)`` of the next live event, or ``None``."""
        head = self._peek()
        if head is None:
            return None
        return head.time, head.sequence

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` when the queue is empty.

        The macro-tick segment detector uses this as the control-stream
        horizon: no scheduled callback (scenario event, energy tick) can
        fire strictly before this instant, so a closed-form leap that
        ends at or before it cannot skip over control work.
        """
        head = self._peek()
        if head is None:
            return None
        return head.time

    def pop_next(self) -> Event | None:
        """Remove and return the next live event without firing it.

        Does not advance :attr:`now`; the caller (the simulator kernel)
        owns the clock while merging event streams.
        """
        head = self._peek()
        if head is None:
            return None
        self._pop_head(head)
        return head

    # -- execution ---------------------------------------------------------

    def step(self) -> bool:
        """Pop and run the next event.  Returns False when the queue is empty."""
        event = self.pop_next()
        if event is None:
            return False
        self._now = event.time
        event.callback()
        return True

    def run_until(self, end_time: float) -> float:
        """Run events until *end_time* (exclusive of later events).

        Returns the final simulation time, which is *end_time* even when
        the queue drains earlier.
        """
        if end_time < self._now:
            raise SimulationError(
                f"end time {end_time} is before current time {self._now}"
            )
        while True:
            event = self._peek()
            if event is None or event.time > end_time:
                break
            self._pop_head(event)
            self._now = event.time
            event.callback()
        self._now = end_time
        return self._now


class HeapEventQueue:
    """The historical binary-heap queue, kept as a reference implementation.

    Same public surface as :class:`EventQueue` (minus the kernel merge
    hooks); property tests drive both with identical operation sequences
    and assert identical pop order.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._cancelled_count = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap) - self._cancelled_count

    @property
    def stored_events(self) -> int:
        """Physical entries currently held, including cancelled ones."""
        return len(self._heap)

    def _note_cancelled(self, event: Event) -> None:
        """Track a cancellation and compact once the heap is mostly dead."""
        self._cancelled_count += 1
        if self._cancelled_count > len(self._heap) // 2:
            self._compact()

    def _compact(self) -> None:
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        self._cancelled_count = 0

    def _pop(self) -> Event:
        event = heapq.heappop(self._heap)
        event._in_heap = False
        if event.cancelled:
            self._cancelled_count -= 1
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule *callback* at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now {self._now}"
            )
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time}")
        event = Event(time=time, sequence=next(self._counter),
                      callback=callback, _queue=self, _in_heap=True)
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule *callback* after a relative delay."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def step(self) -> bool:
        """Pop and run the next event.  Returns False when the queue is empty."""
        while self._heap:
            event = self._pop()
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            return True
        return False

    def run_until(self, end_time: float) -> float:
        """Run events until *end_time* (exclusive of later events)."""
        if end_time < self._now:
            raise SimulationError(
                f"end time {end_time} is before current time {self._now}"
            )
        while self._heap:
            next_event = self._heap[0]
            if next_event.cancelled:
                self._pop()
                continue
            if next_event.time > end_time:
                break
            self.step()
        self._now = end_time
        return self._now
