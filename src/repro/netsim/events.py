"""Event queue for the discrete-event simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events are ordered by time, then by insertion sequence so simultaneous
    events fire in the order they were scheduled (deterministic runs).
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True


class EventQueue:
    """A priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule *callback* at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now {self._now}"
            )
        event = Event(time=time, sequence=next(self._counter), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule *callback* after a relative delay."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def step(self) -> bool:
        """Pop and run the next event.  Returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            return True
        return False

    def run_until(self, end_time: float) -> float:
        """Run events until *end_time* (exclusive of later events).

        Returns the final simulation time, which is *end_time* even when
        the queue drains earlier.
        """
        if end_time < self._now:
            raise SimulationError(
                f"end time {end_time} is before current time {self._now}"
            )
        while self._heap:
            next_event = self._heap[0]
            if next_event.cancelled:
                heapq.heappop(self._heap)
                continue
            if next_event.time > end_time:
                break
            self.step()
        self._now = end_time
        return self._now
