"""Declarative node configuration for the body-network simulator.

:class:`NodeConfig` is the front door for describing a leaf node: one
frozen record carrying everything :class:`~repro.netsim.simulator.
BodyNetworkSimulator` needs to instantiate the node — its traffic
source, static power draws, an optional per-node link technology, and
the optional energy subsystem (battery, harvester, low-battery duty
cycling).  Pass it to :meth:`BodyNetworkSimulator.attach`::

    simulator.attach(NodeConfig("chest_ecg", PeriodicSource.from_rate(
        units.kilobit(12.0), bits_per_packet=4096.0)))

The historical keyword soup ``simulator.add_node(name, source, ...)``
went through its deprecation cycle and has been removed; ``attach`` is
the only front door.  Keeping the record frozen means a config can be shared across
simulators and sweep tasks without aliasing concerns, and gives node
descriptions value semantics (hashable, comparable) for free.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..comm.link import CommTechnology
from ..energy.battery import BatterySpec
from ..energy.harvester import EnergyHarvester
from .traffic import TrafficSource

#: Traffic throttle applied on a low-battery crossing: the node emits
#: one packet out of this many until the end of the run.  (Re-exported
#: by :mod:`repro.netsim.simulator` for backwards compatibility.)
DEFAULT_LOW_BATTERY_STRIDE = 2


@dataclass(frozen=True)
class NodeConfig:
    """Everything needed to attach one leaf node to a simulator.

    ``technology`` overrides the simulator default for this node only:
    its packets serialise at that technology's rate and its energy is
    accounted at that technology's per-bit costs (mixed link layers on
    one body).  ``battery`` gives the node a finite cell (it can brown
    out mid-run), ``harvester`` credits energy back continuously, and
    ``low_battery_fraction`` arms duty-cycle adaptation: below that
    state of charge the node emits only one packet per
    ``low_battery_stride`` generation opportunities.

    ``coding_power_watts`` is the constant encoder draw of a source
    coder compressing this node's stream (see :mod:`repro.coding`); it
    is charged to the ``"coding"`` ledger component.  ``coding_rate``
    records the coded-bits-per-source-bit the attached traffic source
    already reflects — the simulator uses it only for bookkeeping
    (source-bit totals, bit-reduction factor), never to rescale
    packets.  The defaults (0.0 / 1.0) leave everything untouched.
    """

    name: str
    source: TrafficSource
    sensing_power_watts: float = 0.0
    isa_power_watts: float = 0.0
    technology: CommTechnology | None = None
    battery: BatterySpec | None = None
    harvester: EnergyHarvester | None = None
    initial_charge_fraction: float = 1.0
    low_battery_fraction: float | None = None
    low_battery_stride: int = DEFAULT_LOW_BATTERY_STRIDE
    coding_power_watts: float = 0.0
    coding_rate: float = 1.0
