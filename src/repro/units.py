"""SI unit helpers used throughout :mod:`repro`.

The library keeps every physical quantity in base SI units internally:

* power in watts (W)
* energy in joules (J)
* data rate in bits per second (bit/s)
* time in seconds (s)
* frequency in hertz (Hz)
* distance in metres (m)
* capacitance in farads (F)

These helpers exist so call sites read like the paper ("100 pJ/bit",
"1000 mAh", "10s of microwatts") while the maths stays in floats.  Each
constructor validates that the magnitude is finite and, where physically
required, non-negative, raising :class:`repro.errors.UnitError` otherwise.
"""

from __future__ import annotations

import math

from .errors import UnitError

# ---------------------------------------------------------------------------
# Scalar prefixes
# ---------------------------------------------------------------------------

PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6
GIGA = 1e9

#: Seconds in common calendar units (used for battery-life reporting).
SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
SECONDS_PER_WEEK = 7.0 * SECONDS_PER_DAY
SECONDS_PER_YEAR = 365.25 * SECONDS_PER_DAY

#: Typical coin-cell / wearable battery terminal voltage used when a
#: capacity is quoted in mAh without an explicit voltage.
DEFAULT_BATTERY_VOLTAGE = 3.0


def _check_finite(value: float, name: str) -> float:
    value = float(value)
    if math.isnan(value) or math.isinf(value):
        raise UnitError(f"{name} must be finite, got {value!r}")
    return value


def _check_non_negative(value: float, name: str) -> float:
    value = _check_finite(value, name)
    if value < 0.0:
        raise UnitError(f"{name} must be non-negative, got {value!r}")
    return value


def _check_positive(value: float, name: str) -> float:
    value = _check_finite(value, name)
    if value <= 0.0:
        raise UnitError(f"{name} must be positive, got {value!r}")
    return value


# ---------------------------------------------------------------------------
# Power
# ---------------------------------------------------------------------------

def watt(value: float) -> float:
    """Return a power expressed in watts."""
    return _check_non_negative(value, "power [W]")


def milliwatt(value: float) -> float:
    """Return a power expressed in milliwatts, converted to watts."""
    return _check_non_negative(value, "power [mW]") * MILLI


def microwatt(value: float) -> float:
    """Return a power expressed in microwatts, converted to watts."""
    return _check_non_negative(value, "power [uW]") * MICRO


def nanowatt(value: float) -> float:
    """Return a power expressed in nanowatts, converted to watts."""
    return _check_non_negative(value, "power [nW]") * NANO


def to_microwatt(power_w: float) -> float:
    """Convert a power in watts to microwatts (for reporting)."""
    return _check_non_negative(power_w, "power [W]") / MICRO


def to_milliwatt(power_w: float) -> float:
    """Convert a power in watts to milliwatts (for reporting)."""
    return _check_non_negative(power_w, "power [W]") / MILLI


# ---------------------------------------------------------------------------
# Energy
# ---------------------------------------------------------------------------

def joule(value: float) -> float:
    """Return an energy expressed in joules."""
    return _check_non_negative(value, "energy [J]")


def millijoule(value: float) -> float:
    """Return an energy expressed in millijoules, converted to joules."""
    return _check_non_negative(value, "energy [mJ]") * MILLI


def microjoule(value: float) -> float:
    """Return an energy expressed in microjoules, converted to joules."""
    return _check_non_negative(value, "energy [uJ]") * MICRO


def nanojoule(value: float) -> float:
    """Return an energy expressed in nanojoules, converted to joules."""
    return _check_non_negative(value, "energy [nJ]") * NANO


def picojoule(value: float) -> float:
    """Return an energy expressed in picojoules, converted to joules."""
    return _check_non_negative(value, "energy [pJ]") * PICO


def picojoule_per_bit(value: float) -> float:
    """Return a communication energy efficiency in pJ/bit as J/bit."""
    return _check_non_negative(value, "energy efficiency [pJ/bit]") * PICO


def nanojoule_per_bit(value: float) -> float:
    """Return a communication energy efficiency in nJ/bit as J/bit."""
    return _check_non_negative(value, "energy efficiency [nJ/bit]") * NANO


def to_picojoule_per_bit(joule_per_bit: float) -> float:
    """Convert an energy/bit in J/bit to pJ/bit (for reporting)."""
    return _check_non_negative(joule_per_bit, "energy per bit [J/bit]") / PICO


def mAh(capacity_mah: float, volts: float = DEFAULT_BATTERY_VOLTAGE) -> float:
    """Convert a battery capacity in milliamp-hours to joules.

    Parameters
    ----------
    capacity_mah:
        Capacity in mAh (e.g. ``1000`` for the paper's Fig. 3 assumption).
    volts:
        Nominal terminal voltage; defaults to 3.0 V, the usual quote for
        high-capacity coin cells and small Li-Po packs.
    """
    capacity_mah = _check_non_negative(capacity_mah, "capacity [mAh]")
    volts = _check_positive(volts, "battery voltage [V]")
    return capacity_mah * MILLI * SECONDS_PER_HOUR * volts


def watt_hour(value: float) -> float:
    """Convert an energy in watt-hours to joules."""
    return _check_non_negative(value, "energy [Wh]") * SECONDS_PER_HOUR


# ---------------------------------------------------------------------------
# Data rate and data size
# ---------------------------------------------------------------------------

def bit_per_second(value: float) -> float:
    """Return a data rate expressed in bits per second."""
    return _check_non_negative(value, "data rate [bit/s]")


def kilobit_per_second(value: float) -> float:
    """Return a data rate expressed in kb/s, converted to bit/s."""
    return _check_non_negative(value, "data rate [kb/s]") * KILO


def megabit_per_second(value: float) -> float:
    """Return a data rate expressed in Mb/s, converted to bit/s."""
    return _check_non_negative(value, "data rate [Mb/s]") * MEGA


def byte_per_second(value: float) -> float:
    """Return a data rate expressed in bytes per second, converted to bit/s."""
    return _check_non_negative(value, "data rate [B/s]") * 8.0


def bits(value: float) -> float:
    """Return a data volume in bits."""
    return _check_non_negative(value, "data volume [bit]")


def bytes_(value: float) -> float:
    """Return a data volume in bytes, converted to bits."""
    return _check_non_negative(value, "data volume [byte]") * 8.0


def kibibytes(value: float) -> float:
    """Return a data volume in KiB, converted to bits."""
    return _check_non_negative(value, "data volume [KiB]") * 8.0 * 1024.0


def to_megabit_per_second(rate_bps: float) -> float:
    """Convert a rate in bit/s to Mb/s (for reporting)."""
    return _check_non_negative(rate_bps, "data rate [bit/s]") / MEGA


# ---------------------------------------------------------------------------
# Frequency
# ---------------------------------------------------------------------------

def hertz(value: float) -> float:
    """Return a frequency expressed in hertz."""
    return _check_non_negative(value, "frequency [Hz]")


def kilohertz(value: float) -> float:
    """Return a frequency expressed in kHz, converted to Hz."""
    return _check_non_negative(value, "frequency [kHz]") * KILO


def megahertz(value: float) -> float:
    """Return a frequency expressed in MHz, converted to Hz."""
    return _check_non_negative(value, "frequency [MHz]") * MEGA


def gigahertz(value: float) -> float:
    """Return a frequency expressed in GHz, converted to Hz."""
    return _check_non_negative(value, "frequency [GHz]") * GIGA


# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

def seconds(value: float) -> float:
    """Return a duration in seconds."""
    return _check_non_negative(value, "duration [s]")


def milliseconds(value: float) -> float:
    """Return a duration in milliseconds, converted to seconds."""
    return _check_non_negative(value, "duration [ms]") * MILLI


def minutes(value: float) -> float:
    """Return a duration in minutes, converted to seconds."""
    return _check_non_negative(value, "duration [min]") * SECONDS_PER_MINUTE


def hours(value: float) -> float:
    """Return a duration in hours, converted to seconds."""
    return _check_non_negative(value, "duration [h]") * SECONDS_PER_HOUR


def days(value: float) -> float:
    """Return a duration in days, converted to seconds."""
    return _check_non_negative(value, "duration [day]") * SECONDS_PER_DAY


def weeks(value: float) -> float:
    """Return a duration in weeks, converted to seconds."""
    return _check_non_negative(value, "duration [week]") * SECONDS_PER_WEEK


def years(value: float) -> float:
    """Return a duration in years, converted to seconds."""
    return _check_non_negative(value, "duration [year]") * SECONDS_PER_YEAR


def to_hours(duration_s: float) -> float:
    """Convert a duration in seconds to hours (for reporting)."""
    return _check_non_negative(duration_s, "duration [s]") / SECONDS_PER_HOUR


def to_days(duration_s: float) -> float:
    """Convert a duration in seconds to days (for reporting)."""
    return _check_non_negative(duration_s, "duration [s]") / SECONDS_PER_DAY


def to_weeks(duration_s: float) -> float:
    """Convert a duration in seconds to weeks (for reporting)."""
    return _check_non_negative(duration_s, "duration [s]") / SECONDS_PER_WEEK


def to_years(duration_s: float) -> float:
    """Convert a duration in seconds to years (for reporting)."""
    return _check_non_negative(duration_s, "duration [s]") / SECONDS_PER_YEAR


# ---------------------------------------------------------------------------
# Distance
# ---------------------------------------------------------------------------

def metre(value: float) -> float:
    """Return a distance in metres."""
    return _check_non_negative(value, "distance [m]")


def centimetre(value: float) -> float:
    """Return a distance in centimetres, converted to metres."""
    return _check_non_negative(value, "distance [cm]") * 0.01


def millimetre(value: float) -> float:
    """Return a distance in millimetres, converted to metres."""
    return _check_non_negative(value, "distance [mm]") * MILLI


# ---------------------------------------------------------------------------
# Capacitance (used by the EQS-HBC circuit model)
# ---------------------------------------------------------------------------

def farad(value: float) -> float:
    """Return a capacitance in farads."""
    return _check_non_negative(value, "capacitance [F]")


def picofarad(value: float) -> float:
    """Return a capacitance in picofarads, converted to farads."""
    return _check_non_negative(value, "capacitance [pF]") * PICO


def femtofarad(value: float) -> float:
    """Return a capacitance in femtofarads, converted to farads."""
    return _check_non_negative(value, "capacitance [fF]") * 1e-15


# ---------------------------------------------------------------------------
# Decibel helpers
# ---------------------------------------------------------------------------

def db_to_linear(value_db: float) -> float:
    """Convert a power ratio in dB to a linear ratio."""
    value_db = _check_finite(value_db, "ratio [dB]")
    return 10.0 ** (value_db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB."""
    ratio = _check_positive(ratio, "power ratio")
    return 10.0 * math.log10(ratio)


def dbm_to_watt(value_dbm: float) -> float:
    """Convert a power level in dBm to watts."""
    value_dbm = _check_finite(value_dbm, "power [dBm]")
    return MILLI * 10.0 ** (value_dbm / 10.0)


def watt_to_dbm(power_w: float) -> float:
    """Convert a power level in watts to dBm."""
    power_w = _check_positive(power_w, "power [W]")
    return 10.0 * math.log10(power_w / MILLI)
