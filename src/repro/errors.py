"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still
letting programming errors (``TypeError``, ``ValueError`` from numpy, ...)
propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class UnitError(ReproError):
    """A quantity was supplied with an invalid magnitude or unit."""


class ConfigurationError(ReproError):
    """A model or component was configured with inconsistent parameters."""


class EnergyError(ReproError):
    """An energy-accounting operation was invalid (e.g. draining below zero)."""


class ChannelError(ReproError):
    """A communication channel was evaluated outside its validity region."""


class LinkBudgetError(ReproError):
    """A link budget cannot close (required SNR or rate not achievable)."""


class PlacementError(ReproError):
    """A node was placed at an unknown body landmark."""


class RegistryError(ReproError):
    """An experiment registry lookup or registration was invalid."""


class SweepError(ReproError):
    """A parameter sweep was configured or executed incorrectly."""


class ArtifactError(ReproError):
    """A result artifact could not be written, read or validated."""


class CodecError(ReproError):
    """A binary shard frame could not be encoded or decoded."""


class ShapeError(ReproError):
    """A tensor shape mismatch was detected in the NN engine."""


class GraphError(ReproError):
    """A model or network graph is malformed (cycles, missing inputs, ...)."""


class PartitionError(ReproError):
    """No valid partition of a workload between leaf and hub exists."""


class SchedulingError(ReproError):
    """The MAC/scheduler could not admit the requested traffic."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class SurveyError(ReproError):
    """A device-survey lookup failed."""


class ScenarioError(ReproError):
    """A scenario specification is invalid or could not be compiled."""
