"""Population-scale cohort engine: thousands of wearers as one workload.

This package turns the single-body scenario machinery into a population
tool: a :class:`CohortSpec` declares statistical distributions (adoption
rates, link-technology and MAC mixes, body sizes, duty cycles), expands
deterministically into per-member
:class:`~repro.scenarios.spec.ScenarioSpec` workloads, and executes them
as sharded batches with streaming aggregation — cohort percentiles and
energy distributions come out, raw per-member results are never
materialised.  A vectorised analytic fast path evaluates 10k members in
seconds and is continuously cross-validated against the discrete-event
simulator on a sampled subset.

Backed by ``repro cohort run/summarize`` on the CLI and the
``cohort_study`` experiment (E14) in the registry; design notes live in
``docs/cohort-engine.md``.
"""

from .aggregate import MEMBER_METRIC_FIELDS, CohortAccumulator, MemberMetrics
from .analytic import evaluate_member, evaluate_members
from .distributions import Bernoulli, Categorical, LogUniform, Uniform
from .engine import (
    CohortResult,
    ValidationRecord,
    run_cohort,
    shard_bounds,
)
from .spec import DEFAULT_ADOPTION, CohortMember, CohortSpec

__all__ = [
    "DEFAULT_ADOPTION",
    "MEMBER_METRIC_FIELDS",
    "Bernoulli",
    "Categorical",
    "CohortAccumulator",
    "CohortMember",
    "CohortResult",
    "CohortSpec",
    "LogUniform",
    "MemberMetrics",
    "Uniform",
    "ValidationRecord",
    "evaluate_member",
    "evaluate_members",
    "run_cohort",
    "shard_bounds",
]
