"""Population-scale cohort engine: a million wearers as one workload.

This package turns the single-body scenario machinery into a population
tool: a :class:`CohortSpec` declares statistical distributions (adoption
rates, link-technology and MAC mixes, body sizes, duty cycles), expands
deterministically into per-member
:class:`~repro.scenarios.spec.ScenarioSpec` workloads, and executes them
as sharded batches with streaming aggregation — cohort percentiles and
energy distributions come out, raw per-member results are never
materialised.  A vectorised analytic fast path evaluates 10k members in
seconds and is continuously cross-validated against the discrete-event
simulator on a sampled subset.

Shard workers communicate through the versioned binary columnar codec in
:mod:`repro.cohort.codec` (self-delimiting ``RSHD`` frames with a
summary footer for index-free skipping), and cross-member percentiles
ride on the mergeable quantile sketches in :mod:`repro.cohort.sketch`,
so memory stays flat from 10^2 to 10^6 members.

Backed by ``repro cohort run/summarize`` on the CLI and the
``cohort_study`` experiment (E14) in the registry; design notes live in
``docs/cohort-engine.md``.
"""

from .aggregate import (
    DEFAULT_METRIC_BACKEND,
    MEMBER_METRIC_FIELDS,
    CohortAccumulator,
    MemberMetrics,
    ValidationRecord,
)
from .analytic import evaluate_member, evaluate_members
from .codec import (
    SHARD_CODEC_VERSION,
    MetricSummary,
    ShardFrame,
    ShardSummary,
    decode_shard,
    encode_shard,
    read_frames,
    read_summary,
    split_frames,
    write_frames,
)
from .distributions import Bernoulli, Categorical, LogUniform, Uniform
from .engine import (
    CohortResult,
    run_cohort,
    shard_bounds,
)
from .sketch import QuantileSketch
from .spec import DEFAULT_ADOPTION, CohortMember, CohortSpec

__all__ = [
    "DEFAULT_ADOPTION",
    "DEFAULT_METRIC_BACKEND",
    "MEMBER_METRIC_FIELDS",
    "SHARD_CODEC_VERSION",
    "Bernoulli",
    "Categorical",
    "CohortAccumulator",
    "CohortMember",
    "CohortResult",
    "CohortSpec",
    "LogUniform",
    "MemberMetrics",
    "MetricSummary",
    "QuantileSketch",
    "ShardFrame",
    "ShardSummary",
    "Uniform",
    "ValidationRecord",
    "decode_shard",
    "encode_shard",
    "evaluate_member",
    "evaluate_members",
    "read_frames",
    "read_summary",
    "run_cohort",
    "shard_bounds",
    "split_frames",
    "write_frames",
]
