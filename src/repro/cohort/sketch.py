"""Mergeable quantile sketches for million-member cohort statistics.

Cross-member percentiles used to rely on
:class:`~repro.netsim.stats.LatencyAccumulator`'s exact sample window
(bit-identical, but one retained float per member) followed by a
log-spaced histogram whose resolution is fixed at spill time.  For a
cohort of 10^6 members neither regime is ideal: the window costs memory
proportional to the population and the histogram's rank error depends on
how lucky the spill-time value range was.

:class:`QuantileSketch` is a KLL-style compactor sketch (Karnin, Lang &
Liberty, FOCS'16) with *deterministic* alternating compaction offsets
instead of coin flips, so a fixed seed and merge order reproduce the
same sketch byte-for-byte — the reproducibility contract everything in
this repository keeps.  Properties:

* **Bounded size** — at most ~3·k retained values regardless of how many
  samples were added (k = 200 by default ⇒ a few KiB), so a sketch for
  every member metric ships in a flat-size shard frame.
* **Mergeable** — ``merge`` concatenates level buffers and re-compacts;
  merging shard sketches in shard order is deterministic and loses no
  more rank accuracy than having streamed the samples into one sketch.
* **Documented rank-error envelope** — the randomised KLL guarantee is
  ε ≈ 2.3/k; with deterministic offsets we document and property-test
  the looser :func:`QuantileSketch.rank_error_bound` = 4/k (2 % at the
  default k), measured against ``np.percentile`` on uniform, lognormal,
  sorted and constant streams in ``tests/cohort/test_sketch.py``.

Values must be finite (percentile queries on ``inf``/``nan`` are
meaningless); callers that track non-finite markers (e.g. "no brownout"
as ``inf``) keep them in exact counters instead.
"""

from __future__ import annotations

import math
from typing import Iterator, Mapping

from ..errors import SimulationError

#: Default compactor size; rank-error envelope is ``4 / k`` (2 %).
DEFAULT_K = 200

#: Capacity decay per level below the top (the KLL geometric schedule).
_LEVEL_DECAY = 2.0 / 3.0

#: Floor on any level's capacity.
_MIN_CAPACITY = 2


class QuantileSketch:
    """Deterministic KLL-style streaming quantile sketch.

    Parameters
    ----------
    k:
        Compactor size parameter.  Larger is more accurate and bigger:
        the sketch retains at most ``~3k`` values and answers rank
        queries within :attr:`rank_error_bound` = ``4 / k`` of the true
        normalised rank.
    """

    __slots__ = ("k", "count", "_min", "_max", "_levels", "_flips")

    def __init__(self, k: int = DEFAULT_K) -> None:
        if k < 8:
            raise SimulationError(f"sketch parameter k must be >= 8: {k}")
        self.k = k
        self.count = 0
        self._min = math.inf
        self._max = -math.inf
        #: ``_levels[i]`` holds values of weight ``2**i``; level 0 is the
        #: insertion buffer, higher levels are produced by compaction.
        self._levels: list[list[float]] = [[]]
        #: Per-level alternating compaction offset (the deterministic
        #: stand-in for KLL's coin flip).
        self._flips: list[bool] = [False]

    # -- recording ---------------------------------------------------------

    def add(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        if not math.isfinite(value):
            raise SimulationError(
                f"quantile sketch values must be finite: {value}")
        self.count += 1
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self._levels[0].append(value)
        self._compress()

    def add_repeated(self, value: float, weight: int) -> None:
        """Record *value* ``weight`` times in O(log weight) inserts.

        Decomposes the weight into powers of two and inserts the value
        directly at the matching levels — how histogram bins fold into a
        sketch without a per-sample loop.
        """
        if weight < 0:
            raise SimulationError(f"weight must be non-negative: {weight}")
        if weight == 0:
            return
        value = float(value)
        if not math.isfinite(value):
            raise SimulationError(
                f"quantile sketch values must be finite: {value}")
        self.count += weight
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        remaining = weight
        while remaining:
            level = remaining.bit_length() - 1
            self._ensure_level(level)
            self._levels[level].append(value)
            remaining -= 1 << level
        self._compress()

    def merge(self, other: "QuantileSketch") -> None:
        """Fold *other* into this sketch (level-wise concatenation)."""
        if other.count == 0:
            return
        self.count += other.count
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        self._ensure_level(len(other._levels) - 1)
        for level, items in enumerate(other._levels):
            self._levels[level].extend(items)
        self._compress()

    # -- compaction --------------------------------------------------------

    def _ensure_level(self, level: int) -> None:
        while len(self._levels) <= level:
            self._levels.append([])
            self._flips.append(False)

    def _capacity(self, level: int) -> int:
        depth = len(self._levels) - 1 - level
        return max(_MIN_CAPACITY, math.ceil(self.k * _LEVEL_DECAY ** depth))

    def _retained(self) -> int:
        return sum(len(items) for items in self._levels)

    def _compress(self) -> None:
        total_capacity = sum(self._capacity(level)
                             for level in range(len(self._levels)))
        while self._retained() > total_capacity:
            for level, items in enumerate(self._levels):
                if len(items) >= self._capacity(level) and len(items) >= 2:
                    self._compact(level)
                    break
            else:  # nothing compactable (all levels tiny): accept the size
                break
            total_capacity = sum(self._capacity(level)
                                 for level in range(len(self._levels)))

    def _compact(self, level: int) -> None:
        """Halve one level: sort, keep every other value one level up.

        An odd-sized buffer keeps its largest value in place so weights
        stay exact; the even remainder is promoted from an alternating
        offset, flipped every compaction — deterministic, but unbiased
        over repeated compactions the same way KLL's coin flip is in
        expectation.
        """
        items = sorted(self._levels[level])
        leftover: list[float] = []
        if len(items) % 2:
            leftover.append(items.pop())
        offset = 1 if self._flips[level] else 0
        self._flips[level] = not self._flips[level]
        promoted = items[offset::2]
        self._levels[level] = leftover
        self._ensure_level(level + 1)
        self._levels[level + 1].extend(promoted)

    # -- queries -----------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return self.count == 0

    @property
    def min_value(self) -> float:
        self._require_data()
        return self._min

    @property
    def max_value(self) -> float:
        self._require_data()
        return self._max

    @property
    def retained(self) -> int:
        """Number of values currently held (the memory bound)."""
        return self._retained()

    @property
    def rank_error_bound(self) -> float:
        """Documented normalised rank-error envelope of this sketch."""
        return 4.0 / self.k

    def weighted_items(self) -> Iterator[tuple[float, int]]:
        """Every retained value with its weight (unordered)."""
        for level, items in enumerate(self._levels):
            weight = 1 << level
            for value in items:
                yield value, weight

    def quantile(self, fraction: float) -> float:
        """Value at normalised rank *fraction* (0 → min, 1 → max)."""
        self._require_data()
        if not 0.0 <= fraction <= 1.0:
            raise SimulationError("quantile fraction must be in [0, 1]")
        if fraction == 0.0:
            return self._min
        if fraction == 1.0:
            return self._max
        weighted = sorted(self.weighted_items())
        target = fraction * self.count
        cumulative = 0
        for value, weight in weighted:
            cumulative += weight
            if cumulative >= target:
                return min(max(value, self._min), self._max)
        return self._max

    def percentile(self, percentile: float) -> float:
        """Value at *percentile* (0–100)."""
        if not 0.0 <= percentile <= 100.0:
            raise SimulationError("percentile must be in [0, 100]")
        return self.quantile(percentile / 100.0)

    def _require_data(self) -> None:
        if self.count == 0:
            raise SimulationError("quantile sketch is empty")

    # -- serialisation -----------------------------------------------------

    def to_state(self) -> dict[str, object]:
        """Plain-data snapshot (the shard codec's serialisation hook)."""
        return {
            "k": self.k,
            "count": self.count,
            "min": self._min,
            "max": self._max,
            "flips": list(self._flips),
            "levels": [list(items) for items in self._levels],
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "QuantileSketch":
        """Rebuild a sketch exactly from :meth:`to_state` output."""
        sketch = cls(k=int(state["k"]))
        sketch.count = int(state["count"])
        sketch._min = float(state["min"])
        sketch._max = float(state["max"])
        levels = [list(map(float, items)) for items in state["levels"]]
        flips = [bool(flip) for flip in state["flips"]]
        if not levels:
            levels, flips = [[]], [False]
        if len(flips) != len(levels):
            raise SimulationError(
                "sketch state levels/flips length mismatch")
        sketch._levels = levels
        sketch._flips = flips
        return sketch
