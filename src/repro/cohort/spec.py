"""Population cohort specifications: thousands of wearers from one spec.

A :class:`CohortSpec` declares a *population* of instrumented bodies by
distribution — per-modality adoption rates, a link-technology mix, a MAC
policy mix, body-size and duty-cycle spreads — and deterministically
expands any member index into a concrete
:class:`~repro.scenarios.spec.ScenarioSpec`.  Member ``index`` always
samples from ``derive_seed(cohort seed, member index)``, never from a
shared stream, so member 4711 is the same wearer whether it is expanded
serially, inside shard 3 of 8, or alone for debugging — the property the
shard-merge bit-identity guarantee of the cohort engine rests on.
"""

from __future__ import annotations

import dataclasses
import functools
from dataclasses import dataclass, field
from typing import Iterator, Mapping

import numpy as np

from ..errors import ScenarioError
from ..runner.sweep import derive_seed
from ..scenarios.spec import (
    ScenarioEvent,
    ScenarioNodeSpec,
    ScenarioSpec,
    battery_for,
    harvester_for,
    technology_for,
)
from ..sensors.catalog import SensorModality, modality_spec
from .distributions import Bernoulli, Categorical, Uniform

#: Fraction of the population wearing each modality (the "adoption rate").
#: Video is deliberately absent: first-person video is a hub workload,
#: not a leaf stream, in the paper's architecture.
DEFAULT_ADOPTION: Mapping[str, float] = {
    "temperature": 0.60,
    "ppg": 0.85,
    "ecg": 0.35,
    "emg": 0.10,
    "eeg": 0.05,
    "imu": 0.90,
    "audio": 0.50,
}

#: Sensing AFE power per modality (same figures as the scenario gallery).
SENSING_POWER_WATTS: Mapping[str, float] = {
    "temperature": 2e-6,
    "ppg": 80e-6,
    "ecg": 30e-6,
    "emg": 60e-6,
    "eeg": 200e-6,
    "imu": 15e-6,
    "audio": 140e-6,
}

#: In-sensor-analytics power for modalities that run a local pipeline.
ISA_POWER_WATTS: Mapping[str, float] = {
    "eeg": 40e-6,
    "audio": 50e-6,
}

#: Modalities whose wearers duty-cycle them (motion and voice interfaces);
#: vitals stream continuously.
DUTY_CYCLED_MODALITIES = ("audio", "imu")


@functools.lru_cache(maxsize=None)
def _technology_rate_bps(key: str) -> float:
    return technology_for(key).data_rate_bps()


@dataclass(frozen=True)
class CohortMember:
    """One expanded member: its index, seed and ready-to-run scenario."""

    index: int
    seed: int
    scenario: ScenarioSpec


@dataclass(frozen=True)
class CohortSpec:
    """A population of wearers described by distributions.

    Parameters
    ----------
    population:
        Number of members the cohort expands to.
    seed:
        Root of the deterministic per-member seed derivation.
    member_duration_seconds:
        Simulated duration of each member's workload.
    adoption:
        Mapping of modality name to the probability a member wears it.
    technologies:
        Link-technology mix sampled per leaf node.  A sampled technology
        whose link rate cannot carry the modality's stream falls back to
        the hub technology (you cannot ship EEG over a sub-µW link).
    mac_policies:
        Arbitration-policy mix sampled per member.
    body_scale:
        Body-size factor; scales the per-packet MAC guard time (a longer
        body channel needs more turnaround margin).
    duty_cycle:
        Active fraction of duty-cycled modalities (motion, voice); the
        member sleeps those nodes for the rest of the run.
    motion_count:
        Number of IMU pods a motion-instrumented member wears.
    bits_per_packet:
        Packet-size mix; clamped per node so even the slowest stream
        produces several packets within the member duration.
    implant:
        Probability a member carries an MQS glucose implant.
    batteries:
        Optional battery mix sampled once per member and applied to all
        of that member's leaf nodes.  Choices are
        :data:`repro.scenarios.spec.BATTERY_FACTORIES` keys; an empty
        string means "no battery" (mains/hub-powered).  ``None`` (the
        default) disables battery sampling entirely — no extra RNG
        draws, so default cohorts expand bit-identically to before the
        energy runtime existed.
    battery_scale:
        Capacity multiplier applied to every sampled cell (compresses
        long lifetimes into short member runs).
    harvesters:
        Optional harvester mix, sampled like ``batteries`` (an empty
        string means "no harvester").
    """

    population: int = 1000
    name: str = "cohort"
    seed: int = 0
    member_duration_seconds: float = 60.0
    adoption: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_ADOPTION))
    technologies: Categorical = Categorical(
        choices=("wir", "wir_leaf", "ble"), weights=(0.60, 0.25, 0.15))
    mac_policies: Categorical = Categorical(
        choices=("fifo", "tdma", "polling"), weights=(0.40, 0.35, 0.25))
    body_scale: Uniform = Uniform(0.85, 1.20)
    duty_cycle: Uniform = Uniform(0.35, 1.0)
    motion_count: Categorical = Categorical(choices=(1, 2, 3))
    bits_per_packet: Categorical = Categorical(
        choices=(2048.0, 4096.0, 8192.0))
    implant: Bernoulli = Bernoulli(0.08)
    hub_technology: str = "wir"
    batteries: Categorical | None = None
    battery_scale: float = 1.0
    harvesters: Categorical | None = None

    def __post_init__(self) -> None:
        if self.population < 1:
            raise ScenarioError("cohort population must be >= 1")
        if not self.name:
            raise ScenarioError("cohort name must be non-empty")
        if self.member_duration_seconds <= 0:
            raise ScenarioError("member duration must be positive")
        if not self.adoption:
            raise ScenarioError("cohort adoption table must not be empty")
        for modality_name, probability in self.adoption.items():
            try:
                SensorModality(modality_name)
            except ValueError:
                known = ", ".join(sorted(m.value for m in SensorModality))
                raise ScenarioError(
                    f"unknown modality {modality_name!r} "
                    f"(known: {known})") from None
            if not 0.0 <= probability <= 1.0:
                raise ScenarioError(
                    f"adoption rate for {modality_name!r} must be in [0, 1]: "
                    f"{probability}")
        for policy in self.mac_policies.choices:
            if policy not in ("fifo", "tdma", "polling"):
                raise ScenarioError(f"unknown MAC policy {policy!r}")
        technology_for(self.hub_technology)
        for key in self.technologies.choices:
            technology_for(key)
        if self.body_scale.low <= 0:
            raise ScenarioError("body scale must be positive")
        if not 0.0 < self.duty_cycle.low <= self.duty_cycle.high <= 1.0:
            raise ScenarioError("duty cycle must lie in (0, 1]")
        if self.battery_scale <= 0:
            raise ScenarioError("battery scale must be positive")
        if self.batteries is not None:
            for key in self.batteries.choices:
                if key:
                    battery_for(str(key))  # raises with the known list
        if self.harvesters is not None:
            for key in self.harvesters.choices:
                if key:
                    harvester_for(str(key))  # raises with the known list

    # -- member expansion --------------------------------------------------

    def member_seed(self, index: int) -> int:
        """Deterministic seed of one member, independent of shard layout."""
        if not 0 <= index < self.population:
            raise ScenarioError(
                f"member index {index} outside population "
                f"[0, {self.population})")
        return derive_seed(self.seed, f"cohort:{self.name}",
                           {"member": index})

    def member(self, index: int) -> CohortMember:
        """Expand member *index* into its concrete scenario."""
        seed = self.member_seed(index)
        rng = np.random.default_rng(seed)
        nodes: list[ScenarioNodeSpec] = []
        events: list[ScenarioEvent] = []
        hub_rate = _technology_rate_bps(self.hub_technology)

        for modality_name in sorted(self.adoption):
            if not float(rng.random()) < self.adoption[modality_name]:
                continue
            modality = SensorModality(modality_name)
            rate = modality_spec(modality).compressed_data_rate_bps
            technology = self.technologies.sample(rng)
            if rate > _technology_rate_bps(technology) or rate > hub_rate:
                technology = self.hub_technology
            count = (int(self.motion_count.sample(rng))
                     if modality is SensorModality.IMU else 1)
            bits = float(self.bits_per_packet.sample(rng))
            # Clamp the packet size so every stream emits at least a
            # handful of packets inside the member duration; without this
            # a 16 bit/s temperature stream would never fill one packet.
            bits = max(64.0, min(bits,
                                 rate * self.member_duration_seconds / 4.0))
            nodes.append(ScenarioNodeSpec(
                name=modality_name,
                modality=modality,
                bits_per_packet=bits,
                technology=technology,
                count=count,
                sensing_power_watts=SENSING_POWER_WATTS[modality_name],
                isa_power_watts=ISA_POWER_WATTS.get(modality_name, 0.0),
            ))
            if modality_name in DUTY_CYCLED_MODALITIES:
                active_fraction = self.duty_cycle.sample(rng)
                if active_fraction < 1.0:
                    events.append(ScenarioEvent(
                        at_fraction=active_fraction, action="sleep",
                        node_prefixes=(modality_name,)))

        if self.implant.sample(rng):
            nodes.append(ScenarioNodeSpec(
                name="glucose_implant",
                rate_bps=1000.0,
                bits_per_packet=1024.0,
                technology="mqs_implant",
                traffic="poisson",
                sensing_power_watts=8e-6,
            ))
        if not nodes:
            # Everyone wears *something*: an unlucky adoption draw still
            # yields a valid (minimal) body network.
            baseline_rate = modality_spec(
                SensorModality.TEMPERATURE).compressed_data_rate_bps
            nodes.append(ScenarioNodeSpec(
                name="temperature",
                modality=SensorModality.TEMPERATURE,
                bits_per_packet=max(
                    64.0,
                    baseline_rate * self.member_duration_seconds / 4.0),
                sensing_power_watts=SENSING_POWER_WATTS["temperature"],
            ))

        # Energy sampling happens after the node draws so that disabling
        # it (the default) leaves the member's RNG stream — and therefore
        # every historical cohort — bit-identical.
        if self.batteries is not None:
            battery_key = str(self.batteries.sample(rng))
            if battery_key:
                nodes = [dataclasses.replace(
                    node, battery=battery_key,
                    battery_scale=self.battery_scale) for node in nodes]
        if self.harvesters is not None:
            harvester_key = str(self.harvesters.sample(rng))
            if harvester_key:
                nodes = [dataclasses.replace(node, harvester=harvester_key)
                         for node in nodes]

        arbitration = self.mac_policies.sample(rng)
        overhead = 100e-6 * self.body_scale.sample(rng)
        scenario = ScenarioSpec(
            name=f"{self.name}-{index:06d}",
            description=f"sampled member {index} of cohort {self.name!r}",
            duration_seconds=self.member_duration_seconds,
            nodes=tuple(nodes),
            arbitration=arbitration,
            hub_technology=self.hub_technology,
            events=tuple(events),
            per_packet_overhead_seconds=overhead,
        )
        return CohortMember(index=index, seed=seed, scenario=scenario)

    def members(self, start: int = 0,
                stop: int | None = None) -> Iterator[CohortMember]:
        """Expand a contiguous member range (the unit a shard works on)."""
        stop = self.population if stop is None else stop
        if not 0 <= start <= stop <= self.population:
            raise ScenarioError(
                f"member range [{start}, {stop}) outside population "
                f"[0, {self.population})")
        for index in range(start, stop):
            yield self.member(index)

    def describe(self) -> dict[str, object]:
        """Summary row for reports."""
        return {
            "cohort": self.name,
            "population": self.population,
            "member_seconds": self.member_duration_seconds,
            "modalities": ",".join(sorted(self.adoption)),
            "technologies": ",".join(str(c) for c in self.technologies.choices),
            "mac_policies": ",".join(str(c) for c in self.mac_policies.choices),
            "seed": self.seed,
        }
