"""Declarative sampling distributions for cohort specifications.

A :class:`~repro.cohort.spec.CohortSpec` describes a *population* — not a
list of members — so its fields are distributions rather than values:
which link technology a sampled wearer carries, how large their body is,
what fraction of the day their motion sensors are awake.  The
distributions here are plain frozen dataclasses: picklable (they cross
the shard process boundary inside the spec), JSON-encodable through the
artifact sanitizer, and deterministic given a generator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ScenarioError


@dataclass(frozen=True)
class Categorical:
    """A weighted choice over a fixed set of values.

    ``weights`` may be omitted for a uniform choice; otherwise they are
    normalised, so any positive relative weighting works.
    """

    choices: tuple
    weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if not self.choices:
            raise ScenarioError("categorical needs at least one choice")
        if self.weights is not None:
            if len(self.weights) != len(self.choices):
                raise ScenarioError(
                    "categorical weights must match choices "
                    f"({len(self.weights)} != {len(self.choices)})")
            if any(weight < 0 for weight in self.weights):
                raise ScenarioError("categorical weights must be non-negative")
            if not math.fsum(self.weights) > 0:
                raise ScenarioError("categorical weights must not all be zero")

    def sample(self, rng: np.random.Generator):
        if self.weights is None:
            return self.choices[int(rng.integers(len(self.choices)))]
        total = math.fsum(self.weights)
        threshold = float(rng.random()) * total
        cumulative = 0.0
        for choice, weight in zip(self.choices, self.weights):
            cumulative += weight
            if threshold < cumulative:
                return choice
        return self.choices[-1]  # guard against rounding at the boundary


@dataclass(frozen=True)
class Uniform:
    """A uniform draw from ``[low, high]`` (degenerate when equal)."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.low) or not math.isfinite(self.high):
            raise ScenarioError("uniform bounds must be finite")
        if self.high < self.low:
            raise ScenarioError(
                f"uniform bounds inverted: [{self.low}, {self.high}]")

    def sample(self, rng: np.random.Generator) -> float:
        if self.high == self.low:
            return self.low
        return float(rng.uniform(self.low, self.high))


@dataclass(frozen=True)
class LogUniform:
    """A log-uniform draw from ``[low, high]`` (both strictly positive).

    The natural distribution for scale-like quantities (data rates,
    packet sizes) where "2x either way" should be equally likely.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low <= 0 or self.high <= 0:
            raise ScenarioError("log-uniform bounds must be positive")
        if self.high < self.low:
            raise ScenarioError(
                f"log-uniform bounds inverted: [{self.low}, {self.high}]")

    def sample(self, rng: np.random.Generator) -> float:
        if self.high == self.low:
            return self.low
        return float(math.exp(rng.uniform(math.log(self.low),
                                          math.log(self.high))))


@dataclass(frozen=True)
class Bernoulli:
    """A biased coin: True with the given probability."""

    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ScenarioError(
                f"probability must be in [0, 1]: {self.probability}")

    def sample(self, rng: np.random.Generator) -> bool:
        if self.probability >= 1.0:
            return True
        if self.probability <= 0.0:
            return False
        return float(rng.random()) < self.probability
