"""Sharded cohort execution with streaming merge over binary frames.

The engine expands a :class:`~repro.cohort.spec.CohortSpec` into
contiguous member shards, runs each shard through a worker (on the same
process pool the sweep runner uses), and merges the results in shard
order.  A worker never ships a pickled accumulator: it encodes its
:class:`~repro.cohort.aggregate.CohortAccumulator` into one binary
:mod:`~repro.cohort.codec` frame and returns the bytes, which the
parent folds in via :meth:`CohortAccumulator.merge_encoded` — so what
crosses the process boundary is exactly what lands in the on-disk
artifact, one codepath end to end.

Because member seeds depend only on the member index and shard ranges
are contiguous, the merged statistics are bit-identical to a
single-process run at the same seed (while the population fits the
accumulators' exact window) — the property the shard-parallel tests pin,
now *through* the codec round trip.

Each member executes either on the discrete-event simulator
(``fast_path="des"``) or through the vectorised steady-state
approximation (``fast_path="analytic"``); with the analytic path, every
``validate_stride``-th member is *also* simulated and the deviation
recorded, so a cohort run carries its own evidence that the fast path is
inside its validity envelope.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..errors import ScenarioError
from ..runner.sweep import PoolFailure, run_pool
from .aggregate import CohortAccumulator, MemberMetrics, ValidationRecord
from .analytic import evaluate_members
from .codec import DEFAULT_COMPRESSION, ShardFrame, encode_shard
from .spec import CohortMember, CohortSpec

#: Recognised execution paths.  ``"hybrid"`` runs every member on the
#: DES with the macro-tick steady-state fast path enabled (see
#: :mod:`repro.netsim.macrotick`) — exact event replay with closed-form
#: leaps over stationary segments.
FAST_PATHS = ("analytic", "des", "hybrid")

#: Default sampling stride of the analytic path's DES cross-check; one
#: validated member per ``VALIDATE_STRIDE`` keeps the overhead marginal.
DEFAULT_VALIDATE_STRIDE = 1000


def shard_bounds(population: int, shard_count: int,
                 shard_index: int) -> tuple[int, int]:
    """Contiguous member range of one shard (first shards get the slack)."""
    if shard_count < 1 or not 0 <= shard_index < shard_count:
        raise ScenarioError(
            f"shard {shard_index} outside [0, {shard_count})")
    base, extra = divmod(population, shard_count)
    start = shard_index * base + min(shard_index, extra)
    stop = start + base + (1 if shard_index < extra else 0)
    return start, stop


def _simulate_member(member: CohortMember, fast_path: str | None = None):
    """Run one member on the DES; returns (metrics, packet accumulator).

    ``fast_path="hybrid"`` enables the macro-tick engine for the run;
    ``None`` keeps the bit-exact kernel.
    """
    simulator = member.scenario.build(seed=member.seed)
    result = simulator.run(member.scenario.duration_seconds,
                           fast_path=fast_path)
    metrics = MemberMetrics.from_simulation(member.index, member.scenario,
                                            result)
    return metrics, simulator.bus.stats.latency


def _run_shard(spec: CohortSpec, shard_index: int, shard_count: int,
               fast_path: str, validate_stride: int,
               keep_members: bool = False) -> ShardFrame:
    """Execute one contiguous member range into an in-memory frame."""
    started = time.perf_counter()
    start, stop = shard_bounds(spec.population, shard_count, shard_index)
    accumulator = CohortAccumulator(keep_members=keep_members)
    validations: list[ValidationRecord] = []

    if fast_path in ("des", "hybrid"):
        member_path = "hybrid" if fast_path == "hybrid" else None
        for member in spec.members(start, stop):
            metrics, packets = _simulate_member(member, member_path)
            accumulator.add(metrics)
            accumulator.packet_latency.merge(packets)
    else:
        members = list(spec.members(start, stop))
        analytic = evaluate_members(
            [member.scenario for member in members],
            [member.index for member in members])
        for member, metrics in zip(members, analytic):
            accumulator.add(metrics)
            if validate_stride > 0 and member.index % validate_stride == 0:
                # The sampled cross-check runs on the hybrid DES: leaps
                # keep the validation affordable at population scale and
                # the hybrid path is itself envelope-validated against
                # the exact kernel.
                des_metrics, _ = _simulate_member(member, "hybrid")
                validations.append(ValidationRecord(
                    index=member.index,
                    scenario=member.scenario.name,
                    arbitration=member.scenario.arbitration,
                    analytic_leaf_power_watts=metrics.leaf_power_watts,
                    des_leaf_power_watts=des_metrics.leaf_power_watts,
                    analytic_delivered_fraction=metrics.delivered_fraction,
                    des_delivered_fraction=des_metrics.delivered_fraction,
                    analytic_mean_latency_seconds=(
                        metrics.mean_latency_seconds),
                    des_mean_latency_seconds=(
                        des_metrics.mean_latency_seconds),
                    analytic_alive_fraction=metrics.alive_fraction,
                    des_alive_fraction=des_metrics.alive_fraction,
                ))

    return ShardFrame(
        shard_index=shard_index,
        start=start,
        stop=stop,
        accumulator=accumulator,
        validations=tuple(validations),
        elapsed_seconds=time.perf_counter() - started,
    )


def _run_shard_encoded(spec: CohortSpec, shard_index: int, shard_count: int,
                       fast_path: str, validate_stride: int,
                       keep_members: bool,
                       compression: str) -> tuple[bytes, float]:
    """Worker entry point: run one shard and return its encoded frame.

    Returns ``(frame_bytes, encode_seconds)``; the bytes — not a pickled
    accumulator — are what travels back over the process pool.
    """
    frame = _run_shard(spec, shard_index, shard_count, fast_path,
                       validate_stride, keep_members)
    started = time.perf_counter()
    blob = encode_shard(frame, compression=compression)
    return blob, time.perf_counter() - started


@dataclass(frozen=True)
class CohortResult:
    """Outcome of one cohort run: streaming aggregates plus provenance."""

    spec: CohortSpec
    fast_path: str
    shard_count: int
    parallel: int
    accumulator: CohortAccumulator
    validations: tuple[ValidationRecord, ...]
    elapsed_seconds: float
    shard_elapsed_seconds: tuple[float, ...] = ()
    #: The encoded shard frames, in shard order — exactly the bytes the
    #: workers returned, ready to be concatenated into a binary artifact.
    frames: tuple[bytes, ...] = ()
    #: Whether members were retained (and are present in :attr:`frames`).
    keep_members: bool = False
    #: Outer compression of :attr:`frames`.
    compression: str = DEFAULT_COMPRESSION
    #: Total wall time spent encoding frames (across workers).
    encode_seconds: float = 0.0
    #: Total wall time spent decoding frames during the streaming merge.
    decode_seconds: float = 0.0

    @property
    def encoded_bytes(self) -> int:
        """Total size of the encoded shard frames."""
        return sum(len(frame) for frame in self.frames)

    def rows(self) -> list[dict[str, object]]:
        """Cohort summary table: one row per member metric."""
        return self.accumulator.summary_rows()

    def overview(self) -> dict[str, object]:
        overview = dict(self.accumulator.overview())
        overview.update({
            "fast_path": self.fast_path,
            "shards": self.shard_count,
            "elapsed_s": round(self.elapsed_seconds, 3),
        })
        if self.shard_elapsed_seconds:
            # Shard balance at a glance: a straggler shard shows up as a
            # slowest-shard time far above elapsed / shards.
            overview["slowest_shard_s"] = round(
                max(self.shard_elapsed_seconds), 3)
        return overview

    def validation_rows(self) -> list[dict[str, object]]:
        return [record.row() for record in self.validations]

    def max_validation_errors(self) -> dict[str, float]:
        """Worst observed analytic-vs-DES deviations (empty when unvalidated)."""
        if not self.validations:
            return {}
        return {
            "leaf_power_rel_error": max(
                record.leaf_power_rel_error for record in self.validations),
            "delivered_fraction_abs_error": max(
                record.delivered_fraction_abs_error
                for record in self.validations),
            "mean_latency_factor": max(
                record.mean_latency_factor for record in self.validations),
            "alive_fraction_abs_error": max(
                record.alive_fraction_abs_error
                for record in self.validations),
        }

    def summary_lines(self) -> list[str]:
        lines = [
            f"population {self.spec.population} via {self.fast_path} path, "
            f"{self.shard_count} shard(s), "
            f"{self.elapsed_seconds:.2f}s wall",
            "policy mix: " + str(self.accumulator.overview()["policies"]),
        ]
        if self.frames:
            lines.append(
                f"codec: {len(self.frames)} frame(s), "
                f"{self.encoded_bytes} bytes ({self.compression}), "
                f"encode {self.encode_seconds * 1e3:.1f}ms / "
                f"decode {self.decode_seconds * 1e3:.1f}ms")
        errors = self.max_validation_errors()
        if errors:
            lines.append(
                f"validated {len(self.validations)} member(s) against the "
                f"DES: leaf power within "
                f"{errors['leaf_power_rel_error'] * 100.0:.1f}%, delivered "
                f"fraction within {errors['delivered_fraction_abs_error']:.3f}, "
                f"latency within {errors['mean_latency_factor']:.2f}x")
        return lines


def run_cohort(spec: CohortSpec, *, fast_path: str = "analytic",
               shard_count: int | None = None, parallel: int = 1,
               validate_stride: int = DEFAULT_VALIDATE_STRIDE,
               keep_members: bool = False,
               compression: str = DEFAULT_COMPRESSION) -> CohortResult:
    """Execute a whole cohort as sharded batches and merge the aggregates.

    ``shard_count`` defaults to ``parallel`` (one shard per worker);
    shards run on the shared runner pool, return encoded binary frames,
    and are merged in shard order via the codec, so the result does not
    depend on scheduling *or* on whether the shard ran in-process.
    ``validate_stride`` controls the analytic path's sampled DES
    cross-check (0 disables it; it is ignored on the DES path, which
    *is* the reference).  ``keep_members=True`` retains raw member rows
    inside the frames for debugging; ``compression`` selects the frames'
    outer compression (``"zlib"`` default, ``"none"``, or ``"zstd"``
    when the optional package is installed).
    """
    if fast_path not in FAST_PATHS:
        raise ScenarioError(
            f"unknown fast path {fast_path!r} (known: "
            f"{', '.join(FAST_PATHS)})")
    if parallel < 1:
        raise ScenarioError("parallel must be >= 1")
    if validate_stride < 0:
        raise ScenarioError("validate stride must be >= 0")
    if shard_count is None:
        shard_count = parallel
    elif shard_count < 1:
        raise ScenarioError("shard count must be >= 1")
    shard_count = min(shard_count, spec.population)

    started = time.perf_counter()
    outcomes = run_pool(
        _run_shard_encoded,
        [(spec, index, shard_count, fast_path, validate_stride,
          keep_members, compression)
         for index in range(shard_count)],
        parallel,
    )
    failures = [(index, outcome) for index, outcome in enumerate(outcomes)
                if isinstance(outcome, PoolFailure)]
    if failures:
        index, failure = failures[0]
        raise ScenarioError(
            f"cohort shard {index}/{shard_count} failed: {failure.kind}: "
            f"{failure.message}\nworker traceback:\n{failure.traceback}")

    merged = CohortAccumulator(keep_members=keep_members)
    validations: list[ValidationRecord] = []
    frames: list[bytes] = []
    shard_elapsed: list[float] = []
    encode_seconds = 0.0
    decode_started = time.perf_counter()
    for blob, shard_encode_seconds in outcomes:  # run_pool keeps shard order
        decoded = merged.merge_encoded(blob)
        validations.extend(decoded.validations)
        frames.append(blob)
        shard_elapsed.append(decoded.elapsed_seconds)
        encode_seconds += shard_encode_seconds
    decode_seconds = time.perf_counter() - decode_started

    return CohortResult(
        spec=spec,
        fast_path=fast_path,
        shard_count=shard_count,
        parallel=parallel,
        accumulator=merged,
        validations=tuple(validations),
        elapsed_seconds=time.perf_counter() - started,
        shard_elapsed_seconds=tuple(shard_elapsed),
        frames=tuple(frames),
        keep_members=keep_members,
        compression=compression,
        encode_seconds=encode_seconds,
        decode_seconds=decode_seconds,
    )
